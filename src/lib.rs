//! `titr` — Time-Independent Trace Replay for MPI applications.
//!
//! Umbrella crate re-exporting the workspace: a Rust reproduction of
//! *Assessing the Performance of MPI Applications Through Time-Independent
//! Trace Replay* (Desprez, Markomanolis, Quinson, Suter; PSTI/ICPP 2011).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use mpi_emul as emul;
pub use npb;
pub use simkern;
pub use tau_sim as tau;
pub use tit_calibrate as calibrate;
pub use tit_core as trace;
pub use tit_extract as extract;
pub use tit_platform as platform;
pub use tit_replay as replay;
pub use titanalyze as analyze;
pub use titlint as lint;
pub use titobs as obs;
