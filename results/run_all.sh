#!/bin/bash
# Regenerates every experiment result in this directory.
# Scales: ratios/shapes are scale-invariant; see EXPERIMENTS.md.
set -e
cd "$(dirname "$0")/.."
cargo build --release -p tit-bench
B=./target/release
$B/table2     --scale 0.1     | tee results/table2.txt
$B/table3     --scale 0.1     | tee results/table3.txt
$B/fig7       --scale 0.1     | tee results/fig7.txt
$B/fig8       --scale 0.1     | tee results/fig8.txt
$B/fig9       --scale 1.0     | tee results/fig9.txt
$B/largetrace --scale 0.00667 | tee results/largetrace.txt
$B/ablations  --scale 0.2     | tee results/ablations.txt
