#!/usr/bin/env python3
"""Benchmark regression gate (docs/BENCHMARKS.md).

Usage: check_bench.py FRESH.json BASELINE.json [--kprof KPROF.json]

Compares a freshly produced BENCH_*.json against the committed
baseline:

  1. fresh peak_records_per_sec must be >= 0.5 x baseline's (a >2x
     throughput regression fails; improvements never fail);
  2. for ingest records only: the largest run's speedup must be >= 2.0
     when that run used >= 4 worker threads (the PR 4 acceptance
     criterion; vacuous on 1- and 2-core machines);
  3. for replay records carrying an observer_overhead section: the
     no-op observer must cost <= 2% wall and the attached time-resolved
     sink <= 10% (docs/OBSERVABILITY.md) — skipped when the detached
     wall is under MIN_OVERHEAD_WALL seconds, where timer noise
     dominates any real ratio;
  4. for replay records: kernel scale-invariance (docs/KERNEL.md §2) —
     the sweep must carry at least one >= 128-rank row in both the LU.B
     and PAIRS families, and the max-rank PAIRS row must sustain
     >= PAIRS_FLOOR x the x8 PAIRS rate. PAIRS islands are two NICs at
     every machine size, so this ratio isolates kernel overhead; the
     measured residual fall (0.56x at x1024 vs x8 on the reference
     container, with algorithmic counters exactly flat) is working-set
     growth, hence the 0.5 floor rather than a literal-flatness 0.8+.
     The LU.B family also gets a x8->x64 floor at the paper-comparable
     sizes (its >= 128-rank rows are exempt: LU's wavefront couples
     flows into contention islands that grow with the machine, so the
     model, not the kernel, dominates there — see docs/KERNEL.md);
  5. with --kprof: the kernel self-profile must prove the incremental
     solver was on — the partial-solve counters must exist (a renamed
     or dropped counter fails loudly, exit 2), partial_solves must be
     positive, and every >= 128-rank run must skip >= half of the
     system's constraints per solve on average;
  6. for scale records (the TIB2 memory-governance sweep): every run's
     governor segment peak must sit within its budget and its process
     peak RSS within the stated cap, and the largest run's RSS must be
     <= RSS_FLAT_CEIL x the smallest run's while the store grows —
     replay memory must follow the budget, not the trace length (runs
     execute smallest-first, so the monotone VmHWM cannot launder a
     spill). RSS gates are skipped, loudly, when the emitter could not
     read /proc (peak_rss_bytes == 0);
  7. envelope sanity: same bench name, non-empty runs, finite positive
     peak.

Exit status: 0 pass, 1 regression, 2 usage/parse error.
"""

import json
import math
import sys

PEAK_FLOOR = 0.5
SPEEDUP_FLOOR = 2.0
SPEEDUP_MIN_JOBS = 4
NOOP_CEIL = 1.02
TIMERES_CEIL = 1.10
MIN_OVERHEAD_WALL = 0.03
PAIRS_FLOOR = 0.5
LU_PAPER_FLOOR = 0.5
SWEEP_MIN_RANKS = 128
SKIP_FRACTION_FLOOR = 0.5
RSS_FLAT_CEIL = 1.5


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def sane(doc, path):
    for key in ("bench", "peak_records_per_sec", "runs"):
        if key not in doc:
            print(f"check_bench: {path}: missing {key!r}", file=sys.stderr)
            sys.exit(2)
    peak = doc["peak_records_per_sec"]
    if not (isinstance(peak, (int, float)) and math.isfinite(peak) and peak > 0):
        print(f"check_bench: {path}: bad peak {peak!r}", file=sys.stderr)
        sys.exit(2)
    if not doc["runs"]:
        print(f"check_bench: {path}: empty runs", file=sys.stderr)
        sys.exit(2)


def require(run, key, path):
    """A missing or renamed run key must fail loudly (exit 2), not
    silently neutralize the gate via a default."""
    if key not in run:
        label = run.get("label", "?")
        print(
            f"check_bench: {path}: run {label!r} missing key {key!r} "
            "(renamed in the emitter? update this gate alongside it)",
            file=sys.stderr,
        )
        sys.exit(2)
    return run[key]


def family_rates(runs, family, path):
    """`(nproc, records_per_sec)` rows of one sweep family, rank-sorted.

    Labels look like `"LU.B x 8"` / `"PAIRS x 1024"`; the suffix is the
    rank count.
    """
    out = []
    for run in runs:
        label = require(run, "label", path)
        head, sep, tail = label.rpartition(" x ")
        if not sep or head != family:
            continue
        try:
            nproc = int(tail)
        except ValueError:
            print(f"check_bench: {path}: unparsable rank count in {label!r}", file=sys.stderr)
            sys.exit(2)
        out.append((nproc, require(run, "records_per_sec", path)))
    return sorted(out)


def check_flatness(rates, family, floor, label_hi, failed):
    """Gates the last row's rate against the first row's."""
    (lo_n, lo_r), (hi_n, hi_r) = rates[0], rates[-1]
    ratio = hi_r / lo_r if lo_r > 0 else 0.0
    verdict = "OK" if ratio >= floor else "FAIL"
    print(
        f"[replay] {family} {label_hi}: x{hi_n} sustains {ratio:.2f}x of the "
        f"x{lo_n} rate (floor {floor}x): {verdict}"
    )
    return failed or ratio < floor


def check_replay_sweep(fresh, path, failed):
    """Gate 4: scale-invariance rows and ratios (docs/KERNEL.md §2)."""
    lu = family_rates(fresh["runs"], "LU.B", path)
    pairs = family_rates(fresh["runs"], "PAIRS", path)
    max_rank = 0
    for family, rates in (("LU.B", lu), ("PAIRS", pairs)):
        if not rates:
            print(f"check_bench: {path}: no {family!r} sweep rows", file=sys.stderr)
            sys.exit(2)
        max_rank = max(max_rank, rates[-1][0])
        if rates[-1][0] < SWEEP_MIN_RANKS:
            print(
                f"check_bench: {path}: {family} sweep stops at x{rates[-1][0]} — "
                f"the sweep must include a >= x{SWEEP_MIN_RANKS} row "
                "(pass --max-ranks >= 128 to the fig9 bin)",
                file=sys.stderr,
            )
            sys.exit(2)
    failed = check_flatness(pairs, "PAIRS", PAIRS_FLOOR, "kernel flatness", failed)
    lu_paper = [r for r in lu if r[0] <= 64]
    if len(lu_paper) >= 2:
        failed = check_flatness(lu_paper, "LU.B", LU_PAPER_FLOOR, "paper-size flatness", failed)
    return failed


def check_kprof(path, failed):
    """Gate 5: the self-profile proves the incremental solver ran."""
    doc = load(path)
    runs = doc.get("runs")
    if not runs:
        print(f"check_bench: {path}: missing or empty runs", file=sys.stderr)
        sys.exit(2)
    total_partial = 0
    for run in runs:
        ranks = require(run, "num_ranks", path)
        if "solver" not in run:
            print(f"check_bench: {path}: run x{ranks} missing solver section", file=sys.stderr)
            sys.exit(2)
        solver = run["solver"]
        for key in ("solves", "partial_solves", "constraints_touched", "constraints_skipped"):
            if key not in solver:
                print(
                    f"check_bench: {path}: run x{ranks} solver section missing "
                    f"{key!r} (partial-solve counters renamed or dropped? "
                    "the incremental-kernel gate cannot run without them)",
                    file=sys.stderr,
                )
                sys.exit(2)
        total_partial += solver["partial_solves"]
        touched, skipped = solver["constraints_touched"], solver["constraints_skipped"]
        if ranks >= SWEEP_MIN_RANKS:
            frac = skipped / (touched + skipped) if touched + skipped > 0 else 0.0
            verdict = "OK" if frac >= SKIP_FRACTION_FLOOR else "FAIL"
            print(
                f"[kprof] x{ranks}: partial solves skip {frac:.1%} of constraints "
                f"(floor {SKIP_FRACTION_FLOOR:.0%}): {verdict}"
            )
            if frac < SKIP_FRACTION_FLOOR:
                failed = True
    verdict = "OK" if total_partial > 0 else "FAIL"
    print(f"[kprof] {total_partial} partial solves across the sweep (> 0): {verdict}")
    if total_partial == 0:
        failed = True
    return failed


def check_scale(fresh, path, failed):
    """Gate 6: budget adherence and RSS flatness (DESIGN.md §5i)."""
    runs = sorted(fresh["runs"], key=lambda r: require(r, "store_bytes", path))
    rss_readable = True
    for run in runs:
        label = require(run, "label", path)
        seg = require(run, "segment_peak_bytes", path)
        budget = require(run, "budget_bytes", path)
        verdict = "OK" if seg <= budget else "FAIL"
        print(
            f"[scale] {label}: segment peak {seg / 2**20:.1f} MiB within "
            f"budget {budget / 2**20:.1f} MiB: {verdict}"
        )
        if seg > budget:
            failed = True
        rss = require(run, "peak_rss_bytes", path)
        cap = require(run, "rss_cap_bytes", path)
        if rss == 0:
            rss_readable = False
            print(f"[scale] {label}: RSS gate skipped (emitter could not read /proc)")
            continue
        verdict = "OK" if rss <= cap else "FAIL"
        print(
            f"[scale] {label}: peak RSS {rss / 2**20:.1f} MiB within "
            f"cap {cap / 2**20:.1f} MiB: {verdict}"
        )
        if rss > cap:
            failed = True
    if rss_readable and len(runs) >= 2:
        lo, hi = runs[0], runs[-1]
        lo_rss = lo["peak_rss_bytes"]
        ratio = hi["peak_rss_bytes"] / lo_rss if lo_rss > 0 else 0.0
        growth = hi["store_bytes"] / max(lo["store_bytes"], 1)
        verdict = "OK" if ratio <= RSS_FLAT_CEIL else "FAIL"
        print(
            f"[scale] RSS flatness: x{growth:.0f} store grows RSS {ratio:.2f}x "
            f"(ceiling {RSS_FLAT_CEIL}x): {verdict}"
        )
        if ratio > RSS_FLAT_CEIL:
            failed = True
    return failed


def main():
    argv = sys.argv[1:]
    kprof_path = None
    if "--kprof" in argv:
        i = argv.index("--kprof")
        if i + 1 >= len(argv):
            print(__doc__.strip(), file=sys.stderr)
            sys.exit(2)
        kprof_path = argv[i + 1]
        del argv[i : i + 2]
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    fresh_path, base_path = argv[0], argv[1]
    fresh, base = load(fresh_path), load(base_path)
    sane(fresh, fresh_path)
    sane(base, base_path)

    if fresh["bench"] != base["bench"]:
        print(
            f"check_bench: bench mismatch: fresh {fresh['bench']!r} "
            f"vs baseline {base['bench']!r}",
            file=sys.stderr,
        )
        sys.exit(2)

    failed = False
    fp, bp = fresh["peak_records_per_sec"], base["peak_records_per_sec"]
    ratio = fp / bp
    verdict = "OK" if ratio >= PEAK_FLOOR else "FAIL"
    print(
        f"[{fresh['bench']}] peak {fp:.0f} rec/s vs baseline {bp:.0f} "
        f"({ratio:.2f}x, floor {PEAK_FLOOR}x): {verdict}"
    )
    if ratio < PEAK_FLOOR:
        failed = True

    if fresh["bench"] == "ingest":
        # The acceptance run is the largest input of the sweep. Every
        # key is required: a silent default here once turned the
        # speedup gate into a no-op.
        run = max(fresh["runs"], key=lambda r: require(r, "files", fresh_path))
        label = require(run, "label", fresh_path)
        jobs = require(run, "jobs", fresh_path)
        speedup = require(run, "speedup", fresh_path)
        if jobs >= SPEEDUP_MIN_JOBS:
            verdict = "OK" if speedup >= SPEEDUP_FLOOR else "FAIL"
            print(
                f"[ingest] {label}: speedup {speedup:.2f}x "
                f"with {jobs} jobs (floor {SPEEDUP_FLOOR}x): {verdict}"
            )
            if speedup < SPEEDUP_FLOOR:
                failed = True
        else:
            print(
                f"[ingest] {label}: speedup check skipped "
                f"({jobs} job(s) < {SPEEDUP_MIN_JOBS})"
            )

    if fresh["bench"] == "scale":
        failed = check_scale(fresh, fresh_path, failed)

    if fresh["bench"] == "replay":
        failed = check_replay_sweep(fresh, fresh_path, failed)
    if kprof_path is not None:
        failed = check_kprof(kprof_path, failed)

    if fresh["bench"] == "replay" and "observer_overhead" in fresh:
        o = fresh["observer_overhead"]
        label = o.get("label", "?")
        for key in ("wall_detached", "noop_ratio", "timeres_ratio"):
            if key not in o:
                print(
                    f"check_bench: {fresh_path}: observer_overhead missing "
                    f"{key!r} (renamed in the emitter? update this gate "
                    "alongside it)",
                    file=sys.stderr,
                )
                sys.exit(2)
        wall = o["wall_detached"]
        if wall >= MIN_OVERHEAD_WALL:
            for name, ratio, ceil in (
                ("no-op", o["noop_ratio"], NOOP_CEIL),
                ("time-resolved", o["timeres_ratio"], TIMERES_CEIL),
            ):
                verdict = "OK" if ratio <= ceil else "FAIL"
                print(
                    f"[replay] observer overhead ({label}): {name} "
                    f"{ratio:.3f}x (ceiling {ceil}x): {verdict}"
                )
                if ratio > ceil:
                    failed = True
        else:
            print(
                f"[replay] observer overhead ({label}): skipped — detached "
                f"wall {wall:.3f}s < {MIN_OVERHEAD_WALL}s floor"
            )

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
