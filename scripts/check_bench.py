#!/usr/bin/env python3
"""Benchmark regression gate (docs/BENCHMARKS.md).

Usage: check_bench.py FRESH.json BASELINE.json

Compares a freshly produced BENCH_*.json against the committed
baseline:

  1. fresh peak_records_per_sec must be >= 0.5 x baseline's (a >2x
     throughput regression fails; improvements never fail);
  2. for ingest records only: the largest run's speedup must be >= 2.0
     when that run used >= 4 worker threads (the PR 4 acceptance
     criterion; vacuous on 1- and 2-core machines);
  3. for replay records carrying an observer_overhead section: the
     no-op observer must cost <= 2% wall and the attached time-resolved
     sink <= 10% (docs/OBSERVABILITY.md) — skipped when the detached
     wall is under MIN_OVERHEAD_WALL seconds, where timer noise
     dominates any real ratio;
  4. envelope sanity: same bench name, non-empty runs, finite positive
     peak.

Exit status: 0 pass, 1 regression, 2 usage/parse error.
"""

import json
import math
import sys

PEAK_FLOOR = 0.5
SPEEDUP_FLOOR = 2.0
SPEEDUP_MIN_JOBS = 4
NOOP_CEIL = 1.02
TIMERES_CEIL = 1.10
MIN_OVERHEAD_WALL = 0.03


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def sane(doc, path):
    for key in ("bench", "peak_records_per_sec", "runs"):
        if key not in doc:
            print(f"check_bench: {path}: missing {key!r}", file=sys.stderr)
            sys.exit(2)
    peak = doc["peak_records_per_sec"]
    if not (isinstance(peak, (int, float)) and math.isfinite(peak) and peak > 0):
        print(f"check_bench: {path}: bad peak {peak!r}", file=sys.stderr)
        sys.exit(2)
    if not doc["runs"]:
        print(f"check_bench: {path}: empty runs", file=sys.stderr)
        sys.exit(2)


def require(run, key, path):
    """A missing or renamed run key must fail loudly (exit 2), not
    silently neutralize the gate via a default."""
    if key not in run:
        label = run.get("label", "?")
        print(
            f"check_bench: {path}: run {label!r} missing key {key!r} "
            "(renamed in the emitter? update this gate alongside it)",
            file=sys.stderr,
        )
        sys.exit(2)
    return run[key]


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    fresh_path, base_path = sys.argv[1], sys.argv[2]
    fresh, base = load(fresh_path), load(base_path)
    sane(fresh, fresh_path)
    sane(base, base_path)

    if fresh["bench"] != base["bench"]:
        print(
            f"check_bench: bench mismatch: fresh {fresh['bench']!r} "
            f"vs baseline {base['bench']!r}",
            file=sys.stderr,
        )
        sys.exit(2)

    failed = False
    fp, bp = fresh["peak_records_per_sec"], base["peak_records_per_sec"]
    ratio = fp / bp
    verdict = "OK" if ratio >= PEAK_FLOOR else "FAIL"
    print(
        f"[{fresh['bench']}] peak {fp:.0f} rec/s vs baseline {bp:.0f} "
        f"({ratio:.2f}x, floor {PEAK_FLOOR}x): {verdict}"
    )
    if ratio < PEAK_FLOOR:
        failed = True

    if fresh["bench"] == "ingest":
        # The acceptance run is the largest input of the sweep. Every
        # key is required: a silent default here once turned the
        # speedup gate into a no-op.
        run = max(fresh["runs"], key=lambda r: require(r, "files", fresh_path))
        label = require(run, "label", fresh_path)
        jobs = require(run, "jobs", fresh_path)
        speedup = require(run, "speedup", fresh_path)
        if jobs >= SPEEDUP_MIN_JOBS:
            verdict = "OK" if speedup >= SPEEDUP_FLOOR else "FAIL"
            print(
                f"[ingest] {label}: speedup {speedup:.2f}x "
                f"with {jobs} jobs (floor {SPEEDUP_FLOOR}x): {verdict}"
            )
            if speedup < SPEEDUP_FLOOR:
                failed = True
        else:
            print(
                f"[ingest] {label}: speedup check skipped "
                f"({jobs} job(s) < {SPEEDUP_MIN_JOBS})"
            )

    if fresh["bench"] == "replay" and "observer_overhead" in fresh:
        o = fresh["observer_overhead"]
        label = o.get("label", "?")
        for key in ("wall_detached", "noop_ratio", "timeres_ratio"):
            if key not in o:
                print(
                    f"check_bench: {fresh_path}: observer_overhead missing "
                    f"{key!r} (renamed in the emitter? update this gate "
                    "alongside it)",
                    file=sys.stderr,
                )
                sys.exit(2)
        wall = o["wall_detached"]
        if wall >= MIN_OVERHEAD_WALL:
            for name, ratio, ceil in (
                ("no-op", o["noop_ratio"], NOOP_CEIL),
                ("time-resolved", o["timeres_ratio"], TIMERES_CEIL),
            ):
                verdict = "OK" if ratio <= ceil else "FAIL"
                print(
                    f"[replay] observer overhead ({label}): {name} "
                    f"{ratio:.3f}x (ceiling {ceil}x): {verdict}"
                )
                if ratio > ceil:
                    failed = True
        else:
            print(
                f"[replay] observer overhead ({label}): skipped — detached "
                f"wall {wall:.3f}s < {MIN_OVERHEAD_WALL}s floor"
            )

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
