#!/usr/bin/env bash
# Chaos harness for the TIB2 segmented store (DESIGN.md §5i).
#
# Part 1 — segment corruption closure: a generator-fed multi-rank
# store is damaged with seeded byte flips confined to the segment
# region (the footer index localizes every flip to one rank/segment).
# For every seed, strict replay must fail closed with exit 1 and a
# typed diagnostic naming the damaged segment — never a panic, never a
# silently wrong time — and --degraded replay must exit 3 with a
# completeness ratio strictly below 1.0. The undamaged store must exit
# 0 with ratio 1.0, and a store with a truncated tail must refuse to
# open at all (exit 1 from both modes).
#
# Part 2 — memory-budget smoke at scale: a 128-rank generator-fed
# store far larger than the budget replays to completion under
# --mem-budget, and the self-reported metrics must show the governor's
# segment peak within the budget and the process peak RSS under a
# fixed cap — O(ranks + resident segments), not O(trace).
set -euo pipefail
cd "$(dirname "$0")/.."

REPLAY=${REPLAY:-./target/release/tit-replay}
GEN=${GEN:-./target/release/tit-gen}
[ -x "$REPLAY" ] || REPLAY=./target/debug/tit-replay
[ -x "$GEN" ] || GEN=./target/debug/tit-gen
if [ ! -x "$REPLAY" ] || [ ! -x "$GEN" ]; then
  echo "chaos_store: build tit-cli first (cargo build -p tit-cli)" >&2
  exit 2
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# expect_code WANT CMD... — run CMD, demand the exact exit code and the
# absence of a panic message.
expect_code() {
  local want=$1; shift
  set +e
  "$@" >"$work/out.txt" 2>&1
  local got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "chaos_store: FAIL: expected exit $want, got $got: $*" >&2
    cat "$work/out.txt" >&2
    exit 1
  fi
  if grep -q "panicked" "$work/out.txt"; then
    echo "chaos_store: FAIL: panic in: $*" >&2
    cat "$work/out.txt" >&2
    exit 1
  fi
}

ratio_of() {
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["values"]["degraded.completeness"])' "$1"
}

echo "chaos_store: generating an 8-rank ring store"
"$GEN" --tib2 "$work/ring.tib2" --np 8 --pattern ring --iters 800 --seg-actions 256 \
  >"$work/gen.txt"
grep -q "tib2 store:" "$work/gen.txt"

echo "chaos_store: part 1 — clean store replays exactly"
m=$work/metrics-clean.json
expect_code 0 "$REPLAY" --store "$work/ring.tib2" --np 8 --metrics "$m"
grep "^simulated time:" "$work/out.txt" >"$work/clean-time.txt"
expect_code 0 "$REPLAY" --store "$work/ring.tib2" --np 8 --degraded --metrics "$m"
r=$(ratio_of "$m")
if [ "$r" != "1" ] && [ "$r" != "1.0" ]; then
  echo "chaos_store: FAIL: clean store completeness $r != 1.0" >&2
  exit 1
fi
echo "chaos_store:   clean: strict exit 0, degraded ratio $r"

echo "chaos_store: part 1 — seeded segment flips fail closed or degrade"
for seed in 1 2 3 4 5; do
  cp "$work/ring.tib2" "$work/bad.tib2"
  # A deterministic byte flip confined to [8, footer_start): always a
  # segment header or payload, never the footer or trailer.
  python3 - "$work/bad.tib2" "$seed" <<'EOF'
import struct, sys
path, seed = sys.argv[1], int(sys.argv[2])
with open(path, "r+b") as f:
    f.seek(0, 2); size = f.tell()
    f.seek(size - 24)
    footer_len = struct.unpack("<Q", f.read(8))[0]
    footer_start = size - 24 - footer_len
    # SplitMix64, same constants as the in-tree injector.
    x = (seed + 0x9E3779B97F4A7C15) & (1 << 64) - 1
    z = (x ^ x >> 30) * 0xBF58476D1CE4E5B9 & (1 << 64) - 1
    z = (z ^ z >> 27) * 0x94D049BB133111EB & (1 << 64) - 1
    z ^= z >> 31
    off = 8 + z % (footer_start - 8)
    f.seek(off); b = f.read(1)[0]
    f.seek(off); f.write(bytes([b ^ 0x10]))
    print(f"flipped bit at offset {off} of {size}")
EOF
  expect_code 1 "$REPLAY" --store "$work/bad.tib2" --np 8
  grep -q "segment damaged" "$work/out.txt" || {
    echo "chaos_store: FAIL: seed $seed: no typed segment diagnostic" >&2
    cat "$work/out.txt" >&2
    exit 1
  }
  m=$work/metrics-flip-$seed.json
  expect_code 3 "$REPLAY" --store "$work/bad.tib2" --np 8 --degraded --metrics "$m"
  r=$(ratio_of "$m")
  python3 -c "import sys; r=float(sys.argv[1]); sys.exit(0 if 0.0 <= r < 1.0 else 1)" "$r" || {
    echo "chaos_store: FAIL: seed $seed: completeness $r not in [0,1)" >&2
    exit 1
  }
  echo "chaos_store:   seed $seed: strict exit 1 (typed), degraded exit 3, ratio $r"
done

echo "chaos_store: part 1 — a truncated tail refuses to open"
size=$(wc -c <"$work/ring.tib2")
head -c $((size - 12)) "$work/ring.tib2" >"$work/cut.tib2"
expect_code 1 "$REPLAY" --store "$work/cut.tib2" --np 8
expect_code 1 "$REPLAY" --store "$work/cut.tib2" --np 8 --degraded
echo "chaos_store:   truncated: both modes fail closed (exit 1)"

echo "chaos_store: part 2 — 128-rank replay under --mem-budget"
"$GEN" --tib2 "$work/big.tib2" --np 128 --pattern ring --iters 4000 \
  --seg-actions 1024 >"$work/gen128.txt"
m=$work/metrics-budget.json
expect_code 0 "$REPLAY" --store "$work/big.tib2" --np 128 --mem-budget 8M --metrics "$m"
grep -q "^peak rss:" "$work/out.txt"
python3 - "$m" "$work/big.tib2" <<'EOF'
import json, os, sys
v = json.load(open(sys.argv[1]))["values"]
store = os.path.getsize(sys.argv[2])
budget, seg_peak = v["mem.budget"], v["mem.segment_peak"]
rss = v.get("mem.peak_rss")
assert budget == 8 << 20, f"budget {budget} != 8 MiB"
assert seg_peak <= budget, f"segment peak {seg_peak} over budget {budget}"
assert store > 2 * budget, f"store {store} not larger than budget — smoke is vacuous"
# The whole-process cap: budget + generous fixed overhead, far below
# the store size, so memory followed the budget and not the trace.
cap = budget + (192 << 20)
if rss is not None:
    assert rss <= cap, f"peak RSS {rss} over cap {cap}"
    print(f"chaos_store:   store {store >> 20} MiB, segment peak "
          f"{seg_peak / 2**20:.1f} MiB, peak RSS {rss / 2**20:.1f} MiB <= cap {cap >> 20} MiB")
else:
    print("chaos_store:   /proc unreadable — RSS assertion skipped")
EOF

echo "chaos_store: OK"
