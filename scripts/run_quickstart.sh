#!/usr/bin/env bash
# Runs the README Quickstart exactly as written: every `$ `-prefixed
# line of the "## Quickstart" section is extracted and executed from
# the repo root, so the walkthrough cannot rot. Quickstart commands
# must therefore each fit on a single line.
set -euo pipefail
cd "$(dirname "$0")/.."

readme=README.md
mapfile -t cmds < <(awk '
  /^## Quickstart/ { in_qs = 1; next }
  /^## / && in_qs  { exit }
  in_qs && /^\$ /  { print substr($0, 3) }
' "$readme")

if [ "${#cmds[@]}" -eq 0 ]; then
  echo "run_quickstart: no \$-prefixed commands found under '## Quickstart' in $readme" >&2
  exit 2
fi

for cmd in "${cmds[@]}"; do
  echo "+ $cmd"
  bash -c "$cmd"
done
echo "run_quickstart: ${#cmds[@]} command(s) OK"
