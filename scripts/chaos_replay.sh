#!/usr/bin/env bash
# Chaos harness for the robustness layer (DESIGN.md §5f).
#
# Part 1 — degraded mode: the ring4 example bundle is damaged with one
# instance of every fault class the extract-stage injector models
# (truncated tail, bit-flipped action, dropped rank, short transfer)
# and replayed with --degraded. Each run must exit 3 (partial success)
# with a completeness ratio strictly below 1.0 and must not panic; the
# undamaged bundle must exit 0 with a ratio of exactly 1.0.
#
# Part 2 — kill and resume: a replay is paused deterministically right
# after its first checkpoint (--stop-after-checkpoints, the designed
# crash hook: the process exits as if killed at a checkpoint boundary),
# then resumed from the TICK1 file. The resumed run must land on the
# byte-identical "simulated time" line, and the paused + resumed timed
# traces must stitch into the uninterrupted run's CSV byte for byte.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-./target/release/tit-replay}
[ -x "$BIN" ] || BIN=./target/debug/tit-replay
if [ ! -x "$BIN" ]; then
  echo "chaos_replay: build tit-cli first (cargo build -p tit-cli)" >&2
  exit 2
fi

src=examples/traces/ring4
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# expect_code WANT CMD... — run CMD, demand the exact exit code and the
# absence of a panic message.
expect_code() {
  local want=$1; shift
  set +e
  "$@" >"$work/out.txt" 2>&1
  local got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "chaos_replay: FAIL: expected exit $want, got $got: $*" >&2
    cat "$work/out.txt" >&2
    exit 1
  fi
  if grep -q "panicked" "$work/out.txt"; then
    echo "chaos_replay: FAIL: panic in: $*" >&2
    cat "$work/out.txt" >&2
    exit 1
  fi
}

ratio_of() {
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["values"]["degraded.completeness"])' "$1"
}

# damage CLASS — copy ring4 and apply one fault class to it.
damage() {
  rm -rf "$work/damaged"
  cp -r "$src" "$work/damaged"
  local f size
  case $1 in
    truncated)      # file lost its tail, cut mid-line
      f=$work/damaged/SG_process1.trace
      size=$(wc -c <"$f")
      head -c $((size / 2)) "$f" >"$f.cut" && mv "$f.cut" "$f" ;;
    bitflip)        # one bit flipped inside an action keyword
      sed -i '0,/recv/{s/recv/secv/}' "$work/damaged/SG_process2.trace" ;;
    dropped-rank)   # a rank's file deleted outright
      rm "$work/damaged/SG_process3.trace" ;;
    short-transfer) # a copy that stopped early
      f=$work/damaged/SG_process0.trace
      size=$(wc -c <"$f")
      head -c $((size * 3 / 4)) "$f" >"$f.cut" && mv "$f.cut" "$f" ;;
    *) echo "chaos_replay: unknown fault class $1" >&2; exit 2 ;;
  esac
}

echo "chaos_replay: part 1 — degraded replay under every fault class"
for class in truncated bitflip dropped-rank short-transfer; do
  damage "$class"
  m=$work/metrics-$class.json
  expect_code 3 "$BIN" --trace-dir "$work/damaged" --np 4 --degraded --metrics "$m"
  r=$(ratio_of "$m")
  python3 -c "import sys; r=float(sys.argv[1]); sys.exit(0 if 0.0 <= r < 1.0 else 1)" "$r" || {
    echo "chaos_replay: FAIL: $class completeness $r not in [0,1)" >&2
    exit 1
  }
  echo "chaos_replay:   $class: exit 3, completeness $r"
done

m=$work/metrics-clean.json
expect_code 0 "$BIN" --trace-dir "$src" --np 4 --degraded --metrics "$m"
r=$(ratio_of "$m")
if [ "$r" != "1" ] && [ "$r" != "1.0" ]; then
  echo "chaos_replay: FAIL: undamaged bundle completeness $r != 1.0" >&2
  exit 1
fi
echo "chaos_replay:   clean: exit 0, completeness $r"

echo "chaos_replay: part 2 — kill at a checkpoint boundary, resume, compare"
"$BIN" --trace-dir "$src" --np 4 --timed-trace "$work/ref.csv" >"$work/ref.out"
ck=$work/ck.tick
expect_code 3 "$BIN" --trace-dir "$src" --np 4 \
  --checkpoint "$ck" --checkpoint-every 5 --stop-after-checkpoints 1 \
  --timed-trace "$work/part-a.csv"
grep -q "paused:" "$work/out.txt"
[ -f "$ck" ] || { echo "chaos_replay: FAIL: no checkpoint written" >&2; exit 1; }
expect_code 0 "$BIN" --trace-dir "$src" --np 4 \
  --resume "$ck" --timed-trace "$work/part-b.csv" --metrics "$work/metrics-resume.json"
cp "$work/out.txt" "$work/resume.out"

# Byte-for-byte: same final "simulated time" line, and the stitched
# partial CSVs reproduce the uninterrupted timed trace exactly.
diff <(grep "^simulated time:" "$work/ref.out") \
     <(grep "^simulated time:" "$work/resume.out")
{ cat "$work/part-a.csv"; tail -n +2 "$work/part-b.csv"; } >"$work/stitched.csv"
diff "$work/stitched.csv" "$work/ref.csv"
echo "chaos_replay:   resume matches the uninterrupted run byte-for-byte"

# The robustness counters land in the metrics files.
python3 scripts/check_telemetry.py --robustness \
  "$work/metrics-dropped-rank.json" "$work/metrics-resume.json"
echo "chaos_replay: OK"
