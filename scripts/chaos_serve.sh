#!/usr/bin/env bash
# Chaos harness for the replay daemon (docs/SERVING.md).
#
# Part 1 — mixed burst: a deliberately undersized daemon (one worker,
# a two-slot queue, a slow-job delay) is hit with a pipelined burst of
# valid replays, malformed lines, an oversized line and garbage. Every
# line must get a typed response — `ok`, `overloaded`, or `error` —
# with at least one shed and at least one served; the daemon must stay
# alive (a ping afterwards succeeds), drain cleanly on stdin EOF with
# exit 0, and flush metrics whose serve.* counters balance
# (check_telemetry.py --serve).
#
# Part 2 — SIGKILL and restart: a daemon with in-flight work is killed
# with SIGKILL (no handler can run — the crash-safety claim is that
# outputs are atomic-rename-only, so nothing can be half-written). The
# metrics path must afterwards be either absent or valid JSON, with no
# orphaned `.tmp*` siblings; a fresh daemon on the same metrics path
# must start, serve, and drain normally.
#
# Both parts also run with `--access-log` (docs/OBSERVABILITY.md): every
# line of the log must parse, and every admitted request — served, shed,
# preempted, or in flight at the SIGKILL — must appear exactly once with
# a terminal status. The killed request surfaces after restart as a
# synthesized `lost` record with `"restart":true`.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-./target/release/tit-serve}
[ -x "$BIN" ] || BIN=./target/debug/tit-serve
if [ ! -x "$BIN" ]; then
  echo "chaos_serve: build tit-serve first (cargo build -p tit-serve)" >&2
  exit 2
fi

src=examples/traces/ring4
work=$(mktemp -d)
trap 'rm -rf "$work"; kill $(jobs -p) 2>/dev/null || true' EXIT

# start_daemon EXTRA_ARGS... — launch the daemon with its stdin on a
# pipe (close the pipe to drain it), wait for the listening line, and
# set $port / $pid / $stdin_fd.
start_daemon() {
  rm -f "$work/stdin"; mkfifo "$work/stdin"
  "$BIN" --drain-on-stdin "$@" <"$work/stdin" >"$work/daemon.out" 2>&1 &
  pid=$!
  exec {stdin_fd}>"$work/stdin"
  for _ in $(seq 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$work/daemon.out")
    [ -n "$port" ] && return 0
    sleep 0.1
  done
  echo "chaos_serve: FAIL: daemon did not report a port" >&2
  cat "$work/daemon.out" >&2
  exit 1
}

# check_access_log PATH MIN_SHED MIN_LOST — every line parses; every
# admit has exactly one terminal record; a done without an admit is
# only legal for drain-time sheds.
check_access_log() {
  python3 - "$1" "$2" "$3" <<'EOF'
import json, sys
path, min_shed, min_lost = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
admits, dones, preempts = {}, {}, 0
with open(path) as f:
    lines = f.read().splitlines()
for i, line in enumerate(lines):
    try:
        rec = json.loads(line)
    except ValueError:
        sys.exit(f"chaos_serve: FAIL: access log line {i} unparseable: {line!r}")
    ev, seq = rec["event"], rec["seq"]
    if ev == "admit":
        assert seq not in admits, f"duplicate admit seq {seq}"
        admits[seq] = rec["id"]
    elif ev == "done":
        assert seq not in dones, f"second terminal record for seq {seq}: {rec}"
        assert rec["status"] in ("ok", "partial", "error", "shed", "lost"), rec
        dones[seq] = rec
    elif ev == "preempt":
        preempts += 1
    else:
        sys.exit(f"chaos_serve: FAIL: unknown access log event {ev!r}")
for seq, rid in admits.items():
    assert seq in dones, f"admitted seq {seq} ({rid!r}) has no terminal record"
for seq, rec in dones.items():
    if seq not in admits:
        assert rec["status"] == "shed", f"terminal record without admit: {rec}"
    if rec["status"] != "lost":
        spans = [rec[k] for k in ("queue_s", "load_s", "replay_s", "respond_s")]
        assert all(s >= 0 for s in spans), f"negative span: {rec}"
shed = sum(1 for r in dones.values() if r["status"] == "shed")
lost = sum(1 for r in dones.values() if r["status"] == "lost")
assert shed >= min_shed, f"expected >= {min_shed} shed record(s), saw {shed}"
assert lost >= min_lost, f"expected >= {min_lost} lost record(s), saw {lost}"
print(f"chaos_serve:   access log: {len(admits)} admitted, {len(dones)} terminal, "
      f"{shed} shed, {lost} lost, {preempts} preempt hop(s) — exactly once")
EOF
}

echo "chaos_serve: part 1 — mixed burst against an undersized daemon"
start_daemon --workers 1 --queue-cap 2 --job-delay-ms 100 \
  --metrics "$work/m1.json" --access-log "$work/al1.ndjson"

python3 - "$port" "$src" <<'EOF'
import json, socket, sys

port, trace = int(sys.argv[1]), sys.argv[2]
valid = json.dumps({"op": "replay", "id": "v", "trace_dir": trace, "np": 4})
burst = []
for i in range(8):
    burst.append(valid.replace('"v"', f'"v{i}"'))
burst.append("this is not json")
burst.append(json.dumps({"op": "replay", "id": "bad-np", "trace_dir": trace, "np": 0}))
burst.append('{"pad":"' + "x" * (2 << 20) + '"}')
burst.append(json.dumps({"op": "replay", "id": "nodir", "trace_dir": trace + "-missing", "np": 4}))

s = socket.create_connection(("127.0.0.1", port), timeout=60)
f = s.makefile("rw", encoding="utf-8", newline="\n")
for line in burst:
    f.write(line + "\n")
f.flush()

statuses = []
for _ in burst:
    resp = f.readline()
    assert resp.endswith("\n"), f"connection died mid-burst: {resp!r}"
    statuses.append(json.loads(resp)["status"])

counts = {st: statuses.count(st) for st in set(statuses)}
print(f"chaos_serve:   burst statuses: {counts}")
assert set(counts) <= {"ok", "overloaded", "error"}, counts
assert counts.get("ok", 0) >= 1, "no request was served"
assert counts.get("overloaded", 0) >= 1, "the burst never shed"
assert counts.get("error", 0) >= 3, "malformed inputs must get typed errors"

# The daemon survived the burst: a fresh connection still answers.
s2 = socket.create_connection(("127.0.0.1", port), timeout=10)
f2 = s2.makefile("rw", encoding="utf-8", newline="\n")
f2.write('{"op":"ping"}\n'); f2.flush()
assert json.loads(f2.readline())["status"] == "ok"

# The live metrics op returns a titobs-metrics-v1 snapshot mid-flight.
f2.write('{"op":"metrics"}\n'); f2.flush()
m = json.loads(f2.readline())
assert m["status"] == "ok" and m["op"] == "metrics", m
snap = m["metrics"]
assert snap.get("schema") == "titobs-metrics-v1", snap
reqs = snap.get("counters", {}).get("serve.requests", 0)
assert reqs >= 1, snap
print(f"chaos_serve:   live metrics op: serve.requests = {reqs}")
EOF

exec {stdin_fd}>&-   # stdin EOF => graceful drain
wait "$pid" || { echo "chaos_serve: FAIL: daemon exited non-zero after drain" >&2; exit 1; }
grep -q "panicked" "$work/daemon.out" && { echo "chaos_serve: FAIL: daemon panicked" >&2; exit 1; }
python3 scripts/check_telemetry.py --serve "$work/m1.json"
check_access_log "$work/al1.ndjson" 1 0

echo "chaos_serve: part 2 — SIGKILL with work in flight, then restart"
start_daemon --workers 1 --job-delay-ms 2000 \
  --metrics "$work/m2.json" --access-log "$work/al2.ndjson"
python3 - "$port" "$src" <<'EOF'
import json, socket, sys
port, trace = int(sys.argv[1]), sys.argv[2]
s = socket.create_connection(("127.0.0.1", port), timeout=10)
req = json.dumps({"op": "replay", "id": "doomed", "trace_dir": trace, "np": 4})
s.sendall((req + "\n").encode())   # fire and do not wait: the job runs ~2 s
EOF
sleep 0.5                          # let the worker pick the job up
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
exec {stdin_fd}>&- || true

if ls "$work"/m2.json.tmp* >/dev/null 2>&1; then
  echo "chaos_serve: FAIL: orphaned tmp file after SIGKILL" >&2
  exit 1
fi
if [ -f "$work/m2.json" ]; then
  python3 -m json.tool "$work/m2.json" >/dev/null \
    || { echo "chaos_serve: FAIL: corrupt metrics after SIGKILL" >&2; exit 1; }
fi
echo "chaos_serve:   no partial or corrupt files left behind"

# The restarted daemon scans the access log and synthesizes a `lost`
# terminal record for the request the SIGKILL orphaned.
start_daemon --workers 1 --metrics "$work/m2.json" --access-log "$work/al2.ndjson"
grep -q '"status":"lost"' "$work/al2.ndjson" \
  || { echo "chaos_serve: FAIL: no lost record synthesized on restart" >&2; exit 1; }
grep -q '"restart":true' "$work/al2.ndjson" \
  || { echo "chaos_serve: FAIL: lost record not marked restart:true" >&2; exit 1; }
python3 - "$port" "$src" <<'EOF'
import json, socket, sys
port, trace = int(sys.argv[1]), sys.argv[2]
s = socket.create_connection(("127.0.0.1", port), timeout=60)
f = s.makefile("rw", encoding="utf-8", newline="\n")
req = json.dumps({"op": "replay", "id": "reborn", "trace_dir": trace, "np": 4})
f.write(req + "\n"); f.flush()
resp = json.loads(f.readline())
assert resp["status"] == "ok", resp
print(f"chaos_serve:   restarted daemon served: simulated {resp['simulated_time']} s")
EOF
exec {stdin_fd}>&-
wait "$pid" || { echo "chaos_serve: FAIL: restarted daemon exited non-zero" >&2; exit 1; }
if ls "$work"/m2.json.tmp* >/dev/null 2>&1; then
  echo "chaos_serve: FAIL: orphaned tmp file after clean drain" >&2
  exit 1
fi
python3 scripts/check_telemetry.py --serve "$work/m2.json"
check_access_log "$work/al2.ndjson" 0 1
echo "chaos_serve: OK"
