#!/usr/bin/env bash
# Chaos harness for the replay daemon (docs/SERVING.md).
#
# Part 1 — mixed burst: a deliberately undersized daemon (one worker,
# a two-slot queue, a slow-job delay) is hit with a pipelined burst of
# valid replays, malformed lines, an oversized line and garbage. Every
# line must get a typed response — `ok`, `overloaded`, or `error` —
# with at least one shed and at least one served; the daemon must stay
# alive (a ping afterwards succeeds), drain cleanly on stdin EOF with
# exit 0, and flush metrics whose serve.* counters balance
# (check_telemetry.py --serve).
#
# Part 2 — SIGKILL and restart: a daemon with in-flight work is killed
# with SIGKILL (no handler can run — the crash-safety claim is that
# outputs are atomic-rename-only, so nothing can be half-written). The
# metrics path must afterwards be either absent or valid JSON, with no
# orphaned `.tmp*` siblings; a fresh daemon on the same metrics path
# must start, serve, and drain normally.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-./target/release/tit-serve}
[ -x "$BIN" ] || BIN=./target/debug/tit-serve
if [ ! -x "$BIN" ]; then
  echo "chaos_serve: build tit-serve first (cargo build -p tit-serve)" >&2
  exit 2
fi

src=examples/traces/ring4
work=$(mktemp -d)
trap 'rm -rf "$work"; kill $(jobs -p) 2>/dev/null || true' EXIT

# start_daemon EXTRA_ARGS... — launch the daemon with its stdin on a
# pipe (close the pipe to drain it), wait for the listening line, and
# set $port / $pid / $stdin_fd.
start_daemon() {
  rm -f "$work/stdin"; mkfifo "$work/stdin"
  "$BIN" --drain-on-stdin "$@" <"$work/stdin" >"$work/daemon.out" 2>&1 &
  pid=$!
  exec {stdin_fd}>"$work/stdin"
  for _ in $(seq 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$work/daemon.out")
    [ -n "$port" ] && return 0
    sleep 0.1
  done
  echo "chaos_serve: FAIL: daemon did not report a port" >&2
  cat "$work/daemon.out" >&2
  exit 1
}

echo "chaos_serve: part 1 — mixed burst against an undersized daemon"
start_daemon --workers 1 --queue-cap 2 --job-delay-ms 100 --metrics "$work/m1.json"

python3 - "$port" "$src" <<'EOF'
import json, socket, sys

port, trace = int(sys.argv[1]), sys.argv[2]
valid = json.dumps({"op": "replay", "id": "v", "trace_dir": trace, "np": 4})
burst = []
for i in range(8):
    burst.append(valid.replace('"v"', f'"v{i}"'))
burst.append("this is not json")
burst.append(json.dumps({"op": "replay", "id": "bad-np", "trace_dir": trace, "np": 0}))
burst.append('{"pad":"' + "x" * (2 << 20) + '"}')
burst.append(json.dumps({"op": "replay", "id": "nodir", "trace_dir": trace + "-missing", "np": 4}))

s = socket.create_connection(("127.0.0.1", port), timeout=60)
f = s.makefile("rw", encoding="utf-8", newline="\n")
for line in burst:
    f.write(line + "\n")
f.flush()

statuses = []
for _ in burst:
    resp = f.readline()
    assert resp.endswith("\n"), f"connection died mid-burst: {resp!r}"
    statuses.append(json.loads(resp)["status"])

counts = {st: statuses.count(st) for st in set(statuses)}
print(f"chaos_serve:   burst statuses: {counts}")
assert set(counts) <= {"ok", "overloaded", "error"}, counts
assert counts.get("ok", 0) >= 1, "no request was served"
assert counts.get("overloaded", 0) >= 1, "the burst never shed"
assert counts.get("error", 0) >= 3, "malformed inputs must get typed errors"

# The daemon survived the burst: a fresh connection still answers.
s2 = socket.create_connection(("127.0.0.1", port), timeout=10)
f2 = s2.makefile("rw", encoding="utf-8", newline="\n")
f2.write('{"op":"ping"}\n'); f2.flush()
assert json.loads(f2.readline())["status"] == "ok"
EOF

exec {stdin_fd}>&-   # stdin EOF => graceful drain
wait "$pid" || { echo "chaos_serve: FAIL: daemon exited non-zero after drain" >&2; exit 1; }
grep -q "panicked" "$work/daemon.out" && { echo "chaos_serve: FAIL: daemon panicked" >&2; exit 1; }
python3 scripts/check_telemetry.py --serve "$work/m1.json"

echo "chaos_serve: part 2 — SIGKILL with work in flight, then restart"
start_daemon --workers 1 --job-delay-ms 2000 --metrics "$work/m2.json"
python3 - "$port" "$src" <<'EOF'
import json, socket, sys
port, trace = int(sys.argv[1]), sys.argv[2]
s = socket.create_connection(("127.0.0.1", port), timeout=10)
req = json.dumps({"op": "replay", "id": "doomed", "trace_dir": trace, "np": 4})
s.sendall((req + "\n").encode())   # fire and do not wait: the job runs ~2 s
EOF
sleep 0.5                          # let the worker pick the job up
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
exec {stdin_fd}>&- || true

if ls "$work"/m2.json.tmp* >/dev/null 2>&1; then
  echo "chaos_serve: FAIL: orphaned tmp file after SIGKILL" >&2
  exit 1
fi
if [ -f "$work/m2.json" ]; then
  python3 -m json.tool "$work/m2.json" >/dev/null \
    || { echo "chaos_serve: FAIL: corrupt metrics after SIGKILL" >&2; exit 1; }
fi
echo "chaos_serve:   no partial or corrupt files left behind"

start_daemon --workers 1 --metrics "$work/m2.json"
python3 - "$port" "$src" <<'EOF'
import json, socket, sys
port, trace = int(sys.argv[1]), sys.argv[2]
s = socket.create_connection(("127.0.0.1", port), timeout=60)
f = s.makefile("rw", encoding="utf-8", newline="\n")
req = json.dumps({"op": "replay", "id": "reborn", "trace_dir": trace, "np": 4})
f.write(req + "\n"); f.flush()
resp = json.loads(f.readline())
assert resp["status"] == "ok", resp
print(f"chaos_serve:   restarted daemon served: simulated {resp['simulated_time']} s")
EOF
exec {stdin_fd}>&-
wait "$pid" || { echo "chaos_serve: FAIL: restarted daemon exited non-zero" >&2; exit 1; }
if ls "$work"/m2.json.tmp* >/dev/null 2>&1; then
  echo "chaos_serve: FAIL: orphaned tmp file after clean drain" >&2
  exit 1
fi
python3 scripts/check_telemetry.py --serve "$work/m2.json"
echo "chaos_serve: OK"
