#!/usr/bin/env python3
"""Validate a tit-analyze JSON report (stdlib only).

Usage: check_analysis.py REPORT.json [--pattern NAME] [--simulated SECS]

Checks that

  * the report parses and declares schema tit-analyze-v1;
  * the graph counts are coherent (>= one node per process, no
    negative tallies);
  * the makespan bounds are finite with 0 <= lower <= upper, and the
    critical-path length equals the lower bound;
  * every rank row is present with a non-negative slack;
  * the structure block carries a known pattern name and, when a
    communication matrix is included, it is square with one row per
    process.

With --pattern NAME the classified pattern must match NAME exactly
(the CI pins the bundled ring and a generated stencil). With
--simulated SECS the bounds must sandwich that replayed makespan:
lower <= SECS <= upper — the cross-tool form of the oracle the test
suite enforces in-process.

Exits 0 when all pass, 1 with a message otherwise, 2 on usage errors.
"""

import json
import math
import sys

PATTERNS = {
    "compute_only",
    "ring",
    "stencil",
    "allreduce_dominated",
    "master_worker",
    "irregular",
}
# Relative slop for float drift between the analyzer and the engine.
EPS = 1e-9


def fail(msg):
    print(f"check_analysis: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def need(obj, key, where):
    if not isinstance(obj, dict) or key not in obj:
        fail(f"{where}: missing key {key!r}")
    return obj[key]


def finite(v, where):
    if not isinstance(v, (int, float)) or not math.isfinite(v):
        fail(f"{where}: expected a finite number, got {v!r}")
    return float(v)


def main():
    args = sys.argv[1:]
    expect_pattern = None
    simulated = None
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--pattern":
            i += 1
            expect_pattern = args[i] if i < len(args) else sys.exit(2)
        elif args[i] == "--simulated":
            i += 1
            try:
                simulated = float(args[i])
            except (IndexError, ValueError):
                print(__doc__.strip(), file=sys.stderr)
                sys.exit(2)
        else:
            paths.append(args[i])
        i += 1
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    path = paths[0]

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read {path}: {e}")

    if need(doc, "schema", path) != "tit-analyze-v1":
        fail(f"{path}: unexpected schema {doc['schema']!r}")
    np = need(doc, "processes", path)
    if not isinstance(np, int) or np < 1:
        fail(f"{path}: bad process count {np!r}")

    graph = need(doc, "graph", path)
    nodes = need(graph, "nodes", "graph")
    edges = need(graph, "edges", "graph")
    if nodes < np:
        fail(f"graph: {nodes} nodes for {np} processes (need >= one each)")
    if edges < 0 or need(graph, "flows", "graph") < 0:
        fail("graph: negative tallies")

    bounds = need(doc, "bounds", path)
    lower = finite(need(bounds, "lower_s", "bounds"), "bounds.lower_s")
    upper = finite(need(bounds, "upper_s", "bounds"), "bounds.upper_s")
    if not 0 <= lower <= upper:
        fail(f"bounds: want 0 <= lower <= upper, got [{lower}, {upper}]")

    cp = need(doc, "critical_path", path)
    length = finite(need(cp, "length_s", "critical_path"), "critical_path.length_s")
    if abs(length - lower) > EPS * max(1.0, lower):
        fail(f"critical path length {length} != lower bound {lower}")
    for dom in need(cp, "dominators", "critical_path"):
        need(dom, "rank", "dominator")
        need(dom, "action", "dominator")
        if finite(need(dom, "seconds", "dominator"), "dominator.seconds") < 0:
            fail("dominator with negative seconds")

    ranks = need(doc, "ranks", path)
    if len(ranks) != np:
        fail(f"ranks: {len(ranks)} rows for {np} processes")
    for row in ranks:
        if finite(need(row, "slack_s", "rank"), "rank.slack_s") < 0:
            fail(f"rank {row.get('rank')}: negative slack")

    structure = need(doc, "structure", path)
    pattern = need(structure, "pattern", "structure")
    if pattern not in PATTERNS:
        fail(f"structure: unknown pattern {pattern!r}")
    if expect_pattern is not None and pattern != expect_pattern:
        fail(f"structure: classified {pattern!r}, expected {expect_pattern!r}")
    matrix = structure.get("matrix")
    if matrix is not None:
        if len(matrix) != np or any(len(row) != np for row in matrix):
            fail(f"structure: matrix is not {np}x{np}")

    if simulated is not None:
        slop = EPS * max(1.0, abs(simulated))
        if not (lower <= simulated + slop and simulated <= upper + slop):
            fail(
                f"bounds do not sandwich the replay: "
                f"{lower} <= {simulated} <= {upper} is false"
            )

    print(
        f"check_analysis: OK: {path}: {np} processes, pattern {pattern}, "
        f"bounds [{lower:.6e}, {upper:.6e}]"
    )


if __name__ == "__main__":
    main()
