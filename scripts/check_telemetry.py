#!/usr/bin/env python3
"""Validate tit-replay observability outputs (stdlib only).

Usage: check_telemetry.py TIMELINE.json PROFILE.json METRICS.json
       check_telemetry.py --robustness DEGRADED_METRICS.json RESUME_METRICS.json
       check_telemetry.py --serve SERVE_METRICS.json
       check_telemetry.py --timeres TIMERES.json
       check_telemetry.py --kprof KPROF.json

Checks that
  * the timeline parses as Chrome trace-event JSON, its complete events
    ("ph":"X") are monotone in end time (ts+dur) and carry sane fields;
  * the profile parses, declares schema titobs-profile-v1, and every
    rank's per-tag times/counts sum to the rank totals;
  * the metrics file parses, declares schema titobs-metrics-v1 and
    contains the replay counters.

With --serve, instead checks a drained tit-serve metrics flush
(docs/SERVING.md): schema titobs-metrics-v1, serve.requests >= 1, the
terminal-outcome counters summing exactly to serve.admitted (every
admitted request resolves exactly once — ok, partial or error — no
matter how often it was preempted and requeued), and a drained queue
(serve.queue_depth == 0).

With --timeres, checks a tit-replay --time-resolved report
(docs/OBSERVABILITY.md): schema tit-timeres-v1, no unknown top-level
sections, windows in time order with balanced per-window op counts,
derived metrics in range, and conservation — the per-window totals
summed over the run must equal the whole-run per-rank totals.

With --kprof, checks a kernel self-profiling report: schema
tit-kprof-v1 (or a tit-kprof-sweep-v1 envelope of them, as
KPROF_replay.json), no unknown top-level sections, engine/solver
counter sanity (pops never exceed pushes, ops completed on a non-empty
replay) and finite derived ratios. The wall section is optional — the
deterministic core that CI byte-diffs must not carry it.

With --robustness, instead checks the DESIGN.md §5f counters: the
degraded metrics must carry degraded.ranks_stubbed /
degraded.actions_trimmed, a degraded.completeness value in [0, 1], and
at least one per-rank degradation note; the resume metrics must carry
checkpoint.writes >= 1 and checkpoint.resume == 1.

Exits 0 when all pass, 1 with a message otherwise.
"""

import json
import math
import sys


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_timeline(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    xs = [e for e in events if e.get("ph") == "X"]
    if not xs:
        fail(f"{path}: no complete ('X') events")
    last_end = float("-inf")
    for e in xs:
        for key in ("name", "ts", "dur", "tid"):
            if key not in e:
                fail(f"{path}: X event missing {key}: {e}")
        if e["dur"] < 0:
            fail(f"{path}: negative duration: {e}")
        end = e["ts"] + e["dur"]
        # ts and dur are rounded to 3 decimals (nanoseconds); two
        # rounded ends can disagree by up to 2e-3 us without violating
        # the engine's completion-order contract.
        if end < last_end - 2e-3:
            fail(f"{path}: events not in completion order at {e}")
        last_end = max(last_end, end)
    other = doc.get("otherData", {})
    if "simulated_time_s" not in other:
        fail(f"{path}: otherData.simulated_time_s missing")
    print(f"check_telemetry: {path}: {len(xs)} events, "
          f"simulated {other['simulated_time_s']} s")
    return xs


def check_profile(path, expect_ops=None):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "titobs-profile-v1":
        fail(f"{path}: bad schema {doc.get('schema')!r}")
    ranks = doc.get("ranks")
    if not isinstance(ranks, list) or len(ranks) != doc.get("num_ranks"):
        fail(f"{path}: ranks/num_ranks mismatch")
    total_ops = 0
    for r in ranks:
        tag_time = sum(t["time"] for t in r["tags"])
        tag_count = sum(t["count"] for t in r["tags"])
        busy = r["compute_time"] + r["comm_time"]
        if abs(tag_time - busy) > 1e-9 * max(busy, 1.0):
            fail(f"{path}: rank {r['rank']}: tag times {tag_time} != busy {busy}")
        if tag_count != r["compute_ops"] + r["comm_ops"]:
            fail(f"{path}: rank {r['rank']}: tag counts != op counts")
        for t in r["tags"]:
            if sum(t["hist"]) != t["count"]:
                fail(f"{path}: rank {r['rank']} tag {t['tag']}: histogram "
                     f"mass {sum(t['hist'])} != count {t['count']}")
        total_ops += tag_count
    if total_ops != doc.get("total_ops"):
        fail(f"{path}: total_ops {doc.get('total_ops')} != sum {total_ops}")
    if expect_ops is not None and total_ops != expect_ops:
        fail(f"{path}: total_ops {total_ops} != timeline events {expect_ops}")
    print(f"check_telemetry: {path}: {len(ranks)} ranks, {total_ops} ops")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "titobs-metrics-v1":
        fail(f"{path}: bad schema {doc.get('schema')!r}")
    counters = doc.get("counters", {})
    values = doc.get("values", {})
    for key in ("replay.ops", "replay.actions"):
        if key not in counters:
            fail(f"{path}: counter {key} missing")
    if "replay.simulated_time" not in values:
        fail(f"{path}: value replay.simulated_time missing")
    if "wall_timers" in doc:
        fail(f"{path}: deterministic metrics must not embed wall timers")
    print(f"check_telemetry: {path}: {len(counters)} counters, "
          f"{len(values)} values")


def load_v1(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "titobs-metrics-v1":
        fail(f"{path}: bad schema {doc.get('schema')!r}")
    if "wall_timers" in doc:
        fail(f"{path}: deterministic metrics must not embed wall timers")
    return doc


def check_robustness(degraded_path, resume_path):
    doc = load_v1(degraded_path)
    counters, values = doc.get("counters", {}), doc.get("values", {})
    for key in ("degraded.ranks_stubbed", "degraded.actions_trimmed"):
        if key not in counters:
            fail(f"{degraded_path}: counter {key} missing")
    ratio = values.get("degraded.completeness")
    if ratio is None or not 0.0 <= ratio <= 1.0:
        fail(f"{degraded_path}: degraded.completeness {ratio!r} not in [0, 1]")
    notes = doc.get("notes", {})
    rank_notes = [k for k in notes if k.startswith("degraded.rank")]
    if counters["degraded.ranks_stubbed"] + counters["degraded.actions_trimmed"] > 0 \
            and not rank_notes:
        fail(f"{degraded_path}: degradation counted but no per-rank notes")
    print(f"check_telemetry: {degraded_path}: completeness {ratio}, "
          f"{counters['degraded.ranks_stubbed']} stubbed, "
          f"{counters['degraded.actions_trimmed']} trimmed, "
          f"{len(rank_notes)} rank note(s)")

    doc = load_v1(resume_path)
    counters = doc.get("counters", {})
    if counters.get("checkpoint.resume") != 1:
        fail(f"{resume_path}: checkpoint.resume != 1")
    if "checkpoint.writes" not in counters:
        fail(f"{resume_path}: counter checkpoint.writes missing")
    print(f"check_telemetry: {resume_path}: resumed, "
          f"{counters['checkpoint.writes']} checkpoint write(s)")


def check_serve(path):
    doc = load_v1(path)
    counters, values = doc.get("counters", {}), doc.get("values", {})
    requests = counters.get("serve.requests", 0)
    if requests < 1:
        fail(f"{path}: serve.requests {requests} < 1")
    admitted = counters.get("serve.admitted", 0)
    terminal = sum(counters.get(k, 0) for k in (
        "serve.ok",
        "serve.partial_deadline",
        "serve.partial_damaged",
        "serve.errors",
    ))
    if terminal != admitted:
        fail(f"{path}: terminal outcomes {terminal} != serve.admitted {admitted}")
    depth = values.get("serve.queue_depth")
    if depth != 0:
        fail(f"{path}: serve.queue_depth {depth!r} != 0 after drain")
    extras = ", ".join(
        f"{k.split('.', 1)[1]} {counters[k]}"
        for k in ("serve.shed", "serve.preemptions", "serve.bad_requests",
                  "serve.oversized", "serve.cache_hits")
        if k in counters
    )
    print(f"check_telemetry: {path}: {requests} request(s), "
          f"{admitted} admitted, all resolved"
          + (f" ({extras})" if extras else ""))


def no_unknown_sections(doc, path, known):
    """A new top-level section must be added to this validator in the
    same change that starts emitting it — an unknown key fails loudly
    instead of being silently unvalidated."""
    unknown = sorted(set(doc) - set(known))
    if unknown:
        fail(f"{path}: unknown top-level section(s) {unknown} "
             "(new emitter field? teach this validator about it)")


TIMERES_KEYS = ("schema", "num_ranks", "window_width", "phase_boundaries",
                "simulated_time", "total_ops", "num_windows", "windows",
                "ranks")

WINDOW_KEYS = ("index", "start", "end", "kind", "ops", "compute_time",
               "comm_time", "compute_ops", "comm_ops", "flops", "bytes",
               "comm_ratio", "imbalance", "active_peak")

RANK_KEYS = ("rank", "compute_time", "comm_time", "compute_ops",
             "comm_ops", "flops", "bytes")


def check_timeres(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "tit-timeres-v1":
        fail(f"{path}: bad schema {doc.get('schema')!r}")
    no_unknown_sections(doc, path, TIMERES_KEYS)
    windows, ranks = doc.get("windows"), doc.get("ranks")
    if not isinstance(windows, list):
        fail(f"{path}: windows missing")
    if doc.get("num_windows") != len(windows):
        fail(f"{path}: num_windows {doc.get('num_windows')} != {len(windows)}")
    if not isinstance(ranks, list) or len(ranks) != doc.get("num_ranks"):
        fail(f"{path}: ranks/num_ranks mismatch")
    prev_start = float("-inf")
    sums = {k: 0 for k in ("compute_time", "comm_time", "compute_ops",
                           "comm_ops", "flops", "bytes")}
    for i, w in enumerate(windows):
        no_unknown_sections(w, f"{path} window {i}", WINDOW_KEYS)
        if w["index"] != i:
            fail(f"{path}: window {i} has index {w['index']}")
        if not w["start"] <= w["end"]:
            fail(f"{path}: window {i} start {w['start']} > end {w['end']}")
        if w["start"] < prev_start:
            fail(f"{path}: window {i} out of time order")
        prev_start = w["start"]
        if w["ops"] != w["compute_ops"] + w["comm_ops"]:
            fail(f"{path}: window {i} ops {w['ops']} != compute+comm")
        if w["kind"] not in ("fixed", "phase", "final"):
            fail(f"{path}: window {i} bad kind {w['kind']!r}")
        if not 0.0 <= w["comm_ratio"] <= 1.0 + 1e-12:
            fail(f"{path}: window {i} comm_ratio {w['comm_ratio']}")
        if w["imbalance"] < 0.0:
            fail(f"{path}: window {i} imbalance {w['imbalance']}")
        for k in sums:
            sums[k] += w[k]
    totals = {k: 0 for k in sums}
    for r in ranks:
        no_unknown_sections(r, f"{path} rank {r.get('rank')}", RANK_KEYS)
        for k in totals:
            totals[k] += r[k]
    for k in ("compute_ops", "comm_ops"):
        if sums[k] != totals[k]:
            fail(f"{path}: window {k} sum {sums[k]} != rank total {totals[k]}")
    for k in ("compute_time", "comm_time", "flops", "bytes"):
        if abs(sums[k] - totals[k]) > 1e-9 * max(abs(totals[k]), 1.0):
            fail(f"{path}: window {k} sum {sums[k]} != rank total {totals[k]}")
    print(f"check_telemetry: {path}: {len(windows)} window(s), "
          f"{doc['total_ops']} ops conserved across {len(ranks)} rank(s)")


KPROF_KEYS = ("schema", "num_ranks", "actions_replayed", "simulated_time",
              "engine", "solver", "derived", "wall")

KPROF_ENGINE = ("actor_steps", "ops_completed", "heap_pushes", "heap_pops",
                "heap_peak", "latency_events", "sleep_events",
                "completion_updates", "lazy_rekeys", "stale_pops",
                "completion_pops", "completions_peak", "activities_peak")

KPROF_SOLVER = ("solves", "partial_solves", "islands",
                "constraints_touched", "constraints_skipped", "vars_touched",
                "rate_changes")


def check_kprof_doc(doc, path):
    if doc.get("schema") != "tit-kprof-v1":
        fail(f"{path}: bad schema {doc.get('schema')!r}")
    no_unknown_sections(doc, path, KPROF_KEYS)
    engine = doc.get("engine")
    for section, keys in (("engine", KPROF_ENGINE), ("solver", KPROF_SOLVER)):
        d = doc.get(section)
        if not isinstance(d, dict):
            fail(f"{path}: {section} section missing")
        no_unknown_sections(d, f"{path} {section}", keys)
        for k in keys:
            v = d.get(k)
            if not (isinstance(v, int) and v >= 0):
                fail(f"{path}: {section}.{k} {v!r} not a counter")
    if engine["heap_pops"] > engine["heap_pushes"]:
        fail(f"{path}: heap pops {engine['heap_pops']} exceed pushes "
             f"{engine['heap_pushes']}")
    if engine["stale_pops"] > engine["lazy_rekeys"]:
        fail(f"{path}: stale pops {engine['stale_pops']} exceed lazy "
             f"re-keys {engine['lazy_rekeys']}")
    solver = doc.get("solver")
    if solver["partial_solves"] > solver["solves"]:
        fail(f"{path}: partial solves {solver['partial_solves']} exceed "
             f"solves {solver['solves']}")
    if doc.get("actions_replayed", 0) > 0 and engine["ops_completed"] == 0:
        fail(f"{path}: actions replayed but ops_completed == 0")
    derived = doc.get("derived")
    if not isinstance(derived, dict) or not derived:
        fail(f"{path}: derived section missing")
    for k, v in derived.items():
        if not (isinstance(v, (int, float)) and math.isfinite(v) and v >= 0):
            fail(f"{path}: derived.{k} {v!r} not finite and non-negative")
    wall = doc.get("wall")
    if wall is not None:
        parts = sum(wall.get(k, 0) for k in
                    ("drain_s", "solve_s", "events_s", "completions_s"))
        total = wall.get("total_s", 0)
        if parts > total * (1 + 1e-6) + 1e-9:
            fail(f"{path}: wall phases {parts} exceed total {total}")
    return "with walls" if wall is not None else "deterministic core"


def check_kprof(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") == "tit-kprof-sweep-v1":
        no_unknown_sections(doc, path, ("schema", "bench", "runs"))
        runs = doc.get("runs")
        if not isinstance(runs, list) or not runs:
            fail(f"{path}: sweep has no runs")
        for i, run in enumerate(runs):
            check_kprof_doc(run, f"{path} run {i}")
        print(f"check_telemetry: {path}: kprof sweep, {len(runs)} run(s)")
    else:
        kind = check_kprof_doc(doc, path)
        print(f"check_telemetry: {path}: kernel profile "
              f"({doc['num_ranks']} ranks, {kind})")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--timeres":
        check_timeres(sys.argv[2])
        print("check_telemetry: OK")
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--kprof":
        check_kprof(sys.argv[2])
        print("check_telemetry: OK")
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--serve":
        check_serve(sys.argv[2])
        print("check_telemetry: OK")
        return
    if len(sys.argv) == 4 and sys.argv[1] == "--robustness":
        check_robustness(sys.argv[2], sys.argv[3])
        print("check_telemetry: OK")
        return
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    timeline, profile, metrics = sys.argv[1:4]
    xs = check_timeline(timeline)
    check_profile(profile, expect_ops=len(xs))
    check_metrics(metrics)
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
