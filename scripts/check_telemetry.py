#!/usr/bin/env python3
"""Validate tit-replay observability outputs (stdlib only).

Usage: check_telemetry.py TIMELINE.json PROFILE.json METRICS.json
       check_telemetry.py --robustness DEGRADED_METRICS.json RESUME_METRICS.json
       check_telemetry.py --serve SERVE_METRICS.json

Checks that
  * the timeline parses as Chrome trace-event JSON, its complete events
    ("ph":"X") are monotone in end time (ts+dur) and carry sane fields;
  * the profile parses, declares schema titobs-profile-v1, and every
    rank's per-tag times/counts sum to the rank totals;
  * the metrics file parses, declares schema titobs-metrics-v1 and
    contains the replay counters.

With --serve, instead checks a drained tit-serve metrics flush
(docs/SERVING.md): schema titobs-metrics-v1, serve.requests >= 1, the
terminal-outcome counters summing exactly to serve.admitted (every
admitted request resolves exactly once — ok, partial or error — no
matter how often it was preempted and requeued), and a drained queue
(serve.queue_depth == 0).

With --robustness, instead checks the DESIGN.md §5f counters: the
degraded metrics must carry degraded.ranks_stubbed /
degraded.actions_trimmed, a degraded.completeness value in [0, 1], and
at least one per-rank degradation note; the resume metrics must carry
checkpoint.writes >= 1 and checkpoint.resume == 1.

Exits 0 when all pass, 1 with a message otherwise.
"""

import json
import sys


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_timeline(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    xs = [e for e in events if e.get("ph") == "X"]
    if not xs:
        fail(f"{path}: no complete ('X') events")
    last_end = float("-inf")
    for e in xs:
        for key in ("name", "ts", "dur", "tid"):
            if key not in e:
                fail(f"{path}: X event missing {key}: {e}")
        if e["dur"] < 0:
            fail(f"{path}: negative duration: {e}")
        end = e["ts"] + e["dur"]
        # ts and dur are rounded to 3 decimals (nanoseconds); two
        # rounded ends can disagree by up to 2e-3 us without violating
        # the engine's completion-order contract.
        if end < last_end - 2e-3:
            fail(f"{path}: events not in completion order at {e}")
        last_end = max(last_end, end)
    other = doc.get("otherData", {})
    if "simulated_time_s" not in other:
        fail(f"{path}: otherData.simulated_time_s missing")
    print(f"check_telemetry: {path}: {len(xs)} events, "
          f"simulated {other['simulated_time_s']} s")
    return xs


def check_profile(path, expect_ops=None):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "titobs-profile-v1":
        fail(f"{path}: bad schema {doc.get('schema')!r}")
    ranks = doc.get("ranks")
    if not isinstance(ranks, list) or len(ranks) != doc.get("num_ranks"):
        fail(f"{path}: ranks/num_ranks mismatch")
    total_ops = 0
    for r in ranks:
        tag_time = sum(t["time"] for t in r["tags"])
        tag_count = sum(t["count"] for t in r["tags"])
        busy = r["compute_time"] + r["comm_time"]
        if abs(tag_time - busy) > 1e-9 * max(busy, 1.0):
            fail(f"{path}: rank {r['rank']}: tag times {tag_time} != busy {busy}")
        if tag_count != r["compute_ops"] + r["comm_ops"]:
            fail(f"{path}: rank {r['rank']}: tag counts != op counts")
        for t in r["tags"]:
            if sum(t["hist"]) != t["count"]:
                fail(f"{path}: rank {r['rank']} tag {t['tag']}: histogram "
                     f"mass {sum(t['hist'])} != count {t['count']}")
        total_ops += tag_count
    if total_ops != doc.get("total_ops"):
        fail(f"{path}: total_ops {doc.get('total_ops')} != sum {total_ops}")
    if expect_ops is not None and total_ops != expect_ops:
        fail(f"{path}: total_ops {total_ops} != timeline events {expect_ops}")
    print(f"check_telemetry: {path}: {len(ranks)} ranks, {total_ops} ops")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "titobs-metrics-v1":
        fail(f"{path}: bad schema {doc.get('schema')!r}")
    counters = doc.get("counters", {})
    values = doc.get("values", {})
    for key in ("replay.ops", "replay.actions"):
        if key not in counters:
            fail(f"{path}: counter {key} missing")
    if "replay.simulated_time" not in values:
        fail(f"{path}: value replay.simulated_time missing")
    if "wall_timers" in doc:
        fail(f"{path}: deterministic metrics must not embed wall timers")
    print(f"check_telemetry: {path}: {len(counters)} counters, "
          f"{len(values)} values")


def load_v1(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "titobs-metrics-v1":
        fail(f"{path}: bad schema {doc.get('schema')!r}")
    if "wall_timers" in doc:
        fail(f"{path}: deterministic metrics must not embed wall timers")
    return doc


def check_robustness(degraded_path, resume_path):
    doc = load_v1(degraded_path)
    counters, values = doc.get("counters", {}), doc.get("values", {})
    for key in ("degraded.ranks_stubbed", "degraded.actions_trimmed"):
        if key not in counters:
            fail(f"{degraded_path}: counter {key} missing")
    ratio = values.get("degraded.completeness")
    if ratio is None or not 0.0 <= ratio <= 1.0:
        fail(f"{degraded_path}: degraded.completeness {ratio!r} not in [0, 1]")
    notes = doc.get("notes", {})
    rank_notes = [k for k in notes if k.startswith("degraded.rank")]
    if counters["degraded.ranks_stubbed"] + counters["degraded.actions_trimmed"] > 0 \
            and not rank_notes:
        fail(f"{degraded_path}: degradation counted but no per-rank notes")
    print(f"check_telemetry: {degraded_path}: completeness {ratio}, "
          f"{counters['degraded.ranks_stubbed']} stubbed, "
          f"{counters['degraded.actions_trimmed']} trimmed, "
          f"{len(rank_notes)} rank note(s)")

    doc = load_v1(resume_path)
    counters = doc.get("counters", {})
    if counters.get("checkpoint.resume") != 1:
        fail(f"{resume_path}: checkpoint.resume != 1")
    if "checkpoint.writes" not in counters:
        fail(f"{resume_path}: counter checkpoint.writes missing")
    print(f"check_telemetry: {resume_path}: resumed, "
          f"{counters['checkpoint.writes']} checkpoint write(s)")


def check_serve(path):
    doc = load_v1(path)
    counters, values = doc.get("counters", {}), doc.get("values", {})
    requests = counters.get("serve.requests", 0)
    if requests < 1:
        fail(f"{path}: serve.requests {requests} < 1")
    admitted = counters.get("serve.admitted", 0)
    terminal = sum(counters.get(k, 0) for k in (
        "serve.ok",
        "serve.partial_deadline",
        "serve.partial_damaged",
        "serve.errors",
    ))
    if terminal != admitted:
        fail(f"{path}: terminal outcomes {terminal} != serve.admitted {admitted}")
    depth = values.get("serve.queue_depth")
    if depth != 0:
        fail(f"{path}: serve.queue_depth {depth!r} != 0 after drain")
    extras = ", ".join(
        f"{k.split('.', 1)[1]} {counters[k]}"
        for k in ("serve.shed", "serve.preemptions", "serve.bad_requests",
                  "serve.oversized", "serve.cache_hits")
        if k in counters
    )
    print(f"check_telemetry: {path}: {requests} request(s), "
          f"{admitted} admitted, all resolved"
          + (f" ({extras})" if extras else ""))


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--serve":
        check_serve(sys.argv[2])
        print("check_telemetry: OK")
        return
    if len(sys.argv) == 4 and sys.argv[1] == "--robustness":
        check_robustness(sys.argv[2], sys.argv[3])
        print("check_telemetry: OK")
        return
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    timeline, profile, metrics = sys.argv[1:4]
    xs = check_timeline(timeline)
    check_profile(profile, expect_ops=len(xs))
    check_metrics(metrics)
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
