#!/bin/sh
# Panic-freedom gate: non-test library code must not call unwrap(),
# expect( or panic! without a written justification.
#
# Scope: crates/*/src/**/*.rs, excluding src/bin/ (CLI binaries exit
# through their own error paths) and everything from the first
# `#[cfg(test)]` in a file onwards (test modules panic by design).
# A site is exempt when the same line or the line directly above it
# carries a `// panics:` comment explaining why the panic is
# unreachable or wanted. Comment and doc-comment lines are skipped.
#
# Exit status: 0 when clean, 1 with an offender listing otherwise.

set -eu
cd "$(dirname "$0")/.."

status=0
for f in $(find crates/*/src -name '*.rs' | grep -v '/bin/' | sort); do
    offenders=$(awk '
        /#\[cfg\(test\)\]/ { exit }         # test module: stop scanning
        { line = $0 }
        { prev_ok = exempt; exempt = 0 }
        line ~ /\/\/ *panics:/ { exempt = 1 }
        {
            stripped = line
            sub(/^[ \t]*/, "", stripped)
        }
        stripped ~ /^\/\// { next }          # comment or doc line
        line ~ /(\.unwrap\(\)|\.expect\(|panic!)/ {
            if (!prev_ok && !exempt) printf "%d:%s\n", NR, line
        }
    ' "$f")
    if [ -n "$offenders" ]; then
        status=1
        printf '%s\n' "$offenders" | while IFS= read -r o; do
            printf '%s:%s\n' "$f" "$o"
        done
    fi
done

if [ "$status" -ne 0 ]; then
    echo ""
    echo "panic gate: unjustified unwrap()/expect(/panic! in library code."
    echo "Either handle the error, or add a '// panics: <reason>' comment"
    echo "on the same line or the line above."
fi
exit "$status"
