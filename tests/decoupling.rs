//! The paper's central claim (Sections 4.2 and 6.2): acquisition is
//! fully decoupled from replay. Whatever the acquisition scenario —
//! regular, folded, scattered, both — the extracted time-independent
//! trace is the same and replays to the same simulated time (variations
//! under 1 %, from hardware-counter accuracy).

use titr::emul::acquisition::{acquire, AcquisitionMode};
use titr::emul::runtime::EmulConfig;
use titr::extract::tau2ti;
use titr::npb::{Class, LuConfig};
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{replay_files, ReplayConfig};
use titr::simkern::resource::HostId;
use titr::trace::TiTrace;

const MODES: [AcquisitionMode; 4] = [
    AcquisitionMode::Regular,
    AcquisitionMode::Folding(4),
    AcquisitionMode::Scattering(2),
    AcquisitionMode::ScatterFold(2, 2),
];

fn acquire_and_extract(
    mode: AcquisitionMode,
    seed: u64,
    jitter: f64,
    tag: &str,
) -> (TiTrace, f64) {
    let nproc = 8;
    let lu = LuConfig::new(Class::S, nproc).with_itmax(4);
    let dir = std::env::temp_dir().join(format!(
        "titr-decoup-{tag}-{}-{}",
        mode.label(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let tau = dir.join("tau");
    let ti = dir.join("ti");
    let cfg = EmulConfig { seed, papi_jitter: jitter, ..Default::default() };
    acquire(&lu.program(), nproc, mode, &cfg, &tau).unwrap();
    tau2ti(&tau, nproc, &ti, 2).unwrap();
    let trace = TiTrace::load_per_process(&ti).unwrap();
    let platform = PlatformDesc::single(presets::bordereau_one_core(nproc)).build();
    let hosts: Vec<HostId> = (0..nproc as u32).map(HostId).collect();
    let t = replay_files(&ti, nproc, platform, &hosts, &ReplayConfig::default())
        .unwrap()
        .simulated_time;
    let _ = std::fs::remove_dir_all(&dir);
    (trace, t)
}

#[test]
fn traces_are_identical_without_counter_noise() {
    let (reference, t0) = acquire_and_extract(MODES[0], 1, 0.0, "exact");
    for mode in &MODES[1..] {
        let (trace, t) = acquire_and_extract(*mode, 1, 0.0, "exact");
        assert_eq!(trace, reference, "{}: trace differs", mode.label());
        assert_eq!(t, t0, "{}: replayed time differs", mode.label());
    }
}

#[test]
fn replayed_times_vary_below_one_percent_with_counter_noise() {
    // Distinct seeds per mode model distinct acquisition runs.
    let mut times = Vec::new();
    for (i, mode) in MODES.iter().enumerate() {
        let (_, t) = acquire_and_extract(*mode, 100 + i as u64, 5e-4, "noisy");
        times.push(t);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0f64, f64::max);
    let spread = (max - min) / min;
    assert!(
        spread < 0.01,
        "simulated time must not depend on the acquisition scenario: spread {:.3}%",
        100.0 * spread
    );
    assert!(spread > 0.0, "counter noise should be visible at all");
}

#[test]
fn acquisition_costs_differ_but_are_irrelevant() {
    // Sanity: the acquisition runs themselves take very different times
    // (that's Table 2), yet none of it leaks into the trace.
    let nproc = 8;
    let lu = LuConfig::new(Class::S, nproc).with_itmax(4);
    let cfg = EmulConfig { papi_jitter: 0.0, ..Default::default() };
    let dir = std::env::temp_dir().join(format!("titr-decoup-cost-{}", std::process::id()));
    let regular = acquire(
        &lu.program(),
        nproc,
        AcquisitionMode::Regular,
        &cfg,
        &dir.join("r"),
    )
    .unwrap();
    let folded = acquire(
        &lu.program(),
        nproc,
        AcquisitionMode::Folding(8),
        &cfg,
        &dir.join("f"),
    )
    .unwrap();
    assert!(
        folded.exec_time > 3.0 * regular.exec_time,
        "folding x8 must cost much more than regular: {} vs {}",
        folded.exec_time,
        regular.exec_time
    );
    // Identical TAU payloads up to timestamps: same number of records.
    assert_eq!(regular.tau_bytes, folded.tau_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}
