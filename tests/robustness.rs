//! Failure injection: corrupted inputs must produce *typed* errors
//! naming the failing rank/file/line — never panics, hangs or wrong
//! results. Faults are injected deterministically from a seed through
//! [`titr::extract::faultinject`], so every scenario here reproduces.

use titr::emul::acquisition::{acquire, AcquisitionMode};
use titr::emul::runtime::EmulConfig;
use titr::extract::error::{with_retry, PipelineError, RetryPolicy};
use titr::extract::faultinject::{inject, Fault, FaultSpec, Injector};
use titr::extract::gather::{bundle, unbundle};
use titr::extract::tau2ti;
use titr::npb::ring::RingConfig;
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{replay_files, ReplayConfig, ReplayError};
use titr::simkern::resource::HostId;
use titr::simkern::{OpKind, SimError};

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("titr-rob-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Writes a small, well-formed per-rank trace set under `dir`.
fn write_ranks(dir: &std::path::Path, nproc: usize) -> Vec<std::path::PathBuf> {
    (0..nproc)
        .map(|r| {
            let p = dir.join(titr::trace::trace::process_trace_filename(r));
            std::fs::write(&p, format!("p{r} compute 1e6\np{r} compute 2e6\np{r} barrier\n"))
                .unwrap();
            p
        })
        .collect()
}

#[test]
fn truncated_tau_trace_fails_extraction_cleanly() {
    let dir = work("taucut");
    let tau = dir.join("tau");
    let ring = RingConfig { nproc: 4, iters: 4, ..Default::default() };
    acquire(&ring.program(), 4, AcquisitionMode::Regular, &EmulConfig::default(), &tau)
        .unwrap();
    // Chop rank 2's trace mid-record.
    let victim = tau.join(titr::tau::trace_filename(2));
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() - 10]).unwrap();
    let err = tau2ti(&tau, 4, &dir.join("ti"), 1).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("truncated") || msg.contains("record"),
        "diagnostic should mention truncation: {msg}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bitflipped_tau_trace_is_detected_or_extracted_without_panic() {
    let dir = work("tauflip");
    let tau = dir.join("tau");
    let ring = RingConfig { nproc: 4, iters: 4, ..Default::default() };
    acquire(&ring.program(), 4, AcquisitionMode::Regular, &EmulConfig::default(), &tau)
        .unwrap();
    // A seeded single-bit flip in rank 1's binary trace. Depending on
    // where the bit lands the extractor may error or still succeed
    // (benign flip) — both are acceptable; a panic would fail the test.
    Injector::new(0x5EED).flip_bit(&tau.join(titr::tau::trace_filename(1))).unwrap();
    let _ = tau2ti(&tau, 4, &dir.join("ti"), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_wait_in_trace_is_caught_by_validation() {
    let text = "p0 Irecv p1\np1 send p0 100\n";
    let trace = titr::trace::TiTrace::from_str_merged(text).unwrap();
    let errors = titr::trace::validate(&trace);
    assert!(
        errors.iter().any(|e| e.to_string().contains("never waited")),
        "validation must flag the dangling request: {errors:?}"
    );
}

#[test]
fn replaying_a_mismatched_trace_reports_deadlock_not_hang() {
    let dir = work("mismatch");
    // p0 expects a message p1 never sends.
    let mut t = titr::trace::TiTrace::new(2);
    t.push(0, titr::trace::Action::Recv { src: 1, bytes: None });
    t.push(1, titr::trace::Action::Compute { flops: 10.0 });
    t.save_per_process(&dir).unwrap();
    let platform = PlatformDesc::single(presets::bordereau_one_core(2)).build();
    let hosts: Vec<HostId> = (0..2).map(HostId).collect();
    let err = replay_files(&dir, 2, platform, &hosts, &ReplayConfig::default()).unwrap_err();
    match &err {
        ReplayError::Sim(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), 1, "only p0 is stuck: {blocked:?}");
            assert_eq!(blocked[0].actor, 0);
            assert_eq!(blocked[0].kind, Some(OpKind::Recv));
        }
        e => panic!("expected a deadlock report, got {e}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("p0") && msg.contains("recv"), "diagnostic names the waiter: {msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_trace_lines_are_rejected_with_line_numbers() {
    let dir = work("garbage");
    std::fs::write(dir.join("SG_process0.trace"), "p0 compute 5\np0 flarb 12\n").unwrap();
    let platform = PlatformDesc::single(presets::bordereau_one_core(1)).build();
    let err = replay_files(&dir, 1, platform, &[HostId(0)], &ReplayConfig::default())
        .unwrap_err();
    match &err {
        ReplayError::Trace { rank, .. } => assert_eq!(*rank, 0),
        e => panic!("expected a trace error for rank 0, got {e}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("SG_process0.trace"), "names the file: {msg}");
    assert!(msg.contains("line 2"), "names the line: {msg}");
    assert!(msg.contains("flarb"), "names the keyword: {msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_rank_file_is_a_structured_error_not_a_hang() {
    let dir = work("droprank");
    write_ranks(&dir, 4);
    // Rank 2's file never arrived at the simulation node.
    Injector::new(3).drop_rank(&dir, 2).unwrap();
    let platform = PlatformDesc::single(presets::bordereau_one_core(4)).build();
    let hosts: Vec<HostId> = (0..4).map(HostId).collect();
    let err = replay_files(&dir, 4, platform, &hosts, &ReplayConfig::default()).unwrap_err();
    match &err {
        ReplayError::MissingRank { rank, path, .. } => {
            assert_eq!(*rank, 2);
            assert!(path.to_string_lossy().contains("SG_process2"), "{path:?}");
        }
        e => panic!("expected MissingRank, got {e}"),
    }
    assert_eq!(err.rank(), Some(2));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_injected_bundle_roundtrip_reports_typed_errors() {
    let dir = work("bundlefi");
    let files = write_ranks(&dir, 4);
    let bpath = dir.join("traces.bundle");

    // Healthy round trip first: the baseline must work.
    bundle(&files, &bpath).unwrap();
    let restored = unbundle(&bpath, &dir.join("ok")).unwrap();
    assert_eq!(restored.len(), 4);

    // (a) Corrupt manifest: the first header's size field is damaged
    // (a bit-flip in flight turning a digit into a letter).
    let mut bytes = std::fs::read(&bpath).unwrap();
    let eol = bytes.iter().position(|&b| b == b'\n').unwrap();
    bytes[eol - 1] = b'x';
    let corrupt = dir.join("corrupt.bundle");
    std::fs::write(&corrupt, &bytes).unwrap();
    match unbundle(&corrupt, &dir.join("outa")).unwrap_err() {
        PipelineError::Bundle { path, detail, .. } => {
            assert_eq!(path, corrupt);
            assert!(
                detail.contains("manifest") || detail.contains("size"),
                "diagnoses the manifest: {detail}"
            );
        }
        e => panic!("expected Bundle error, got {e}"),
    }

    // (b) Short gather transfer: the bundle is cut mid-entry.
    let cut = dir.join("cut.bundle");
    std::fs::copy(&bpath, &cut).unwrap();
    let fault = Injector::new(11).short_transfer(&cut).unwrap();
    assert!(matches!(fault, Fault::ShortTransfer { .. }));
    match unbundle(&cut, &dir.join("outb")).unwrap_err() {
        PipelineError::Bundle { detail, .. } => assert!(
            detail.contains("truncated") || detail.contains("END marker"),
            "diagnoses the short transfer: {detail}"
        ),
        e => panic!("expected Bundle error, got {e}"),
    }

    // (c) Duplicate rank: the same file gathered twice.
    let dup = dir.join("dup.bundle");
    bundle(&[files[0].clone(), files[0].clone()], &dup).unwrap();
    match unbundle(&dup, &dir.join("outc")).unwrap_err() {
        PipelineError::Bundle { entry, detail, .. } => {
            assert_eq!(entry.as_deref(), Some("SG_process0.trace"));
            assert!(detail.contains("duplicate"), "{detail}");
        }
        e => panic!("expected Bundle error, got {e}"),
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seeded_fault_injection_is_bit_for_bit_reproducible() {
    let spec = FaultSpec { seed: 0xC0FFEE, truncate: 0.5, bit_flip: 0.5, drop_rank: 0.25 };
    let mut snapshots = Vec::new();
    for run in 0..2 {
        let dir = work(&format!("fi-repro{run}"));
        write_ranks(&dir, 8);
        let faults = inject(&dir, 8, &spec).unwrap();
        assert!(!faults.is_empty(), "these rates must inject something");
        // Snapshot the post-injection bytes of every rank file.
        let state: Vec<Option<Vec<u8>>> = (0..8)
            .map(|r| std::fs::read(dir.join(titr::trace::trace::process_trace_filename(r))).ok())
            .collect();
        snapshots.push(state);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(
        snapshots[0], snapshots[1],
        "same seed, same inputs must damage the same bytes"
    );
}

#[test]
fn transient_gather_faults_recover_under_retry() {
    let dir = work("retry");
    let files = write_ranks(&dir, 3);
    let bpath = dir.join("traces.bundle");
    // The first two attempts hit an injected transient I/O fault; the
    // bounded backoff retries through it and the bundle round-trips.
    let flaky = titr::extract::faultinject::Flaky::new(2);
    let total = with_retry(&RetryPolicy::default(), "gather bundle", |_| {
        flaky.trip("bundle write")?;
        bundle(&files, &bpath)
    })
    .unwrap();
    assert!(total > 0);
    let restored = unbundle(&bpath, &dir.join("restored")).unwrap();
    assert_eq!(restored.len(), 3);

    // With an attempt budget smaller than the fault count, the typed
    // exhaustion error names the operation.
    let stubborn = titr::extract::faultinject::Flaky::new(10);
    let err = with_retry(&RetryPolicy { attempts: 2, ..Default::default() }, "gather bundle", |_| {
        stubborn.trip("bundle write")?;
        bundle(&files, &bpath)
    })
    .unwrap_err();
    match err {
        PipelineError::RetriesExhausted { what, attempts, .. } => {
            assert_eq!(what, "gather bundle");
            assert_eq!(attempts, 2);
        }
        e => panic!("expected RetriesExhausted, got {e}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_platform_xml_is_rejected() {
    for doc in [
        "<platform><cluster id='c'/></platform>", // missing attributes
        "<platform>",                              // unclosed
        "<nope/>",                                 // wrong root
    ] {
        assert!(
            PlatformDesc::from_xml_str(doc).is_err(),
            "must reject {doc:?}"
        );
    }
}

#[test]
fn corrupted_compressed_trace_never_panics() {
    let ring = RingConfig::default();
    let mut text = Vec::new();
    ring.trace().write_merged(&mut text).unwrap();
    let mut c = titr::trace::compress::compress(&text);
    for i in (0..c.len()).step_by(7) {
        let mut broken = c.clone();
        broken[i] ^= 0xFF;
        let _ = titr::trace::compress::decompress(&broken); // may Err, must not panic
    }
    c.truncate(c.len() / 2);
    assert!(titr::trace::compress::decompress(&c).is_err());
}
