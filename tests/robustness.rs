//! Failure injection: corrupted inputs must produce diagnostics, not
//! wrong results or hangs.

use titr::emul::acquisition::{acquire, AcquisitionMode};
use titr::emul::runtime::EmulConfig;
use titr::extract::tau2ti;
use titr::npb::ring::RingConfig;
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{replay_files, ReplayConfig};
use titr::simkern::resource::HostId;

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("titr-rob-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn truncated_tau_trace_fails_extraction_cleanly() {
    let dir = work("taucut");
    let tau = dir.join("tau");
    let ring = RingConfig { nproc: 4, iters: 4, ..Default::default() };
    acquire(&ring.program(), 4, AcquisitionMode::Regular, &EmulConfig::default(), &tau)
        .unwrap();
    // Chop rank 2's trace mid-record.
    let victim = tau.join(titr::tau::trace_filename(2));
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() - 10]).unwrap();
    let err = tau2ti(&tau, 4, &dir.join("ti"), 1).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("truncated") || msg.contains("record"),
        "diagnostic should mention truncation: {msg}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bitflipped_tau_trace_is_detected_or_extracted_without_panic() {
    let dir = work("tauflip");
    let tau = dir.join("tau");
    let ring = RingConfig { nproc: 4, iters: 4, ..Default::default() };
    acquire(&ring.program(), 4, AcquisitionMode::Regular, &EmulConfig::default(), &tau)
        .unwrap();
    let victim = tau.join(titr::tau::trace_filename(1));
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(&victim, &bytes).unwrap();
    // Must not panic; error or (rarely) a benign flip are both fine.
    let _ = std::panic::catch_unwind(|| tau2ti(&tau, 4, &dir.join("ti"), 1))
        .expect("extractor must not panic on corrupt input");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_wait_in_trace_is_caught_by_validation() {
    let text = "p0 Irecv p1\np1 send p0 100\n";
    let trace = titr::trace::TiTrace::from_str_merged(text).unwrap();
    let errors = titr::trace::validate(&trace);
    assert!(
        errors.iter().any(|e| e.to_string().contains("never waited")),
        "validation must flag the dangling request: {errors:?}"
    );
}

#[test]
fn replaying_a_mismatched_trace_reports_deadlock_not_hang() {
    let dir = work("mismatch");
    // p0 expects a message p1 never sends.
    let mut t = titr::trace::TiTrace::new(2);
    t.push(0, titr::trace::Action::Recv { src: 1, bytes: None });
    t.push(1, titr::trace::Action::Compute { flops: 10.0 });
    t.save_per_process(&dir).unwrap();
    let platform = PlatformDesc::single(presets::bordereau_one_core(2)).build();
    let hosts: Vec<HostId> = (0..2).map(HostId).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        replay_files(&dir, 2, platform, &hosts, &ReplayConfig::default())
    }));
    // The engine panics with a deadlock diagnostic (run() path).
    assert!(result.is_err(), "mismatched trace must be detected");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_trace_lines_are_rejected_with_line_numbers() {
    let dir = work("garbage");
    std::fs::write(dir.join("SG_process0.trace"), "p0 compute 5\np0 flarb 12\n").unwrap();
    let platform = PlatformDesc::single(presets::bordereau_one_core(1)).build();
    // The bad line surfaces as a panic from the replaying actor (streamed
    // parse) carrying the parse diagnostic with the line number.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        replay_files(&dir, 1, platform, &[HostId(0)], &ReplayConfig::default())
    }));
    let diagnostic = match result {
        Ok(Err(e)) => e.to_string(),
        Ok(Ok(_)) => panic!("garbage line must not replay"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "panic".into()),
    };
    assert!(
        diagnostic.contains("line 2") || diagnostic.contains("flarb"),
        "diagnostic should name the bad line: {diagnostic}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_platform_xml_is_rejected() {
    for doc in [
        "<platform><cluster id='c'/></platform>", // missing attributes
        "<platform>",                              // unclosed
        "<nope/>",                                 // wrong root
    ] {
        assert!(
            PlatformDesc::from_xml_str(doc).is_err(),
            "must reject {doc:?}"
        );
    }
}

#[test]
fn corrupted_compressed_trace_never_panics() {
    let ring = RingConfig::default();
    let mut text = Vec::new();
    ring.trace().write_merged(&mut text).unwrap();
    let mut c = titr::trace::compress::compress(&text);
    for i in (0..c.len()).step_by(7) {
        let mut broken = c.clone();
        broken[i] ^= 0xFF;
        let _ = titr::trace::compress::decompress(&broken); // may Err, must not panic
    }
    c.truncate(c.len() / 2);
    assert!(titr::trace::compress::decompress(&c).is_err());
}
