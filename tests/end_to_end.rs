//! End-to-end pipeline tests: emulated acquisition → TAU traces →
//! extraction → validation → gathering → replay, across workloads.

use titr::emul::acquisition::{acquire, AcquisitionMode};
use titr::emul::runtime::EmulConfig;
use titr::extract::gather::{bundle, unbundle};
use titr::extract::tau2ti;
use titr::npb::stencil::StencilConfig;
use titr::npb::{Class, LuConfig};
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{replay_files, replay_memory, ReplayConfig};
use titr::simkern::resource::HostId;
use titr::trace::TiTrace;

fn work_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("titr-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn exact() -> EmulConfig {
    EmulConfig { papi_jitter: 0.0, ..Default::default() }
}

#[test]
fn lu_pipeline_extracts_exactly_and_replays() {
    let nproc = 8;
    let lu = LuConfig::new(Class::S, nproc).with_itmax(3);
    let dir = work_dir("lu");
    let tau = dir.join("tau");
    let ti = dir.join("ti");
    acquire(&lu.program(), nproc, AcquisitionMode::Regular, &exact(), &tau).unwrap();
    let stats = tau2ti(&tau, nproc, &ti, 2).unwrap();

    // Extraction recovers the program's exact trace, up to coalescing
    // of back-to-back CPU bursts (PAPI counters are only sampled at MPI
    // boundaries, so adjacent bursts merge — same flops, same timing).
    let got = TiTrace::load_per_process(&ti).unwrap();
    let mut want = titr::npb::program_trace(&lu.program(), nproc);
    want.coalesce_computes();
    assert_eq!(got, want);
    assert_eq!(stats.actions_written as usize, want.num_actions());

    // It validates and replays to the same time as the direct trace.
    assert!(titr::trace::validate(&got).is_empty());
    let platform = PlatformDesc::single(presets::bordereau_one_core(nproc)).build();
    let hosts: Vec<HostId> = (0..nproc as u32).map(HostId).collect();
    let from_files =
        replay_files(&ti, nproc, platform, &hosts, &ReplayConfig::default()).unwrap();
    let platform2 = PlatformDesc::single(presets::bordereau_one_core(nproc)).build();
    let direct = replay_memory(&want, platform2, &hosts, &ReplayConfig::default()).unwrap();
    assert_eq!(from_files.simulated_time, direct.simulated_time);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stencil_pipeline_through_folding() {
    let cfg = StencilConfig { n: 64, px: 2, py: 2, iters: 6, ..Default::default() };
    let nproc = cfg.nproc();
    let dir = work_dir("stencil");
    let tau = dir.join("tau");
    let ti = dir.join("ti");
    acquire(&cfg.program(), nproc, AcquisitionMode::Folding(2), &exact(), &tau).unwrap();
    tau2ti(&tau, nproc, &ti, 1).unwrap();
    let got = TiTrace::load_per_process(&ti).unwrap();
    assert_eq!(got, cfg.trace(), "folding must not change the trace");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gathered_bundle_roundtrips_and_replays() {
    let nproc = 4;
    let lu = LuConfig::new(Class::S, nproc).with_itmax(2);
    let dir = work_dir("bundle");
    let tau = dir.join("tau");
    let ti = dir.join("ti");
    acquire(&lu.program(), nproc, AcquisitionMode::Regular, &exact(), &tau).unwrap();
    tau2ti(&tau, nproc, &ti, 1).unwrap();

    // Gather into one file (what lands on the simulation node) and
    // restore — the restored traces replay identically.
    let files: Vec<_> = (0..nproc)
        .map(|r| ti.join(titr::trace::trace::process_trace_filename(r)))
        .collect();
    let bpath = dir.join("traces.bundle");
    bundle(&files, &bpath).unwrap();
    let restored_dir = dir.join("restored");
    let restored = unbundle(&bpath, &restored_dir).unwrap();
    assert_eq!(restored.len(), nproc);
    let a = TiTrace::load_per_process(&ti).unwrap();
    let b = TiTrace::load_per_process(&restored_dir).unwrap();
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compressed_trace_roundtrips() {
    let lu = LuConfig::new(Class::S, 4).with_itmax(2);
    let trace = titr::npb::program_trace(&lu.program(), 4);
    let mut text = Vec::new();
    trace.write_merged(&mut text).unwrap();
    let compressed = titr::trace::compress::compress(&text);
    assert!(compressed.len() < text.len() / 4, "trace text compresses well");
    let back = titr::trace::compress::decompress(&compressed).unwrap();
    assert_eq!(back, text);
    let reparsed = TiTrace::from_reader(&back[..]).unwrap();
    assert_eq!(reparsed, trace);
}

#[test]
fn what_if_network_upgrade_speeds_up_comm_bound_runs() {
    // Replaying the same trace on a better network must not be slower,
    // and a bandwidth-bound instance must actually improve.
    let cfg = StencilConfig { n: 512, px: 2, py: 2, iters: 10, check_every: 5, ..Default::default() };
    let trace = cfg.trace();
    let hosts: Vec<HostId> = (0..4).map(HostId).collect();
    let slow = {
        let mut spec = presets::bordereau_one_core(4);
        spec.bw = 1.25e7; // 100 Mb/s
        replay_memory(&trace, PlatformDesc::single(spec).build(), &hosts, &ReplayConfig::default())
            .unwrap()
            .simulated_time
    };
    let fast = {
        let mut spec = presets::bordereau_one_core(4);
        spec.bw = 1.25e9; // 10 Gb/s
        replay_memory(&trace, PlatformDesc::single(spec).build(), &hosts, &ReplayConfig::default())
            .unwrap()
            .simulated_time
    };
    assert!(fast < slow, "10 Gb/s must beat 100 Mb/s: {fast} vs {slow}");
}
