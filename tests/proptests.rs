//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use titr::npb::ring::RingConfig;
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{replay_memory, ReplayConfig};
use titr::simkern::resource::HostId;
use titr::trace::{Action, TiTrace};

fn arb_action() -> impl Strategy<Value = Action> {
    let vol = 0.0..1e9f64;
    let pid = 0usize..16;
    prop_oneof![
        vol.clone().prop_map(|flops| Action::Compute { flops }),
        (pid.clone(), vol.clone()).prop_map(|(dst, bytes)| Action::Send { dst, bytes }),
        (pid.clone(), vol.clone()).prop_map(|(dst, bytes)| Action::Isend { dst, bytes }),
        pid.clone().prop_map(|src| Action::Recv { src, bytes: None }),
        pid.clone().prop_map(|src| Action::Irecv { src, bytes: None }),
        vol.clone().prop_map(|bytes| Action::Bcast { bytes }),
        (vol.clone(), vol.clone()).prop_map(|(vcomm, vcomp)| Action::Reduce { vcomm, vcomp }),
        (vol.clone(), vol).prop_map(|(vcomm, vcomp)| Action::AllReduce { vcomm, vcomp }),
        Just(Action::Barrier),
        (1usize..1024).prop_map(|nproc| Action::CommSize { nproc }),
        Just(Action::Wait),
    ]
}

proptest! {
    /// Any action round-trips through the text codec.
    #[test]
    fn codec_roundtrips_arbitrary_actions(pid in 0usize..4096, action in arb_action()) {
        let line = titr::trace::format_action(pid, &action);
        let (p2, a2) = titr::trace::parse_line(&line, 1).unwrap().unwrap();
        prop_assert_eq!(p2, pid);
        // Volumes may lose the integer fast-path formatting but must
        // stay bit-identical (we only print integers when exact).
        prop_assert_eq!(a2, action);
    }

    /// Serialising any trace and parsing it back is the identity.
    #[test]
    fn merged_file_roundtrip(actions in proptest::collection::vec((0usize..8, arb_action()), 0..200)) {
        let mut t = TiTrace::new(8);
        for (pid, a) in actions {
            t.push(pid, a);
        }
        let mut buf = Vec::new();
        t.write_merged(&mut buf).unwrap();
        let back = TiTrace::from_reader(&buf[..]).unwrap();
        // Processes with no actions at the tail are not reconstructed;
        // compare the prefix that exists.
        for (rank, acts) in back.actions.iter().enumerate() {
            prop_assert_eq!(acts, &t.actions[rank]);
        }
    }

    /// Ring replay time scales linearly in both volumes and iterations.
    #[test]
    fn ring_replay_scales(iters in 1usize..5, mult in 1u32..4) {
        let base = RingConfig { nproc: 4, iters, flops: 1e6, bytes: 1e6 };
        let scaled = RingConfig {
            flops: base.flops * mult as f64,
            bytes: base.bytes * mult as f64,
            ..base
        };
        let run = |cfg: &RingConfig| {
            let trace = cfg.trace();
            let desc = PlatformDesc::single(presets::bordereau_one_core(4));
            let platform = desc.build();
            let hosts: Vec<HostId> = (0..4).map(HostId).collect();
            // Identity network model so scaling is exact.
            let rc = ReplayConfig {
                network: titr::simkern::netmodel::NetworkConfig::default(),
                ..Default::default()
            };
            replay_memory(&trace, platform, &hosts, &rc)
                .unwrap()
                .simulated_time
        };
        let t1 = run(&base);
        let tm = run(&scaled);
        // Larger volumes with the same latency count: slightly sublinear.
        let max = mult as f64 * t1;
        prop_assert!(tm <= max * (1.0 + 1e-9), "tm={tm} max={max}");
        prop_assert!(tm >= t1, "bigger volumes cannot be faster");
    }

    /// Validation accepts every trace the workload generators emit, and
    /// the static analyzer agrees: no error-severity findings on them.
    #[test]
    fn generated_traces_always_validate(nproc_pow in 1u32..4, itmax in 1usize..4) {
        let nproc = 1usize << nproc_pow;
        let lu = titr::npb::LuConfig::new(titr::npb::Class::S, nproc).with_itmax(itmax);
        let trace = titr::npb::program_trace(&lu.program(), nproc);
        prop_assert!(titr::trace::validate(&trace).is_empty());
        let report = titr::lint::analyze(&trace);
        prop_assert!(
            !report.has_errors(),
            "generated LU trace got error lints:\n{}",
            report.render_text()
        );
    }

    /// Replay is deterministic: same trace, same platform, same time.
    #[test]
    fn replay_is_deterministic(iters in 1usize..6) {
        let cfg = RingConfig { nproc: 4, iters, ..Default::default() };
        let trace = cfg.trace();
        let run = || {
            let desc = PlatformDesc::single(presets::bordereau_one_core(4));
            let platform = desc.build();
            let hosts: Vec<HostId> = (0..4).map(HostId).collect();
            replay_memory(&trace, platform, &hosts, &ReplayConfig::default())
            .unwrap()
            .simulated_time
        };
        prop_assert_eq!(run(), run());
    }
}

/// Generates a random *balanced* trace: every send has a matching
/// receive posted on the destination, messages per ordered pair are
/// FIFO-consistent, and every Irecv gets a Wait.
fn balanced_trace(nproc: usize, ops: &[(usize, usize, u32, bool)]) -> TiTrace {
    let mut t = TiTrace::new(nproc);
    for r in 0..nproc {
        t.push(r, Action::CommSize { nproc });
    }
    for &(src, dst, vol, nonblocking) in ops {
        let src = src % nproc;
        let dst = dst % nproc;
        if src == dst {
            t.push(src, Action::Compute { flops: vol as f64 });
            continue;
        }
        let bytes = vol as f64;
        t.push(src, Action::Send { dst, bytes });
        if nonblocking {
            t.push(dst, Action::Irecv { src, bytes: None });
            t.push(dst, Action::Wait);
        } else {
            t.push(dst, Action::Recv { src, bytes: None });
        }
    }
    // A final barrier keeps every rank alive to the end.
    for r in 0..nproc {
        t.push(r, Action::Barrier);
    }
    t
}

proptest! {
    /// Any balanced trace replays to completion (no deadlock, no panic)
    /// with a simulated time bounded below by each rank's own compute
    /// work and above by the fully-serialised sum of all volumes.
    #[test]
    fn balanced_traces_always_terminate(
        nproc in 2usize..6,
        ops in proptest::collection::vec(
            (0usize..8, 0usize..8, 1u32..2_000_000, proptest::bool::ANY),
            1..60,
        ),
    ) {
        let t = balanced_trace(nproc, &ops);
        prop_assert!(titr::trace::validate(&t).is_empty());
        let desc = PlatformDesc::single(presets::bordereau_one_core(nproc));
        let platform = desc.build();
        let hosts: Vec<HostId> = (0..nproc as u32).map(HostId).collect();
        let out = replay_memory(&t, platform, &hosts, &ReplayConfig::default()).unwrap();

        let speed = presets::BORDEREAU_POWER;
        let bw_worst = 1.25e8 * 0.4; // worst piecewise bandwidth factor
        // Lower bound: the busiest rank's own compute work.
        let stats = titr::trace::TraceStats::of(&t);
        let lower = t
            .actions
            .iter()
            .map(|acts| acts.iter().map(Action::flops).sum::<f64>() / speed)
            .fold(0.0_f64, f64::max);
        prop_assert!(
            out.simulated_time >= lower * (1.0 - 1e-9),
            "time {} below compute bound {lower}",
            out.simulated_time
        );
        // Upper bound: everything serialised end to end, generously.
        let per_msg_overhead = 1e-3; // latencies, rendezvous, barriers
        let upper = stats.total_flops / speed
            + stats.total_bytes / bw_worst
            + stats.num_actions as f64 * per_msg_overhead
            + 1.0;
        prop_assert!(
            out.simulated_time <= upper,
            "time {} above serial bound {upper}",
            out.simulated_time
        );
    }

    /// The incremental engine is deterministic on random balanced traces.
    #[test]
    fn random_traces_replay_deterministically(
        nproc in 2usize..5,
        ops in proptest::collection::vec(
            (0usize..6, 0usize..6, 1u32..500_000, proptest::bool::ANY),
            1..30,
        ),
    ) {
        let t = balanced_trace(nproc, &ops);
        let run = || {
            let desc = PlatformDesc::single(presets::bordereau_one_core(nproc));
            let hosts: Vec<HostId> = (0..nproc as u32).map(HostId).collect();
            replay_memory(&t, desc.build(), &hosts, &ReplayConfig::default())
                .unwrap()
                .simulated_time
        };
        prop_assert_eq!(run(), run());
    }

    /// The static analyzer reports nothing at all on balanced traces:
    /// no errors (those would make the `tit-replay --lint` preflight
    /// refuse the run) and no warnings either, since the generator
    /// emits no self-messages, zero volumes, or empty ranks.
    #[test]
    fn lint_accepts_balanced_traces(
        nproc in 2usize..6,
        ops in proptest::collection::vec(
            (0usize..8, 0usize..8, 1u32..2_000_000, proptest::bool::ANY),
            0..60,
        ),
    ) {
        let t = balanced_trace(nproc, &ops);
        let report = titr::lint::analyze(&t);
        prop_assert!(
            report.findings.is_empty(),
            "balanced trace got findings:\n{}",
            report.render_text()
        );
    }
}

// ---------------------------------------------------------------------------
// Fault-injection closure: every corruption class the extract-stage
// injector can produce is caught downstream — by the static analyzer or
// by a typed pipeline error — and the lint report for a given seed is
// bit-for-bit reproducible. The seeds are fixed constants, so these are
// deterministic replays, not random sampling.
// ---------------------------------------------------------------------------

use std::path::{Path, PathBuf};
use titr::extract::faultinject::{FaultSpec, Injector};
use titr::lint::{LintCode, LintConfig, Report, Severity};
use titr::trace::trace::process_trace_filename;

/// How many fixed seeds each corruption class is driven with.
const FAULT_SEEDS: u64 = 24;

/// A two-rank exchange in which every trace line is load-bearing: each
/// file *ends* with a receive whose matching send lives in the other
/// file, and every receive declares its expected volume. Cutting or
/// corrupting any line therefore either leaves the trace semantically
/// identical (e.g. only the trailing newline went) or breaks a
/// cross-file invariant the linter checks.
fn sentinel_trace() -> TiTrace {
    let mut t = TiTrace::new(2);
    for r in 0..2 {
        t.push(r, Action::CommSize { nproc: 2 });
    }
    t.push(0, Action::Send { dst: 1, bytes: 1_000_000.0 });
    t.push(1, Action::Send { dst: 0, bytes: 2_000_000.0 });
    t.push(0, Action::Recv { src: 1, bytes: Some(2_000_000.0) });
    t.push(1, Action::Recv { src: 0, bytes: Some(1_000_000.0) });
    t
}

/// Lint policy for the fault tests: volume mismatches between matched
/// endpoints are escalated to errors, so single-bit damage to a volume
/// digit cannot slip through as a mere warning.
fn strict_lints() -> LintConfig {
    let mut cfg = LintConfig::default();
    cfg.set_level(LintCode::RecvBytesMismatch, Severity::Error);
    cfg
}

/// Writes a pristine copy of the sentinel trace into a fresh directory.
fn fresh_sentinel_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("titr-faultlint-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    sentinel_trace().save_per_process(&dir).unwrap();
    dir
}

/// True when `dir` still loads and replays exactly like the sentinel
/// trace — the fault clipped nothing replay-relevant. Declared receive
/// volumes are advisory cross-checks (replay always moves the sender's
/// volume), so a fault that merely strips that annotation — truncation
/// landing right after `p1 recv p0`, say — is harmless; a fault that
/// *changes* it to a different value raises TL0014 instead.
fn semantically_intact(dir: &Path) -> bool {
    fn strip_advisory(mut t: TiTrace) -> TiTrace {
        for acts in &mut t.actions {
            for a in acts.iter_mut() {
                if let Action::Recv { bytes, .. } | Action::Irecv { bytes, .. } = a {
                    *bytes = None;
                }
            }
        }
        t
    }
    TiTrace::load_per_process(dir)
        .map(|t| strip_advisory(t).actions == strip_advisory(sentinel_trace()).actions)
        .unwrap_or(false)
}

/// Lints `dir` twice under the strict policy and checks the rendered
/// reports agree bit for bit; returns one of them.
fn lint_twice(dir: &Path) -> Report {
    let cfg = strict_lints();
    let a = titr::lint::lint_dir(dir, 2, &cfg);
    let b = titr::lint::lint_dir(dir, 2, &cfg);
    assert_eq!(a.to_json(), b.to_json(), "lint output must be deterministic");
    a
}

/// Truncation: for every seed, either the damage was semantically void
/// or the linter reports at least one error — and re-corrupting a fresh
/// copy with the same seed yields the identical report.
#[test]
fn lint_catches_truncated_rank_files() {
    let mut detected = 0;
    for seed in 0..FAULT_SEEDS {
        let run = |n: u32| {
            let dir = fresh_sentinel_dir(&format!("trunc-{seed}-{n}"));
            let victim = dir.join(process_trace_filename((seed % 2) as usize));
            Injector::new(seed).truncate_file(&victim).unwrap();
            let report = lint_twice(&dir);
            // The report embeds absolute file locations; normalise the
            // per-run temp dir away so two runs compare bit for bit.
            let json = report.to_json().replace(&dir.display().to_string(), "<dir>");
            (report.has_errors(), semantically_intact(&dir), json)
        };
        let (errs, intact, json) = run(0);
        let (_, _, json2) = run(1);
        assert_eq!(json, json2, "seed {seed}: same seed must lint identically");
        assert!(
            errs || intact,
            "seed {seed}: truncation silently changed the trace:\n{json}"
        );
        detected += u64::from(errs);
    }
    assert!(detected > 0, "no truncation seed was ever detected");
}

/// Bit flips: same contract as truncation. On the sentinel fixture a
/// flipped byte lands in a process id (TL0018 if it still parses),
/// keyword, volume digit, separator, or newline — all of which the
/// linter or the parser objects to.
#[test]
fn lint_catches_bit_flips() {
    let mut detected = 0;
    for seed in 0..FAULT_SEEDS {
        let run = |n: u32| {
            let dir = fresh_sentinel_dir(&format!("flip-{seed}-{n}"));
            let victim = dir.join(process_trace_filename((seed % 2) as usize));
            Injector::new(seed).flip_bit(&victim).unwrap();
            let report = lint_twice(&dir);
            // The report embeds absolute file locations; normalise the
            // per-run temp dir away so two runs compare bit for bit.
            let json = report.to_json().replace(&dir.display().to_string(), "<dir>");
            (report.has_errors(), semantically_intact(&dir), json)
        };
        let (errs, intact, json) = run(0);
        let (_, _, json2) = run(1);
        assert_eq!(json, json2, "seed {seed}: same seed must lint identically");
        assert!(
            errs || intact,
            "seed {seed}: bit flip silently changed the trace:\n{json}"
        );
        detected += u64::from(errs);
    }
    assert!(detected > 0, "no bit-flip seed was ever detected");
}

/// A dropped rank always maps to TL0015 (missing rank file), whichever
/// rank went missing.
#[test]
fn lint_catches_dropped_ranks() {
    for rank in 0..2usize {
        let dir = fresh_sentinel_dir(&format!("drop-{rank}"));
        Injector::new(7).drop_rank(&dir, rank).unwrap();
        let report = lint_twice(&dir);
        assert!(report.has_errors(), "dropped rank {rank} went unnoticed");
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.code == LintCode::MissingRankFile),
            "dropped rank {rank} did not yield TL0015:\n{}",
            report.render_text()
        );
    }
}

/// The one-call `inject` sweep (truncate + flip every file) is caught,
/// and the resulting lint report is a pure function of the seed.
#[test]
fn lint_catches_injected_sweeps() {
    for seed in 0..FAULT_SEEDS {
        let run = |n: u32| {
            let dir = fresh_sentinel_dir(&format!("sweep-{seed}-{n}"));
            let spec = FaultSpec { seed, truncate: 1.0, bit_flip: 1.0, drop_rank: 0.0 };
            titr::extract::faultinject::inject(&dir, 2, &spec).unwrap();
            let report = lint_twice(&dir);
            // The report embeds absolute file locations; normalise the
            // per-run temp dir away so two runs compare bit for bit.
            let json = report.to_json().replace(&dir.display().to_string(), "<dir>");
            (report.has_errors(), semantically_intact(&dir), json)
        };
        let (errs, intact, json) = run(0);
        let (_, _, json2) = run(1);
        assert_eq!(json, json2, "seed {seed}: same seed must lint identically");
        assert!(
            errs || intact,
            "seed {seed}: injected sweep went unnoticed:\n{json}"
        );
    }
}

/// A short gather transfer is never silent: either the unbundler
/// reports the damage as a typed pipeline error, or the linter flags
/// the partially-materialised directory (typically TL0015), or the
/// decoded traces are semantically intact.
#[test]
fn lint_or_pipeline_catches_short_transfers() {
    let mut caught_by_lint = 0;
    for seed in 0..FAULT_SEEDS {
        let dir = fresh_sentinel_dir(&format!("short-{seed}"));
        let files: Vec<PathBuf> = (0..2).map(|r| dir.join(process_trace_filename(r))).collect();
        let bundle = dir.join("gather.bundle");
        titr::extract::gather::bundle(&files, &bundle).unwrap();
        let out = dir.join("unbundled");
        std::fs::create_dir_all(&out).unwrap();
        Injector::new(seed).short_transfer(&bundle).unwrap();
        let res = titr::extract::gather::unbundle(&bundle, &out);
        let report = lint_twice(&out);
        assert!(
            res.is_err() || report.has_errors() || semantically_intact(&out),
            "seed {seed}: short transfer went unnoticed:\n{}",
            report.render_text()
        );
        caught_by_lint += u64::from(report.has_errors());
    }
    assert!(caught_by_lint > 0, "no short transfer ever reached the linter");
}
