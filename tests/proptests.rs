//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use titr::npb::ring::RingConfig;
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{replay_memory, ReplayConfig};
use titr::simkern::resource::HostId;
use titr::trace::{Action, TiTrace};

fn arb_action() -> impl Strategy<Value = Action> {
    let vol = 0.0..1e9f64;
    let pid = 0usize..16;
    prop_oneof![
        vol.clone().prop_map(|flops| Action::Compute { flops }),
        (pid.clone(), vol.clone()).prop_map(|(dst, bytes)| Action::Send { dst, bytes }),
        (pid.clone(), vol.clone()).prop_map(|(dst, bytes)| Action::Isend { dst, bytes }),
        pid.clone().prop_map(|src| Action::Recv { src, bytes: None }),
        pid.clone().prop_map(|src| Action::Irecv { src, bytes: None }),
        vol.clone().prop_map(|bytes| Action::Bcast { bytes }),
        (vol.clone(), vol.clone()).prop_map(|(vcomm, vcomp)| Action::Reduce { vcomm, vcomp }),
        (vol.clone(), vol).prop_map(|(vcomm, vcomp)| Action::AllReduce { vcomm, vcomp }),
        Just(Action::Barrier),
        (1usize..1024).prop_map(|nproc| Action::CommSize { nproc }),
        Just(Action::Wait),
    ]
}

proptest! {
    /// Any action round-trips through the text codec.
    #[test]
    fn codec_roundtrips_arbitrary_actions(pid in 0usize..4096, action in arb_action()) {
        let line = titr::trace::format_action(pid, &action);
        let (p2, a2) = titr::trace::parse_line(&line, 1).unwrap().unwrap();
        prop_assert_eq!(p2, pid);
        // Volumes may lose the integer fast-path formatting but must
        // stay bit-identical (we only print integers when exact).
        prop_assert_eq!(a2, action);
    }

    /// Serialising any trace and parsing it back is the identity.
    #[test]
    fn merged_file_roundtrip(actions in proptest::collection::vec((0usize..8, arb_action()), 0..200)) {
        let mut t = TiTrace::new(8);
        for (pid, a) in actions {
            t.push(pid, a);
        }
        let mut buf = Vec::new();
        t.write_merged(&mut buf).unwrap();
        let back = TiTrace::from_reader(&buf[..]).unwrap();
        // Processes with no actions at the tail are not reconstructed;
        // compare the prefix that exists.
        for (rank, acts) in back.actions.iter().enumerate() {
            prop_assert_eq!(acts, &t.actions[rank]);
        }
    }

    /// Ring replay time scales linearly in both volumes and iterations.
    #[test]
    fn ring_replay_scales(iters in 1usize..5, mult in 1u32..4) {
        let base = RingConfig { nproc: 4, iters, flops: 1e6, bytes: 1e6 };
        let scaled = RingConfig {
            flops: base.flops * mult as f64,
            bytes: base.bytes * mult as f64,
            ..base
        };
        let run = |cfg: &RingConfig| {
            let trace = cfg.trace();
            let desc = PlatformDesc::single(presets::bordereau_one_core(4));
            let platform = desc.build();
            let hosts: Vec<HostId> = (0..4).map(HostId).collect();
            // Identity network model so scaling is exact.
            let rc = ReplayConfig {
                network: titr::simkern::netmodel::NetworkConfig::default(),
                ..Default::default()
            };
            replay_memory(&trace, platform, &hosts, &rc)
                .unwrap()
                .simulated_time
        };
        let t1 = run(&base);
        let tm = run(&scaled);
        // Larger volumes with the same latency count: slightly sublinear.
        let max = mult as f64 * t1;
        prop_assert!(tm <= max * (1.0 + 1e-9), "tm={tm} max={max}");
        prop_assert!(tm >= t1, "bigger volumes cannot be faster");
    }

    /// Validation accepts every trace the workload generators emit.
    #[test]
    fn generated_traces_always_validate(nproc_pow in 1u32..4, itmax in 1usize..4) {
        let nproc = 1usize << nproc_pow;
        let lu = titr::npb::LuConfig::new(titr::npb::Class::S, nproc).with_itmax(itmax);
        let trace = titr::npb::program_trace(&lu.program(), nproc);
        prop_assert!(titr::trace::validate(&trace).is_empty());
    }

    /// Replay is deterministic: same trace, same platform, same time.
    #[test]
    fn replay_is_deterministic(iters in 1usize..6) {
        let cfg = RingConfig { nproc: 4, iters, ..Default::default() };
        let trace = cfg.trace();
        let run = || {
            let desc = PlatformDesc::single(presets::bordereau_one_core(4));
            let platform = desc.build();
            let hosts: Vec<HostId> = (0..4).map(HostId).collect();
            replay_memory(&trace, platform, &hosts, &ReplayConfig::default())
            .unwrap()
            .simulated_time
        };
        prop_assert_eq!(run(), run());
    }
}

/// Generates a random *balanced* trace: every send has a matching
/// receive posted on the destination, messages per ordered pair are
/// FIFO-consistent, and every Irecv gets a Wait.
fn balanced_trace(nproc: usize, ops: &[(usize, usize, u32, bool)]) -> TiTrace {
    let mut t = TiTrace::new(nproc);
    for r in 0..nproc {
        t.push(r, Action::CommSize { nproc });
    }
    for &(src, dst, vol, nonblocking) in ops {
        let src = src % nproc;
        let dst = dst % nproc;
        if src == dst {
            t.push(src, Action::Compute { flops: vol as f64 });
            continue;
        }
        let bytes = vol as f64;
        t.push(src, Action::Send { dst, bytes });
        if nonblocking {
            t.push(dst, Action::Irecv { src, bytes: None });
            t.push(dst, Action::Wait);
        } else {
            t.push(dst, Action::Recv { src, bytes: None });
        }
    }
    // A final barrier keeps every rank alive to the end.
    for r in 0..nproc {
        t.push(r, Action::Barrier);
    }
    t
}

proptest! {
    /// Any balanced trace replays to completion (no deadlock, no panic)
    /// with a simulated time bounded below by each rank's own compute
    /// work and above by the fully-serialised sum of all volumes.
    #[test]
    fn balanced_traces_always_terminate(
        nproc in 2usize..6,
        ops in proptest::collection::vec(
            (0usize..8, 0usize..8, 1u32..2_000_000, proptest::bool::ANY),
            1..60,
        ),
    ) {
        let t = balanced_trace(nproc, &ops);
        prop_assert!(titr::trace::validate(&t).is_empty());
        let desc = PlatformDesc::single(presets::bordereau_one_core(nproc));
        let platform = desc.build();
        let hosts: Vec<HostId> = (0..nproc as u32).map(HostId).collect();
        let out = replay_memory(&t, platform, &hosts, &ReplayConfig::default()).unwrap();

        let speed = presets::BORDEREAU_POWER;
        let bw_worst = 1.25e8 * 0.4; // worst piecewise bandwidth factor
        // Lower bound: the busiest rank's own compute work.
        let stats = titr::trace::TraceStats::of(&t);
        let lower = t
            .actions
            .iter()
            .map(|acts| acts.iter().map(|a| a.flops()).sum::<f64>() / speed)
            .fold(0.0_f64, f64::max);
        prop_assert!(
            out.simulated_time >= lower * (1.0 - 1e-9),
            "time {} below compute bound {lower}",
            out.simulated_time
        );
        // Upper bound: everything serialised end to end, generously.
        let per_msg_overhead = 1e-3; // latencies, rendezvous, barriers
        let upper = stats.total_flops / speed
            + stats.total_bytes / bw_worst
            + stats.num_actions as f64 * per_msg_overhead
            + 1.0;
        prop_assert!(
            out.simulated_time <= upper,
            "time {} above serial bound {upper}",
            out.simulated_time
        );
    }

    /// The incremental engine is deterministic on random balanced traces.
    #[test]
    fn random_traces_replay_deterministically(
        nproc in 2usize..5,
        ops in proptest::collection::vec(
            (0usize..6, 0usize..6, 1u32..500_000, proptest::bool::ANY),
            1..30,
        ),
    ) {
        let t = balanced_trace(nproc, &ops);
        let run = || {
            let desc = PlatformDesc::single(presets::bordereau_one_core(nproc));
            let hosts: Vec<HostId> = (0..nproc as u32).map(HostId).collect();
            replay_memory(&t, desc.build(), &hosts, &ReplayConfig::default())
                .unwrap()
                .simulated_time
        };
        prop_assert_eq!(run(), run());
    }
}
