//! Differential kill-and-resume property: a replay that is paused at
//! every checkpoint boundary and resumed from disk each time must be
//! indistinguishable from an uninterrupted run — same final simulated
//! time (bit for bit), same per-rank profile totals (accumulated in the
//! same order, so bit-identical JSON), and a timed-trace CSV whose
//! per-segment pieces stitch into the uninterrupted file byte for byte.
//! This is DESIGN.md §5f's core guarantee, checked over random balanced
//! traces and random checkpoint intervals.

use proptest::prelude::*;
use titr::obs::{Profile, SharedBuf, Timeline, TimelineFormat};
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{
    replay_files_checkpointed, replay_files_observed, resume_files, tags, CheckpointPolicy,
    CheckpointedStatus, ReplayConfig,
};
use titr::simkern::observer::{Fanout, Observer};
use titr::simkern::resource::HostId;
use titr::trace::{Action, TiTrace};

/// Generates a random *balanced* trace (every send matched by a posted
/// receive, FIFO per ordered pair, every Irecv waited on) — the same
/// generator shape as `tests/proptests.rs`.
fn balanced_trace(nproc: usize, ops: &[(usize, usize, u32, bool)]) -> TiTrace {
    let mut t = TiTrace::new(nproc);
    for r in 0..nproc {
        t.push(r, Action::CommSize { nproc });
    }
    for &(src, dst, vol, nonblocking) in ops {
        let src = src % nproc;
        let dst = dst % nproc;
        if src == dst {
            t.push(src, Action::Compute { flops: f64::from(vol) });
            continue;
        }
        let bytes = f64::from(vol);
        t.push(src, Action::Send { dst, bytes });
        if nonblocking {
            t.push(dst, Action::Irecv { src, bytes: None });
            t.push(dst, Action::Wait);
        } else {
            t.push(dst, Action::Recv { src, bytes: None });
        }
    }
    for r in 0..nproc {
        t.push(r, Action::Barrier);
    }
    t
}

fn platform_hosts(nproc: usize) -> (titr::simkern::resource::Platform, Vec<HostId>) {
    let desc = PlatformDesc::single(presets::bordereau_one_core(nproc));
    let hosts = (0..nproc as u32).map(HostId).collect();
    (desc.build(), hosts)
}

/// A CSV timeline + shared profile observer pair for one engine run.
fn observers(nproc: usize, profile: &Profile) -> (SharedBuf, Timeline<SharedBuf>, Box<dyn Observer>) {
    let buf = SharedBuf::new();
    let tl = Timeline::new(buf.clone(), nproc, TimelineFormat::Csv, tags::name)
        .expect("SharedBuf cannot fail");
    let fan = Fanout::new().with(tl.sink()).with(profile.sink());
    (buf, tl, Box::new(fan))
}

const CSV_HEADER: &str = "rank,action,start,end,volume\n";

proptest! {
    #[test]
    fn kill_and_resume_matches_uninterrupted(
        nproc in 2usize..5,
        ops in proptest::collection::vec(
            (0usize..6, 0usize..6, 1u32..500_000, proptest::bool::ANY),
            1..25,
        ),
        every in 1u64..40,
    ) {
        let trace = balanced_trace(nproc, &ops);
        let dir = std::env::temp_dir().join(format!(
            "titr-resume-prop-{}-{nproc}-{every}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        trace.save_per_process(&dir).unwrap();
        let cfg = ReplayConfig::default();

        // Uninterrupted reference run.
        let ref_profile = Profile::new(nproc, tags::name, tags::is_comm);
        let (ref_buf, ref_tl, extra) = observers(nproc, &ref_profile);
        let (platform, hosts) = platform_hosts(nproc);
        let reference = replay_files_observed(&dir, nproc, platform, &hosts, &cfg, Some(extra))
            .expect("reference replay");
        ref_tl.finish().unwrap();
        let ref_csv = String::from_utf8(ref_buf.contents()).unwrap();
        let ref_profile_json = ref_profile.snapshot().to_json();

        // Killed sequence: pause at *every* checkpoint boundary
        // (stop_after_checkpoints = 1 restarts the process each time),
        // resuming from the on-disk TICK1 file. One Profile accumulates
        // across all segments — completion order is preserved, so float
        // accumulation matches the reference bit for bit.
        let ck = dir.join("ck.tick");
        let policy = CheckpointPolicy {
            path: ck.clone(),
            every_actions: every,
            max_wall: tit_core::Budget::unlimited(),
            stop_after_checkpoints: Some(1),
        };
        let profile = Profile::new(nproc, tags::name, tags::is_comm);
        let mut stitched = String::from(CSV_HEADER);
        let mut segments = 0u32;
        let final_time = loop {
            let (buf, tl, extra) = observers(nproc, &profile);
            let (platform, hosts) = platform_hosts(nproc);
            let out = if segments == 0 {
                replay_files_checkpointed(&dir, nproc, platform, &hosts, &cfg, Some(extra), &policy)
            } else {
                resume_files(&dir, nproc, platform, &hosts, &cfg, Some(extra), &ck, Some(&policy))
            }
            .expect("checkpointed segment");
            tl.finish().unwrap();
            let csv = String::from_utf8(buf.contents()).unwrap();
            stitched.push_str(csv.strip_prefix(CSV_HEADER).expect("segment CSV header"));
            segments += 1;
            prop_assert!(segments < 10_000, "runaway segment loop");
            match out.status {
                CheckpointedStatus::Finished { simulated_time } => break simulated_time,
                CheckpointedStatus::Paused { .. } => {}
            }
        };

        prop_assert_eq!(final_time.to_bits(), reference.simulated_time.to_bits());
        prop_assert_eq!(&stitched, &ref_csv);
        prop_assert_eq!(&profile.snapshot().to_json(), &ref_profile_json);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A damaged input under `--degraded` semantics never beats the intact
/// one: the completeness ratio of a truncated trace set is below 1, the
/// ratio of the intact set is exactly 1, and neither replay panics.
#[test]
fn degraded_ratio_is_exact_on_intact_and_below_one_on_truncated() {
    let nproc = 3;
    let ops: Vec<(usize, usize, u32, bool)> =
        (0..12).map(|i| (i % 3, (i + 1) % 3, 1000 + i as u32, i % 2 == 0)).collect();
    let trace = balanced_trace(nproc, &ops);
    let dir = std::env::temp_dir().join(format!("titr-resume-deg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    trace.save_per_process(&dir).unwrap();
    let cfg = ReplayConfig::default();

    let (platform, hosts) = platform_hosts(nproc);
    let intact = titr::replay::replay_files_degraded(&dir, nproc, platform, &hosts, &cfg, None)
        .expect("intact degraded replay");
    assert!((intact.completeness() - 1.0).abs() < f64::EPSILON);
    assert!(!intact.is_partial());

    let victim = dir.join(titr::trace::trace::process_trace_filename(1));
    let body = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &body[..body.len() * 2 / 3]).unwrap();
    let (platform, hosts) = platform_hosts(nproc);
    let cut = titr::replay::replay_files_degraded(&dir, nproc, platform, &hosts, &cfg, None)
        .expect("cut degraded replay");
    assert!(cut.completeness() < 1.0, "ratio {}", cut.completeness());
    assert!(cut.is_partial());
    assert_eq!(cut.ranks.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
