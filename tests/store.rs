//! Integration tests for the `TIB2` segmented trace store: the
//! differential identity (store replay ≡ fully-resident replay, bit
//! for bit), memory-budget governance (tight budgets page, impossible
//! budgets fail typed), and the fault-closure property — **every**
//! segment-level damage class the injector can produce is either
//! detected fail-closed (typed error naming the damage) or salvaged by
//! degraded replay with a completeness ratio strictly below 1. No
//! injected fault may ever yield a silently wrong simulated time.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use titr::extract::faultinject::Injector;
use titr::platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};
use titr::replay::{replay_compact, replay_store, replay_store_degraded, ReplayConfig};
use titr::simkern::resource::HostId;
use titr::simkern::Platform;
use titr::trace::tib2::{write_compact_atomic, Tib2Store};
use titr::trace::{Action, CompactTrace, MemBudget, TiTrace};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("titr-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn testbed(np: usize) -> (Platform, Vec<HostId>) {
    let spec = ClusterSpec {
        id: "mycluster".into(),
        prefix: "mycluster-".into(),
        suffix: ".mysite.fr".into(),
        count: np,
        power: 1.17e9,
        cores: 1,
        bw: 1.25e8,
        lat: 16.67e-6,
        bb_bw: 1.25e9,
        bb_lat: 16.67e-6,
        topology: ClusterTopology::Flat,
    };
    (PlatformDesc::single(spec).build(), (0..np as u32).map(HostId).collect())
}

/// A deadlock-free ring trace exercising every store column: tags,
/// peers, volumes (including NaN receives) and the side table.
fn ring_trace(np: usize, iters: usize) -> CompactTrace {
    let mut t = TiTrace::new(np);
    for rank in 0..np {
        t.push(rank, Action::CommSize { nproc: np });
        for i in 0..iters {
            t.push(rank, Action::Compute { flops: 1e5 + i as f64 });
            t.push(rank, Action::Isend { dst: (rank + 1) % np, bytes: 1024.0 });
            t.push(rank, Action::Recv { src: (rank + np - 1) % np, bytes: None });
            t.push(rank, Action::Wait);
            if i % 5 == 2 {
                t.push(rank, Action::AllReduce { vcomm: 64.0, vcomp: 1e4 });
            }
        }
    }
    CompactTrace::from_trace(&t).unwrap()
}

fn write_store(dir: &Path, trace: &CompactTrace, seg: usize) -> PathBuf {
    let p = dir.join("trace.tib2");
    write_compact_atomic(&p, trace, seg).unwrap();
    p
}

/// The acceptance identity: a generator-fed store replayed under a
/// budget a fraction of its decoded size matches the fully-resident
/// CompactTrace replay bit for bit.
#[test]
fn budgeted_store_replay_is_bit_identical_to_resident_replay() {
    let d = tmp("diff");
    let trace = ring_trace(4, 400);
    let path = write_store(&d, &trace, 64);
    let cfg = ReplayConfig::default();

    let (p1, h1) = testbed(4);
    let resident = replay_compact(&Arc::new(trace), p1, &h1, &cfg).unwrap();

    let store = Arc::new(Tib2Store::open(&path).unwrap());
    let (p2, h2) = testbed(4);
    // ~8 decoded segments of headroom: the replay must page, not hold.
    let out = replay_store(&store, Arc::new(MemBudget::new(8 * 1200)), p2, &h2, &cfg).unwrap();

    assert_eq!(resident.simulated_time.to_bits(), out.simulated_time.to_bits());
    assert_eq!(resident.actions_replayed, out.actions_replayed);
    let _ = std::fs::remove_dir_all(&d);
}

/// A budget smaller than a single decoded segment can never make
/// progress: the replay must refuse with the typed memory error, not
/// spin or OOM.
#[test]
fn impossible_budget_is_a_typed_memory_error() {
    let d = tmp("oom");
    let trace = ring_trace(3, 200);
    let path = write_store(&d, &trace, 128);
    let store = Arc::new(Tib2Store::open(&path).unwrap());
    let (p, h) = testbed(3);
    let err =
        replay_store(&store, Arc::new(MemBudget::new(64)), p, &h, &ReplayConfig::default())
            .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("memory budget"), "typed budget refusal expected: {msg}");
    let _ = std::fs::remove_dir_all(&d);
}

/// Damaging one rank's tail segment degrades exactly that rank, with
/// the completeness ratio computed from the footer index.
#[test]
fn degraded_replay_quantifies_the_salvage() {
    let d = tmp("deg");
    let trace = ring_trace(3, 300);
    let path = write_store(&d, &trace, 64);
    let clean = Tib2Store::open(&path).unwrap();
    let expected = clean.num_actions();
    // Zero the tail of rank 1's last segment (torn write).
    let meta = *clean.segment_meta(1, clean.num_segments(1) - 1).unwrap();
    drop(clean);
    let mut bytes = std::fs::read(&path).unwrap();
    let end = meta.offset as usize + 16 + meta.payload_len as usize;
    for b in &mut bytes[end - 32..end] {
        *b = 0xAA;
    }
    std::fs::write(&path, &bytes).unwrap();

    let store = Arc::new(Tib2Store::open(&path).unwrap());
    let (p, h) = testbed(3);
    let out = replay_store_degraded(
        &store,
        Arc::new(MemBudget::unlimited()),
        p,
        &h,
        &ReplayConfig::default(),
        None,
    )
    .unwrap();
    assert_eq!(out.ranks.len(), 1, "exactly one rank degraded: {:?}", out.ranks);
    assert_eq!(out.ranks[0].rank, 1);
    assert!(out.completeness() < 1.0);
    assert_eq!(out.actions_expected, expected);
    let _ = std::fs::remove_dir_all(&d);
}

proptest! {
    /// Fault closure over the injector's segment-level damage classes:
    /// for any seed and class, if the injector changed the file at
    /// all, the damage is either refused at open (typed), refused by
    /// strict replay (typed), or salvaged by degraded replay with
    /// completeness < 1 — and a strict replay that fails must never
    /// have been preceded by a clean open serving wrong data.
    #[test]
    fn every_injected_segment_fault_is_detected_or_quantified(
        seed in 1u64..5000,
        class in 0u8..3,
    ) {
        let d = tmp(&format!("closure-{seed}-{class}"));
        let trace = ring_trace(3, 150);
        let clean_path = write_store(&d, &trace, 64);
        let clean_bytes = std::fs::read(&clean_path).unwrap();
        let victim = d.join("victim.tib2");
        std::fs::write(&victim, &clean_bytes).unwrap();

        let mut inj = Injector::new(seed);
        let injected = match class {
            0 => inj.flip_segment_bit(&victim),
            1 => inj.tear_segment(&victim),
            _ => inj.truncate_footer(&victim),
        };
        prop_assert!(injected.is_ok(), "injection must not error: {injected:?}");

        let damaged = std::fs::read(&victim).unwrap() != clean_bytes;
        match Tib2Store::open(&victim) {
            Err(_) => {
                // Fail-closed at open: the footer classes land here.
                prop_assert!(damaged, "a no-op injection must not fail open");
            }
            Ok(store) => {
                let store = Arc::new(store);
                let (p, h) = testbed(3);
                let cfg = ReplayConfig::default();
                let strict = replay_store(
                    &store, Arc::new(MemBudget::unlimited()), p, &h, &cfg);
                let (p2, h2) = testbed(3);
                let deg = replay_store_degraded(
                    &store, Arc::new(MemBudget::unlimited()), p2, &h2, &cfg, None);
                let deg = deg.expect("an open store always has a salvage boundary");
                if damaged {
                    prop_assert!(strict.is_err(),
                        "strict replay of a damaged store must fail closed");
                    prop_assert!(deg.completeness() < 1.0,
                        "degraded replay must quantify the loss");
                } else {
                    // The injection landed on bytes already equal to
                    // the damage pattern: nothing changed, nothing may
                    // be reported.
                    prop_assert!(strict.is_ok());
                    prop_assert!((deg.completeness() - 1.0).abs() < 1e-12);
                }
            }
        }
        std::fs::remove_dir_all(&d).unwrap();
    }
}
