//! Differential and property tests for PR 4's ingestion fast path.
//!
//! The contract under test: the parallel loader is **indistinguishable**
//! from the serial one — identical traces (byte-identical when
//! re-serialised), identical errors on every fault-injection class the
//! pipeline can suffer — and the compact struct-of-arrays representation
//! round-trips the boxed `Action` form losslessly.

use proptest::prelude::*;
use titr::extract::faultinject::Injector;
use titr::trace::compact::{tag, CompactTrace};
use titr::trace::trace::process_trace_filename;
use titr::trace::{ingest, Action, TiTrace};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("titr-ingest-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A ring trace with every keyword represented.
fn rich_trace(n: usize, iters: usize) -> TiTrace {
    let mut t = TiTrace::new(n);
    for r in 0..n {
        t.push(r, Action::CommSize { nproc: n });
    }
    for _ in 0..iters {
        for r in 0..n {
            t.push(r, Action::Compute { flops: 1.5e6 });
            t.push(r, Action::Isend { dst: (r + 1) % n, bytes: 1024.0 });
            t.push(r, Action::Irecv { src: (r + n - 1) % n, bytes: None });
            t.push(r, Action::Wait);
            t.push(r, Action::Wait);
            t.push(r, Action::Send { dst: (r + 1) % n, bytes: 2048.0 });
            t.push(r, Action::Recv { src: (r + n - 1) % n, bytes: Some(2048.0) });
            t.push(r, Action::Bcast { bytes: 4096.0 });
            t.push(r, Action::Reduce { vcomm: 8.0, vcomp: 1e5 });
            t.push(r, Action::AllReduce { vcomm: 8.0, vcomp: 1e5 });
            t.push(r, Action::Barrier);
        }
    }
    t
}

/// Serialises a trace to the merged text form, for byte-level diffing.
fn merged_bytes(t: &TiTrace) -> Vec<u8> {
    let mut buf = Vec::new();
    t.write_merged(&mut buf).unwrap();
    buf
}

#[test]
fn parallel_load_is_byte_identical_to_serial() {
    let dir = tmp("bytes");
    rich_trace(8, 20).save_per_process(&dir).unwrap();
    let serial = TiTrace::load_per_process(&dir).unwrap();
    for jobs in [0, 2, 5, 8, 32] {
        let parallel = ingest::load_per_process_jobs(&dir, jobs).unwrap();
        assert_eq!(parallel, serial, "jobs={jobs}");
        assert_eq!(merged_bytes(&parallel), merged_bytes(&serial), "jobs={jobs}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Both loaders must fail identically on a truncated rank file (the
/// tail cut mid-line makes the last line unparseable).
#[test]
fn truncation_fails_identically_on_both_loaders() {
    let dir = tmp("trunc");
    rich_trace(6, 10).save_per_process(&dir).unwrap();
    Injector::new(0x7A).truncate_file(&dir.join(process_trace_filename(3))).unwrap();
    let serial = TiTrace::load_per_process(&dir);
    let parallel = ingest::load_per_process_jobs(&dir, 4);
    match (serial, parallel) {
        (Err(s), Err(p)) => {
            assert_eq!(s.kind(), p.kind());
            assert_eq!(s.to_string(), p.to_string());
        }
        // A truncation can land exactly on a line boundary, leaving a
        // shorter but well-formed file: then both must succeed equally.
        (Ok(s), Ok(p)) => assert_eq!(s, p),
        (s, p) => panic!("loaders disagree: serial {s:?} vs parallel {p:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A flipped bit either corrupts a keyword/number (parse error on both
/// loaders, same message) or flips a digit silently (same trace on
/// both). With this seed set, both cases occur across the sweep.
#[test]
fn bit_flips_fail_or_survive_identically() {
    for seed in 0..8u64 {
        let dir = tmp(&format!("flip{seed}"));
        rich_trace(4, 6).save_per_process(&dir).unwrap();
        let victim = dir.join(process_trace_filename((seed % 4) as usize));
        Injector::new(seed).flip_bit(&victim).unwrap();
        let serial = TiTrace::load_per_process(&dir);
        let parallel = ingest::load_per_process_jobs(&dir, 3);
        match (serial, parallel) {
            (Err(s), Err(p)) => {
                assert_eq!(s.kind(), p.kind(), "seed {seed}");
                assert_eq!(s.to_string(), p.to_string(), "seed {seed}");
            }
            (Ok(s), Ok(p)) => assert_eq!(s, p, "seed {seed}"),
            (s, p) => panic!("seed {seed}: loaders disagree: {s:?} vs {p:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Dropping a rank's file ends discovery at the same point for both
/// loaders (dropping rank 0 is the NotFound case for both).
#[test]
fn dropped_ranks_fail_identically_on_both_loaders() {
    for victim in [0usize, 2, 5] {
        let dir = tmp(&format!("drop{victim}"));
        rich_trace(6, 4).save_per_process(&dir).unwrap();
        Injector::new(9).drop_rank(&dir, victim).unwrap();
        let serial = TiTrace::load_per_process(&dir);
        let parallel = ingest::load_per_process_jobs(&dir, 4);
        match (serial, parallel) {
            (Err(s), Err(p)) => {
                assert_eq!(s.kind(), p.kind(), "victim {victim}");
                assert_eq!(s.to_string(), p.to_string(), "victim {victim}");
            }
            (Ok(s), Ok(p)) => {
                assert_eq!(s, p, "victim {victim}");
                assert_eq!(s.num_processes(), victim, "discovery stops at the gap");
            }
            (s, p) => panic!("victim {victim}: loaders disagree: {s:?} vs {p:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The lint loader's parallel path produces the same report on damaged
/// directories as the serial one — total loading included.
#[test]
fn lint_reports_are_identical_on_damaged_dirs() {
    let dir = tmp("lintpar");
    rich_trace(6, 4).save_per_process(&dir).unwrap();
    let mut inj = Injector::new(0xBAD);
    inj.truncate_file(&dir.join(process_trace_filename(1))).unwrap();
    inj.drop_rank(&dir, 4).unwrap();
    let cfg = titr::lint::LintConfig::default();
    let serial = titr::lint::lint_dir(&dir, 6, &cfg);
    for jobs in [0, 2, 6] {
        let par = titr::lint::lint_dir_jobs(&dir, 6, &cfg, jobs);
        assert_eq!(par.to_json(), serial.to_json(), "jobs={jobs}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Streaming file replay and the parallel compact fast path agree on
/// the simulated time to the last bit.
#[test]
fn compact_fast_path_replays_identically_to_streaming() {
    use titr::platform::{desc::PlatformDesc, presets};
    use titr::simkern::resource::HostId;
    let dir = tmp("fastpath");
    let n = 8;
    rich_trace(n, 6).save_per_process(&dir).unwrap();
    let hosts: Vec<HostId> = (0..n as u32).map(HostId).collect();
    let cfg = titr::replay::ReplayConfig::default();
    let mk = || PlatformDesc::single(presets::bordereau_one_core(n)).build();
    let streaming = titr::replay::replay_files(&dir, n, mk(), &hosts, &cfg).unwrap();
    let fast =
        titr::replay::replay_files_jobs(&dir, n, 0, mk(), &hosts, &cfg, None).unwrap();
    assert_eq!(streaming.simulated_time, fast.simulated_time);
    assert_eq!(streaming.actions_replayed, fast.actions_replayed);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn arb_action() -> impl Strategy<Value = Action> {
    let vol = 0.0..1e9f64;
    let pid = 0usize..16;
    prop_oneof![
        vol.clone().prop_map(|flops| Action::Compute { flops }),
        (pid.clone(), vol.clone()).prop_map(|(dst, bytes)| Action::Send { dst, bytes }),
        (pid.clone(), vol.clone()).prop_map(|(dst, bytes)| Action::Isend { dst, bytes }),
        pid.clone().prop_map(|src| Action::Recv { src, bytes: None }),
        (pid.clone(), vol.clone()).prop_map(|(src, b)| Action::Recv { src, bytes: Some(b) }),
        pid.clone().prop_map(|src| Action::Irecv { src, bytes: None }),
        vol.clone().prop_map(|bytes| Action::Bcast { bytes }),
        (vol.clone(), vol.clone()).prop_map(|(vcomm, vcomp)| Action::Reduce { vcomm, vcomp }),
        (vol.clone(), vol).prop_map(|(vcomm, vcomp)| Action::AllReduce { vcomm, vcomp }),
        Just(Action::Barrier),
        (1usize..1024).prop_map(|nproc| Action::CommSize { nproc }),
        Just(Action::Wait),
    ]
}

/// `TIB2` ingestion is `--jobs`-invariant end to end: converting a
/// trace directory to a store and loading a store back are both
/// byte-identical whatever the worker count (the parallel paths fan
/// out over ranks and segments respectively, but stitch serially).
#[test]
fn tib2_conversion_and_load_are_jobs_invariant() {
    use titr::trace::tib2::{convert_dir_atomic, load_compact_store, Tib2Store};

    let trace = rich_trace(5, 40);
    let dir = tmp("tib2-jobs");
    trace.save_per_process(&dir).unwrap();

    let mut stores = Vec::new();
    for jobs in [1usize, 2, 4] {
        let dest = dir.join(format!("j{jobs}.tib2"));
        let s = convert_dir_atomic(&dir, 5, &dest, 32, jobs).unwrap();
        stores.push((dest, s.fingerprint));
    }
    let baseline = std::fs::read(&stores[0].0).unwrap();
    for (path, fp) in &stores[1..] {
        assert_eq!(std::fs::read(path).unwrap(), baseline, "conversion differs by --jobs");
        assert_eq!(*fp, stores[0].1);
    }

    // Loading back: serial and parallel decodes re-serialize to the
    // same bytes as the store itself.
    let store = Tib2Store::open(&stores[0].0).unwrap();
    for jobs in [1usize, 3, 8] {
        let loaded = load_compact_store(&store, jobs).unwrap();
        let re = dir.join(format!("re{jobs}.tib2"));
        titr::trace::tib2::write_compact_atomic(&re, &loaded, 32).unwrap();
        assert_eq!(std::fs::read(&re).unwrap(), baseline, "load differs at jobs={jobs}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// CompactTrace round-trips any boxed trace losslessly.
    #[test]
    fn compact_roundtrips_arbitrary_traces(
        actions in proptest::collection::vec((0usize..6, arb_action()), 0..300)
    ) {
        let mut t = TiTrace::new(6);
        for (pid, a) in actions {
            t.push(pid, a);
        }
        let c = CompactTrace::from_trace(&t).unwrap();
        prop_assert_eq!(c.num_actions(), t.num_actions());
        prop_assert_eq!(c.to_trace(), t);
    }

    /// Per-action access agrees with the boxed form, and every tag maps
    /// back to the action's own keyword.
    #[test]
    fn compact_get_matches_boxed_indexing(
        actions in proptest::collection::vec(arb_action(), 1..100)
    ) {
        let mut t = TiTrace::new(1);
        for a in &actions {
            t.push(0, *a);
        }
        let c = CompactTrace::from_trace(&t).unwrap();
        for (i, a) in actions.iter().enumerate() {
            prop_assert_eq!(c.get(0, i), Some(*a));
            prop_assert_eq!(tag::keyword(tag::of(a)), Some(a.keyword()));
        }
        prop_assert_eq!(c.get(0, actions.len()), None);
    }

    /// The parallel loader reproduces the serial loader on arbitrary
    /// well-formed traces, whatever the worker count.
    #[test]
    fn parallel_loader_matches_serial_on_arbitrary_traces(
        actions in proptest::collection::vec((0usize..4, arb_action()), 1..200),
        jobs in 2usize..8
    ) {
        let mut t = TiTrace::new(4);
        for (pid, a) in actions {
            t.push(pid, a);
        }
        let dir = tmp(&format!("prop{jobs}-{}", t.num_actions()));
        t.save_per_process(&dir).unwrap();
        let serial = TiTrace::load_per_process(&dir).unwrap();
        let parallel = ingest::load_per_process_jobs(&dir, jobs).unwrap();
        prop_assert_eq!(&parallel, &serial);
        prop_assert_eq!(merged_bytes(&parallel), merged_bytes(&serial));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
