//! Conservation oracle for the time-resolved metrics engine
//! (docs/OBSERVABILITY.md): windowing must only *partition* the run,
//! never create or lose work.
//!
//! Every test replays a trace with a whole-run [`titr::obs::Profile`]
//! and a [`titr::obs::TimeResolved`] sink attached to the same engine,
//! then checks
//!
//! * the report's cumulative per-rank totals equal the profile's
//!   **bit for bit** (both fold the identical record stream in the
//!   identical order — any divergence is an accounting bug, so no
//!   epsilon is tolerated);
//! * per-window op counts are exact `u64` partitions of `total_ops`;
//! * per-window times/volumes sum back to the totals within float
//!   re-association slop only;
//! * the CSV stream agrees with the JSON report after a parse-back
//!   (floats are shortest-roundtrip, so parsing is lossless);
//!
//! under both windowing modes — fixed width plus phase boundaries, and
//! phase boundaries alone — on ring, stencil, allreduce-heavy, and LU
//! traces, and on proptest-generated deadlock-free round mixes.

use proptest::prelude::*;
use titr::npb::ring::RingConfig;
use titr::npb::stencil::StencilConfig;
use titr::npb::{program_trace, Class, LuConfig};
use titr::obs::{Profile, ProfileReport, TimeResReport, TimeResolved, WindowSpec};
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{replay_memory_observed, tags, ReplayConfig};
use titr::simkern::observer::Fanout;
use titr::simkern::resource::HostId;
use titr::trace::{Action, TiTrace};

/// Replays `trace` with a whole-run profile and a time-resolved sink on
/// the same engine; returns both reports plus the CSV stream.
fn replay_with(trace: &TiTrace, spec: WindowSpec) -> (ProfileReport, TimeResReport, String) {
    let np = trace.num_processes();
    let platform = PlatformDesc::single(presets::bordereau_one_core(np)).build();
    let hosts: Vec<HostId> = (0..np as u32).map(HostId).collect();
    let prof = Profile::new(np, tags::name, tags::is_comm);
    let tr = TimeResolved::new(Some(Vec::new()), np, spec, tags::is_comm, tags::is_collective)
        .expect("Vec<u8> writer cannot fail");
    let fan = Fanout::new().with(prof.sink()).with(tr.sink());
    replay_memory_observed(trace, platform, &hosts, &ReplayConfig::default(), Some(Box::new(fan)))
        .expect("replay of a well-formed test trace");
    let report = tr.finish().expect("Vec<u8> writer cannot fail");
    let csv = String::from_utf8(tr.into_writer().expect("all sinks dropped after the run"))
        .expect("CSV is UTF-8");
    (prof.snapshot(), report, csv)
}

/// The conservation contract (see the module docs).
fn assert_conserved(prof: &ProfileReport, rep: &TimeResReport, csv: &str, tag: &str) {
    assert_eq!(rep.num_ranks, prof.ranks.len(), "{tag}: rank count");
    assert_eq!(rep.total_ops, prof.total_ops, "{tag}: total ops");

    // Cumulative per-rank totals: bit-for-bit against the profile.
    for (r, (t, p)) in rep.ranks.iter().zip(&prof.ranks).enumerate() {
        assert_eq!(
            t.compute_time.to_bits(),
            p.compute_time.to_bits(),
            "{tag}: rank {r} compute_time {} vs profile {}",
            t.compute_time,
            p.compute_time
        );
        assert_eq!(
            t.comm_time.to_bits(),
            p.comm_time.to_bits(),
            "{tag}: rank {r} comm_time {} vs profile {}",
            t.comm_time,
            p.comm_time
        );
        assert_eq!(t.flops.to_bits(), p.flops.to_bits(), "{tag}: rank {r} flops");
        assert_eq!(t.bytes.to_bits(), p.bytes.to_bits(), "{tag}: rank {r} bytes");
        assert_eq!(t.compute_ops, p.compute_ops, "{tag}: rank {r} compute_ops");
        assert_eq!(t.comm_ops, p.comm_ops, "{tag}: rank {r} comm_ops");
    }

    // Per-window op counts partition total_ops exactly.
    let win_ops: u64 = rep.windows.iter().map(|w| w.compute_ops + w.comm_ops).sum();
    assert_eq!(win_ops, rep.total_ops, "{tag}: window ops partition");

    // Per-window times/volumes re-sum to the totals (re-association
    // slop only — the adds happen in a different grouping).
    let total_busy: f64 = prof.ranks.iter().map(|p| p.compute_time + p.comm_time).sum();
    let win_busy: f64 = rep.windows.iter().map(|w| w.compute_time + w.comm_time).sum();
    assert!(
        (win_busy - total_busy).abs() <= 1e-9 * total_busy.max(1.0),
        "{tag}: window busy {win_busy} != total busy {total_busy}"
    );

    // Windows are in time order and internally consistent.
    let mut prev_start = f64::NEG_INFINITY;
    for w in &rep.windows {
        assert!(w.start <= w.end, "{tag}: window {} start > end", w.index);
        assert!(w.start >= prev_start, "{tag}: window {} out of order", w.index);
        prev_start = w.start;
    }

    // The CSV stream carries the same mass: floats are printed
    // shortest-roundtrip, so a parse-back is lossless and the summed
    // ops/volumes must match the JSON report exactly.
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(titr::obs::CSV_HEADER), "{tag}: CSV header");
    let mut csv_rows = 0usize;
    let mut csv_ops = 0u64;
    let mut csv_busy = 0.0f64;
    for line in lines {
        let f: Vec<&str> = line.split(',').collect();
        assert_eq!(f.len(), 12, "{tag}: CSV arity in {line:?}");
        let t_comp: f64 = f[5].parse().expect("compute_time parses");
        let t_comm: f64 = f[6].parse().expect("comm_time parses");
        csv_ops += f[7].parse::<u64>().expect("compute_ops parses")
            + f[8].parse::<u64>().expect("comm_ops parses");
        csv_busy += t_comp + t_comm;
        csv_rows += 1;
    }
    assert_eq!(csv_rows, rep.windows.len() * rep.num_ranks, "{tag}: CSV row count");
    assert_eq!(csv_ops, rep.total_ops, "{tag}: CSV ops partition");
    assert!(
        (csv_busy - total_busy).abs() <= 1e-9 * total_busy.max(1.0),
        "{tag}: CSV busy {csv_busy} != total busy {total_busy}"
    );
}

/// Both windowing modes, against a width derived from a first pass (so
/// fixed windows actually subdivide the run).
fn assert_conserved_both_modes(trace: &TiTrace, tag: &str) {
    let (prof, rep, csv) = replay_with(trace, WindowSpec::phases_only());
    assert_conserved(&prof, &rep, &csv, &format!("{tag}/phases"));
    let width = (rep.simulated_time / 7.0).max(1e-9);
    let (prof, rep, csv) = replay_with(trace, WindowSpec { width: Some(width), phases: true });
    assert!(rep.windows.len() > 1, "{tag}/fixed: width {width} produced one window");
    assert_conserved(&prof, &rep, &csv, &format!("{tag}/fixed"));
}

#[test]
fn ring_traces_conserve() {
    for (nproc, iters) in [(2, 2), (4, 4)] {
        let cfg = RingConfig { nproc, iters, ..Default::default() };
        assert_conserved_both_modes(&cfg.trace(), &format!("ring{nproc}x{iters}"));
    }
}

#[test]
fn stencil_traces_conserve() {
    let cfg = StencilConfig { n: 64, px: 2, py: 2, iters: 3, check_every: 1, ..Default::default() };
    assert_conserved_both_modes(&cfg.trace(), "stencil2x2");
}

#[test]
fn allreduce_heavy_trace_conserves_and_opens_phase_windows() {
    let np = 6;
    let mut t = TiTrace::new(np);
    for rank in 0..np {
        t.push(rank, Action::CommSize { nproc: np });
        for i in 0..4 {
            t.push(rank, Action::Compute { flops: 1e7 * (rank + i + 1) as f64 });
            t.push(rank, Action::AllReduce { vcomm: 1e5, vcomp: 1e4 });
        }
        t.push(rank, Action::Barrier);
    }
    let (prof, rep, csv) = replay_with(&t, WindowSpec::phases_only());
    // Four allreduces + a barrier: phase detection must actually fire.
    assert!(rep.windows.len() >= 4, "phase windows missing: {}", rep.windows.len());
    assert_conserved(&prof, &rep, &csv, "allreduce/phases");
    assert_conserved_both_modes(&t, "allreduce");
}

#[test]
fn lu_trace_conserves() {
    let lu = LuConfig::new(Class::S, 4).with_itmax(2);
    let trace = program_trace(&lu.program(), 4);
    assert_conserved_both_modes(&trace, "lu.S.4");
}

#[test]
fn report_and_csv_are_deterministic_across_runs() {
    let cfg = RingConfig { nproc: 4, iters: 3, ..Default::default() };
    let trace = cfg.trace();
    let spec = WindowSpec { width: Some(1e-3), phases: true };
    let (_, rep_a, csv_a) = replay_with(&trace, spec);
    let (_, rep_b, csv_b) = replay_with(&trace, spec);
    assert_eq!(rep_a.to_json(), rep_b.to_json());
    assert_eq!(csv_a, csv_b);
}

/// One deadlock-free "round" of activity shared by every rank (the
/// analyze_oracle generator, reused for windowing).
#[derive(Debug, Clone)]
enum Round {
    Compute(Vec<f64>),
    Bcast(f64),
    AllReduce(f64, f64),
    Barrier,
    /// Ring shift: Irecv from prev (pre-posted), send to next, wait.
    Shift(f64),
}

fn arb_round(np: usize) -> impl Strategy<Value = Round> {
    let vol = 0.0..1e7f64;
    prop_oneof![
        proptest::collection::vec(0.0..1e8f64, np..np + 1).prop_map(Round::Compute),
        vol.clone().prop_map(Round::Bcast),
        (vol.clone(), vol.clone()).prop_map(|(c, f)| Round::AllReduce(c, f)),
        Just(Round::Barrier),
        vol.prop_map(Round::Shift),
    ]
}

fn trace_of_rounds(np: usize, rounds: &[Round]) -> TiTrace {
    let mut t = TiTrace::new(np);
    for rank in 0..np {
        t.push(rank, Action::CommSize { nproc: np });
    }
    for round in rounds {
        for rank in 0..np {
            match round {
                Round::Compute(flops) => t.push(rank, Action::Compute { flops: flops[rank] }),
                Round::Bcast(b) => t.push(rank, Action::Bcast { bytes: *b }),
                Round::AllReduce(c, f) => t.push(rank, Action::AllReduce { vcomm: *c, vcomp: *f }),
                Round::Barrier => t.push(rank, Action::Barrier),
                Round::Shift(b) => {
                    t.push(rank, Action::Irecv { src: (rank + np - 1) % np, bytes: None });
                    t.push(rank, Action::Send { dst: (rank + 1) % np, bytes: *b });
                    t.push(rank, Action::Wait);
                }
            }
        }
    }
    t
}

proptest! {
    /// Random deadlock-free traces conserve under both windowing modes.
    #[test]
    fn random_traces_conserve(
        np in 2usize..5,
        seed_rounds in proptest::collection::vec(arb_round(8), 1..6),
    ) {
        let rounds: Vec<Round> = seed_rounds
            .into_iter()
            .map(|r| match r {
                Round::Compute(mut v) => {
                    v.truncate(np);
                    v.resize(np, 0.0);
                    Round::Compute(v)
                }
                other => other,
            })
            .collect();
        let trace = trace_of_rounds(np, &rounds);
        let (prof, rep, csv) = replay_with(&trace, WindowSpec::phases_only());
        assert_conserved(&prof, &rep, &csv, "proptest/phases");
        let width = (rep.simulated_time / 5.0).max(1e-9);
        let (prof, rep, csv) =
            replay_with(&trace, WindowSpec { width: Some(width), phases: true });
        assert_conserved(&prof, &rep, &csv, "proptest/fixed");
    }
}
