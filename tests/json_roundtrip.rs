//! The hand-rolled JSON emitters (titlint reports, titobs metrics,
//! titanalyze reports) must always produce *valid* JSON — control
//! characters escaped, non-finite floats mapped to `null` — no matter
//! what ends up inside a finding message or a metrics note. The
//! validator is `tit-serve`'s own strict parser: if the daemon could
//! not re-read an artifact, the emitter is broken.

use proptest::prelude::*;
use tit_serve::json::parse;
use titr::lint::{Finding, LintCode, Location, Report, Severity};
use titr::obs::Metrics;

/// Strings that stress the escaper: quotes, backslashes, newlines, raw
/// control characters, and multi-byte UTF-8.
fn arb_nasty_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\r'),
            Just('\t'),
            Just('\u{0}'),
            Just('\u{1}'),
            Just('\u{1f}'),
            Just('é'),
            Just('𝕊'),
            Just('a'),
            Just('/'),
            Just('{'),
        ],
        0..24,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Floats including the non-finite values the emitters must neutralize.
fn arb_float() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        Just(-0.0),
        -1e300..1e300f64,
    ]
}

proptest! {
    /// A lint report with arbitrary messages and file names parses back.
    #[test]
    fn lint_report_json_is_always_parseable(
        msgs in proptest::collection::vec((arb_nasty_string(), arb_nasty_string()), 0..6),
    ) {
        let findings = msgs
            .iter()
            .enumerate()
            .map(|(i, (msg, file))| Finding {
                code: LintCode::SelfMessage,
                severity: Severity::Warn,
                message: msg.clone(),
                primary: Location {
                    rank: i,
                    index: Some(i),
                    keyword: Some("send"),
                    file: Some(file.clone()),
                    line: Some(i + 1),
                },
                related: vec![],
            })
            .collect::<Vec<_>>();
        let n = findings.len();
        let report = Report { findings, num_processes: n.max(1), num_actions: n };
        let text = report.to_json();
        let json = parse(&text).expect("lint JSON must parse");
        let arr = json.get("findings").and_then(|f| f.as_arr()).expect("findings array");
        prop_assert_eq!(arr.len(), n);
        for (i, (msg, _)) in msgs.iter().enumerate() {
            let got = arr[i].get("message").and_then(|m| m.as_str()).expect("message string");
            prop_assert_eq!(got, msg.as_str());
        }
    }

    /// Metrics with arbitrary keys, notes, and (possibly non-finite)
    /// values parse back; non-finite values read back as null.
    #[test]
    fn metrics_json_is_always_parseable(
        entries in proptest::collection::vec((arb_nasty_string(), arb_float()), 0..6),
        notes in proptest::collection::vec((arb_nasty_string(), arb_nasty_string()), 0..4),
    ) {
        // Duplicate generated keys overwrite (set_value semantics);
        // dedupe the expectations the same way.
        let entries: std::collections::BTreeMap<String, f64> =
            entries.into_iter().map(|(k, v)| (format!("v.{k}"), v)).collect();
        let notes: std::collections::BTreeMap<String, String> =
            notes.into_iter().map(|(k, t)| (format!("n.{k}"), t)).collect();
        let m = Metrics::new();
        m.incr("counter.one", 7);
        for (k, v) in &entries {
            m.set_value(k, *v);
        }
        for (k, text) in &notes {
            m.set_note(k, text);
        }
        let out = m.to_json();
        let json = parse(&out).expect("metrics JSON must parse");
        prop_assert_eq!(
            json.get("counters").and_then(|c| c.get("counter.one")).and_then(tit_serve::json::Json::as_u64),
            Some(7)
        );
        // Finite values round-trip; non-finite ones became null (so the
        // file stays machine-readable instead of carrying bare NaN).
        let vals = json.get("values").expect("values object");
        for (k, v) in &entries {
            let got = vals.get(k).expect("value present").as_f64();
            if v.is_finite() {
                prop_assert_eq!(got, Some(*v));
            } else {
                prop_assert_eq!(got, None);
            }
        }
        let ns = json.get("notes").expect("notes object");
        for (k, text) in &notes {
            let got = ns.get(k).and_then(|v| v.as_str());
            prop_assert_eq!(got, Some(text.as_str()));
        }
    }
}

/// The analyzer report JSON parses too, with bounds where expected.
#[test]
fn analyze_report_json_is_parseable() {
    use titr::analyze::{analyze, AnalyzeConfig};
    use titr::npb::ring::RingConfig;
    use titr::platform::deployment::Deployment;
    use titr::platform::desc::PlatformDesc;
    use titr::platform::presets;

    let trace = RingConfig::default().trace();
    let np = trace.num_processes();
    let desc = PlatformDesc::single(presets::bordereau_one_core(np));
    let platform = desc.build();
    let hosts = Deployment::round_robin(&desc.host_names(), np).host_ids(&platform);
    let a = analyze(&trace, &platform, &hosts, &AnalyzeConfig::default()).unwrap();
    let json = parse(&a.to_json()).expect("analyze JSON must parse");
    assert_eq!(json.get("schema").and_then(|s| s.as_str()), Some("tit-analyze-v1"));
    let lower = json.get("bounds").and_then(|b| b.get("lower_s")).and_then(tit_serve::json::Json::as_f64);
    let upper = json.get("bounds").and_then(|b| b.get("upper_s")).and_then(tit_serve::json::Json::as_f64);
    assert!(lower.unwrap() > 0.0 && upper.unwrap() >= lower.unwrap());
    let ranks = json.get("ranks").and_then(|r| r.as_arr()).unwrap();
    assert_eq!(ranks.len(), np);
}
