//! Differential oracle for the scale-invariant replay kernel
//! (docs/KERNEL.md).
//!
//! The engine ships two kernel implementations behind
//! [`titr::simkern::KernelMode`]: the `Reference` kernel (full LMM
//! solve after every state change, eager completion re-keying, binary
//! event heap) and the `Incremental` kernel (dirty-island partial
//! solves, lazy completion re-keying, pairing-heap event queue). The
//! incremental kernel's entire claim is that it produces the **same
//! simulation, bit for bit** — not "close enough": simulated times and
//! the full completion-ordered timeline must be identical down to the
//! last float bit on every workload. These tests enforce that claim on
//! the paper's LU benchmark plus the repo's other generators (ring,
//! stencil, allreduce-heavy CG) under all three network models, and on
//! randomized balanced traces via proptest.

use proptest::prelude::*;
use titr::npb::ring::RingConfig;
use titr::npb::stencil::StencilConfig;
use titr::npb::{CgConfig, Class, LuConfig};
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::collectives::CollectiveAlgo;
use titr::replay::{replay_memory, ReplayConfig};
use titr::simkern::netmodel::NetworkConfig;
use titr::simkern::resource::HostId;
use titr::simkern::KernelMode;
use titr::trace::{Action, TiTrace};

/// A replay outcome reduced to exactly-comparable integers: the
/// simulated time's bit pattern, the action count, and the timeline as
/// `(actor, tag, start_bits, end_bits, volume_bits)` rows in delivery
/// order. Two kernels agree iff these are `==`.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    simulated_time_bits: u64,
    actions_replayed: u64,
    timeline: Vec<(usize, u32, u64, u64, u64)>,
}

fn replay_fingerprint(trace: &TiTrace, cfg: &ReplayConfig) -> Fingerprint {
    let nproc = trace.num_processes();
    let desc = PlatformDesc::single(presets::bordereau_one_core(nproc));
    let hosts: Vec<HostId> = (0..nproc as u32).map(HostId).collect();
    let out = replay_memory(trace, desc.build(), &hosts, cfg).expect("replay succeeds");
    Fingerprint {
        simulated_time_bits: out.simulated_time.to_bits(),
        actions_replayed: out.actions_replayed,
        timeline: out
            .records
            .expect("collect_records was set")
            .iter()
            .map(|r| (r.actor, r.tag, r.start.to_bits(), r.end.to_bits(), r.volume.to_bits()))
            .collect(),
    }
}

/// Replays `trace` under both kernels and asserts the fingerprints are
/// identical. Returns the (shared) simulated time so callers can add
/// workload-specific sanity checks.
fn assert_modes_agree(trace: &TiTrace, network: NetworkConfig, algo: CollectiveAlgo) -> f64 {
    let cfg = |kernel| ReplayConfig {
        network: network.clone(),
        algo,
        collect_records: true,
        kernel_profile: false,
        kernel,
    };
    let reference = replay_fingerprint(trace, &cfg(KernelMode::Reference));
    let incremental = replay_fingerprint(trace, &cfg(KernelMode::Incremental));
    assert!(!reference.timeline.is_empty(), "oracle replayed an empty timeline");
    assert_eq!(
        reference, incremental,
        "incremental kernel diverged from the full-solve reference"
    );
    f64::from_bits(reference.simulated_time_bits)
}

#[test]
fn ring_agrees_across_kernels_and_networks() {
    let trace = RingConfig { nproc: 8, iters: 6, flops: 2e6, bytes: 8e5 }.trace();
    for network in
        [NetworkConfig::mpi_cluster(), NetworkConfig::default(), NetworkConfig::constant()]
    {
        let t = assert_modes_agree(&trace, network, CollectiveAlgo::Binomial);
        assert!(t > 0.0);
    }
}

#[test]
fn stencil_agrees_across_kernels() {
    let cfg = StencilConfig { n: 256, px: 2, py: 2, iters: 8, check_every: 2, ..Default::default() };
    let t = assert_modes_agree(&cfg.trace(), NetworkConfig::mpi_cluster(), CollectiveAlgo::Binomial);
    assert!(t > 0.0);
}

#[test]
fn allreduce_heavy_cg_agrees_across_kernels() {
    let cfg = CgConfig::new(Class::S, 8).with_niter(2);
    let trace = titr::npb::program_trace(&cfg.program(), 8);
    for algo in [CollectiveAlgo::Binomial, CollectiveAlgo::Flat] {
        let t = assert_modes_agree(&trace, NetworkConfig::mpi_cluster(), algo);
        assert!(t > 0.0);
    }
}

#[test]
fn lu_agrees_across_kernels() {
    let cfg = LuConfig::new(Class::S, 8).with_itmax(3);
    let trace = titr::npb::program_trace(&cfg.program(), 8);
    let t = assert_modes_agree(&trace, NetworkConfig::mpi_cluster(), CollectiveAlgo::Binomial);
    assert!(t > 0.0);
}

/// Same balanced-trace generator contract as `proptests.rs`: every send
/// is matched, per-pair ordering is FIFO, every Irecv is waited on.
fn balanced_trace(nproc: usize, ops: &[(usize, usize, u32, bool)]) -> TiTrace {
    let mut t = TiTrace::new(nproc);
    for r in 0..nproc {
        t.push(r, Action::CommSize { nproc });
    }
    for &(src, dst, vol, nonblocking) in ops {
        let src = src % nproc;
        let dst = dst % nproc;
        if src == dst {
            t.push(src, Action::Compute { flops: vol as f64 });
            continue;
        }
        let bytes = vol as f64;
        t.push(src, Action::Send { dst, bytes });
        if nonblocking {
            t.push(dst, Action::Irecv { src, bytes: None });
            t.push(dst, Action::Wait);
        } else {
            t.push(dst, Action::Recv { src, bytes: None });
        }
    }
    for r in 0..nproc {
        t.push(r, Action::Barrier);
    }
    t
}

proptest! {
    /// Random balanced traces replay bit-identically under both
    /// kernels — times and full timelines. This is the adversarial leg
    /// of the oracle: arbitrary message graphs, mixed blocking and
    /// nonblocking receives, degenerate volumes.
    #[test]
    fn random_traces_agree_across_kernels(
        nproc in 2usize..6,
        ops in proptest::collection::vec(
            (0usize..8, 0usize..8, 1u32..2_000_000, proptest::bool::ANY),
            1..50,
        ),
    ) {
        let t = balanced_trace(nproc, &ops);
        let time = assert_modes_agree(&t, NetworkConfig::mpi_cluster(), CollectiveAlgo::Binomial);
        prop_assert!(time.is_finite() && time > 0.0);
    }
}
