//! The static-analysis differential oracle: for every trace, platform,
//! and network model, `tit-analyze`'s makespan bounds must sandwich the
//! replay engine's simulated time (`lower <= simulated <= upper`).
//!
//! This is the contract DESIGN.md §5h documents: the lower bound is the
//! weighted critical path of the happens-before graph (no resource can
//! make an action finish before all its dependencies plus its own best
//! case), the upper bound is fully serialized execution (every action in
//! sequence, every flow charged its worst shared-link rate). A replay
//! that escapes the sandwich means either the analyzer's cost model or
//! the engine has drifted — both are bugs.

use proptest::prelude::*;
use titr::analyze::{analyze, bounds, AnalyzeConfig, Pattern};
use titr::npb::ring::RingConfig;
use titr::npb::stencil::StencilConfig;
use titr::npb::{program_trace, Class, LuConfig};
use titr::platform::deployment::Deployment;
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::collectives::CollectiveAlgo;
use titr::replay::{replay_memory, ReplayConfig};
use titr::simkern::netmodel::NetworkConfig;
use titr::trace::{Action, TiTrace};

/// Relative slop for float drift between the analyzer's and the
/// engine's arithmetic over the same model.
const EPS: f64 = 1e-9;

type NamedNet = (&'static str, fn() -> NetworkConfig);

fn networks() -> [NamedNet; 3] {
    [
        ("mpi", NetworkConfig::mpi_cluster),
        ("flow", NetworkConfig::default),
        ("constant", NetworkConfig::constant),
    ]
}

/// Replays `trace` and checks the sandwich under every network model ×
/// both collective algorithms. Returns the analyses for extra checks.
fn assert_sandwich(trace: &TiTrace, tag: &str) {
    let np = trace.num_processes();
    let desc = PlatformDesc::single(presets::bordereau_one_core(np));
    let deployment = Deployment::round_robin(&desc.host_names(), np);
    for (net_name, net) in networks() {
        for algo in [CollectiveAlgo::Binomial, CollectiveAlgo::Flat] {
            let platform = desc.build();
            let hosts = deployment.host_ids(&platform);
            let cfg = AnalyzeConfig { network: net(), algo, ..Default::default() };
            let (lower, upper) = bounds(trace, &platform, &hosts, &cfg)
                .unwrap_or_else(|e| panic!("{tag}/{net_name}: analysis failed: {e}"));
            let rcfg = ReplayConfig { network: net(), algo, ..ReplayConfig::default() };
            let out = replay_memory(trace, platform, &hosts, &rcfg)
                .unwrap_or_else(|e| panic!("{tag}/{net_name}: replay failed: {e}"));
            let sim = out.simulated_time;
            let slop = EPS * sim.abs().max(1.0);
            assert!(
                lower <= sim + slop,
                "{tag}/{net_name}/{algo:?}: lower bound {lower} exceeds simulated {sim}"
            );
            assert!(
                sim <= upper + slop,
                "{tag}/{net_name}/{algo:?}: simulated {sim} exceeds upper bound {upper}"
            );
            assert!(lower.is_finite() && upper.is_finite() && lower >= 0.0);
        }
    }
}

#[test]
fn ring_traces_stay_in_the_sandwich() {
    for (nproc, iters) in [(2, 1), (4, 4), (8, 3)] {
        let cfg = RingConfig { nproc, iters, ..Default::default() };
        assert_sandwich(&cfg.trace(), &format!("ring{nproc}x{iters}"));
    }
}

#[test]
fn stencil_traces_stay_in_the_sandwich() {
    let cfg = StencilConfig { n: 64, px: 2, py: 2, iters: 4, check_every: 2, ..Default::default() };
    assert_sandwich(&cfg.trace(), "stencil2x2");
    let cfg = StencilConfig { n: 64, px: 4, py: 2, iters: 2, check_every: 1, ..Default::default() };
    assert_sandwich(&cfg.trace(), "stencil4x2");
}

#[test]
fn lu_traces_stay_in_the_sandwich() {
    for nproc in [4, 8] {
        let lu = LuConfig::new(Class::S, nproc).with_itmax(2);
        let trace = program_trace(&lu.program(), nproc);
        assert_sandwich(&trace, &format!("lu.S.{nproc}"));
    }
}

#[test]
fn collective_heavy_trace_stays_in_the_sandwich() {
    let np = 6;
    let mut t = TiTrace::new(np);
    for rank in 0..np {
        t.push(rank, Action::CommSize { nproc: np });
        t.push(rank, Action::Compute { flops: 1e7 * (rank as f64 + 1.0) });
        t.push(rank, Action::Bcast { bytes: 1e5 });
        t.push(rank, Action::AllReduce { vcomm: 2e5, vcomp: 1e4 });
        t.push(rank, Action::Barrier);
        t.push(rank, Action::Reduce { vcomm: 5e4, vcomp: 1e3 });
    }
    assert_sandwich(&t, "collectives");
}

#[test]
fn classifier_recognizes_the_seeded_workloads() {
    let np = 4;
    let desc = PlatformDesc::single(presets::bordereau_one_core(np));
    let platform = desc.build();
    let hosts = Deployment::round_robin(&desc.host_names(), np).host_ids(&platform);
    let cfg = AnalyzeConfig::default();

    let ring = RingConfig { nproc: np, iters: 2, ..Default::default() }.trace();
    let a = analyze(&ring, &platform, &hosts, &cfg).unwrap();
    assert_eq!(a.structure.pattern, Pattern::Ring);

    let st = StencilConfig { n: 64, px: 2, py: 2, iters: 2, check_every: 1, ..Default::default() };
    let a = analyze(&st.trace(), &platform, &hosts, &cfg).unwrap();
    assert_eq!(a.structure.pattern, Pattern::Stencil);
}

/// One deadlock-free "round" of activity shared by every rank.
#[derive(Debug, Clone)]
enum Round {
    /// Per-rank compute bursts (len == nproc).
    Compute(Vec<f64>),
    Bcast(f64),
    Reduce(f64, f64),
    AllReduce(f64, f64),
    Barrier,
    /// Ring shift: Irecv from prev (pre-posted), send to next, wait.
    Shift(f64),
}

fn arb_round(np: usize) -> impl Strategy<Value = Round> {
    let vol = 0.0..1e7f64;
    prop_oneof![
        proptest::collection::vec(0.0..1e8f64, np..np + 1).prop_map(Round::Compute),
        vol.clone().prop_map(Round::Bcast),
        (vol.clone(), vol.clone()).prop_map(|(c, f)| Round::Reduce(c, f)),
        (vol.clone(), vol.clone()).prop_map(|(c, f)| Round::AllReduce(c, f)),
        Just(Round::Barrier),
        vol.prop_map(Round::Shift),
    ]
}

fn trace_of_rounds(np: usize, rounds: &[Round]) -> TiTrace {
    let mut t = TiTrace::new(np);
    for rank in 0..np {
        t.push(rank, Action::CommSize { nproc: np });
    }
    for round in rounds {
        for rank in 0..np {
            match round {
                Round::Compute(flops) => t.push(rank, Action::Compute { flops: flops[rank] }),
                Round::Bcast(b) => t.push(rank, Action::Bcast { bytes: *b }),
                Round::Reduce(c, f) => t.push(rank, Action::Reduce { vcomm: *c, vcomp: *f }),
                Round::AllReduce(c, f) => t.push(rank, Action::AllReduce { vcomm: *c, vcomp: *f }),
                Round::Barrier => t.push(rank, Action::Barrier),
                Round::Shift(b) => {
                    // The Irecv is posted before the (possibly
                    // rendezvous) send anywhere blocks, so the shift
                    // can never deadlock.
                    t.push(rank, Action::Irecv { src: (rank + np - 1) % np, bytes: None });
                    t.push(rank, Action::Send { dst: (rank + 1) % np, bytes: *b });
                    t.push(rank, Action::Wait);
                }
            }
        }
    }
    t
}

proptest! {
    /// Random deadlock-free traces stay inside the bounds under every
    /// network model and collective algorithm.
    #[test]
    fn random_traces_stay_in_the_sandwich(
        np in 2usize..6,
        seed_rounds in proptest::collection::vec(arb_round(8), 1..8),
    ) {
        // Rounds were generated for up to 8 ranks; slice the per-rank
        // vectors down to the drawn size.
        let rounds: Vec<Round> = seed_rounds
            .into_iter()
            .map(|r| match r {
                Round::Compute(mut v) => {
                    v.truncate(np);
                    v.resize(np, 0.0);
                    Round::Compute(v)
                }
                other => other,
            })
            .collect();
        let trace = trace_of_rounds(np, &rounds);
        assert_sandwich(&trace, "proptest");
    }
}
