//! Fidelity to the paper's Figure 1: the ring program, its
//! time-independent trace, and its replay.

use titr::npb::ring::RingConfig;
use titr::platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};
use titr::replay::{replay_memory, ReplayConfig};
use titr::simkern::netmodel::NetworkConfig;
use titr::trace::TiTrace;

fn figure_5_platform() -> PlatformDesc {
    PlatformDesc::single(ClusterSpec {
        id: "AS_mycluster".into(),
        prefix: "mycluster-".into(),
        suffix: ".mysite.fr".into(),
        count: 4,
        power: 1.17e9,
        cores: 1,
        bw: 1.25e8,
        lat: 16.67e-6,
        bb_bw: 1.25e9,
        bb_lat: 16.67e-6,
        topology: ClusterTopology::Flat,
    })
}

#[test]
fn trace_text_is_the_paper_figure() {
    let mut buf = Vec::new();
    RingConfig::figure_1().trace().write_merged(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let expected = "\
p0 compute 1000000
p0 send p1 1000000
p0 recv p3
p1 recv p0
p1 compute 1000000
p1 send p2 1000000
p2 recv p1
p2 compute 1000000
p2 send p3 1000000
p3 recv p2
p3 compute 1000000
p3 send p0 1000000
";
    assert_eq!(text, expected);
}

#[test]
fn trace_parses_back_from_the_paper_text() {
    // The exact figure text (with scientific-notation volumes) parses to
    // the same trace our generator builds.
    let paper_text = "\
p0 compute 1e6
p0 send p1 1e6
p0 recv p3
p1 recv p0
p1 compute 1e6
p1 send p2 1e6
p2 recv p1
p2 compute 1e6
p2 send p3 1e6
p3 recv p2
p3 compute 1e6
p3 send p0 1e6
";
    let parsed = TiTrace::from_str_merged(paper_text).unwrap();
    assert_eq!(parsed, RingConfig::figure_1().trace());
}

#[test]
fn replay_on_figure_5_platform_has_closed_form() {
    let trace = RingConfig::figure_1().trace();
    let desc = figure_5_platform();
    let platform = desc.build();
    let hosts = titr::platform::Deployment::round_robin(&desc.host_names(), 4)
        .host_ids(&platform);
    // Identity network model for an analytic check.
    let cfg = ReplayConfig { network: NetworkConfig::default(), ..Default::default() };
    let out = replay_memory(&trace, platform, &hosts, &cfg).unwrap();
    let hop = 1e6 / 1.17e9 + 1e6 / 1.25e8 + 3.0 * 16.67e-6;
    let expect = 4.0 * hop;
    assert!(
        (out.simulated_time - expect).abs() / expect < 1e-9,
        "expected {expect}, got {}",
        out.simulated_time
    );
}

#[test]
fn four_iterations_scale_linearly() {
    let t1 = {
        let trace = RingConfig { iters: 1, ..Default::default() }.trace();
        let desc = figure_5_platform();
        let platform = desc.build();
        let hosts = titr::platform::Deployment::round_robin(&desc.host_names(), 4)
            .host_ids(&platform);
        replay_memory(&trace, platform, &hosts, &ReplayConfig::default())
            .unwrap()
            .simulated_time
    };
    let t4 = {
        let trace = RingConfig { iters: 4, ..Default::default() }.trace();
        let desc = figure_5_platform();
        let platform = desc.build();
        let hosts = titr::platform::Deployment::round_robin(&desc.host_names(), 4)
            .host_ids(&platform);
        replay_memory(&trace, platform, &hosts, &ReplayConfig::default())
            .unwrap()
            .simulated_time
    };
    assert!((t4 / t1 - 4.0).abs() < 1e-6, "ring iterations pipeline strictly: {}", t4 / t1);
}
