//! Cluster dimensioning — the motivation of the paper's introduction:
//! computing centres must size upgrades *before* buying hardware. With
//! a time-independent trace in hand, sweep candidate configurations and
//! find the cheapest one meeting a time budget.
//!
//! Here: what is the smallest per-core speed (in a 16-node GigE
//! cluster) that runs LU class A under a target time? And does paying
//! for 10 GbE help more than faster CPUs?
//!
//! Run with: `cargo run --release --example cluster_sizing`

use titr::npb::{Class, LuConfig};
use titr::platform::desc::{ClusterSpec, PlatformDesc};
use titr::platform::presets;
use titr::replay::{replay_memory, ReplayConfig};
use titr::simkern::resource::HostId;

fn simulate(trace: &titr::trace::TiTrace, spec: ClusterSpec) -> f64 {
    let platform = PlatformDesc::single(spec).build();
    let hosts: Vec<HostId> = (0..trace.num_processes() as u32).map(HostId).collect();
    replay_memory(trace, platform, &hosts, &ReplayConfig::default())
        .expect("replay")
        .simulated_time
}

fn main() {
    let nproc = 16;
    let lu = LuConfig::new(Class::A, nproc).with_itmax(25);
    let trace = titr::npb::program_trace(&lu.program(), nproc);
    let base = presets::bordereau_one_core(nproc);

    let budget = simulate(&trace, base.clone()) * 0.75;
    println!("time budget: {budget:.3} s (75% of the baseline cluster)\n");

    // Option A: faster CPUs on GigE.
    println!("option A — faster CPUs, GigE network:");
    let mut chosen_power = None;
    for mult in [1.0, 1.2, 1.4, 1.6, 1.8, 2.0] {
        let spec = ClusterSpec { power: base.power * mult, ..base.clone() };
        let t = simulate(&trace, spec);
        let ok = t <= budget;
        println!("  {:>4.1}x CPU: {t:>8.3} s {}", mult, if ok { "<= budget" } else { "" });
        if ok && chosen_power.is_none() {
            chosen_power = Some(mult);
        }
    }

    // Option B: keep CPUs, upgrade the interconnect.
    println!("\noption B — same CPUs, 10 GbE network:");
    let spec = ClusterSpec { bw: 1.25e9, bb_bw: 1.25e10, ..base.clone() };
    let t = simulate(&trace, spec);
    println!("  10 GbE: {t:>8.3} s {}", if t <= budget { "<= budget" } else { "(not enough)" });

    match chosen_power {
        Some(m) => println!(
            "\nconclusion: {m:.1}x CPUs meet the budget{}",
            if t <= budget { "; so does the network upgrade — compare prices" } else { "; the network upgrade alone does not" }
        ),
        None => println!("\nconclusion: no CPU upgrade in range meets the budget"),
    }
}
