//! "What if?" exploration — the headline use case of the paper: once a
//! time-independent trace is acquired, a whole range of candidate
//! platforms can be explored *without touching the trace*, by changing
//! only the platform description (Section 5: "a wide range of 'what if?'
//! scenarios can be explored without any modification of the simulator").
//!
//! Here: how would LU class A × 16 behave with faster CPUs? With a 10x
//! faster network? On the slower gdx cluster?
//!
//! Run with: `cargo run --release --example lu_whatif`

use titr::npb::{Class, LuConfig};
use titr::platform::desc::{ClusterSpec, PlatformDesc};
use titr::platform::presets;
use titr::replay::{replay_memory, ReplayConfig};
use titr::simkern::resource::HostId;

fn replay_on(trace: &titr::trace::TiTrace, spec: ClusterSpec) -> f64 {
    let platform = PlatformDesc::single(spec).build();
    let hosts: Vec<HostId> = (0..trace.num_processes() as u32).map(HostId).collect();
    replay_memory(trace, platform, &hosts, &ReplayConfig::default())
        .expect("replay")
        .simulated_time
}

fn main() {
    let nproc = 16;
    // Acquire once (here: generated directly; `tit-acquire` + `tit-extract`
    // produce the same trace from an emulated instrumented run).
    let lu = LuConfig::new(Class::A, nproc).with_itmax(25);
    let trace = titr::npb::program_trace(&lu.program(), nproc);
    println!(
        "LU class A x {nproc} (itmax 25): {} actions\n",
        trace.num_actions()
    );

    let base = presets::bordereau_one_core(nproc);
    let scenarios: Vec<(&str, ClusterSpec)> = vec![
        ("bordereau (baseline)", base.clone()),
        ("2x faster CPUs", ClusterSpec { power: base.power * 2.0, ..base.clone() }),
        (
            "10 GbE network",
            ClusterSpec { bw: 1.25e9, bb_bw: 1.25e10, ..base.clone() },
        ),
        (
            "half the latency",
            ClusterSpec { lat: base.lat / 2.0, bb_lat: base.bb_lat / 2.0, ..base.clone() },
        ),
        ("gdx nodes (2.0 GHz)", ClusterSpec { power: presets::GDX_POWER, ..base.clone() }),
    ];

    println!("{:<24} {:>14} {:>10}", "scenario", "simulated (s)", "speedup");
    let baseline = replay_on(&trace, scenarios[0].1.clone());
    for (name, spec) in scenarios {
        let t = replay_on(&trace, spec);
        println!("{name:<24} {t:>14.3} {:>10.2}", baseline / t);
    }
    println!("\n(one trace, five platforms — no re-acquisition needed)");
}
