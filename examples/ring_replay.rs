//! Replay outputs beyond the makespan (Figure 4 of the paper): a timed
//! trace and an application profile, derived from the same
//! time-independent ring trace.
//!
//! Run with: `cargo run --release --example ring_replay`

use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::output;
use titr::replay::{replay_memory, ReplayConfig};
use titr::simkern::resource::HostId;

fn main() {
    let ring =
        titr::npb::ring::RingConfig { nproc: 4, iters: 4, ..Default::default() };
    let trace = ring.trace();

    let desc = PlatformDesc::single(presets::bordereau_one_core(4));
    let platform = desc.build();
    let hosts: Vec<HostId> = (0..4).map(HostId).collect();
    let cfg = ReplayConfig { collect_records: true, ..Default::default() };
    let out = replay_memory(&trace, platform, &hosts, &cfg).expect("replay");
    let records = out.records.expect("records requested");

    println!("simulated execution time: {:.6} s\n", out.simulated_time);

    // Output 1: the timed trace — the same events, now with simulated
    // timestamps.
    println!("--- timed trace (CSV, first 12 rows) ---");
    let mut csv = Vec::new();
    output::write_timed_trace(&records, &mut csv).unwrap();
    for line in String::from_utf8(csv).unwrap().lines().take(13) {
        println!("{line}");
    }

    // Output 2: the per-rank profile.
    println!("\n--- profile ---");
    print!("{}", output::format_profile(&output::profile(&records, 4)));
}
