//! Quickstart: the paper's Figure 1 ring, end to end.
//!
//! Builds the four-process ring program, prints its time-independent
//! trace (matching Figure 1 of the paper line for line), writes the
//! Figure 5 platform and Figure 6 deployment files, and replays the
//! trace to get a simulated execution time.
//!
//! Run with: `cargo run --release --example quickstart`

use titr::platform::deployment::Deployment;
use titr::platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};
use titr::replay::{replay_memory, ReplayConfig};

fn main() {
    // The MPI code of Figure 1 (left), as a program model.
    let ring = titr::npb::ring::RingConfig::figure_1();

    // Its time-independent trace (Figure 1, right).
    let trace = ring.trace();
    let mut text = Vec::new();
    trace.write_merged(&mut text).unwrap();
    println!("--- time-independent trace (Figure 1) ---");
    print!("{}", String::from_utf8(text).unwrap());

    // The target platform (Figure 5): four nodes, one switch.
    let spec = ClusterSpec {
        id: "AS_mycluster".into(),
        prefix: "mycluster-".into(),
        suffix: ".mysite.fr".into(),
        count: 4,
        power: 1.17e9,
        cores: 1,
        bw: 1.25e8,
        lat: 16.67e-6,
        bb_bw: 1.25e9,
        bb_lat: 16.67e-6,
        topology: ClusterTopology::Flat,
    };
    let desc = PlatformDesc::single(spec);
    println!("\n--- platform file (Figure 5) ---");
    print!("{}", desc.to_xml_string());

    // The deployment (Figure 6): rank i on node i.
    let deployment = Deployment::round_robin(&desc.host_names(), 4);
    println!("\n--- deployment file (Figure 6) ---");
    print!("{}", deployment.to_xml_string());

    // Replay.
    let platform = desc.build();
    let hosts = deployment.host_ids(&platform);
    let out = replay_memory(&trace, platform, &hosts, &ReplayConfig::default()).expect("replay");
    println!("\nsimulated execution time: {:.6} s", out.simulated_time);
    println!("actions replayed:         {}", out.actions_replayed);
}
