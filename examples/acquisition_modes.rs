//! The decoupling claim, live (Sections 4.2 and 6.2): acquire the same
//! LU instance in Regular, Folding and Scattering modes; the emulated
//! executions cost very different times, but the extracted
//! time-independent traces replay to (almost) the same simulated time —
//! "the simulated time is more or less the same whatever the
//! acquisition scenario is. Slight variations lesser than 1% are
//! observed that come from hardware counter accuracy issues."
//!
//! Run with: `cargo run --release --example acquisition_modes`

use titr::emul::acquisition::{acquire, AcquisitionMode};
use titr::emul::runtime::EmulConfig;
use titr::extract::tau2ti;
use titr::npb::{Class, LuConfig};
use titr::platform::desc::PlatformDesc;
use titr::platform::presets;
use titr::replay::{replay_files, ReplayConfig};
use titr::simkern::resource::HostId;

fn main() -> std::io::Result<()> {
    let nproc = 8;
    let lu = LuConfig::new(Class::S, nproc).with_itmax(10);
    let work = std::env::temp_dir().join(format!("titr-example-modes-{}", std::process::id()));

    println!(
        "{:<10} {:>7} {:>16} {:>18}",
        "mode", "nodes", "acquisition (s)", "replayed time (s)"
    );
    let mut replayed = Vec::new();
    for (i, mode) in [
        AcquisitionMode::Regular,
        AcquisitionMode::Folding(4),
        AcquisitionMode::Scattering(2),
        AcquisitionMode::ScatterFold(2, 2),
    ]
    .into_iter()
    .enumerate()
    {
        // Each acquisition is a distinct run: the hardware counters do
        // not report identical values twice (PAPI jitter seed).
        let cfg = EmulConfig { seed: 0xDE5B + i as u64, ..Default::default() };
        let tau = work.join(format!("tau-{}", mode.label()));
        let ti = work.join(format!("ti-{}", mode.label()));
        let acq = acquire(&lu.program(), nproc, mode, &cfg, &tau)?;
        tau2ti(&tau, nproc, &ti, 2)?;
        // Replay every trace on the same target: a regular bordereau.
        let platform = PlatformDesc::single(presets::bordereau_one_core(nproc)).build();
        let hosts: Vec<HostId> = (0..nproc as u32).map(HostId).collect();
        let out = replay_files(&ti, nproc, platform, &hosts, &ReplayConfig::default())
            .map_err(std::io::Error::other)?;
        println!(
            "{:<10} {:>7} {:>16.3} {:>18.6}",
            mode.label(),
            mode.nodes_needed(nproc),
            acq.exec_time,
            out.simulated_time
        );
        replayed.push(out.simulated_time);
    }
    let min = replayed.iter().copied().fold(f64::INFINITY, f64::min);
    let max = replayed.iter().copied().fold(0.0f64, f64::max);
    println!(
        "\nreplayed-time spread across modes: {:.3}% (paper: < 1%)",
        100.0 * (max - min) / min
    );
    let _ = std::fs::remove_dir_all(&work);
    Ok(())
}
