//! Per-rank application profiles from simulated time.
//!
//! The paper's Figure-7-style breakdown, computed from the replay's
//! *simulated* clock rather than a wall clock: for every rank, how much
//! time went to computation vs. communication, how many operations of
//! each kind ran, how many flops and bytes moved, and — per action tag —
//! a duration histogram over fixed log-scale buckets.
//!
//! Everything is deterministic: the engine delivers records in a fixed
//! completion order, accumulation is plain `+=` over that order, bucket
//! boundaries are compile-time constants chosen by comparison (no
//! `log10`, no locale, no ambient floating state), and the JSON/text
//! renderings iterate `BTreeMap`s — so identical replays produce
//! byte-identical profile files.

use crate::{TagClassifier, TagNamer};
use simkern::observer::{Observer, OpRecord};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of histogram buckets (fixed, log-scale).
pub const HIST_BUCKETS: usize = 16;

/// Upper edges of buckets `0..HIST_BUCKETS-1`, in seconds; the last
/// bucket is unbounded. Bucket `i` holds durations `d` with
/// `EDGES[i-1] <= d < EDGES[i]` (bucket 0: `d < 1 ns`).
const EDGES: [f64; HIST_BUCKETS - 1] = [
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3, 1e4, 1e5,
];

/// A fixed log-scale duration histogram (1 ns … 10⁵ s in decades).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Counts per bucket; see [`Histogram::bucket_label`] for bounds.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS] }
    }
}

impl Histogram {
    /// Buckets a duration in seconds. Negative or NaN durations land in
    /// bucket 0 (they indicate an upstream bug; the engine asserts
    /// against them in debug builds).
    pub fn add(&mut self, seconds: f64) {
        let mut i = 0;
        while i < EDGES.len() && seconds >= EDGES[i] {
            i += 1;
        }
        self.buckets[i] += 1;
    }

    /// Total samples across all buckets.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Human-readable bounds of bucket `i`, e.g. `"[1e-6,1e-5)"`.
    #[must_use]
    pub fn bucket_label(i: usize) -> String {
        assert!(i < HIST_BUCKETS, "bucket index out of range");
        if i == 0 {
            format!("[0,{:e})", EDGES[0])
        } else if i == HIST_BUCKETS - 1 {
            format!("[{:e},inf)", EDGES[i - 1])
        } else {
            format!("[{:e},{:e})", EDGES[i - 1], EDGES[i])
        }
    }
}

/// Per-(rank, tag) accumulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagStats {
    /// Human-readable action name (resolved at record time).
    pub name: &'static str,
    /// Operations completed with this tag.
    pub count: u64,
    /// Total busy seconds.
    pub time: f64,
    /// Total volume (flops or bytes, per the tag's class).
    pub volume: f64,
    /// Duration histogram of the individual operations.
    pub hist: Histogram,
}

/// One rank's share of the profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankProfile {
    /// Seconds spent in computation operations.
    pub compute_time: f64,
    /// Seconds spent in communication operations (incl. blocked time
    /// inside them: a `recv` covers post → completion).
    pub comm_time: f64,
    /// Computation operations completed.
    pub compute_ops: u64,
    /// Communication operations completed.
    pub comm_ops: u64,
    /// Flops executed (volume of computation operations).
    pub flops: f64,
    /// Bytes moved (volume of communication operations).
    pub bytes: f64,
    /// Simulated time at which the rank's actor terminated (0 when it
    /// never did — e.g. the profile was fed records only).
    pub end_time: f64,
    /// Per-tag breakdown, keyed by tag id (deterministic order).
    pub tags: BTreeMap<u32, TagStats>,
}

impl RankProfile {
    /// Total busy seconds (compute + communication).
    #[must_use]
    pub fn busy_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }

    /// Total operations completed.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.compute_ops + self.comm_ops
    }
}

/// A finished (or in-flight) profile snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// One entry per rank, index = rank.
    pub ranks: Vec<RankProfile>,
    /// Simulated makespan (engine-end event; 0 until the run ends).
    pub simulated_time: f64,
    /// Operations accumulated across all ranks.
    pub total_ops: u64,
}

impl ProfileReport {
    /// Sum of all ranks' busy seconds.
    #[must_use]
    pub fn total_busy(&self) -> f64 {
        self.ranks.iter().map(RankProfile::busy_time).sum()
    }

    /// Renders the per-rank table (the Figure 7 shape), one row per rank
    /// plus a totals row.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "rank     compute(s)      comm(s)   comp-ops   comm-ops          flops          bytes\n",
        );
        let mut tot = RankProfile::default();
        for (rank, r) in self.ranks.iter().enumerate() {
            out.push_str(&format!(
                "{rank:>4} {:>13.6} {:>12.6} {:>10} {:>10} {:>14.3e} {:>14.3e}\n",
                r.compute_time, r.comm_time, r.compute_ops, r.comm_ops, r.flops, r.bytes
            ));
            tot.compute_time += r.compute_time;
            tot.comm_time += r.comm_time;
            tot.compute_ops += r.compute_ops;
            tot.comm_ops += r.comm_ops;
            tot.flops += r.flops;
            tot.bytes += r.bytes;
        }
        out.push_str(&format!(
            " sum {:>13.6} {:>12.6} {:>10} {:>10} {:>14.3e} {:>14.3e}\n",
            tot.compute_time, tot.comm_time, tot.compute_ops, tot.comm_ops, tot.flops, tot.bytes
        ));
        out
    }

    /// Renders the per-tag breakdown across all ranks (aggregated), one
    /// row per action kind.
    #[must_use]
    pub fn render_tags_text(&self) -> String {
        let mut agg: BTreeMap<u32, TagStats> = BTreeMap::new();
        for r in &self.ranks {
            for (tag, s) in &r.tags {
                let e = agg.entry(*tag).or_insert(TagStats {
                    name: s.name,
                    count: 0,
                    time: 0.0,
                    volume: 0.0,
                    hist: Histogram::default(),
                });
                e.count += s.count;
                e.time += s.time;
                e.volume += s.volume;
                for (b, n) in e.hist.buckets.iter_mut().zip(s.hist.buckets.iter()) {
                    *b += n;
                }
            }
        }
        let mut out = String::new();
        out.push_str("action            count      time(s)         volume\n");
        for (_, s) in agg {
            out.push_str(&format!(
                "{:<14} {:>8} {:>12.6} {:>14.3e}\n",
                s.name, s.count, s.time, s.volume
            ));
        }
        out
    }

    /// Serialises the profile as deterministic JSON
    /// (`titobs-profile-v1`): ranks ascending, tags by numeric id,
    /// shortest-roundtrip number formatting. See `DESIGN.md` §5d for the
    /// schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.ranks.len() * 256);
        out.push_str("{\"schema\":\"titobs-profile-v1\"");
        out.push_str(&format!(",\"num_ranks\":{}", self.ranks.len()));
        out.push_str(&format!(",\"simulated_time\":{}", self.simulated_time));
        out.push_str(&format!(",\"total_ops\":{}", self.total_ops));
        out.push_str(",\"ranks\":[");
        for (rank, r) in self.ranks.iter().enumerate() {
            if rank > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"rank\":{rank},\"compute_time\":{},\"comm_time\":{},\"compute_ops\":{},\"comm_ops\":{},\"flops\":{},\"bytes\":{},\"end_time\":{},\"tags\":[",
                r.compute_time, r.comm_time, r.compute_ops, r.comm_ops, r.flops, r.bytes, r.end_time
            ));
            for (i, (tag, s)) in r.tags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"tag\":{tag},\"name\":\"{}\",\"count\":{},\"time\":{},\"volume\":{},\"hist\":[",
                    s.name, s.count, s.time, s.volume
                ));
                for (b, n) in s.hist.buckets.iter().enumerate() {
                    if b > 0 {
                        out.push(',');
                    }
                    out.push_str(&n.to_string());
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("\n]}\n");
        out
    }
}

struct ProfState {
    ranks: Vec<RankProfile>,
    simulated_time: f64,
    total_ops: u64,
    names: TagNamer,
    is_comm: TagClassifier,
}

/// Handle to a per-rank profile aggregator. O(ranks × tags) memory,
/// independent of the trace length.
///
/// [`Profile::sink`] yields the [`Observer`] half; [`Profile::snapshot`]
/// reads the accumulated state back (any time, typically after the run).
pub struct Profile {
    inner: Arc<Mutex<ProfState>>,
}

/// The [`Observer`] half of a [`Profile`].
pub struct ProfileSink {
    inner: Arc<Mutex<ProfState>>,
}

impl Profile {
    /// A profile over (at least) `nranks` ranks; records for higher
    /// ranks grow the table. `names` maps tags to action names for the
    /// rendered output; `is_comm` classifies tags as communication.
    #[must_use]
    pub fn new(nranks: usize, names: TagNamer, is_comm: TagClassifier) -> Self {
        Profile {
            inner: Arc::new(Mutex::new(ProfState {
                ranks: vec![RankProfile::default(); nranks],
                simulated_time: 0.0,
                total_ops: 0,
                names,
                is_comm,
            })),
        }
    }

    /// The observer half, to install into the engine.
    #[must_use]
    pub fn sink(&self) -> Box<dyn Observer> {
        Box::new(ProfileSink { inner: self.inner.clone() })
    }

    /// A copy of the accumulated profile.
    #[must_use]
    pub fn snapshot(&self) -> ProfileReport {
        // panics: mutex poisoned only if another thread already panicked
        let g = self.inner.lock().unwrap();
        ProfileReport {
            ranks: g.ranks.clone(),
            simulated_time: g.simulated_time,
            total_ops: g.total_ops,
        }
    }
}

impl Observer for ProfileSink {
    fn record(&mut self, rec: OpRecord) {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        if rec.actor >= g.ranks.len() {
            g.ranks.resize(rec.actor + 1, RankProfile::default());
        }
        g.total_ops += 1;
        let name = (g.names)(rec.tag);
        let comm = (g.is_comm)(rec.tag);
        let dt = rec.end - rec.start;
        let row = &mut g.ranks[rec.actor];
        if comm {
            row.comm_time += dt;
            row.comm_ops += 1;
            row.bytes += rec.volume;
        } else {
            row.compute_time += dt;
            row.compute_ops += 1;
            row.flops += rec.volume;
        }
        let s = row.tags.entry(rec.tag).or_insert(TagStats {
            name,
            count: 0,
            time: 0.0,
            volume: 0.0,
            hist: Histogram::default(),
        });
        s.count += 1;
        s.time += dt;
        s.volume += rec.volume;
        s.hist.add(dt);
    }

    fn actor_ended(&mut self, actor: usize, time: f64) {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        if actor >= g.ranks.len() {
            g.ranks.resize(actor + 1, RankProfile::default());
        }
        g.ranks[actor].end_time = time;
    }

    fn engine_ended(&mut self, time: f64) {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().simulated_time = time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(tag: u32) -> &'static str {
        if tag == 1 {
            "compute"
        } else {
            "send"
        }
    }

    fn comm(tag: u32) -> bool {
        tag != 1
    }

    #[test]
    fn totals_split_by_class() {
        let p = Profile::new(2, name, comm);
        let mut s = p.sink();
        s.record(OpRecord { actor: 0, tag: 1, start: 0.0, end: 1.0, volume: 1e9 });
        s.record(OpRecord { actor: 0, tag: 2, start: 1.0, end: 1.5, volume: 1e6 });
        s.record(OpRecord { actor: 1, tag: 2, start: 0.0, end: 1.5, volume: 1e6 });
        s.actor_ended(0, 1.5);
        s.actor_ended(1, 1.5);
        s.engine_ended(1.5);
        let r = p.snapshot();
        assert_eq!(r.total_ops, 3);
        assert_eq!(r.simulated_time, 1.5);
        assert!((r.ranks[0].compute_time - 1.0).abs() < 1e-12);
        assert!((r.ranks[0].comm_time - 0.5).abs() < 1e-12);
        assert!((r.ranks[0].flops - 1e9).abs() < 1e-3);
        assert!((r.ranks[0].bytes - 1e6).abs() < 1e-9);
        assert_eq!(r.ranks[1].comm_ops, 1);
        assert_eq!(r.ranks[0].end_time, 1.5);
        assert_eq!(r.ranks[0].tags[&1].count, 1);
        assert_eq!(r.ranks[0].tags[&2].name, "send");
    }

    #[test]
    fn histogram_buckets_by_decade() {
        let mut h = Histogram::default();
        h.add(0.0); // bucket 0
        h.add(5e-7); // [1e-7,1e-6) → bucket 3
        h.add(1e-6); // [1e-6,1e-5) → bucket 4 (left-closed)
        h.add(2.0); // [1,10) → bucket 10
        h.add(1e9); // overflow → last bucket
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(Histogram::bucket_label(0), "[0,1e-9)");
        assert_eq!(Histogram::bucket_label(4), "[1e-6,1e-5)");
        assert_eq!(Histogram::bucket_label(HIST_BUCKETS - 1), "[1e5,inf)");
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let mk = || {
            let p = Profile::new(2, name, comm);
            let mut s = p.sink();
            for i in 0..10u32 {
                s.record(OpRecord {
                    actor: (i % 2) as usize,
                    tag: 1 + (i % 2),
                    start: f64::from(i),
                    end: f64::from(i) + 0.25,
                    volume: f64::from(i) * 100.0,
                });
            }
            s.engine_ended(10.0);
            drop(s);
            p.snapshot().to_json()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\":\"titobs-profile-v1\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn report_rendering_has_sum_row_and_tag_table() {
        let p = Profile::new(1, name, comm);
        let mut s = p.sink();
        s.record(OpRecord { actor: 0, tag: 1, start: 0.0, end: 2.0, volume: 5e8 });
        drop(s);
        let r = p.snapshot();
        let text = r.render_text();
        assert!(text.contains(" sum "), "{text}");
        let tags = r.render_tags_text();
        assert!(tags.contains("compute"), "{tags}");
    }
}
