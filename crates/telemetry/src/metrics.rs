//! A small metrics registry: counters, gauge values and wall-clock
//! timers, threaded through the acquire → extract → gather → lint →
//! replay pipeline.
//!
//! Keys are dotted strings (`"gather.retries"`, `"replay.ops"`); the
//! registry is a cheap clonable handle, so every pipeline stage can hold
//! one without plumbing mutable references around. The deterministic
//! rendering ([`Metrics::to_json`]) deliberately excludes wall-clock
//! timers so that identical replays produce byte-identical metrics
//! files; [`Metrics::to_json_with_timers`] adds them for humans.

use simkern::observer::{Observer, OpRecord};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tit_core::json;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    values: BTreeMap<String, f64>,
    timers: BTreeMap<String, f64>,
    notes: BTreeMap<String, String>,
}

/// Appends `key` as an escaped JSON object key followed by a colon.
fn push_key(out: &mut String, key: &str) {
    json::push_string(out, key);
    out.push(':');
}

/// Handle to a metrics registry. Clones share the same underlying state.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<Inner>>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to the counter `key` (created at zero).
    pub fn incr(&self, key: &str, by: u64) {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        *g.counters.entry(key.to_owned()).or_insert(0) += by;
    }

    /// Sets the gauge value `key`.
    pub fn set_value(&self, key: &str, v: f64) {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().values.insert(key.to_owned(), v);
    }

    /// Sets the gauge `key` to `v` — the level-style alias of
    /// [`Metrics::set_value`] (a gauge reports a *current level*, where
    /// a counter only ever goes up). Gauges render in the `"values"`
    /// section of [`Metrics::to_json`] in deterministic sorted-key
    /// order.
    pub fn gauge_set(&self, key: &str, v: f64) {
        self.set_value(key, v);
    }

    /// Adds `delta` (possibly negative) to the gauge `key`, created at
    /// zero. This is what counters cannot express: a queue-depth or
    /// in-flight gauge moves both ways — `gauge_add(+1)` on entry,
    /// `gauge_add(-1)` on exit — and its instantaneous level is the
    /// value reported.
    pub fn gauge_add(&self, key: &str, delta: f64) {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        *g.values.entry(key.to_owned()).or_insert(0.0) += delta;
    }

    /// Adds `seconds` to the wall-clock timer `key` (created at zero).
    pub fn observe_wall(&self, key: &str, seconds: f64) {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        *g.timers.entry(key.to_owned()).or_insert(0.0) += seconds;
    }

    /// Runs `f`, accumulating its wall-clock duration into the timer
    /// `key`, and returns its result.
    pub fn time<T>(&self, key: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.observe_wall(key, t0.elapsed().as_secs_f64());
        out
    }

    /// Current value of the counter `key` (0 when absent).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().counters.get(key).copied().unwrap_or(0)
    }

    /// Current gauge value `key`, if set.
    #[must_use]
    pub fn value(&self, key: &str) -> Option<f64> {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().values.get(key).copied()
    }

    /// Sets the free-form note `key` — a short deterministic string such
    /// as a per-rank degradation reason. Notes render in the `"notes"`
    /// section of [`Metrics::to_json`].
    pub fn set_note(&self, key: &str, text: &str) {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().notes.insert(key.to_owned(), text.to_owned());
    }

    /// Current note `key`, if set.
    #[must_use]
    pub fn note(&self, key: &str) -> Option<String> {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().notes.get(key).cloned()
    }

    /// Accumulated wall-clock seconds in timer `key` (0 when absent).
    #[must_use]
    pub fn wall(&self, key: &str) -> f64 {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().timers.get(key).copied().unwrap_or(0.0)
    }

    /// An [`Observer`] that feeds this registry from an engine run:
    /// every completed operation bumps `{prefix}.ops`, actor lifecycle
    /// events bump `{prefix}.actors_started` / `{prefix}.actors_ended`,
    /// and the engine-end event sets the gauge
    /// `{prefix}.simulated_time`.
    #[must_use]
    pub fn observer(&self, prefix: &str) -> Box<dyn Observer> {
        Box::new(MetricsObserver { metrics: self.clone(), prefix: prefix.to_owned() })
    }

    /// Serialises counters, gauge values and notes as deterministic JSON
    /// (`titobs-metrics-v1`): keys sorted, **no wall-clock timers** —
    /// identical runs produce byte-identical output. See `DESIGN.md`
    /// §5d for the schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        // panics: mutex poisoned only if another thread already panicked
        let g = self.inner.lock().unwrap();
        let mut out = String::from("{\"schema\":\"titobs-metrics-v1\",\"counters\":{");
        for (i, (k, v)) in g.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_key(&mut out, k);
            out.push_str(&format!("{v}"));
        }
        out.push_str("},\"values\":{");
        for (i, (k, v)) in g.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_key(&mut out, k);
            json::push_f64(&mut out, *v);
        }
        out.push_str("},\"notes\":{");
        for (i, (k, v)) in g.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_key(&mut out, k);
            json::push_string(&mut out, v);
        }
        out.push_str("}}\n");
        out
    }

    /// Like [`Metrics::to_json`] but with a `"wall_timers"` section
    /// appended — useful for humans, **not** reproducible across runs.
    #[must_use]
    pub fn to_json_with_timers(&self) -> String {
        let mut out = self.to_json();
        // strip the trailing "}\n" and splice the timers object in
        out.truncate(out.len() - 2);
        out.push_str(",\"wall_timers\":{");
        // panics: mutex poisoned only if another thread already panicked
        let g = self.inner.lock().unwrap();
        for (i, (k, v)) in g.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_key(&mut out, k);
            json::push_f64(&mut out, *v);
        }
        out.push_str("}}\n");
        out
    }

    /// Renders everything (counters, values, wall timers) as an aligned
    /// text table.
    #[must_use]
    pub fn render_text(&self) -> String {
        // panics: mutex poisoned only if another thread already panicked
        let g = self.inner.lock().unwrap();
        let mut out = String::new();
        for (k, v) in &g.counters {
            out.push_str(&format!("{k:<32} {v}\n"));
        }
        for (k, v) in &g.values {
            out.push_str(&format!("{k:<32} {v}\n"));
        }
        for (k, v) in &g.timers {
            out.push_str(&format!("{k:<32} {v:.6}s (wall)\n"));
        }
        for (k, v) in &g.notes {
            out.push_str(&format!("{k:<32} {v}\n"));
        }
        out
    }
}

struct MetricsObserver {
    metrics: Metrics,
    prefix: String,
}

impl Observer for MetricsObserver {
    fn record(&mut self, _rec: OpRecord) {
        self.metrics.incr(&format!("{}.ops", self.prefix), 1);
    }

    fn actor_started(&mut self, _actor: usize, _time: f64) {
        self.metrics.incr(&format!("{}.actors_started", self.prefix), 1);
    }

    fn actor_ended(&mut self, _actor: usize, _time: f64) {
        self.metrics.incr(&format!("{}.actors_ended", self.prefix), 1);
    }

    fn engine_ended(&mut self, time: f64) {
        self.metrics.set_value(&format!("{}.simulated_time", self.prefix), time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_values_and_timers_accumulate() {
        let m = Metrics::new();
        m.incr("a.x", 2);
        m.incr("a.x", 3);
        m.set_value("a.t", 1.25);
        m.observe_wall("a.wall", 0.5);
        let out = m.time("a.wall", || 7);
        assert_eq!(out, 7);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.value("a.t"), Some(1.25));
        assert!(m.wall("a.wall") >= 0.5);
    }

    #[test]
    fn observer_feeds_registry() {
        let m = Metrics::new();
        let mut obs = m.observer("replay");
        obs.actor_started(0, 0.0);
        obs.actor_started(1, 0.0);
        obs.record(OpRecord { actor: 0, tag: 3, start: 0.0, end: 1.0, volume: 8.0 });
        obs.record(OpRecord { actor: 1, tag: 3, start: 0.0, end: 1.0, volume: 8.0 });
        obs.actor_ended(0, 1.0);
        obs.actor_ended(1, 1.0);
        obs.engine_ended(1.0);
        assert_eq!(m.counter("replay.ops"), 2);
        assert_eq!(m.counter("replay.actors_started"), 2);
        assert_eq!(m.counter("replay.actors_ended"), 2);
        assert_eq!(m.value("replay.simulated_time"), Some(1.0));
    }

    #[test]
    fn json_is_deterministic_and_excludes_timers() {
        let m = Metrics::new();
        m.incr("b.count", 1);
        m.incr("a.count", 2);
        m.set_value("z.gauge", 0.5);
        m.observe_wall("wall.secs", 123.0);
        let a = m.to_json();
        let b = m.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\":\"titobs-metrics-v1\""));
        // sorted keys: a.count before b.count
        assert!(a.find("a.count").unwrap() < a.find("b.count").unwrap());
        assert!(!a.contains("wall.secs"));
        let t = m.to_json_with_timers();
        assert!(t.contains("wall.secs"));
        assert_eq!(t.matches('{').count(), t.matches('}').count());
    }

    #[test]
    fn gauges_move_both_ways_and_render_deterministically() {
        let m = Metrics::new();
        // A queue-depth gauge rises and falls; counters cannot do this.
        m.gauge_add("serve.queue_depth", 1.0);
        m.gauge_add("serve.queue_depth", 1.0);
        m.gauge_add("serve.queue_depth", -1.0);
        assert_eq!(m.value("serve.queue_depth"), Some(1.0));
        m.gauge_set("serve.in_flight", 3.0);
        m.gauge_add("serve.in_flight", -2.0);
        assert_eq!(m.value("serve.in_flight"), Some(1.0));
        // gauge_set overwrites, gauge_add accumulates from zero.
        m.gauge_set("serve.queue_depth", 0.0);
        assert_eq!(m.value("serve.queue_depth"), Some(0.0));
        m.gauge_add("fresh", -2.5);
        assert_eq!(m.value("fresh"), Some(-2.5));
        // Deterministic rendering: gauges land in "values", keys sorted.
        let a = m.to_json();
        assert_eq!(a, m.to_json());
        assert!(a.contains("\"serve.in_flight\":1"));
        assert!(
            a.find("\"fresh\"").unwrap() < a.find("\"serve.in_flight\"").unwrap(),
            "values must render in sorted key order: {a}"
        );
        assert!(
            a.find("\"serve.in_flight\"").unwrap() < a.find("\"serve.queue_depth\"").unwrap(),
            "values must render in sorted key order: {a}"
        );
    }

    #[test]
    fn notes_render_escaped_in_json() {
        let m = Metrics::new();
        m.set_note("degraded.rank0", "missing-file: SG_process0.trace");
        m.set_note("weird", "a\"b\\c\nd");
        assert_eq!(m.note("degraded.rank0").as_deref(), Some("missing-file: SG_process0.trace"));
        assert_eq!(m.note("absent"), None);
        let j = m.to_json();
        assert!(j.contains("\"notes\":{"));
        assert!(j.contains("\"degraded.rank0\":\"missing-file: SG_process0.trace\""));
        assert!(j.contains("\"weird\":\"a\\\"b\\\\c\\nd\""));
        // the timers splice still produces balanced JSON with notes present
        m.observe_wall("w", 1.0);
        let t = m.to_json_with_timers();
        assert_eq!(t.matches('{').count(), t.matches('}').count());
        assert!(t.ends_with("}}\n"));
        assert!(m.render_text().contains("degraded.rank0"));
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.incr("shared", 1);
        assert_eq!(m.counter("shared"), 1);
        assert!(m.render_text().contains("shared"));
    }
}
