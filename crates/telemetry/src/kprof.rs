//! Rendering for the simulation kernel's self-profile
//! ([`simkern::KernelProfile`]) — the "why is replay slow at this
//! scale" report.
//!
//! The ROADMAP's top open item is replay throughput *falling* with
//! rank count. The raw counters (LMM solves, constraints and variables
//! touched per solve, event-heap traffic, completion-heap churn, peak
//! structure sizes) name the culprit: if `constraints_per_solve` grows
//! with ranks, the solver's islands are coalescing; if heap traffic
//! grows, the event queue is the problem. [`KernelReport::to_json`]
//! renders the deterministic core (`tit-kprof-v1`): counters plus
//! derived per-operation ratios, byte-identical across runs and
//! `--jobs` values, suitable for CI diffing.
//! [`KernelReport::to_json_with_walls`] appends the wall-clock phase
//! attribution — meaningful for humans and benches, **not**
//! reproducible across runs.

use simkern::KernelProfile;

/// A kernel self-profile plus the replay context needed for derived
/// per-operation ratios.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelReport {
    /// The engine's counters and wall-phase attribution.
    pub profile: KernelProfile,
    /// Ranks replayed.
    pub num_ranks: usize,
    /// Trace actions replayed (the throughput denominator).
    pub actions_replayed: u64,
    /// Simulated makespan, seconds.
    pub simulated_time: f64,
}

fn ratio(num: u64, den: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)] // counters stay far below 2^52
    if den > 0 {
        num as f64 / den as f64
    } else {
        0.0
    }
}

impl KernelReport {
    /// Serialises the deterministic core as JSON (`tit-kprof-v1`):
    /// engine and solver counters plus derived ratios, **no wall
    /// clock** — identical replays produce byte-identical output. See
    /// `docs/OBSERVABILITY.md` for the schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let p = &self.profile;
        let s = &p.solver;
        let mut out = String::with_capacity(768);
        out.push_str("{\"schema\":\"tit-kprof-v1\"");
        out.push_str(&format!(",\"num_ranks\":{}", self.num_ranks));
        out.push_str(&format!(",\"actions_replayed\":{}", self.actions_replayed));
        out.push_str(&format!(",\"simulated_time\":{}", self.simulated_time));
        out.push_str(&format!(
            ",\n\"engine\":{{\"actor_steps\":{},\"ops_completed\":{},\"heap_pushes\":{},\"heap_pops\":{},\"heap_peak\":{},\"latency_events\":{},\"sleep_events\":{},\"completion_updates\":{},\"lazy_rekeys\":{},\"stale_pops\":{},\"completion_pops\":{},\"completions_peak\":{},\"activities_peak\":{}}}",
            p.actor_steps,
            p.ops_completed,
            p.heap_pushes,
            p.heap_pops,
            p.heap_peak,
            p.latency_events,
            p.sleep_events,
            p.completion_updates,
            p.lazy_rekeys,
            p.stale_pops,
            p.completion_pops,
            p.completions_peak,
            p.activities_peak
        ));
        out.push_str(&format!(
            ",\n\"solver\":{{\"solves\":{},\"partial_solves\":{},\"islands\":{},\"constraints_touched\":{},\"constraints_skipped\":{},\"vars_touched\":{},\"rate_changes\":{}}}",
            s.solves,
            s.partial_solves,
            s.islands,
            s.constraints_touched,
            s.constraints_skipped,
            s.vars_touched,
            s.rate_changes
        ));
        out.push_str(&format!(
            ",\n\"derived\":{{\"constraints_per_solve\":{},\"vars_per_solve\":{},\"islands_per_solve\":{},\"solves_per_op\":{},\"heap_ops_per_op\":{},\"completion_updates_per_op\":{},\"rate_changes_per_solve\":{}}}}}\n",
            ratio(s.constraints_touched, s.solves),
            ratio(s.vars_touched, s.solves),
            ratio(s.islands, s.solves),
            ratio(s.solves, p.ops_completed),
            ratio(p.heap_pushes + p.heap_pops, p.ops_completed),
            ratio(p.completion_updates, p.ops_completed),
            ratio(s.rate_changes, s.solves)
        ));
        out
    }

    /// Like [`KernelReport::to_json`] but with a `"wall"` section
    /// appended — phase-attributed wall seconds and replay throughput.
    /// Useful for benches and humans, **not** reproducible across runs.
    #[must_use]
    pub fn to_json_with_walls(&self) -> String {
        let mut out = self.to_json();
        // strip the trailing "}\n" and splice the wall object in
        out.truncate(out.len() - 2);
        let w = &self.profile.wall;
        let rps = if w.total_s > 0.0 {
            #[allow(clippy::cast_precision_loss)] // counters stay far below 2^52
            let n = self.actions_replayed as f64;
            n / w.total_s
        } else {
            0.0
        };
        out.push_str(&format!(
            ",\n\"wall\":{{\"drain_s\":{},\"solve_s\":{},\"events_s\":{},\"completions_s\":{},\"total_s\":{},\"records_per_sec\":{}}}}}\n",
            w.drain_s, w.solve_s, w.events_s, w.completions_s, w.total_s, rps
        ));
        out
    }

    /// Renders a human-readable summary naming where the time and the
    /// solver work went.
    #[must_use]
    pub fn render_text(&self) -> String {
        let p = &self.profile;
        let s = &p.solver;
        let w = &p.wall;
        let mut out = String::new();
        out.push_str(&format!(
            "kernel profile: {} ranks, {} actions, simulated {:.6}s\n",
            self.num_ranks, self.actions_replayed, self.simulated_time
        ));
        out.push_str(&format!(
            "  solver: {} solves ({} partial), {} islands, {:.2} constraints/solve ({} skipped), {:.2} vars/solve, {} rate changes\n",
            s.solves,
            s.partial_solves,
            s.islands,
            ratio(s.constraints_touched, s.solves),
            s.constraints_skipped,
            ratio(s.vars_touched, s.solves),
            s.rate_changes
        ));
        out.push_str(&format!(
            "  events: {} heap pushes, {} pops, peak {}; {} latency, {} sleep\n",
            p.heap_pushes, p.heap_pops, p.heap_peak, p.latency_events, p.sleep_events
        ));
        out.push_str(&format!(
            "  completions: {} eager updates, {} lazy re-keys ({} refreshed at top), {} pops, peak {} active (slab peak {})\n",
            p.completion_updates, p.lazy_rekeys, p.stale_pops, p.completion_pops, p.completions_peak, p.activities_peak
        ));
        if w.total_s > 0.0 {
            out.push_str(&format!(
                "  wall: {:.3}s total = drain {:.3}s ({:.0}%) + solve {:.3}s ({:.0}%) + events {:.3}s ({:.0}%) + completions {:.3}s ({:.0}%)\n",
                w.total_s,
                w.drain_s,
                100.0 * w.drain_s / w.total_s,
                w.solve_s,
                100.0 * w.solve_s / w.total_s,
                w.events_s,
                100.0 * w.events_s / w.total_s,
                w.completions_s,
                100.0 * w.completions_s / w.total_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> KernelReport {
        let mut p = KernelProfile {
            actor_steps: 100,
            ops_completed: 50,
            heap_pushes: 20,
            heap_pops: 20,
            heap_peak: 5,
            completion_updates: 80,
            completions_peak: 7,
            ..Default::default()
        };
        p.solver.solves = 40;
        p.solver.islands = 42;
        p.solver.constraints_touched = 400;
        p.solver.vars_touched = 200;
        p.solver.rate_changes = 120;
        p.wall.total_s = 2.0;
        p.wall.solve_s = 1.5;
        KernelReport { profile: p, num_ranks: 8, actions_replayed: 1000, simulated_time: 1.25 }
    }

    #[test]
    fn deterministic_core_excludes_wall() {
        let r = demo();
        let a = r.to_json();
        assert_eq!(a, r.to_json());
        assert!(a.contains("\"schema\":\"tit-kprof-v1\""));
        assert!(a.contains("\"constraints_per_solve\":10"));
        assert!(!a.contains("\"wall\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn walls_section_splices_balanced() {
        let r = demo();
        let t = r.to_json_with_walls();
        assert!(t.contains("\"wall\":{"));
        assert!(t.contains("\"records_per_sec\":500"));
        assert_eq!(t.matches('{').count(), t.matches('}').count());
        assert!(t.ends_with("}\n"));
    }

    #[test]
    fn zero_denominators_render_zero() {
        let r = KernelReport::default();
        let a = r.to_json();
        assert!(a.contains("\"solves_per_op\":0"));
        let text = r.render_text();
        assert!(text.contains("solver: 0 solves"));
    }

    #[test]
    fn text_report_names_phases() {
        let text = demo().render_text();
        assert!(text.contains("solve 1.500s (75%)"), "{text}");
        assert!(text.contains("10.00 constraints/solve"), "{text}");
    }
}
