//! Streaming timed-trace writer: completion-ordered [`OpRecord`]s to
//! Chrome trace-event JSON or compact CSV, in O(ranks) memory.
//!
//! The engine delivers one record per completed operation, in completion
//! order; the writer formats and emits each record immediately, so
//! memory stays constant in the trace length — the requirement for the
//! paper's §6.5 large-trace regime (LU class D, 1024 ranks), where
//! buffering the timed trace would need tens of gigabytes.
//!
//! # File formats
//!
//! **Chrome JSON** (`TimelineFormat::ChromeJson`) is the trace-event
//! format consumed by `chrome://tracing` and [Perfetto]: a top-level
//! object whose `traceEvents` array holds one `"ph":"M"` metadata event
//! per rank (thread names), one `"ph":"X"` complete event per operation
//! (`ts`/`dur` in microseconds of simulated time, `tid` = rank,
//! `args.volume` = flops or bytes) and one `"ph":"i"` instant event per
//! rank termination. `otherData.simulated_time_s` carries the makespan.
//!
//! **CSV** (`TimelineFormat::Csv`) is one `rank,action,start,end,volume`
//! row per operation with seconds to 9 decimal places — the same layout
//! as `tit_replay::output::write_timed_trace`, produced without
//! collecting records first.
//!
//! Identical replays produce byte-identical files: all formatting is
//! fixed-precision or shortest-roundtrip decimal, and no wall-clock
//! timestamps are embedded.
//!
//! [Perfetto]: https://ui.perfetto.dev

use crate::TagNamer;
use simkern::observer::{Observer, OpRecord};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Output encoding of the timed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineFormat {
    /// Chrome trace-event JSON (`chrome://tracing`, Perfetto).
    ChromeJson,
    /// `rank,action,start,end,volume` rows.
    Csv,
}

/// What the writer saw, reported by [`Timeline::finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSummary {
    /// Operation events written.
    pub events: u64,
    /// True when record completion times were non-decreasing (the
    /// engine's contract; a false value indicates a kernel bug).
    pub monotone: bool,
    /// Simulated makespan, when the run completed (engine-end event).
    pub simulated_time: Option<f64>,
}

struct Inner<W: Write> {
    w: W,
    format: TimelineFormat,
    names: TagNamer,
    events: u64,
    last_end: f64,
    monotone: bool,
    simulated_time: Option<f64>,
    /// First I/O error hit while streaming; surfaced by `finish`.
    err: Option<std::io::Error>,
    finished: bool,
}

impl<W: Write> Inner<W> {
    fn emit(&mut self, f: impl FnOnce(&mut W) -> std::io::Result<()>) {
        if self.err.is_none() && !self.finished {
            if let Err(e) = f(&mut self.w) {
                self.err = Some(e);
            }
        }
    }
}

/// Handle to a streaming timed-trace writer.
///
/// Construction writes the header; [`Timeline::sink`] yields the
/// [`Observer`] half to install in the engine (directly or inside a
/// [`simkern::observer::Fanout`]); [`Timeline::finish`] writes the
/// trailer, flushes, and reports the first I/O error hit while
/// streaming, if any.
pub struct Timeline<W: Write> {
    inner: Arc<Mutex<Inner<W>>>,
    nranks: usize,
}

/// The [`Observer`] half of a [`Timeline`] (install into the engine).
pub struct TimelineSink<W: Write> {
    inner: Arc<Mutex<Inner<W>>>,
}

impl<W: Write + 'static> Timeline<W> {
    /// Starts a timed trace over `w` for `nranks` ranks, naming tags
    /// through `names`. The format header is written immediately.
    pub fn new(
        mut w: W,
        nranks: usize,
        format: TimelineFormat,
        names: TagNamer,
    ) -> std::io::Result<Self> {
        match format {
            TimelineFormat::ChromeJson => {
                write!(w, "{{\"traceEvents\":[")?;
                write!(
                    w,
                    "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"tit-replay\"}}}}"
                )?;
                for r in 0..nranks {
                    write!(
                        w,
                        ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{r},\"args\":{{\"name\":\"rank {r}\"}}}}"
                    )?;
                }
            }
            TimelineFormat::Csv => {
                writeln!(w, "rank,action,start,end,volume")?;
            }
        }
        Ok(Timeline {
            inner: Arc::new(Mutex::new(Inner {
                w,
                format,
                names,
                events: 0,
                last_end: f64::NEG_INFINITY,
                monotone: true,
                simulated_time: None,
                err: None,
                finished: false,
            })),
            nranks,
        })
    }

    /// The observer half, to install into the engine. Multiple sinks of
    /// the same timeline share the underlying writer.
    #[must_use]
    pub fn sink(&self) -> Box<dyn Observer> {
        Box::new(TimelineSink { inner: self.inner.clone() })
    }

    /// Ranks announced at construction.
    #[must_use]
    pub fn num_ranks(&self) -> usize {
        self.nranks
    }

    /// Operation events written so far.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().events
    }

    /// Writes the format trailer, flushes, and returns what the writer
    /// saw. The first I/O error hit while streaming (record calls cannot
    /// report errors) is returned here. Idempotent trailer: calling
    /// `finish` twice writes it once.
    pub fn finish(&self) -> std::io::Result<TimelineSummary> {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        if let Some(e) = g.err.take() {
            return Err(e);
        }
        if !g.finished {
            let format = g.format;
            let sim = g.simulated_time;
            let events = g.events;
            let r = match format {
                TimelineFormat::ChromeJson => {
                    let sim_field = match sim {
                        Some(t) => format!("\"{t}\""),
                        None => "null".to_string(),
                    };
                    write!(
                        g.w,
                        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"simulated_time_s\":{sim_field},\"events\":\"{events}\"}}}}\n"
                    )
                }
                TimelineFormat::Csv => Ok(()),
            }
            .and_then(|()| g.w.flush());
            g.finished = true;
            r?;
        }
        Ok(TimelineSummary {
            events: g.events,
            monotone: g.monotone,
            simulated_time: g.simulated_time,
        })
    }

    /// Reclaims the underlying writer, consuming the timeline. Returns
    /// `None` while any [`Timeline::sink`] observer is still alive (the
    /// writer is shared with it). Call after the engine run and
    /// [`Timeline::finish`]: this is how a crash-safe writer (e.g.
    /// `tit_core::AtomicFile`) gets back to its owner to be committed —
    /// the timeline only becomes visible on disk once the trailer is
    /// complete.
    pub fn into_writer(self) -> Option<W> {
        Arc::try_unwrap(self.inner).ok().map(|m| {
            // panics: mutex poisoned only if another thread already panicked
            m.into_inner().unwrap().w
        })
    }
}

impl<W: Write> Observer for TimelineSink<W> {
    fn record(&mut self, rec: OpRecord) {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        if rec.end < g.last_end {
            g.monotone = false;
        }
        g.last_end = rec.end;
        g.events += 1;
        g.write_record(rec);
    }

    fn actor_ended(&mut self, actor: usize, time: f64) {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        if g.format == TimelineFormat::ChromeJson {
            g.emit(|w| {
                write!(
                    w,
                    ",\n{{\"name\":\"rank-end\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":0,\"tid\":{actor}}}",
                    time * 1e6
                )
            });
        }
    }

    fn engine_ended(&mut self, time: f64) {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().simulated_time = Some(time);
    }
}

impl<W: Write> Inner<W> {
    fn write_record(&mut self, rec: OpRecord) {
        let name = (self.names)(rec.tag);
        let format = self.format;
        self.emit(|w| match format {
            TimelineFormat::ChromeJson => write!(
                w,
                ",\n{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"volume\":{}}}}}",
                rec.start * 1e6,
                (rec.end - rec.start) * 1e6,
                rec.actor,
                rec.volume
            ),
            TimelineFormat::Csv => writeln!(
                w,
                "{},{name},{:.9},{:.9},{}",
                rec.actor, rec.start, rec.end, rec.volume
            ),
        });
    }
}

/// An in-memory shared byte sink: lets tests and callers stream a
/// timeline into memory and read the bytes back after
/// [`Timeline::finish`] (the timeline owns its writer, so a plain
/// `Vec<u8>` would be inaccessible).
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the bytes written so far.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        // panics: mutex poisoned only if another thread already panicked
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // panics: mutex poisoned only if another thread already panicked
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_name(tag: u32) -> &'static str {
        match tag {
            1 => "compute",
            2 => "send",
            _ => "other",
        }
    }

    fn demo_records() -> Vec<OpRecord> {
        vec![
            OpRecord { actor: 0, tag: 1, start: 0.0, end: 1.0, volume: 1e9 },
            OpRecord { actor: 1, tag: 2, start: 0.5, end: 1.5, volume: 4096.0 },
        ]
    }

    fn run_through(format: TimelineFormat) -> (String, TimelineSummary) {
        let buf = SharedBuf::new();
        let tl = Timeline::new(buf.clone(), 2, format, demo_name).unwrap();
        let mut sink = tl.sink();
        for r in demo_records() {
            sink.record(r);
        }
        sink.actor_ended(0, 1.0);
        sink.actor_ended(1, 1.5);
        sink.engine_ended(1.5);
        drop(sink);
        let summary = tl.finish().unwrap();
        (String::from_utf8(buf.contents()).unwrap(), summary)
    }

    #[test]
    fn csv_matches_collected_format() {
        let (text, summary) = run_through(TimelineFormat::Csv);
        assert_eq!(summary.events, 2);
        assert!(summary.monotone);
        assert_eq!(summary.simulated_time, Some(1.5));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "rank,action,start,end,volume");
        assert_eq!(lines[1], "0,compute,0.000000000,1.000000000,1000000000");
        assert_eq!(lines[2], "1,send,0.500000000,1.500000000,4096");
    }

    #[test]
    fn chrome_json_has_metadata_events_and_trailer() {
        let (text, summary) = run_through(TimelineFormat::ChromeJson);
        assert_eq!(summary.events, 2);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"name\":\"compute\",\"ph\":\"X\",\"ts\":0.000,\"dur\":1000000.000"));
        assert!(text.contains("\"name\":\"rank-end\",\"ph\":\"i\""));
        assert!(text.contains("\"simulated_time_s\":\"1.5\""));
        assert!(text.trim_end().ends_with('}'));
        // Balanced braces/brackets — a cheap structural JSON sanity check.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn non_monotone_records_are_flagged() {
        let tl = Timeline::new(SharedBuf::new(), 1, TimelineFormat::Csv, demo_name).unwrap();
        let mut sink = tl.sink();
        sink.record(OpRecord { actor: 0, tag: 1, start: 0.0, end: 2.0, volume: 0.0 });
        sink.record(OpRecord { actor: 0, tag: 1, start: 0.0, end: 1.0, volume: 0.0 });
        drop(sink);
        assert!(!tl.finish().unwrap().monotone);
    }

    #[test]
    fn into_writer_reclaims_writer_after_sinks_drop() {
        let tl = Timeline::new(Vec::new(), 1, TimelineFormat::Csv, demo_name).unwrap();
        let mut sink = tl.sink();
        sink.record(OpRecord { actor: 0, tag: 1, start: 0.0, end: 1.0, volume: 8.0 });
        drop(sink);
        tl.finish().unwrap();
        let bytes = tl.into_writer().expect("no sinks alive");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("rank,action,start,end,volume"));
        assert!(text.contains("0,compute,"));
    }

    #[test]
    fn into_writer_refuses_while_sink_alive() {
        let tl = Timeline::new(Vec::new(), 1, TimelineFormat::Csv, demo_name).unwrap();
        let _sink = tl.sink();
        assert!(tl.into_writer().is_none());
    }

    #[test]
    fn finish_is_idempotent() {
        let buf = SharedBuf::new();
        let tl = Timeline::new(buf.clone(), 1, TimelineFormat::ChromeJson, demo_name).unwrap();
        tl.finish().unwrap();
        tl.finish().unwrap();
        let text = String::from_utf8(buf.contents()).unwrap();
        assert_eq!(text.matches("displayTimeUnit").count(), 1);
    }
}
