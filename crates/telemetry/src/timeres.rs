//! Time-resolved metrics: per-window, per-rank compute/comm breakdowns
//! over *simulated* time, in O(ranks + open windows) memory.
//!
//! Whole-run profiles ([`crate::profile::Profile`]) answer *how much*;
//! they cannot answer *when*. Following Haldar's trace-based
//! time-resolved standard metrics, this module segments the simulated
//! clock into windows and reports, per window: compute/comm time, bytes
//! and flops moved, operation counts, the peak number of in-flight
//! communications, and two derived standard metrics — the
//! communication fraction and the cross-rank load imbalance
//! (max busy / mean busy).
//!
//! # Windowing
//!
//! Two boundary sources compose freely ([`WindowSpec`]):
//!
//! * **Fixed width** — boundaries at every multiple of `width`
//!   seconds. A record whose end lands exactly on a boundary belongs
//!   to the *next* window (windows are `[start, end)`).
//! * **Phase boundaries** — a phase closes at the first instant every
//!   rank has completed at least one collective operation since the
//!   last boundary (the application-level synchronization structure:
//!   a barrier/allreduce sweep ends a phase). The triggering record is
//!   *inside* the closing window (`[start, end]`).
//!
//! Records are attributed wholly to the window containing their
//! completion time. Because the engine delivers records in
//! non-decreasing completion order, windows close in stream order:
//! exactly one window is ever open, closed windows reduce to an
//! aggregate summary, and the per-rank detail streams to CSV at close
//! — memory stays O(ranks + closed-window summaries) regardless of
//! trace length. Empty windows are omitted from both outputs.
//!
//! # Determinism and conservation
//!
//! Accumulation is plain `+=` over the engine's deterministic record
//! order — the *same* order [`crate::profile::ProfileSink`] uses — so
//! the final cumulative per-rank totals equal the whole-run profile
//! bit-for-bit, and every output is byte-identical across runs and
//! `--jobs` values (ingestion parallelism never reorders completion).
//! The CSV prints floats in shortest-roundtrip form, so parsing a row
//! back recovers the exact `f64` (tests/timeres.rs leans on this).

use crate::TagClassifier;
use simkern::observer::{Observer, OpRecord};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Window boundary configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSpec {
    /// Fixed window width in simulated seconds (`None`: no fixed
    /// boundaries). Must be positive and finite when present.
    pub width: Option<f64>,
    /// Detect phase boundaries at collective completions.
    pub phases: bool,
}

impl WindowSpec {
    /// Phase detection only (the default for `--time-resolved`).
    #[must_use]
    pub fn phases_only() -> Self {
        WindowSpec { width: None, phases: true }
    }
}

/// What closed a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// A fixed-width boundary (window is `[start, end)`).
    Fixed,
    /// A phase boundary — every rank completed a collective (window is
    /// `[start, end]`, triggering record inside).
    Phase,
    /// The end-of-run flush ([`TimeResolved::finish`]).
    Final,
}

impl WindowKind {
    /// Stable lower-case name used in CSV and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WindowKind::Fixed => "fixed",
            WindowKind::Phase => "phase",
            WindowKind::Final => "final",
        }
    }
}

/// Whole-run per-rank totals, accumulated in the exact order
/// [`crate::profile::ProfileSink`] uses (bit-for-bit conservation
/// against the whole-run profile).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankTotals {
    /// Seconds in computation operations.
    pub compute_time: f64,
    /// Seconds in communication operations.
    pub comm_time: f64,
    /// Computation operations completed.
    pub compute_ops: u64,
    /// Communication operations completed.
    pub comm_ops: u64,
    /// Flops executed.
    pub flops: f64,
    /// Bytes moved.
    pub bytes: f64,
}

impl RankTotals {
    fn add(&mut self, comm: bool, dt: f64, volume: f64) {
        if comm {
            self.comm_time += dt;
            self.comm_ops += 1;
            self.bytes += volume;
        } else {
            self.compute_time += dt;
            self.compute_ops += 1;
            self.flops += volume;
        }
    }
}

/// Aggregate summary of one closed, non-empty window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Ordinal among emitted (non-empty) windows, from 0.
    pub index: u64,
    /// Window start, simulated seconds.
    pub start: f64,
    /// Window end, simulated seconds.
    pub end: f64,
    /// What closed the window.
    pub kind: WindowKind,
    /// Operations completed inside the window, all ranks.
    pub ops: u64,
    /// Compute seconds summed over ranks.
    pub compute_time: f64,
    /// Communication seconds summed over ranks.
    pub comm_time: f64,
    /// Computation operations summed over ranks.
    pub compute_ops: u64,
    /// Communication operations summed over ranks.
    pub comm_ops: u64,
    /// Flops summed over ranks.
    pub flops: f64,
    /// Bytes summed over ranks.
    pub bytes: f64,
    /// Communication fraction of busy time (0 when the window has no
    /// busy time).
    pub comm_ratio: f64,
    /// Load imbalance: max rank busy / mean rank busy (1 when the
    /// window has no busy time — perfectly balanced emptiness).
    pub imbalance: f64,
    /// Peak simultaneous in-flight communication operations, all ranks.
    pub active_peak: u64,
}

/// A finished time-resolved report ([`TimeResolved::finish`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeResReport {
    /// Ranks tracked.
    pub num_ranks: usize,
    /// Fixed window width, when configured.
    pub window_width: Option<f64>,
    /// Phase-boundary detection was on.
    pub phases: bool,
    /// Simulated makespan (0 until the engine-end event).
    pub simulated_time: f64,
    /// Operations across all windows and ranks.
    pub total_ops: u64,
    /// Closed non-empty windows, in time order.
    pub windows: Vec<WindowSummary>,
    /// Whole-run cumulative totals per rank (== the profile's totals,
    /// bit-for-bit).
    pub ranks: Vec<RankTotals>,
}

impl TimeResReport {
    /// Serialises the report as deterministic JSON (`tit-timeres-v1`):
    /// windows in time order, ranks ascending, shortest-roundtrip
    /// number formatting. See `docs/OBSERVABILITY.md` for the schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.windows.len() * 192);
        out.push_str("{\"schema\":\"tit-timeres-v1\"");
        out.push_str(&format!(",\"num_ranks\":{}", self.num_ranks));
        match self.window_width {
            Some(w) => out.push_str(&format!(",\"window_width\":{w}")),
            None => out.push_str(",\"window_width\":null"),
        }
        out.push_str(&format!(",\"phase_boundaries\":{}", self.phases));
        out.push_str(&format!(",\"simulated_time\":{}", self.simulated_time));
        out.push_str(&format!(",\"total_ops\":{}", self.total_ops));
        out.push_str(&format!(",\"num_windows\":{}", self.windows.len()));
        out.push_str(",\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"index\":{},\"start\":{},\"end\":{},\"kind\":\"{}\",\"ops\":{},\"compute_time\":{},\"comm_time\":{},\"compute_ops\":{},\"comm_ops\":{},\"flops\":{},\"bytes\":{},\"comm_ratio\":{},\"imbalance\":{},\"active_peak\":{}}}",
                w.index,
                w.start,
                w.end,
                w.kind.as_str(),
                w.ops,
                w.compute_time,
                w.comm_time,
                w.compute_ops,
                w.comm_ops,
                w.flops,
                w.bytes,
                w.comm_ratio,
                w.imbalance,
                w.active_peak
            ));
        }
        out.push_str("\n],\"ranks\":[");
        for (rank, r) in self.ranks.iter().enumerate() {
            if rank > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"rank\":{rank},\"compute_time\":{},\"comm_time\":{},\"compute_ops\":{},\"comm_ops\":{},\"flops\":{},\"bytes\":{}}}",
                r.compute_time, r.comm_time, r.compute_ops, r.comm_ops, r.flops, r.bytes
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

struct Inner<W: Write> {
    csv: Option<W>,
    err: Option<std::io::Error>,
    width: Option<f64>,
    phases: bool,
    is_comm: TagClassifier,
    is_collective: TagClassifier,
    /// Whole-run cumulative accumulators, per rank.
    cum: Vec<RankTotals>,
    /// Open-window accumulators, per rank (reset at close).
    win: Vec<RankTotals>,
    /// Open-window peak in-flight comms, per rank (reset at close).
    win_rank_peak: Vec<u64>,
    /// Currently in-flight comms, per rank (never reset).
    inflight: Vec<u64>,
    /// Rank completed a collective since the last boundary?
    coll_flag: Vec<bool>,
    /// Count of set `coll_flag`s (phase closes when == ranks).
    coll_set: usize,
    global_inflight: u64,
    win_global_peak: u64,
    win_ops: u64,
    cur_start: f64,
    /// Next fixed boundary is `next_fixed_k * width`.
    next_fixed_k: u64,
    total_ops: u64,
    simulated_time: f64,
    windows: Vec<WindowSummary>,
    last_end: f64,
    finished: bool,
}

impl<W: Write> Inner<W> {
    fn emit(&mut self, f: impl FnOnce(&mut W) -> std::io::Result<()>) {
        if self.err.is_none() && !self.finished {
            if let Some(w) = self.csv.as_mut() {
                if let Err(e) = f(w) {
                    self.err = Some(e);
                }
            }
        }
    }

    fn grow_to(&mut self, rank: usize) {
        if rank >= self.cum.len() {
            let n = rank + 1;
            self.cum.resize(n, RankTotals::default());
            self.win.resize(n, RankTotals::default());
            self.win_rank_peak.resize(n, 0);
            self.inflight.resize(n, 0);
            self.coll_flag.resize(n, false);
        }
    }

    /// Closes the open window at `end`. Empty windows advance the
    /// window start without emitting anything.
    fn close_window(&mut self, end: f64, kind: WindowKind) {
        if self.win_ops > 0 {
            let mut agg = RankTotals::default();
            let mut max_busy = 0.0f64;
            let mut busy_sum = 0.0f64;
            for r in &self.win {
                agg.compute_time += r.compute_time;
                agg.comm_time += r.comm_time;
                agg.compute_ops += r.compute_ops;
                agg.comm_ops += r.comm_ops;
                agg.flops += r.flops;
                agg.bytes += r.bytes;
                let busy = r.compute_time + r.comm_time;
                max_busy = max_busy.max(busy);
                busy_sum += busy;
            }
            let nranks = self.win.len();
            let mean_busy = if nranks > 0 { busy_sum / nranks as f64 } else { 0.0 };
            let busy = agg.compute_time + agg.comm_time;
            let comm_ratio = if busy > 0.0 { agg.comm_time / busy } else { 0.0 };
            let imbalance = if mean_busy > 0.0 { max_busy / mean_busy } else { 1.0 };
            let index = self.windows.len() as u64;
            let start = self.cur_start;
            let win_ops = self.win_ops;
            let peak = self.win_global_peak;
            // One CSV row per rank, floats in shortest-roundtrip form
            // (parsing a row back recovers the exact f64).
            for rank in 0..self.win.len() {
                let r = self.win[rank];
                let rank_peak = self.win_rank_peak[rank];
                let kind_s = kind.as_str();
                self.emit(|w| {
                    writeln!(
                        w,
                        "{index},{start},{end},{kind_s},{rank},{},{},{},{},{},{},{rank_peak}",
                        r.compute_time, r.comm_time, r.compute_ops, r.comm_ops, r.flops, r.bytes
                    )
                });
            }
            self.windows.push(WindowSummary {
                index,
                start,
                end,
                kind,
                ops: win_ops,
                compute_time: agg.compute_time,
                comm_time: agg.comm_time,
                compute_ops: agg.compute_ops,
                comm_ops: agg.comm_ops,
                flops: agg.flops,
                bytes: agg.bytes,
                comm_ratio,
                imbalance,
                active_peak: peak,
            });
        }
        for r in &mut self.win {
            *r = RankTotals::default();
        }
        // In-flight comms carry across the boundary: they are the new
        // window's starting watermark.
        self.win_global_peak = self.global_inflight;
        for (p, &f) in self.win_rank_peak.iter_mut().zip(&self.inflight) {
            *p = f;
        }
        self.win_ops = 0;
        self.cur_start = end;
    }

    fn on_record(&mut self, rec: OpRecord) {
        self.grow_to(rec.actor);
        // Fixed boundaries strictly before (or at) this record's end
        // close first; the record then lands in the next window.
        if let Some(width) = self.width {
            loop {
                #[allow(clippy::cast_precision_loss)] // window ordinals stay tiny
                let boundary = self.next_fixed_k as f64 * width;
                if rec.end < boundary {
                    break;
                }
                self.close_window(boundary, WindowKind::Fixed);
                self.next_fixed_k += 1;
            }
        }
        self.total_ops += 1;
        self.win_ops += 1;
        self.last_end = rec.end;
        let comm = (self.is_comm)(rec.tag);
        let dt = rec.end - rec.start;
        self.cum[rec.actor].add(comm, dt, rec.volume);
        self.win[rec.actor].add(comm, dt, rec.volume);
        if comm && self.inflight[rec.actor] > 0 {
            self.inflight[rec.actor] -= 1;
            self.global_inflight -= 1;
        }
        if self.phases && (self.is_collective)(rec.tag) {
            if !self.coll_flag[rec.actor] {
                self.coll_flag[rec.actor] = true;
                self.coll_set += 1;
            }
            if self.coll_set == self.coll_flag.len() {
                self.close_window(rec.end, WindowKind::Phase);
                for f in &mut self.coll_flag {
                    *f = false;
                }
                self.coll_set = 0;
            }
        }
    }
}

/// Handle to a time-resolved metrics aggregator.
///
/// [`TimeResolved::sink`] yields the [`Observer`] half; per-rank window
/// detail streams to the optional CSV writer as windows close;
/// [`TimeResolved::finish`] flushes the final window and returns the
/// [`TimeResReport`].
pub struct TimeResolved<W: Write> {
    inner: Arc<Mutex<Inner<W>>>,
}

/// The [`Observer`] half of a [`TimeResolved`].
pub struct TimeResSink<W: Write> {
    inner: Arc<Mutex<Inner<W>>>,
}

/// CSV header written before the first window row.
pub const CSV_HEADER: &str =
    "window,start,end,kind,rank,compute_time,comm_time,compute_ops,comm_ops,flops,bytes,active_peak";

impl<W: Write + 'static> TimeResolved<W> {
    /// A time-resolved aggregator over `nranks` ranks (records for
    /// higher ranks grow the table). `csv` optionally streams per-rank
    /// window rows; the header is written immediately. `is_comm`
    /// classifies communication tags, `is_collective` the collective
    /// subset driving phase detection.
    pub fn new(
        csv: Option<W>,
        nranks: usize,
        spec: WindowSpec,
        is_comm: TagClassifier,
        is_collective: TagClassifier,
    ) -> std::io::Result<Self> {
        if let Some(w) = spec.width {
            assert!(
                w > 0.0 && w.is_finite(),
                "window width must be positive and finite, got {w}"
            );
        }
        let mut csv = csv;
        if let Some(w) = csv.as_mut() {
            writeln!(w, "{CSV_HEADER}")?;
        }
        Ok(TimeResolved {
            inner: Arc::new(Mutex::new(Inner {
                csv,
                err: None,
                width: spec.width,
                phases: spec.phases,
                is_comm,
                is_collective,
                cum: vec![RankTotals::default(); nranks],
                win: vec![RankTotals::default(); nranks],
                win_rank_peak: vec![0; nranks],
                inflight: vec![0; nranks],
                coll_flag: vec![false; nranks],
                coll_set: 0,
                global_inflight: 0,
                win_global_peak: 0,
                win_ops: 0,
                cur_start: 0.0,
                next_fixed_k: 1,
                total_ops: 0,
                simulated_time: 0.0,
                windows: Vec::new(),
                last_end: 0.0,
                finished: false,
            })),
        })
    }

    /// The observer half, to install into the engine.
    #[must_use]
    pub fn sink(&self) -> Box<dyn Observer> {
        Box::new(TimeResSink { inner: self.inner.clone() })
    }

    /// Closes the final window, flushes the CSV, and returns the
    /// report. The first I/O error hit while streaming is returned
    /// here. Idempotent: a second call returns the same report without
    /// re-closing anything.
    pub fn finish(&self) -> std::io::Result<TimeResReport> {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        if let Some(e) = g.err.take() {
            return Err(e);
        }
        if !g.finished {
            let end = if g.simulated_time > 0.0 {
                g.simulated_time
            } else {
                g.last_end.max(g.cur_start)
            };
            g.close_window(end, WindowKind::Final);
            if let Some(w) = g.csv.as_mut() {
                w.flush()?;
            }
            g.finished = true;
        }
        Ok(TimeResReport {
            num_ranks: g.cum.len(),
            window_width: g.width,
            phases: g.phases,
            simulated_time: g.simulated_time,
            total_ops: g.total_ops,
            windows: g.windows.clone(),
            ranks: g.cum.clone(),
        })
    }

    /// Reclaims the CSV writer, consuming the handle. Returns `None`
    /// while any sink is alive, or when no CSV writer was configured.
    /// As with [`crate::timeline::Timeline::into_writer`], this is how
    /// a `tit_core::AtomicFile` gets back to its owner for commit.
    pub fn into_writer(self) -> Option<W> {
        Arc::try_unwrap(self.inner).ok().and_then(|m| {
            // panics: mutex poisoned only if another thread already panicked
            m.into_inner().unwrap().csv
        })
    }
}

impl<W: Write> Observer for TimeResSink<W> {
    fn record(&mut self, rec: OpRecord) {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().on_record(rec);
    }

    fn op_started(&mut self, actor: usize, tag: u32, _t: f64) {
        // panics: mutex poisoned only if another thread already panicked
        let mut g = self.inner.lock().unwrap();
        if (g.is_comm)(tag) {
            g.grow_to(actor);
            g.inflight[actor] += 1;
            g.global_inflight += 1;
            g.win_global_peak = g.win_global_peak.max(g.global_inflight);
            g.win_rank_peak[actor] = g.win_rank_peak[actor].max(g.inflight[actor]);
        }
    }

    fn engine_ended(&mut self, time: f64) {
        // panics: mutex poisoned only if another thread already panicked
        self.inner.lock().unwrap().simulated_time = time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedBuf;

    fn comm(tag: u32) -> bool {
        tag >= 2
    }

    fn coll(tag: u32) -> bool {
        tag == 8
    }

    fn rec(actor: usize, tag: u32, start: f64, end: f64, volume: f64) -> OpRecord {
        OpRecord { actor, tag, start, end, volume }
    }

    #[test]
    fn fixed_windows_split_records_at_boundaries() {
        let tr = TimeResolved::<Vec<u8>>::new(
            None,
            2,
            WindowSpec { width: Some(1.0), phases: false },
            comm,
            coll,
        )
        .unwrap();
        let mut s = tr.sink();
        s.record(rec(0, 1, 0.0, 0.5, 10.0));
        s.record(rec(1, 1, 0.0, 0.9, 10.0));
        // Lands exactly on the boundary → next window.
        s.record(rec(0, 1, 0.5, 1.0, 10.0));
        s.record(rec(1, 2, 1.0, 2.5, 64.0));
        s.engine_ended(2.5);
        drop(s);
        let r = tr.finish().unwrap();
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows[0].kind, WindowKind::Fixed);
        assert_eq!(r.windows[0].ops, 2);
        assert_eq!(r.windows[0].start, 0.0);
        assert_eq!(r.windows[0].end, 1.0);
        assert_eq!(r.windows[1].ops, 1); // the boundary record
        assert_eq!(r.windows[2].kind, WindowKind::Final);
        assert_eq!(r.windows[2].comm_ops, 1);
        assert_eq!(r.windows[2].bytes, 64.0);
        assert_eq!(r.total_ops, 4);
        // Conservation: cumulative == sum over windows (exact counts).
        let wops: u64 = r.windows.iter().map(|w| w.ops).sum();
        assert_eq!(wops, r.total_ops);
        assert_eq!(r.ranks[0].compute_ops + r.ranks[1].compute_ops, 3);
    }

    #[test]
    fn phase_closes_when_every_rank_completed_a_collective() {
        let tr = TimeResolved::<Vec<u8>>::new(None, 2, WindowSpec::phases_only(), comm, coll)
            .unwrap();
        let mut s = tr.sink();
        s.record(rec(0, 1, 0.0, 1.0, 10.0));
        s.record(rec(0, 8, 1.0, 2.0, 8.0));
        // Only rank 0 collected so far: still one open window.
        s.record(rec(1, 1, 0.0, 2.0, 10.0));
        s.record(rec(1, 8, 2.0, 3.0, 8.0)); // closes the phase, inclusive
        s.record(rec(0, 1, 3.0, 4.0, 10.0));
        s.engine_ended(4.0);
        drop(s);
        let r = tr.finish().unwrap();
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[0].kind, WindowKind::Phase);
        assert_eq!(r.windows[0].end, 3.0);
        assert_eq!(r.windows[0].ops, 4);
        assert_eq!(r.windows[1].kind, WindowKind::Final);
        assert_eq!(r.windows[1].ops, 1);
    }

    #[test]
    fn active_flows_peak_per_window() {
        let tr = TimeResolved::<Vec<u8>>::new(None, 2, WindowSpec::phases_only(), comm, coll)
            .unwrap();
        let mut s = tr.sink();
        s.op_started(0, 2, 0.0);
        s.op_started(1, 2, 0.0);
        s.op_started(0, 1, 0.0); // compute: not a flow
        s.record(rec(0, 2, 0.0, 1.0, 64.0));
        s.record(rec(1, 2, 0.0, 1.5, 64.0));
        s.engine_ended(1.5);
        drop(s);
        let r = tr.finish().unwrap();
        assert_eq!(r.windows.len(), 1);
        assert_eq!(r.windows[0].active_peak, 2);
    }

    #[test]
    fn csv_rows_per_rank_and_json_deterministic() {
        let run = || {
            let buf = SharedBuf::new();
            let tr = TimeResolved::new(
                Some(buf.clone()),
                2,
                WindowSpec { width: Some(2.0), phases: true },
                comm,
                coll,
            )
            .unwrap();
            let mut s = tr.sink();
            s.record(rec(0, 1, 0.0, 0.125, 10.0));
            s.record(rec(1, 2, 0.0, 0.25, 32.0));
            s.engine_ended(0.25);
            drop(s);
            let rep = tr.finish().unwrap();
            (String::from_utf8(buf.contents()).unwrap(), rep.to_json())
        };
        let (csv_a, json_a) = run();
        let (csv_b, json_b) = run();
        assert_eq!(csv_a, csv_b);
        assert_eq!(json_a, json_b);
        let lines: Vec<&str> = csv_a.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 3); // header + one window x two ranks
        assert!(lines[1].starts_with("0,0,0.25,final,0,0.125,"), "{}", lines[1]);
        assert!(json_a.contains("\"schema\":\"tit-timeres-v1\""));
        assert!(json_a.contains("\"window_width\":2"));
        assert_eq!(json_a.matches('{').count(), json_a.matches('}').count());
    }

    #[test]
    fn cumulative_matches_profile_accumulation_bitwise() {
        use crate::Profile;
        let name = |_: u32| "op";
        let records: Vec<OpRecord> = (0..100u32)
            .map(|i| {
                rec(
                    (i % 4) as usize,
                    1 + (i % 8),
                    f64::from(i) * 0.1,
                    f64::from(i) * 0.1 + 0.05 + f64::from(i % 3) * 1e-3,
                    f64::from(i) * 7.0,
                )
            })
            .collect();
        let p = Profile::new(4, name, comm);
        let tr =
            TimeResolved::<Vec<u8>>::new(None, 4, WindowSpec { width: Some(0.7), phases: true }, comm, coll)
                .unwrap();
        let mut ps = p.sink();
        let mut ts = tr.sink();
        for r in &records {
            ps.record(*r);
            ts.record(*r);
        }
        drop(ps);
        drop(ts);
        let prof = p.snapshot();
        let rep = tr.finish().unwrap();
        for (rank, (a, b)) in rep.ranks.iter().zip(&prof.ranks).enumerate() {
            assert_eq!(a.compute_time.to_bits(), b.compute_time.to_bits(), "rank {rank}");
            assert_eq!(a.comm_time.to_bits(), b.comm_time.to_bits(), "rank {rank}");
            assert_eq!(a.flops.to_bits(), b.flops.to_bits(), "rank {rank}");
            assert_eq!(a.bytes.to_bits(), b.bytes.to_bits(), "rank {rank}");
            assert_eq!(a.compute_ops, b.compute_ops);
            assert_eq!(a.comm_ops, b.comm_ops);
        }
        let wops: u64 = rep.windows.iter().map(|w| w.ops).sum();
        assert_eq!(wops, prof.total_ops);
    }

    #[test]
    fn finish_is_idempotent() {
        let tr = TimeResolved::<Vec<u8>>::new(None, 1, WindowSpec::phases_only(), comm, coll)
            .unwrap();
        let mut s = tr.sink();
        s.record(rec(0, 1, 0.0, 1.0, 1.0));
        drop(s);
        let a = tr.finish().unwrap();
        let b = tr.finish().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.windows.len(), 1);
    }
}
