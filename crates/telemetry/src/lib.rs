//! `titobs` — the observability layer of the TiTR reproduction.
//!
//! Figure 4 of the paper lists three outputs of an off-line simulation:
//! the simulated execution time, a **timed trace** (the time-independent
//! trace re-decorated with simulated time stamps) and an application
//! **profile**. The simulation kernel reports events through the
//! [`simkern::observer::Observer`] hook; this crate turns that hook into
//! production-grade outputs without ever buffering the run:
//!
//! * [`timeline::Timeline`] — a **streaming** timed-trace writer with
//!   O(ranks) memory: each completed operation is written as it arrives,
//!   as Chrome trace-event JSON (loadable in `chrome://tracing` and
//!   Perfetto) or as compact CSV.
//! * [`profile::Profile`] — a per-rank aggregator (compute/communication
//!   time, bytes, flops, operation counts, per-tag duration histograms
//!   with fixed log-scale buckets), the paper's Figure-7-style breakdown
//!   computed from *simulated* time. Bit-for-bit reproducible: no
//!   ambient floating state, deterministic accumulation order.
//! * [`metrics::Metrics`] — a registry of counters, gauge values and
//!   wall-clock timers threaded through the
//!   acquire → extract → gather → lint → replay pipeline, so every stage
//!   reports events processed, bytes moved and retries taken.
//! * [`timeres::TimeResolved`] — a **time-resolved** metrics engine:
//!   segments simulated time into windows (fixed width and/or phase
//!   boundaries detected at collective operations) and streams
//!   per-window, per-rank compute/comm time, bytes, operation counts,
//!   active-flow peaks and derived metrics (comm ratio, load imbalance)
//!   in O(ranks + open window) memory.
//! * [`kprof::KernelReport`] — renders the simulation kernel's
//!   self-profile ([`simkern::KernelProfile`]): where the *wall* time
//!   goes (solver vs event machinery) and how much work each solve
//!   touches, the "why is replay slow at this scale" report.
//!
//! All three attach to one engine run through
//! [`simkern::observer::Fanout`]; the caller keeps cheap handles and
//! reads results back after the run — no downcasting:
//!
//! ```
//! use simkern::observer::{Fanout, Observer, OpRecord};
//! use titobs::{Metrics, Profile};
//!
//! let profile = Profile::new(2, |_| "op", |_| false);
//! let metrics = Metrics::new();
//! let mut obs = Fanout::new()
//!     .with(profile.sink())
//!     .with(metrics.observer("replay"));
//! // (normally the engine drives this)
//! obs.record(OpRecord { actor: 0, tag: 0, start: 0.0, end: 2.5, volume: 1e9 });
//! obs.engine_ended(2.5);
//! assert_eq!(metrics.counter("replay.ops"), 1);
//! assert!((profile.snapshot().ranks[0].compute_time - 2.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod kprof;
pub mod metrics;
pub mod profile;
pub mod timeline;
pub mod timeres;

pub use kprof::KernelReport;
pub use metrics::Metrics;
pub use profile::{Histogram, Profile, ProfileReport, RankProfile, TagStats, HIST_BUCKETS};
pub use timeline::{SharedBuf, Timeline, TimelineFormat, TimelineSummary};
pub use timeres::{
    RankTotals, TimeResReport, TimeResolved, WindowKind, WindowSpec, WindowSummary, CSV_HEADER,
};

/// Maps an operation tag to a human-readable action name (the replay
/// layer passes `tit_replay::tags::name`).
pub type TagNamer = fn(u32) -> &'static str;

/// Classifies a tag as communication (`true`) or computation (`false`);
/// the replay layer passes `tit_replay::tags::is_comm`.
pub type TagClassifier = fn(u32) -> bool;
