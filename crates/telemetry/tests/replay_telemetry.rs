//! End-to-end telemetry: a real replay driving timeline, profile and
//! metrics sinks through the engine's observer hook.

use proptest::prelude::*;
use simkern::observer::Fanout;
use simkern::resource::HostId;
use simkern::{NetworkConfig, Platform};
use tit_core::{Action, TiTrace};
use tit_platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};
use tit_replay::{replay_files_observed, replay_memory_observed, tags, ReplayConfig};
use titobs::{Metrics, Profile, SharedBuf, Timeline, TimelineFormat};

fn mycluster(n: usize) -> (Platform, Vec<HostId>) {
    let spec = ClusterSpec {
        id: "mycluster".into(),
        prefix: "mycluster-".into(),
        suffix: ".mysite.fr".into(),
        count: n,
        power: 1.17e9,
        cores: 1,
        bw: 1.25e8,
        lat: 16.67e-6,
        bb_bw: 1.25e9,
        bb_lat: 16.67e-6,
        topology: ClusterTopology::Flat,
    };
    let p = PlatformDesc::single(spec).build();
    let hosts = (0..n as u32).map(HostId).collect();
    (p, hosts)
}

fn example_trace_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/traces/ring4")
}

/// A ring where every send is eager (1 KiB, far below the 64 KiB
/// rendezvous threshold) and every rank runs the same program: each
/// rank is inside exactly one operation from t=0 to the makespan.
fn eager_ring(n: usize, iters: usize, flops: f64, bytes: f64) -> TiTrace {
    let mut t = TiTrace::new(n);
    for r in 0..n {
        for _ in 0..iters {
            t.push(r, Action::Compute { flops });
            t.push(r, Action::Send { dst: (r + 1) % n, bytes });
            t.push(r, Action::Recv { src: (r + n - 1) % n, bytes: None });
        }
    }
    t
}

/// The ISSUE's acceptance criterion: replaying the bundled example
/// trace, every rank's compute + communication time equals the
/// simulated makespan within 1e-9 relative error.
#[test]
fn example_trace_busy_time_accounts_for_the_makespan() {
    let (p, hosts) = mycluster(4);
    let profile = Profile::new(4, tags::name, tags::is_comm);
    let cfg =
        ReplayConfig { network: NetworkConfig::mpi_cluster(), ..ReplayConfig::default() };
    let out = replay_files_observed(
        &example_trace_dir(),
        4,
        p,
        &hosts,
        &cfg,
        Some(profile.sink()),
    )
    .unwrap();
    let report = profile.snapshot();
    assert_eq!(report.simulated_time, out.simulated_time);
    assert!(out.simulated_time > 0.0);
    for (rank, r) in report.ranks.iter().enumerate() {
        let rel = (r.busy_time() - out.simulated_time).abs() / out.simulated_time;
        assert!(
            rel < 1e-9,
            "rank {rank}: compute {} + comm {} != makespan {} (rel {rel})",
            r.compute_time,
            r.comm_time,
            out.simulated_time
        );
        assert_eq!(r.end_time, out.simulated_time, "rank {rank} ends with the run");
    }
}

/// Identical replays produce byte-identical timeline, profile and
/// metrics outputs — the reproducibility acceptance criterion.
#[test]
fn identical_replays_are_byte_identical() {
    let run = || {
        let (p, hosts) = mycluster(4);
        let json_buf = SharedBuf::new();
        let csv_buf = SharedBuf::new();
        let json =
            Timeline::new(json_buf.clone(), 4, TimelineFormat::ChromeJson, tags::name).unwrap();
        let csv = Timeline::new(csv_buf.clone(), 4, TimelineFormat::Csv, tags::name).unwrap();
        let profile = Profile::new(4, tags::name, tags::is_comm);
        let metrics = Metrics::new();
        let fan = Fanout::new()
            .with(json.sink())
            .with(csv.sink())
            .with(profile.sink())
            .with(metrics.observer("replay"));
        let out = replay_files_observed(
            &example_trace_dir(),
            4,
            p,
            &hosts,
            &ReplayConfig::default(),
            Some(Box::new(fan)),
        )
        .unwrap();
        json.finish().unwrap();
        csv.finish().unwrap();
        metrics.incr("replay.actions", out.actions_replayed);
        (
            json_buf.contents(),
            csv_buf.contents(),
            profile.snapshot().to_json(),
            metrics.to_json(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "timeline JSON differs between identical replays");
    assert_eq!(a.1, b.1, "timed-trace CSV differs between identical replays");
    assert_eq!(a.2, b.2, "profile JSON differs between identical replays");
    assert_eq!(a.3, b.3, "metrics JSON differs between identical replays");
    assert!(!a.0.is_empty() && !a.1.is_empty());
}

/// The streaming acceptance criterion: a 10^5-action trace replayed
/// with `collect_records: false` and only streaming sinks — no record
/// vector materialises, yet every operation reaches the outputs.
#[test]
fn hundred_thousand_actions_stream_without_collection() {
    let n = 4;
    let per_rank = 25_000usize;
    let mut t = TiTrace::new(n);
    for r in 0..n {
        for _ in 0..per_rank {
            t.push(r, Action::Compute { flops: 1e4 });
        }
    }
    let total = (n * per_rank) as u64;
    let (p, hosts) = mycluster(n);
    let csv_buf = SharedBuf::new();
    let csv = Timeline::new(csv_buf.clone(), n, TimelineFormat::Csv, tags::name).unwrap();
    let profile = Profile::new(n, tags::name, tags::is_comm);
    let fan = Fanout::new().with(csv.sink()).with(profile.sink());
    let cfg = ReplayConfig { collect_records: false, ..ReplayConfig::default() };
    let out =
        replay_memory_observed(&t, p, &hosts, &cfg, Some(Box::new(fan))).unwrap();
    assert!(out.records.is_none(), "collect_records: false must not buffer");
    assert_eq!(out.actions_replayed, total);
    let summary = csv.finish().unwrap();
    assert_eq!(summary.events, total);
    assert!(summary.monotone);
    let report = profile.snapshot();
    assert_eq!(report.total_ops, total);
    // header + one row per op
    let text = String::from_utf8(csv_buf.contents()).unwrap();
    assert_eq!(text.lines().count() as u64, total + 1);
}

/// The timeline output is structurally valid Chrome trace-event JSON.
#[test]
fn chrome_timeline_is_structurally_valid() {
    let (p, hosts) = mycluster(4);
    let buf = SharedBuf::new();
    let tl = Timeline::new(buf.clone(), 4, TimelineFormat::ChromeJson, tags::name).unwrap();
    replay_files_observed(
        &example_trace_dir(),
        4,
        p,
        &hosts,
        &ReplayConfig::default(),
        Some(tl.sink()),
    )
    .unwrap();
    let summary = tl.finish().unwrap();
    assert!(summary.monotone);
    assert_eq!(summary.events, 36, "4 ranks x 3 rounds x 3 ops");
    let text = String::from_utf8(buf.contents()).unwrap();
    assert!(text.starts_with("{\"traceEvents\":["));
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches('[').count(), text.matches(']').count());
    assert_eq!(text.matches("\"ph\":\"X\"").count(), 36);
    assert!(text.contains("\"simulated_time_s\":\""));
}

proptest! {
    /// Profile totals equal the sum over the collected record vector,
    /// for arbitrary eager rings: the streaming aggregation loses
    /// nothing relative to buffering everything.
    #[test]
    fn profile_totals_match_collected_records(
        n in 2usize..6,
        iters in 1usize..8,
        flops in 1e4..1e7f64,
        bytes in 1.0..32_000.0f64,
    ) {
        let t = eager_ring(n, iters, flops, bytes);
        let (p, hosts) = mycluster(n);
        let profile = Profile::new(n, tags::name, tags::is_comm);
        let cfg = ReplayConfig { collect_records: true, ..ReplayConfig::default() };
        let out = replay_memory_observed(&t, p, &hosts, &cfg, Some(profile.sink())).unwrap();
        let recs = out.records.unwrap();
        let report = profile.snapshot();
        prop_assert_eq!(report.total_ops, recs.len() as u64);
        let mut busy = vec![0.0f64; n];
        let mut comm_ops = vec![0u64; n];
        for r in &recs {
            busy[r.actor] += r.end - r.start;
            if tags::is_comm(r.tag) {
                comm_ops[r.actor] += 1;
            }
        }
        for rank in 0..n {
            let got = report.ranks[rank].busy_time();
            prop_assert!(
                (got - busy[rank]).abs() <= 1e-12 * busy[rank].max(1.0),
                "rank {} busy {} vs records {}", rank, got, busy[rank]
            );
            prop_assert_eq!(report.ranks[rank].comm_ops, comm_ops[rank]);
        }
    }

    /// The engine delivers records in completion order, so any replay's
    /// timeline reports monotone = true.
    #[test]
    fn timeline_is_monotone_for_any_ring(
        n in 2usize..6,
        iters in 1usize..6,
        flops in 1e4..1e7f64,
    ) {
        let t = eager_ring(n, iters, flops, 1024.0);
        let (p, hosts) = mycluster(n);
        let tl = Timeline::new(SharedBuf::new(), n, TimelineFormat::Csv, tags::name).unwrap();
        replay_memory_observed(&t, p, &hosts, &ReplayConfig::default(), Some(tl.sink()))
            .unwrap();
        let summary = tl.finish().unwrap();
        prop_assert!(summary.monotone);
        prop_assert_eq!(summary.events, (n * iters * 3) as u64);
    }
}
