//! Request-scoped replay: deadline-bounded, cooperatively preemptible
//! simulations for the serving layer.
//!
//! `tit-serve` answers many concurrent what-if replay requests from one
//! process. Two things distinguish a *request* from a batch run:
//!
//! * **a deadline** — a request carries a wall-clock
//!   [`Budget`](tit_core::Budget); when it expires the request returns
//!   a *partial* result with a quantified completeness ratio (the same
//!   `replayed / expected` semantics as degraded mode), not an error
//!   and not a hung worker;
//! * **preemption** — when the admission queue backs up, a long-running
//!   simulation is asked to yield: at the next safe point its full
//!   engine state is exported ([`simkern::EngineSnapshot`]), the
//!   request is re-queued, and a later slice resumes it
//!   **bit-identically** (same machinery as PR 5's checkpoint files,
//!   minus the disk round-trip).
//!
//! Both are driven through the kernel's safe-point pause guard: the
//! replay runs in slices of `slice_actions` trace actions, and at every
//! slice boundary the deadline and the preemption flag are consulted.
//! A request with no deadline and no preemption runs exactly like
//! [`crate::replay_compact`] — the guard never fires.

use crate::error::ReplayError;
use crate::handlers::Registry;
use crate::process::{ActionSource, CompactSource, ReplayActor};
use crate::resume::fingerprint;
use crate::simulator::ReplayConfig;
use simkern::observer::Observer;
use simkern::resource::HostId;
use simkern::snapshot::EngineSnapshot;
use simkern::{Engine, Platform, RunStatus, SimError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tit_core::{CompactTrace, Deadline};

/// How a request-scoped replay is paced.
#[derive(Debug, Clone, Copy)]
pub struct RequestPolicy {
    /// Pause-check granularity in replayed trace actions: the deadline
    /// and the preemption flag are consulted every this many actions.
    /// `0` disables slicing (the replay runs to completion untouched).
    pub slice_actions: u64,
    /// The request's running wall-clock deadline (from
    /// [`tit_core::Budget::start`]).
    pub deadline: Deadline,
    /// Degraded-subset mode: damage-induced engine stops (a deadlock
    /// against a rank whose actions were dropped, an actor failure, a
    /// protocol error) become a [`RequestStatus::DamagedPartial`]
    /// outcome instead of an error — the same downgrade PR 5's
    /// degraded replay applies to trimmed trace files.
    pub tolerate_damage: bool,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        RequestPolicy {
            slice_actions: 0,
            deadline: Deadline::unlimited(),
            tolerate_damage: false,
        }
    }
}

/// How a request-scoped replay ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestStatus {
    /// The trace replayed to completion.
    Finished {
        /// Simulated execution time, seconds.
        simulated_time: f64,
    },
    /// The deadline expired: the result is partial, quantified by
    /// [`RequestOutcome::completeness`].
    DeadlinePartial {
        /// Simulated time reached when the budget ran out.
        simulated_time: f64,
    },
    /// The preemption flag was honored at a slice boundary; the
    /// outcome's [`RequestOutcome::paused`] state resumes the replay.
    Preempted {
        /// Simulated time at the preemption safe point.
        simulated_time: f64,
    },
    /// With [`RequestPolicy::tolerate_damage`], the engine stopped on
    /// damage (deadlock / actor failure / protocol violation); the
    /// detail is in [`RequestOutcome::failure`].
    DamagedPartial {
        /// Simulated time when the damage stopped the replay.
        simulated_time: f64,
    },
}

/// The in-memory state of a preempted replay: everything a later
/// [`run_request`] call needs to continue bit-identically. Unlike a
/// PR 5 checkpoint this never touches disk — it lives in the daemon's
/// queue while the request waits its next turn.
#[derive(Debug)]
pub struct PausedReplay {
    /// [`fingerprint`] of the platform/config/deployment the snapshot
    /// was taken under; resuming against anything else fails closed.
    config_fp: u64,
    /// Total actions the trace carries — must match on resume.
    actions_expected: u64,
    /// Shared action counter at the safe point.
    actions_replayed: u64,
    /// Raw engine state.
    engine: EngineSnapshot,
}

impl PausedReplay {
    /// Actions consumed up to the preemption point.
    #[must_use]
    pub fn actions_replayed(&self) -> u64 {
        self.actions_replayed
    }
}

/// Result of a request-scoped replay.
#[derive(Debug)]
pub struct RequestOutcome {
    /// Finished, deadline-partial, or preempted-with-state.
    pub status: RequestStatus,
    /// Total trace actions consumed, including before a resume.
    pub actions_replayed: u64,
    /// Actions the full trace carries.
    pub actions_expected: u64,
    /// Wall-clock time of *this* slice only.
    pub wall_time: Duration,
    /// The resumable state, set if and only if the status is
    /// [`RequestStatus::Preempted`].
    pub paused: Option<PausedReplay>,
    /// The damage detail, set if and only if the status is
    /// [`RequestStatus::DamagedPartial`].
    pub failure: Option<String>,
}

impl RequestOutcome {
    /// Actions replayed over actions expected, in `[0, 1]` — the same
    /// quantified-partial semantics as degraded mode. Exactly `1.0`
    /// for a finished replay of a non-empty trace.
    #[must_use]
    pub fn completeness(&self) -> f64 {
        if self.actions_expected == 0 {
            return match self.status {
                RequestStatus::Finished { .. } => 1.0,
                _ => 0.0,
            };
        }
        (self.actions_replayed as f64 / self.actions_expected as f64).min(1.0)
    }
}

fn req_err(detail: impl std::fmt::Display) -> ReplayError {
    ReplayError::Checkpoint { detail: detail.to_string() }
}

/// Replays `sources` under a request policy. `actions_expected` is the
/// total action count of the undamaged input (used for the
/// completeness ratio of partial results). `preempt` is consulted at
/// every slice boundary; when it reads `true` the engine state is
/// exported and returned for a later resume. `resume` continues a
/// previously preempted request — the sources must be rebuilt
/// identically (same trace, same order); configuration mismatches fail
/// closed.
#[allow(clippy::too_many_arguments)] // one parameter per request input, mirroring run_checkpointed
pub fn run_request(
    sources: Vec<Box<dyn ActionSource>>,
    actions_expected: u64,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
    policy: &RequestPolicy,
    preempt: Option<&AtomicBool>,
    resume: Option<PausedReplay>,
) -> Result<RequestOutcome, ReplayError> {
    if sources.len() != hosts.len() {
        return Err(ReplayError::Deployment { procs: sources.len(), hosts: hosts.len() });
    }
    let fp = fingerprint(&platform, cfg, sources.len());
    let mut engine = Engine::new(platform);
    engine.set_network_config(cfg.network.clone());
    if let Some(obs) = extra {
        engine.set_observer(obs);
    }
    let registry = Arc::new(Registry::with_defaults());
    let counter = Arc::new(AtomicU64::new(0));
    for (rank, src) in sources.into_iter().enumerate() {
        let actor = ReplayActor::new(rank, src, registry.clone(), cfg.algo, counter.clone());
        engine.spawn(Box::new(actor), hosts[rank]);
    }
    if let Some(p) = resume {
        if p.config_fp != fp {
            return Err(req_err(format!(
                "preempted request resumed under a different \
                 platform/config/deployment ({:#018x} vs {fp:#018x})",
                p.config_fp
            )));
        }
        if p.actions_expected != actions_expected {
            return Err(req_err(format!(
                "preempted request resumed against a different trace \
                 ({} vs {actions_expected} expected actions)",
                p.actions_expected
            )));
        }
        engine.restore_state(&p.engine).map_err(req_err)?;
        counter.store(p.actions_replayed, Ordering::Relaxed);
    }

    let t0 = Instant::now();
    let slice = policy.slice_actions;
    let limited = !policy.deadline.is_unlimited();
    let deadline = policy.deadline;
    let mut mark = counter.load(Ordering::Relaxed);
    loop {
        let run = {
            let counter = counter.clone();
            let from = mark;
            let mut guard = move |_: &Engine| {
                (slice > 0 && counter.load(Ordering::Relaxed).saturating_sub(from) >= slice)
                    || (limited && deadline.expired())
            };
            engine.run_until(&mut guard)
        };
        let status = match run {
            Ok(s) => s,
            Err(
                e @ (SimError::Deadlock { .. }
                | SimError::ActorFailure { .. }
                | SimError::Protocol { .. }),
            ) if policy.tolerate_damage => {
                // Degraded-subset semantics: the stop is part of the
                // answer, quantified by the completeness ratio.
                return Ok(RequestOutcome {
                    status: RequestStatus::DamagedPartial { simulated_time: e.time() },
                    actions_replayed: counter.load(Ordering::Relaxed),
                    actions_expected,
                    wall_time: t0.elapsed(),
                    paused: None,
                    failure: Some(e.to_string()),
                });
            }
            Err(e) => return Err(ReplayError::from(e)),
        };
        let actions_replayed = counter.load(Ordering::Relaxed);
        match status {
            RunStatus::Completed(simulated_time) => {
                return Ok(RequestOutcome {
                    status: RequestStatus::Finished { simulated_time },
                    actions_replayed,
                    actions_expected,
                    wall_time: t0.elapsed(),
                    paused: None,
                    failure: None,
                });
            }
            RunStatus::Paused(simulated_time) => {
                if limited && deadline.expired() {
                    return Ok(RequestOutcome {
                        status: RequestStatus::DeadlinePartial { simulated_time },
                        actions_replayed,
                        actions_expected,
                        wall_time: t0.elapsed(),
                        paused: None,
                        failure: None,
                    });
                }
                if preempt.is_some_and(|p| p.load(Ordering::Relaxed)) {
                    let snapshot = engine.export_state().map_err(req_err)?;
                    return Ok(RequestOutcome {
                        status: RequestStatus::Preempted { simulated_time },
                        actions_replayed,
                        actions_expected,
                        wall_time: t0.elapsed(),
                        paused: Some(PausedReplay {
                            config_fp: fp,
                            actions_expected,
                            actions_replayed,
                            engine: snapshot,
                        }),
                        failure: None,
                    });
                }
                mark = actions_replayed;
            }
        }
    }
}

/// Builds one [`CompactSource`] per rank of `trace`. The serving layer
/// uses this both for fresh requests and to rebuild identical sources
/// when resuming a preempted one.
#[must_use]
pub fn compact_sources(trace: &Arc<CompactTrace>) -> Vec<Box<dyn ActionSource>> {
    (0..trace.num_processes())
        .map(|rank| Box::new(CompactSource::new(Arc::clone(trace), rank)) as Box<dyn ActionSource>)
        .collect()
}

/// [`run_request`] over a shared interned [`CompactTrace`] — the
/// serving fast path: the trace loads once, every request streams
/// straight out of the struct-of-arrays storage.
#[allow(clippy::too_many_arguments)] // one parameter per request input, mirroring run_checkpointed
pub fn replay_compact_request(
    trace: &Arc<CompactTrace>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
    policy: &RequestPolicy,
    preempt: Option<&AtomicBool>,
    resume: Option<PausedReplay>,
) -> Result<RequestOutcome, ReplayError> {
    run_request(
        compact_sources(trace),
        trace.num_actions() as u64,
        platform,
        hosts,
        cfg,
        extra,
        policy,
        preempt,
        resume,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::netmodel::NetworkConfig;
    use tit_core::{Action, Budget, TiTrace};
    use tit_platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};

    fn mycluster(n: usize) -> (Platform, Vec<HostId>) {
        let spec = ClusterSpec {
            id: "mycluster".into(),
            prefix: "mycluster-".into(),
            suffix: ".mysite.fr".into(),
            count: n,
            power: 1.17e9,
            cores: 1,
            bw: 1.25e8,
            lat: 16.67e-6,
            bb_bw: 1.25e9,
            bb_lat: 16.67e-6,
            topology: ClusterTopology::Flat,
        };
        let p = PlatformDesc::single(spec).build();
        let hosts = (0..n as u32).map(HostId).collect();
        (p, hosts)
    }

    fn plain_cfg() -> ReplayConfig {
        ReplayConfig { network: NetworkConfig::default(), ..Default::default() }
    }

    fn busy_trace(iters: usize) -> Arc<CompactTrace> {
        let n = 4;
        let mut t = TiTrace::new(n);
        for r in 0..n {
            t.push(r, Action::CommSize { nproc: n });
        }
        for _ in 0..iters {
            t.push(0, Action::Compute { flops: 1e6 });
            t.push(0, Action::Send { dst: 1, bytes: 1e6 });
            t.push(0, Action::Recv { src: 3, bytes: None });
            for p in 1..n {
                t.push(p, Action::Irecv { src: p - 1, bytes: None });
                t.push(p, Action::Compute { flops: 5e5 });
                t.push(p, Action::Wait);
                t.push(p, Action::Send { dst: (p + 1) % n, bytes: 1e6 });
            }
            for r in 0..n {
                t.push(r, Action::AllReduce { vcomm: 1e4, vcomp: 1e5 });
            }
        }
        Arc::new(CompactTrace::from_trace(&t).unwrap())
    }

    #[test]
    fn unsliced_request_matches_plain_compact_replay() {
        let trace = busy_trace(3);
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let plain = crate::replay_compact(&trace, p1, &hosts, &plain_cfg()).unwrap();
        let out = replay_compact_request(
            &trace,
            p2,
            &hosts,
            &plain_cfg(),
            None,
            &RequestPolicy::default(),
            None,
            None,
        )
        .unwrap();
        match out.status {
            RequestStatus::Finished { simulated_time } => {
                assert_eq!(simulated_time.to_bits(), plain.simulated_time.to_bits());
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        assert_eq!(out.actions_replayed, plain.actions_replayed);
        assert_eq!(out.completeness(), 1.0);
    }

    #[test]
    fn preempt_and_resume_is_bit_identical() {
        let trace = busy_trace(2);
        let (pref, hosts) = mycluster(4);
        let reference = crate::replay_compact(&trace, pref, &hosts, &plain_cfg()).unwrap();

        for slice in [1u64, 3, 7, 19] {
            // Preempt at every slice boundary; each resumed run is
            // itself preempted again at its next boundary, walking the
            // whole trace through snapshots.
            let always = AtomicBool::new(true);
            let policy = RequestPolicy { slice_actions: slice, deadline: Deadline::unlimited(), ..Default::default() };
            let (p0, _) = mycluster(4);
            let mut out = replay_compact_request(
                &trace, p0, &hosts, &plain_cfg(), None, &policy, Some(&always), None,
            )
            .unwrap();
            let mut hops = 0;
            let final_time = loop {
                match out.status {
                    RequestStatus::Finished { simulated_time } => break simulated_time,
                    RequestStatus::Preempted { .. } => {
                        hops += 1;
                        assert!(hops < 10_000, "preemption livelock at slice {slice}");
                        let paused = out.paused.take().expect("preempted without state");
                        let (p, _) = mycluster(4);
                        out = replay_compact_request(
                            &trace,
                            p,
                            &hosts,
                            &plain_cfg(),
                            None,
                            &policy,
                            Some(&always),
                            Some(paused),
                        )
                        .unwrap();
                    }
                    RequestStatus::DeadlinePartial { .. }
                    | RequestStatus::DamagedPartial { .. } => {
                        panic!("no deadline was set and the trace is undamaged")
                    }
                }
            };
            assert!(hops > 0, "slice {slice} never preempted");
            assert_eq!(
                final_time.to_bits(),
                reference.simulated_time.to_bits(),
                "slice {slice}: preempt/resume diverged after {hops} hops"
            );
            assert_eq!(out.actions_replayed, reference.actions_replayed);
        }
    }

    #[test]
    fn expired_deadline_returns_quantified_partial() {
        let trace = busy_trace(50);
        let (p, hosts) = mycluster(4);
        let policy = RequestPolicy {
            slice_actions: 4,
            deadline: Budget::limited(Duration::ZERO).start(),
            ..Default::default()
        };
        let out = replay_compact_request(
            &trace, p, &hosts, &plain_cfg(), None, &policy, None, None,
        )
        .unwrap();
        match out.status {
            RequestStatus::DeadlinePartial { simulated_time } => {
                assert!(simulated_time >= 0.0);
            }
            other => panic!("expected DeadlinePartial, got {other:?}"),
        }
        let ratio = out.completeness();
        assert!(ratio < 1.0, "a zero budget cannot finish 50 iterations: {ratio}");
        assert!(ratio >= 0.0);
        assert!(out.paused.is_none(), "deadline partials are final");
    }

    #[test]
    fn dropped_rank_subset_becomes_quantified_damage_not_error() {
        use crate::process::VecSource;
        let trace = busy_trace(3);
        let (p, hosts) = mycluster(4);
        // Rank 2's actions are dropped: its peers eventually deadlock.
        let sources: Vec<Box<dyn ActionSource>> = (0..4)
            .map(|rank| {
                if rank == 2 {
                    Box::new(VecSource::new(Vec::new())) as Box<dyn ActionSource>
                } else {
                    Box::new(CompactSource::new(Arc::clone(&trace), rank))
                }
            })
            .collect();
        let policy = RequestPolicy { tolerate_damage: true, ..Default::default() };
        let out = run_request(
            sources,
            trace.num_actions() as u64,
            p,
            &hosts,
            &plain_cfg(),
            None,
            &policy,
            None,
            None,
        )
        .unwrap();
        match out.status {
            RequestStatus::DamagedPartial { .. } => {}
            other => panic!("expected DamagedPartial, got {other:?}"),
        }
        assert!(out.completeness() < 1.0);
        let detail = out.failure.expect("damage detail");
        assert!(!detail.is_empty());

        // Without tolerance the same subset is a hard error.
        let sources: Vec<Box<dyn ActionSource>> = (0..4)
            .map(|rank| {
                if rank == 2 {
                    Box::new(VecSource::new(Vec::new())) as Box<dyn ActionSource>
                } else {
                    Box::new(CompactSource::new(Arc::clone(&trace), rank))
                }
            })
            .collect();
        let (p2, _) = mycluster(4);
        run_request(
            sources,
            trace.num_actions() as u64,
            p2,
            &hosts,
            &plain_cfg(),
            None,
            &RequestPolicy::default(),
            None,
            None,
        )
        .unwrap_err();
    }

    #[test]
    fn resume_rejects_mismatched_configuration_and_trace() {
        let trace = busy_trace(2);
        let always = AtomicBool::new(true);
        let policy = RequestPolicy { slice_actions: 2, deadline: Deadline::unlimited(), ..Default::default() };
        let (p0, hosts) = mycluster(4);
        let out = replay_compact_request(
            &trace, p0, &hosts, &plain_cfg(), None, &policy, Some(&always), None,
        )
        .unwrap();
        let paused = out.paused.expect("must preempt");

        // Different network model → different fingerprint → refused.
        let (p1, _) = mycluster(4);
        let err = replay_compact_request(
            &trace,
            p1,
            &hosts,
            &ReplayConfig::default(),
            None,
            &policy,
            None,
            Some(paused),
        )
        .unwrap_err();
        assert!(err.to_string().contains("different"), "{err}");

        // Different trace length → refused.
        let (p2, _) = mycluster(4);
        let out = replay_compact_request(
            &trace, p2, &hosts, &plain_cfg(), None, &policy, Some(&always), None,
        )
        .unwrap();
        let paused = out.paused.expect("must preempt");
        let other_trace = busy_trace(3);
        let (p3, _) = mycluster(4);
        let err = replay_compact_request(
            &other_trace,
            p3,
            &hosts,
            &plain_cfg(),
            None,
            &policy,
            None,
            Some(paused),
        )
        .unwrap_err();
        assert!(err.to_string().contains("different trace"), "{err}");
    }
}
