//! Action handlers: the replay-tool analogue of `MSG_action_register`.
//!
//! The paper's simulator binds every trace keyword to a function that
//! "corresponds to the expected behavior of a given action" (Section 5,
//! step 1-2). Here a handler expands one [`Action`] into kernel
//! [`MicroOp`]s; the default [`Registry`] covers all of Table 1, and
//! callers may re-register keywords to explore alternative semantics
//! (e.g. a flat-tree broadcast) without touching the replayer, which is
//! precisely the flexibility the paper claims for the decoupled design.

use crate::collectives::{self, CollectiveAlgo};
use crate::tags;
use std::collections::HashMap;
use tit_core::Action;

/// A kernel-level step produced by expanding one action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MicroOp {
    /// Compute `flops` on the local host (blocking).
    Exec {
        /// Floating-point operations to burn.
        flops: f64,
        /// Observer tag attributed to the resulting kernel op.
        tag: u32,
    },
    /// Blocking point-to-point send on the application channel.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message volume in bytes.
        bytes: f64,
        /// Observer tag attributed to the resulting kernel op.
        tag: u32,
    },
    /// Blocking point-to-point receive on the application channel.
    Recv {
        /// Source rank.
        src: usize,
        /// Observer tag attributed to the resulting kernel op.
        tag: u32,
    },
    /// Blocking send on the collective channel.
    CollSend {
        /// Destination rank.
        dst: usize,
        /// Message volume in bytes.
        bytes: f64,
        /// Observer tag attributed to the resulting kernel op.
        tag: u32,
    },
    /// Blocking receive on the collective channel.
    CollRecv {
        /// Source rank.
        src: usize,
        /// Observer tag attributed to the resulting kernel op.
        tag: u32,
    },
    /// Non-blocking send: enqueue a request for a later `wait`.
    IsendReq {
        /// Destination rank.
        dst: usize,
        /// Message volume in bytes.
        bytes: f64,
        /// Observer tag attributed to the resulting kernel op.
        tag: u32,
    },
    /// Non-blocking receive: enqueue a request for a later `wait`.
    IrecvReq {
        /// Source rank.
        src: usize,
        /// Observer tag attributed to the resulting kernel op.
        tag: u32,
    },
    /// Complete the oldest pending request.
    WaitReq {
        /// Observer tag attributed to the wait itself.
        tag: u32,
    },
    /// Update the communicator size.
    SetCommSize {
        /// New communicator size.
        nproc: usize,
    },
}

/// Context a handler sees when expanding an action.
#[derive(Debug, Clone, Copy)]
pub struct ExpandCtx {
    /// This process's rank.
    pub rank: usize,
    /// Current communicator size (0 before any `comm_size`).
    pub nproc: usize,
    /// Collective decomposition shape.
    pub algo: CollectiveAlgo,
}

/// Why an action could not be expanded into micro-ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandError {
    /// The action keyword that failed to expand.
    pub keyword: String,
    /// Why the expansion is impossible.
    pub detail: String,
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot expand {:?}: {}", self.keyword, self.detail)
    }
}

impl std::error::Error for ExpandError {}

/// Handler: expands `action` into micro-ops.
pub type Handler =
    Box<dyn Fn(&ExpandCtx, &Action, &mut Vec<MicroOp>) -> Result<(), ExpandError> + Send + Sync>;

/// Keyword → handler table.
pub struct Registry {
    handlers: HashMap<&'static str, Handler>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl Registry {
    /// Empty registry (no keyword bound).
    pub fn empty() -> Self {
        Registry { handlers: HashMap::new() }
    }

    /// Registry with the paper's Table 1 semantics bound.
    pub fn with_defaults() -> Self {
        let mut r = Registry::empty();
        r.register("compute", |_ctx, a, out| {
            if let Action::Compute { flops } = a {
                out.push(MicroOp::Exec { flops: *flops, tag: tags::COMPUTE });
            }
            Ok(())
        });
        r.register("send", |_ctx, a, out| {
            if let Action::Send { dst, bytes } = a {
                out.push(MicroOp::Send { dst: *dst, bytes: *bytes, tag: tags::SEND });
            }
            Ok(())
        });
        r.register("Isend", |_ctx, a, out| {
            if let Action::Isend { dst, bytes } = a {
                out.push(MicroOp::IsendReq { dst: *dst, bytes: *bytes, tag: tags::ISEND });
            }
            Ok(())
        });
        r.register("recv", |_ctx, a, out| {
            if let Action::Recv { src, .. } = a {
                out.push(MicroOp::Recv { src: *src, tag: tags::RECV });
            }
            Ok(())
        });
        r.register("Irecv", |_ctx, a, out| {
            if let Action::Irecv { src, .. } = a {
                out.push(MicroOp::IrecvReq { src: *src, tag: tags::IRECV });
            }
            Ok(())
        });
        r.register("bcast", |ctx, a, out| {
            if let Action::Bcast { bytes } = a {
                ctx.require_comm_size("bcast")?;
                collectives::bcast(ctx.algo, ctx.rank, ctx.nproc, *bytes, tags::BCAST, out);
            }
            Ok(())
        });
        r.register("reduce", |ctx, a, out| {
            if let Action::Reduce { vcomm, vcomp } = a {
                ctx.require_comm_size("reduce")?;
                collectives::reduce(
                    ctx.algo, ctx.rank, ctx.nproc, *vcomm, *vcomp, tags::REDUCE, out,
                );
            }
            Ok(())
        });
        r.register("allReduce", |ctx, a, out| {
            if let Action::AllReduce { vcomm, vcomp } = a {
                ctx.require_comm_size("allReduce")?;
                collectives::allreduce(
                    ctx.algo, ctx.rank, ctx.nproc, *vcomm, *vcomp, tags::ALLREDUCE, out,
                );
            }
            Ok(())
        });
        r.register("barrier", |ctx, _a, out| {
            ctx.require_comm_size("barrier")?;
            collectives::barrier(ctx.algo, ctx.rank, ctx.nproc, tags::BARRIER, out);
            Ok(())
        });
        r.register("comm_size", |_ctx, a, out| {
            if let Action::CommSize { nproc } = a {
                out.push(MicroOp::SetCommSize { nproc: *nproc });
            }
            Ok(())
        });
        r.register("wait", |_ctx, _a, out| {
            out.push(MicroOp::WaitReq { tag: tags::WAIT });
            Ok(())
        });
        r
    }

    /// Binds (or rebinds) `keyword` — the `MSG_action_register` analogue.
    pub fn register(
        &mut self,
        keyword: &'static str,
        f: impl Fn(&ExpandCtx, &Action, &mut Vec<MicroOp>) -> Result<(), ExpandError>
            + Send
            + Sync
            + 'static,
    ) {
        self.handlers.insert(keyword, Box::new(f));
    }

    /// Expands `action`. An unbound keyword (a trace/keyword mismatch)
    /// or a structurally invalid action (e.g. a collective before
    /// `comm_size`) is a typed error, not a panic: traces come from the
    /// acquisition pipeline and may be arbitrarily corrupt.
    pub fn expand(
        &self,
        ctx: &ExpandCtx,
        action: &Action,
        out: &mut Vec<MicroOp>,
    ) -> Result<(), ExpandError> {
        let kw = action.keyword();
        let h = self.handlers.get(kw).ok_or_else(|| ExpandError {
            keyword: kw.to_string(),
            detail: "no handler registered for this keyword".into(),
        })?;
        h(ctx, action, out)
    }
}

impl ExpandCtx {
    fn require_comm_size(&self, what: &str) -> Result<(), ExpandError> {
        if self.nproc > 0 {
            Ok(())
        } else {
            Err(ExpandError {
                keyword: what.to_string(),
                detail: format!(
                    "p{}: {what} before comm_size (the trace is malformed)",
                    self.rank
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rank: usize, nproc: usize) -> ExpandCtx {
        ExpandCtx { rank, nproc, algo: CollectiveAlgo::Binomial }
    }

    fn expand1(ctx_: &ExpandCtx, a: Action) -> Vec<MicroOp> {
        let r = Registry::with_defaults();
        let mut out = Vec::new();
        r.expand(ctx_, &a, &mut out).unwrap();
        out
    }

    #[test]
    fn default_registry_covers_table_1() {
        let c = ctx(1, 4);
        assert_eq!(
            expand1(&c, Action::Compute { flops: 5.0 }),
            vec![MicroOp::Exec { flops: 5.0, tag: tags::COMPUTE }]
        );
        assert_eq!(
            expand1(&c, Action::Send { dst: 2, bytes: 7.0 }),
            vec![MicroOp::Send { dst: 2, bytes: 7.0, tag: tags::SEND }]
        );
        assert_eq!(
            expand1(&c, Action::Isend { dst: 2, bytes: 7.0 }),
            vec![MicroOp::IsendReq { dst: 2, bytes: 7.0, tag: tags::ISEND }]
        );
        assert_eq!(
            expand1(&c, Action::Recv { src: 0, bytes: None }),
            vec![MicroOp::Recv { src: 0, tag: tags::RECV }]
        );
        assert_eq!(
            expand1(&c, Action::Irecv { src: 0, bytes: Some(4.0) }),
            vec![MicroOp::IrecvReq { src: 0, tag: tags::IRECV }]
        );
        assert_eq!(
            expand1(&c, Action::CommSize { nproc: 4 }),
            vec![MicroOp::SetCommSize { nproc: 4 }]
        );
        assert_eq!(expand1(&c, Action::Wait), vec![MicroOp::WaitReq { tag: tags::WAIT }]);
        assert!(!expand1(&c, Action::Bcast { bytes: 64.0 }).is_empty());
        assert!(!expand1(&c, Action::Barrier).is_empty());
    }

    #[test]
    fn collective_without_comm_size_is_a_typed_error() {
        let r = Registry::with_defaults();
        let mut out = Vec::new();
        let err = r.expand(&ctx(0, 0), &Action::Barrier, &mut out).unwrap_err();
        assert_eq!(err.keyword, "barrier");
        assert!(err.detail.contains("before comm_size"), "{err}");
        assert!(err.detail.contains("p0"), "{err}");
    }

    #[test]
    fn rebinding_overrides_semantics() {
        let mut r = Registry::with_defaults();
        r.register("bcast", |ctx, a, out| {
            if let Action::Bcast { bytes } = a {
                collectives::bcast(CollectiveAlgo::Flat, ctx.rank, ctx.nproc, *bytes, 0, out);
            }
            Ok(())
        });
        let mut out = Vec::new();
        r.expand(&ctx(0, 8), &Action::Bcast { bytes: 1.0 }, &mut out).unwrap();
        assert_eq!(out.len(), 7, "flat bcast from root sends to all 7 peers");
    }

    #[test]
    fn unbound_keyword_is_a_typed_error() {
        let r = Registry::empty();
        let mut out = Vec::new();
        let err = r.expand(&ctx(0, 1), &Action::Wait, &mut out).unwrap_err();
        assert_eq!(err.keyword, "wait");
        assert!(err.detail.contains("no handler"), "{err}");
    }
}
