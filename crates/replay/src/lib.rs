//! `tit-replay` — the time-independent trace replay tool.
//!
//! This is the paper's simulator (Section 5): it takes a time-independent
//! trace, a platform description and a deployment, and replays the trace
//! on top of the simulation kernel, producing the simulated execution
//! time (plus optional timed-trace and profile outputs, Figure 4).
//!
//! Mirroring the MSG-based prototype, every action keyword is bound to a
//! handler through a [`handlers::Registry`] (the analogue of
//! `MSG_action_register`); handlers expand an action into a short
//! sequence of kernel micro-operations executed by the per-process
//! [`process::ReplayActor`]. Collective operations are decomposed into
//! point-to-point messages rooted at process 0 ([`collectives`]), and
//! non-blocking operations feed a FIFO request queue consumed by `wait`
//! ([`process`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collectives;
pub mod degraded;
pub mod error;
pub mod handlers;
pub mod output;
pub mod process;
pub mod request;
pub mod resume;
pub mod simulator;
pub mod store;
pub mod tags;

pub use degraded::{
    replay_files_degraded, DegradationReason, DegradedOutcome, RankDegradation,
};
pub use error::ReplayError;
pub use handlers::{ExpandError, MicroOp, Registry};
pub use request::{
    compact_sources, replay_compact_request, run_request, PausedReplay, RequestOutcome,
    RequestPolicy, RequestStatus,
};
pub use resume::{
    keyed_fingerprint, replay_files_checkpointed, resume_files, run_checkpointed,
    run_checkpointed_keyed, CheckpointPolicy, CheckpointedOutcome, CheckpointedStatus,
    PauseReason, ReplayCheckpoint,
};
pub use simulator::{
    replay_binary_files, replay_compact, replay_compact_observed, replay_files,
    replay_files_jobs, replay_files_observed, replay_memory, replay_memory_observed,
    ReplayConfig, ReplayOutcome,
};
pub use store::{
    replay_store, replay_store_checkpointed, replay_store_degraded, replay_store_observed,
    store_sources, SegmentCache, SegmentedSource,
};
