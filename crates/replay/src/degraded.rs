//! Degraded-mode replay: quantified partial results from damaged
//! bundles.
//!
//! The fault model of the extraction stage (`tit-extract`'s
//! fault-injection harness) produces four damage classes: truncated
//! trace files, bit-flipped actions, dropped ranks, and short bundle
//! transfers. A strict replay correctly refuses all of them — but a
//! campaign that burned hours acquiring a trace often wants *whatever
//! the damage left intact*, quantified, instead of nothing.
//!
//! Degraded mode pre-scans each per-rank trace file and keeps the
//! longest parseable prefix (damage in a text trace is always a
//! suffix-killer: a truncated file ends mid-line, a flipped bit turns
//! one line into garbage and everything after it is untrusted). Missing
//! ranks are stubbed as immediately-terminating processes. The replay
//! then runs to completion or to the first failure — a deadlock or
//! protocol violation caused by the damage is *expected* here and is
//! downgraded into the outcome rather than returned as an error. The
//! result carries a **completeness ratio** (actions replayed / actions
//! expected) and a per-rank degradation report, so "90 % of the run
//! replayed, ranks 3 and 7 damaged" replaces a bare failure.

use crate::error::ReplayError;
use crate::handlers::Registry;
use crate::process::{ActionSource, ReplayActor, VecSource};
use crate::simulator::ReplayConfig;
use simkern::observer::Observer;
use simkern::resource::HostId;
use simkern::{Engine, Platform, SimError};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tit_core::trace::process_trace_filename;
use tit_core::{parse_line, Action};

/// Why a rank's stream was degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationReason {
    /// The rank's trace file does not exist (dropped by the gather
    /// stage); the rank is stubbed as an immediately-terminating
    /// process.
    MissingFile,
    /// The file exists but its tail is unparseable (truncation or bit
    /// rot); only the leading parseable prefix is replayed.
    TrimmedTail,
    /// A TIB2 store segment failed verification (checksum mismatch,
    /// short read, contradictory header); the rank is replayed up to
    /// the last verified segment boundary. Segment granularity means
    /// one flipped bit costs `seg_actions` actions of one rank, not the
    /// whole rank (`lines_trimmed` counts the trimmed actions exactly,
    /// from the footer index).
    DamagedSegment,
}

impl std::fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradationReason::MissingFile => "missing-file",
            DegradationReason::TrimmedTail => "trimmed-tail",
            DegradationReason::DamagedSegment => "damaged-segment",
        })
    }
}

/// One damaged rank's report.
#[derive(Debug, Clone)]
pub struct RankDegradation {
    /// The damaged rank.
    pub rank: usize,
    /// What kind of damage.
    pub reason: DegradationReason,
    /// Actions salvaged from the leading prefix.
    pub actions_kept: u64,
    /// Trace lines discarded (the damaged line and everything after it;
    /// for a missing file, the estimated action count).
    pub lines_trimmed: u64,
    /// Human-readable diagnosis (parse error, file error).
    pub detail: String,
}

/// Result of a degraded replay: always a quantified partial answer,
/// never an error, once the bundle directory itself is readable.
#[derive(Debug)]
pub struct DegradedOutcome {
    /// Simulated time reached — the full makespan when the salvaged
    /// trace still completes, else the time progress stopped.
    pub simulated_time: f64,
    /// Actions actually consumed by the replay.
    pub actions_replayed: u64,
    /// Actions the undamaged bundle is estimated to have carried:
    /// kept + trimmed lines of present ranks, plus the per-rank maximum
    /// for each missing rank.
    pub actions_expected: u64,
    /// Wall-clock time of the simulation.
    pub wall_time: std::time::Duration,
    /// Per-rank damage reports (empty for a clean bundle).
    pub ranks: Vec<RankDegradation>,
    /// The downgraded stop reason, when the salvaged trace could not
    /// run to completion (deadlock from a half-trimmed exchange, etc.).
    pub failure: Option<String>,
}

impl DegradedOutcome {
    /// Actions replayed over actions expected, in `[0, 1]`. Exactly
    /// `1.0` for an undamaged bundle that replays to completion.
    pub fn completeness(&self) -> f64 {
        if self.actions_expected == 0 {
            return if self.failure.is_none() { 1.0 } else { 0.0 };
        }
        // A replay can only consume what the scan kept, and the scan
        // keeps at most what it expected — the ratio stays in [0, 1].
        (self.actions_replayed as f64 / self.actions_expected as f64).min(1.0)
    }

    /// True when anything at all was lost: damage found in the scan or
    /// a downgraded run failure.
    pub fn is_partial(&self) -> bool {
        !self.ranks.is_empty() || self.failure.is_some() || self.completeness() < 1.0
    }
}

/// One rank's salvaged stream.
struct ScannedRank {
    actions: Vec<Action>,
    degradation: Option<RankDegradation>,
}

/// Reads `rank`'s trace file, keeping the longest parseable prefix.
/// Damage (unreadable bytes, a parse error, a line owned by another
/// pid) trims the stream at that point.
fn scan_rank(dir: &Path, rank: usize) -> std::io::Result<ScannedRank> {
    let path = dir.join(process_trace_filename(rank));
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ScannedRank {
                actions: Vec::new(),
                degradation: Some(RankDegradation {
                    rank,
                    reason: DegradationReason::MissingFile,
                    actions_kept: 0,
                    lines_trimmed: 0,
                    detail: format!("{}: not found", path.display()),
                }),
            });
        }
        Err(e) => return Err(e),
    };
    let mut actions = Vec::new();
    let mut trim: Option<String> = None;
    let mut lines_trimmed = 0u64;
    for (idx, raw) in bytes.split(|&b| b == b'\n').enumerate() {
        let line_no = idx + 1;
        if trim.is_some() {
            // Count the untrusted tail (non-empty payload lines only).
            if !raw.iter().all(u8::is_ascii_whitespace) {
                lines_trimmed += 1;
            }
            continue;
        }
        let Ok(text) = std::str::from_utf8(raw) else {
            trim = Some(format!("line {line_no}: not valid UTF-8"));
            lines_trimmed += 1;
            continue;
        };
        match parse_line(text, line_no) {
            Ok(None) => {}
            Ok(Some((pid, a))) if pid == rank => actions.push(a),
            Ok(Some((pid, _))) => {
                trim = Some(format!("line {line_no}: belongs to p{pid}, not p{rank}"));
                lines_trimmed += 1;
            }
            Err(e) => {
                trim = Some(e.to_string());
                lines_trimmed += 1;
            }
        }
    }
    let degradation = trim.map(|detail| RankDegradation {
        rank,
        reason: DegradationReason::TrimmedTail,
        actions_kept: actions.len() as u64,
        lines_trimmed,
        detail: format!("{}: {detail}", path.display()),
    });
    Ok(ScannedRank { actions, degradation })
}

/// Replays whatever a (possibly damaged) per-process trace directory
/// still carries. Hard failures are downgraded into the outcome; the
/// only remaining errors are environmental (an unreadable directory, a
/// deployment mismatch).
pub fn replay_files_degraded(
    dir: &Path,
    nproc: usize,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
) -> Result<DegradedOutcome, ReplayError> {
    if nproc != hosts.len() {
        return Err(ReplayError::Deployment { procs: nproc, hosts: hosts.len() });
    }
    let mut scanned = Vec::with_capacity(nproc);
    for rank in 0..nproc {
        let s = scan_rank(dir, rank).map_err(|source| ReplayError::MissingRank {
            rank,
            path: dir.join(process_trace_filename(rank)),
            source,
        })?;
        scanned.push(s);
    }

    // Expected volume: what present ranks carried (kept + trimmed
    // lines), and for each missing rank the maximum over present ranks
    // — SPMD traces are near-uniform per rank, so the max is a
    // conservative (ratio-lowering) stand-in for the lost file.
    let mut per_rank_total = Vec::with_capacity(nproc);
    let mut ranks: Vec<RankDegradation> = Vec::new();
    for s in &scanned {
        match &s.degradation {
            Some(d) if d.reason == DegradationReason::MissingFile => per_rank_total.push(None),
            Some(d) => per_rank_total.push(Some(d.actions_kept + d.lines_trimmed)),
            None => per_rank_total.push(Some(s.actions.len() as u64)),
        }
    }
    let max_present = per_rank_total.iter().flatten().copied().max().unwrap_or(0);
    let actions_expected: u64 =
        per_rank_total.iter().map(|t| t.unwrap_or(max_present)).sum();
    for s in &mut scanned {
        if let Some(mut d) = s.degradation.take() {
            if d.reason == DegradationReason::MissingFile {
                d.lines_trimmed = max_present;
            }
            ranks.push(d);
        }
    }

    let mut engine = Engine::new(platform);
    engine.set_network_config(cfg.network.clone());
    if let Some(obs) = extra {
        engine.set_observer(obs);
    }
    let registry = Arc::new(Registry::with_defaults());
    let counter = Arc::new(AtomicU64::new(0));
    for (rank, s) in scanned.into_iter().enumerate() {
        let src: Box<dyn ActionSource> = Box::new(VecSource::new(s.actions));
        let actor = ReplayActor::new(rank, src, registry.clone(), cfg.algo, counter.clone());
        engine.spawn(Box::new(actor), hosts[rank]);
    }
    let t0 = std::time::Instant::now();
    let (simulated_time, failure) = match engine.run_checked() {
        Ok(t) => (t, None),
        // The whole point of degraded mode: damage-induced stops become
        // part of the answer instead of aborting it.
        Err(
            e @ (SimError::Deadlock { .. }
            | SimError::ActorFailure { .. }
            | SimError::Protocol { .. }),
        ) => (e.time(), Some(e.to_string())),
    };
    Ok(DegradedOutcome {
        simulated_time,
        actions_replayed: counter.load(Ordering::Relaxed),
        actions_expected,
        wall_time: t0.elapsed(),
        ranks,
        failure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::netmodel::NetworkConfig;
    use std::path::PathBuf;
    use tit_core::TiTrace;
    use tit_platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};

    fn mycluster(n: usize) -> (Platform, Vec<HostId>) {
        let spec = ClusterSpec {
            id: "mycluster".into(),
            prefix: "mycluster-".into(),
            suffix: ".mysite.fr".into(),
            count: n,
            power: 1.17e9,
            cores: 1,
            bw: 1.25e8,
            lat: 16.67e-6,
            bb_bw: 1.25e9,
            bb_lat: 16.67e-6,
            topology: ClusterTopology::Flat,
        };
        let p = PlatformDesc::single(spec).build();
        let hosts = (0..n as u32).map(HostId).collect();
        (p, hosts)
    }

    fn plain_cfg() -> ReplayConfig {
        ReplayConfig { network: NetworkConfig::default(), ..Default::default() }
    }

    fn ring_trace() -> TiTrace {
        let mut t = TiTrace::new(4);
        t.push(0, Action::Compute { flops: 1e6 });
        t.push(0, Action::Send { dst: 1, bytes: 1e6 });
        t.push(0, Action::Recv { src: 3, bytes: None });
        for p in 1..4usize {
            t.push(p, Action::Recv { src: p - 1, bytes: None });
            t.push(p, Action::Compute { flops: 1e6 });
            t.push(p, Action::Send { dst: (p + 1) % 4, bytes: 1e6 });
        }
        t
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("titr-degr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_bundle_is_complete_and_matches_strict_replay() {
        let d = tmp_dir("clean");
        ring_trace().save_per_process(&d).unwrap();
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let strict = crate::replay_files(&d, 4, p1, &hosts, &plain_cfg()).unwrap();
        let out = replay_files_degraded(&d, 4, p2, &hosts, &plain_cfg(), None).unwrap();
        assert_eq!(out.completeness(), 1.0);
        assert!(!out.is_partial());
        assert!(out.ranks.is_empty());
        assert_eq!(out.simulated_time.to_bits(), strict.simulated_time.to_bits());
        assert_eq!(out.actions_replayed, 12);
        assert_eq!(out.actions_expected, 12);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn missing_rank_is_stubbed_and_quantified() {
        let d = tmp_dir("missing");
        ring_trace().save_per_process(&d).unwrap();
        std::fs::remove_file(d.join("SG_process2.trace")).unwrap();
        let (p, hosts) = mycluster(4);
        let out = replay_files_degraded(&d, 4, p, &hosts, &plain_cfg(), None).unwrap();
        assert!(out.is_partial());
        assert!(out.completeness() < 1.0, "ratio {}", out.completeness());
        assert_eq!(out.ranks.len(), 1);
        assert_eq!(out.ranks[0].rank, 2);
        assert_eq!(out.ranks[0].reason, DegradationReason::MissingFile);
        // The ring blocks without rank 2 — downgraded, not an error.
        assert!(out.failure.is_some());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn truncated_tail_is_trimmed_and_quantified() {
        let d = tmp_dir("trunc");
        ring_trace().save_per_process(&d).unwrap();
        let path = d.join("SG_process1.trace");
        let bytes = std::fs::read(&path).unwrap();
        // Cut mid-way through the second line.
        let cut = bytes.iter().position(|&b| b == b'\n').unwrap() + 5;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (p, hosts) = mycluster(4);
        let out = replay_files_degraded(&d, 4, p, &hosts, &plain_cfg(), None).unwrap();
        assert!(out.is_partial());
        assert!(out.completeness() < 1.0);
        assert_eq!(out.ranks.len(), 1);
        assert_eq!(out.ranks[0].reason, DegradationReason::TrimmedTail);
        assert_eq!(out.ranks[0].actions_kept, 1);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn garbage_line_trims_everything_after_it() {
        let d = tmp_dir("flip");
        ring_trace().save_per_process(&d).unwrap();
        let path = d.join("SG_process3.trace");
        std::fs::write(&path, "p3 recv p2\np3 c\u{f6}mpute 1e6\np3 send p0 1e6\n").unwrap();
        let (p, hosts) = mycluster(4);
        let out = replay_files_degraded(&d, 4, p, &hosts, &plain_cfg(), None).unwrap();
        let d3 = out.ranks.iter().find(|r| r.rank == 3).expect("rank 3 degraded");
        assert_eq!(d3.actions_kept, 1);
        assert_eq!(d3.lines_trimmed, 2, "damaged line + untrusted tail");
        assert!(out.completeness() < 1.0);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn fully_damaged_bundle_never_panics() {
        let d = tmp_dir("allbad");
        for r in 0..4 {
            std::fs::write(
                d.join(format!("SG_process{r}.trace")),
                [0xFFu8, 0xFE, 0x00, b'\n', b'x'],
            )
            .unwrap();
        }
        let (p, hosts) = mycluster(4);
        let out = replay_files_degraded(&d, 4, p, &hosts, &plain_cfg(), None).unwrap();
        assert_eq!(out.actions_replayed, 0);
        assert!(out.completeness() < 1.0);
        assert_eq!(out.ranks.len(), 4);
        std::fs::remove_dir_all(&d).unwrap();
    }
}
