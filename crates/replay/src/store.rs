//! Replaying straight out of a `TIB2` segmented store (DESIGN.md §5i).
//!
//! PR 4's [`CompactSource`](crate::process::CompactSource) streams from
//! a fully-resident [`tit_core::CompactTrace`]; this module's
//! [`SegmentedSource`] streams from disk instead, faulting 40-byte
//! footer entries into decoded segments on demand through a shared
//! [`SegmentCache`]. Peak memory is O(ranks + resident segments)
//! regardless of trace length: each rank pins at most its *current*
//! segment, and everything else is cache that the
//! [`MemBudget`] governor can evict and re-fault at will. Under
//! `--mem-budget` the cap is *hard* — when the pinned working set alone
//! exceeds it, replay stops with a typed [`ReplayError::Memory`],
//! never an OOM kill.
//!
//! Verification is fail-closed per read ([`tit_core::tib2::Tib2Store`]
//! checks the FNV-1a checksum before decoding), so a strict replay
//! that touches a damaged segment stops with a typed
//! [`ReplayError::Store`] naming rank, segment and offset. Degraded
//! replay ([`replay_store_degraded`]) runs the full verification sweep
//! first and trims each damaged rank at its last verified segment
//! boundary — the footer index knows exactly how many actions every
//! trimmed segment held, so the completeness ratio is exact, not
//! estimated.
//!
//! The two replay paths are bit-identical on a clean store: the same
//! action stream reaches the same kernel, so `--store` simulated times
//! equal `--trace-dir` simulated times to the last bit (the
//! differential test in `tests/store.rs` holds this line).

use crate::degraded::{DegradationReason, DegradedOutcome, RankDegradation};
use crate::error::ReplayError;
use crate::handlers::Registry;
use crate::process::{ActionSource, ReplayActor};
use crate::simulator::{run, ReplayConfig, ReplayOutcome};
use simkern::observer::Observer;
use simkern::resource::HostId;
use simkern::{Engine, Platform, SimError};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tit_core::membudget::{MemBudget, MemoryExceeded};
use tit_core::tib2::{SegmentColumns, StoreError, Tib2Store};
use tit_core::Action;

/// Why a segment could not be served to a source — the typed fault the
/// cache records so the replay driver can surface it instead of a
/// stringly actor failure.
#[derive(Debug)]
enum Fault {
    Store(StoreError),
    Memory(MemoryExceeded),
}

impl Fault {
    fn to_replay_error(&self) -> ReplayError {
        match self {
            // StoreError is not Clone (it can wrap io::Error); rebuild
            // the typed variant from its parts.
            Fault::Store(StoreError::SegmentDamaged { rank, segment, offset, detail }) => {
                ReplayError::Store(StoreError::SegmentDamaged {
                    rank: *rank,
                    segment: *segment,
                    offset: *offset,
                    detail: detail.clone(),
                })
            }
            Fault::Store(e) => ReplayError::Store(StoreError::FooterDamaged {
                detail: e.to_string(),
            }),
            Fault::Memory(e) => ReplayError::Memory(*e),
        }
    }
}

struct Entry {
    seg: Arc<SegmentColumns>,
    bytes: u64,
    touched: u64,
}

struct Inner {
    map: HashMap<(usize, usize), Entry>,
    clock: u64,
}

/// Shared segment residency: one per replay, feeding every rank's
/// [`SegmentedSource`]. Decoded segments are interned as
/// `Arc<SegmentColumns>`; a source holding its current segment pins it
/// (Arc refcount > 1), everything else is evictable. Residency is
/// charged against the [`MemBudget`] *before* each read, and eviction
/// is least-recently-touched-first among unpinned segments.
pub struct SegmentCache {
    store: Arc<Tib2Store>,
    budget: Arc<MemBudget>,
    inner: Mutex<Inner>,
    fault: Mutex<Option<Fault>>,
    faults: AtomicU64,
    evictions: AtomicU64,
}

impl SegmentCache {
    /// A cache over `store` governed by `budget`.
    pub fn new(store: Arc<Tib2Store>, budget: Arc<MemBudget>) -> Self {
        SegmentCache {
            store,
            budget,
            inner: Mutex::new(Inner { map: HashMap::new(), clock: 0 }),
            fault: Mutex::new(None),
            faults: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<Tib2Store> {
        &self.store
    }

    /// The governing budget.
    pub fn budget(&self) -> &Arc<MemBudget> {
        &self.budget
    }

    /// Segment reads that went to disk (cache misses).
    pub fn fault_count(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Segments dropped to stay under budget.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Takes the first typed fault recorded by a source, if any — the
    /// replay drivers use this to upgrade a stringly actor failure back
    /// into [`ReplayError::Store`] / [`ReplayError::Memory`].
    fn take_fault(&self) -> Option<Fault> {
        // panics: mutex poisoned only if another thread already panicked
        self.fault.lock().unwrap().take()
    }

    fn record_fault(&self, f: Fault) {
        // panics: mutex poisoned only if another thread already panicked
        let mut slot = self.fault.lock().unwrap();
        if slot.is_none() {
            *slot = Some(f);
        }
    }

    /// Evicts the least-recently-touched segment nobody holds; returns
    /// false when everything resident is pinned.
    fn evict_one(&self) -> bool {
        // panics: mutex poisoned only if another thread already panicked
        let mut inner = self.inner.lock().unwrap();
        let victim = inner
            .map
            .iter()
            .filter(|(_, e)| Arc::strong_count(&e.seg) == 1)
            .min_by_key(|(_, e)| e.touched)
            .map(|(&k, _)| k);
        match victim {
            Some(k) => {
                // panics: the key was just found in the map
                let e = inner.map.remove(&k).unwrap();
                self.budget.release(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Returns one decoded segment, faulting it in under the budget.
    /// Fail-closed on damage; typed refusal when the budget cannot be
    /// met even with every evictable segment dropped.
    pub fn segment(
        &self,
        rank: usize,
        seg: usize,
    ) -> Result<Arc<SegmentColumns>, ReplayError> {
        {
            // panics: mutex poisoned only if another thread already panicked
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(e) = inner.map.get_mut(&(rank, seg)) {
                e.touched = clock;
                return Ok(Arc::clone(&e.seg));
            }
        }
        let meta = *self
            .store
            .segment_meta(rank, seg)
            .ok_or(ReplayError::Store(StoreError::OutOfRange { rank, segment: seg }))?;
        let bytes = meta.decoded_bytes();
        loop {
            match self.budget.try_charge(bytes) {
                Ok(()) => break,
                Err(e) => {
                    if !self.evict_one() {
                        return Err(ReplayError::Memory(e));
                    }
                }
            }
        }
        let seg_cols = match self.store.read_segment(rank, seg) {
            Ok(c) => Arc::new(c),
            Err(e) => {
                self.budget.release(bytes);
                return Err(ReplayError::Store(e));
            }
        };
        self.faults.fetch_add(1, Ordering::Relaxed);
        // panics: mutex poisoned only if another thread already panicked
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        // Two sources racing on the same uncached segment may both read
        // it (same tradeoff as the serve trace cache: a wasted read,
        // never a blocked one); the loser's charge is returned.
        if let Some(e) = inner.map.get_mut(&(rank, seg)) {
            e.touched = clock;
            self.budget.release(bytes);
            return Ok(Arc::clone(&e.seg));
        }
        inner.map.insert((rank, seg), Entry { seg: Arc::clone(&seg_cols), bytes, touched: clock });
        Ok(seg_cols)
    }
}

/// One rank's on-demand action stream out of a [`SegmentCache`]. Holds
/// (pins) exactly one decoded segment at a time; crossing a segment
/// boundary unpins the old one before faulting the next.
pub struct SegmentedSource {
    cache: Arc<SegmentCache>,
    rank: usize,
    /// Segments to serve; `< num_segments(rank)` when degraded replay
    /// trimmed the rank at a damaged segment boundary.
    limit: usize,
    seg: usize,
    idx: usize,
    cur: Option<Arc<SegmentColumns>>,
}

impl SegmentedSource {
    /// A source over all of `rank`'s segments.
    pub fn new(cache: Arc<SegmentCache>, rank: usize) -> Self {
        let limit = cache.store().num_segments(rank);
        SegmentedSource { cache, rank, limit, seg: 0, idx: 0, cur: None }
    }

    /// A source trimmed to the first `limit` segments (degraded mode).
    pub fn trimmed(cache: Arc<SegmentCache>, rank: usize, limit: usize) -> Self {
        let limit = limit.min(cache.store().num_segments(rank));
        SegmentedSource { cache, rank, limit, seg: 0, idx: 0, cur: None }
    }
}

impl ActionSource for SegmentedSource {
    fn next_action(&mut self) -> io::Result<Option<Action>> {
        loop {
            if let Some(cur) = &self.cur {
                if self.idx < cur.len() {
                    let a = cur.action(self.idx);
                    self.idx += 1;
                    return Ok(Some(a));
                }
                self.cur = None;
                self.seg += 1;
                self.idx = 0;
            }
            if self.seg >= self.limit {
                return Ok(None);
            }
            match self.cache.segment(self.rank, self.seg) {
                Ok(c) => self.cur = Some(c),
                Err(e) => {
                    let msg = e.to_string();
                    self.cache.record_fault(match e {
                        ReplayError::Store(s) => Fault::Store(s),
                        ReplayError::Memory(m) => Fault::Memory(m),
                        // panics: SegmentCache::segment only returns the
                        // two variants above
                        other => unreachable!("unexpected cache error {other}"),
                    });
                    return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
                }
            }
        }
    }
}

/// Builds one [`SegmentedSource`] per rank over a shared cache.
#[must_use]
pub fn store_sources(cache: &Arc<SegmentCache>) -> Vec<Box<dyn ActionSource>> {
    (0..cache.store().num_ranks())
        .map(|rank| {
            Box::new(SegmentedSource::new(Arc::clone(cache), rank)) as Box<dyn ActionSource>
        })
        .collect()
}

/// Upgrades a replay failure caused by a recorded cache fault back into
/// its typed form ([`ReplayError::Store`] / [`ReplayError::Memory`]):
/// the engine only carries stringly actor failures, but the cache
/// remembers what actually went wrong.
fn retype(err: ReplayError, cache: &SegmentCache) -> ReplayError {
    match cache.take_fault() {
        Some(f) => f.to_replay_error(),
        None => err,
    }
}

/// Replays a `TIB2` store under a memory budget. Strict: the first
/// damaged segment stops the replay with a typed
/// [`ReplayError::Store`]; an unmeetable budget stops it with
/// [`ReplayError::Memory`]. On a clean store the simulated time is
/// bit-identical to the fully-resident [`crate::replay_compact`] path.
pub fn replay_store(
    store: &Arc<Tib2Store>,
    budget: Arc<MemBudget>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    replay_store_observed(store, budget, platform, hosts, cfg, None)
}

/// Like [`replay_store`], with an extra [`Observer`] installed
/// (matching [`crate::replay_compact_observed`]).
pub fn replay_store_observed(
    store: &Arc<Tib2Store>,
    budget: Arc<MemBudget>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
) -> Result<ReplayOutcome, ReplayError> {
    let cache = Arc::new(SegmentCache::new(Arc::clone(store), budget));
    let sources = store_sources(&cache);
    run(sources, platform, hosts, cfg, extra).map_err(|e| retype(e, &cache))
}

/// [`crate::resume::run_checkpointed`] over a `TIB2` store: checkpoints
/// and resumes, with the checkpoint fingerprint additionally keyed on
/// the store's footer hash ([`Tib2Store::fingerprint`] via
/// [`crate::resume::keyed_fingerprint`]). A checkpoint taken against
/// one store refuses to resume against a store whose content differs —
/// even on an identical platform and config. Cache faults surface
/// typed, exactly as in [`replay_store`].
// One parameter per pipeline input, mirroring run_checkpointed.
#[allow(clippy::too_many_arguments)]
pub fn replay_store_checkpointed(
    store: &Arc<Tib2Store>,
    budget: Arc<MemBudget>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
    policy: Option<&crate::resume::CheckpointPolicy>,
    resume: Option<&crate::resume::ReplayCheckpoint>,
) -> Result<crate::resume::CheckpointedOutcome, ReplayError> {
    let cache = Arc::new(SegmentCache::new(Arc::clone(store), budget));
    let sources = store_sources(&cache);
    crate::resume::run_checkpointed_keyed(
        sources,
        platform,
        hosts,
        cfg,
        extra,
        policy,
        resume,
        store.fingerprint(),
    )
    .map_err(|e| retype(e, &cache))
}

/// Segment-granular degraded replay: verifies every segment first
/// (O(one segment) memory), trims each damaged rank at its last
/// verified segment boundary, and replays the salvage. The footer
/// index gives the exact action count of every trimmed segment, so
/// [`DegradedOutcome::completeness`] is exact. The store must open
/// (head, trailer, footer intact) — an index-less store has no salvage
/// boundary and fails closed upstream.
pub fn replay_store_degraded(
    store: &Arc<Tib2Store>,
    budget: Arc<MemBudget>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
) -> Result<DegradedOutcome, ReplayError> {
    let nproc = store.num_ranks();
    if nproc != hosts.len() {
        return Err(ReplayError::Deployment { procs: nproc, hosts: hosts.len() });
    }

    // Verification sweep: first damaged segment per rank, if any.
    let mut limits = Vec::with_capacity(nproc);
    let mut ranks: Vec<RankDegradation> = Vec::new();
    for rank in 0..nproc {
        let nsegs = store.num_segments(rank);
        let mut limit = nsegs;
        for seg in 0..nsegs {
            if let Err(e) = store.verify_segment(rank, seg) {
                limit = seg;
                let kept: u64 = (0..seg)
                    .map(|s| {
                        // panics: `s < seg <= nsegs`, the index exists
                        u64::from(store.segment_meta(rank, s).unwrap().n_actions)
                    })
                    .sum();
                ranks.push(RankDegradation {
                    rank,
                    reason: DegradationReason::DamagedSegment,
                    actions_kept: kept,
                    lines_trimmed: store.rank_actions(rank) - kept,
                    detail: e.to_string(),
                });
                break;
            }
        }
        limits.push(limit);
    }
    let actions_expected = store.num_actions();

    let cache = Arc::new(SegmentCache::new(Arc::clone(store), budget));
    let mut engine = Engine::new(platform);
    engine.set_network_config(cfg.network.clone());
    if let Some(obs) = extra {
        engine.set_observer(obs);
    }
    let registry = Arc::new(Registry::with_defaults());
    let counter = Arc::new(AtomicU64::new(0));
    for (rank, &limit) in limits.iter().enumerate() {
        let src: Box<dyn ActionSource> =
            Box::new(SegmentedSource::trimmed(Arc::clone(&cache), rank, limit));
        let actor = ReplayActor::new(rank, src, registry.clone(), cfg.algo, counter.clone());
        engine.spawn(Box::new(actor), hosts[rank]);
    }
    let t0 = std::time::Instant::now();
    let (simulated_time, failure) = match engine.run_checked() {
        Ok(t) => (t, None),
        // Damage-induced stops become part of the answer (the degraded
        // contract) — but a budget refusal is an environment problem,
        // not damage, and stays a typed error.
        Err(
            e @ (SimError::Deadlock { .. }
            | SimError::ActorFailure { .. }
            | SimError::Protocol { .. }),
        ) => {
            if let Some(f @ Fault::Memory(_)) = cache.take_fault() {
                return Err(f.to_replay_error());
            }
            (e.time(), Some(e.to_string()))
        }
    };
    Ok(DegradedOutcome {
        simulated_time,
        actions_replayed: counter.load(Ordering::Relaxed),
        actions_expected,
        wall_time: t0.elapsed(),
        ranks,
        failure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::replay_compact;
    use simkern::netmodel::NetworkConfig;
    use tit_core::tib2::write_compact_atomic;
    use tit_core::{CompactTrace, TiTrace};
    use tit_platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};

    fn ring_trace(np: usize, iters: usize) -> CompactTrace {
        let mut t = TiTrace::new(np);
        for rank in 0..np {
            t.push(rank, Action::CommSize { nproc: np });
            for i in 0..iters {
                t.push(rank, Action::Compute { flops: 1e5 + i as f64 });
                t.push(rank, Action::Isend { dst: (rank + 1) % np, bytes: 1024.0 });
                t.push(rank, Action::Recv { src: (rank + np - 1) % np, bytes: None });
                t.push(rank, Action::Wait);
                if i % 7 == 3 {
                    t.push(rank, Action::AllReduce { vcomm: 64.0, vcomp: 1e4 });
                }
            }
        }
        CompactTrace::from_trace(&t).unwrap()
    }

    fn testbed(np: usize) -> (Platform, Vec<HostId>) {
        let spec = ClusterSpec {
            id: "mycluster".into(),
            prefix: "mycluster-".into(),
            suffix: ".mysite.fr".into(),
            count: np,
            power: 1.17e9,
            cores: 1,
            bw: 1.25e8,
            lat: 16.67e-6,
            bb_bw: 1.25e9,
            bb_lat: 16.67e-6,
            topology: ClusterTopology::Flat,
        };
        let p = PlatformDesc::single(spec).build();
        let hosts = (0..np as u32).map(HostId).collect();
        (p, hosts)
    }

    fn tmp_store(trace: &CompactTrace, seg: usize) -> (std::path::PathBuf, Arc<Tib2Store>) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "store-test-{}-{}.tib2",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        write_compact_atomic(&path, trace, seg).unwrap();
        let store = Arc::new(Tib2Store::open(&path).unwrap());
        (path, store)
    }

    #[test]
    fn store_replay_is_bit_identical_to_compact() {
        let trace = Arc::new(ring_trace(4, 200));
        let (path, store) = tmp_store(&trace, 64);
        let cfg = ReplayConfig { network: NetworkConfig::default(), ..Default::default() };
        let (p1, h1) = testbed(4);
        let a = replay_compact(&trace, p1, &h1, &cfg).unwrap();
        let (p2, h2) = testbed(4);
        let b = replay_store(&store, Arc::new(MemBudget::unlimited()), p2, &h2, &cfg)
            .unwrap();
        assert_eq!(a.simulated_time.to_bits(), b.simulated_time.to_bits());
        assert_eq!(a.actions_replayed, b.actions_replayed);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tight_budget_still_replays_exactly() {
        let trace = Arc::new(ring_trace(4, 300));
        let (path, store) = tmp_store(&trace, 32);
        let cfg = ReplayConfig { network: NetworkConfig::default(), ..Default::default() };
        let (p1, h1) = testbed(4);
        let a = replay_compact(&trace, p1, &h1, &cfg).unwrap();
        // Budget for ~6 decoded segments: forces heavy evict/re-fault.
        let budget = Arc::new(MemBudget::new(6 * 700));
        let (p2, h2) = testbed(4);
        let cache = Arc::new(SegmentCache::new(Arc::clone(&store), Arc::clone(&budget)));
        let sources = store_sources(&cache);
        let b = run(sources, p2, &h2, &cfg, None).unwrap();
        assert_eq!(a.simulated_time.to_bits(), b.simulated_time.to_bits());
        assert!(cache.eviction_count() > 0, "budget never forced an eviction");
        let total_segments: u64 =
            (0..store.num_ranks()).map(|r| store.num_segments(r) as u64).sum();
        // A replay is one pass per rank: every segment faults exactly
        // once even as the budget churns the cache behind the cursor.
        assert_eq!(cache.fault_count(), total_segments);
        assert!(budget.peak() <= budget.cap());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn evicted_segments_refault_and_reverify() {
        let trace = Arc::new(ring_trace(1, 200));
        let (path, store) = tmp_store(&trace, 32);
        assert!(store.num_segments(0) >= 4);
        let one_seg = store.segment_meta(0, 0).unwrap().decoded_bytes();
        // Room for about two decoded segments.
        let budget = Arc::new(MemBudget::new(2 * one_seg + one_seg / 2));
        let cache = SegmentCache::new(Arc::clone(&store), budget);
        drop(cache.segment(0, 0).unwrap());
        drop(cache.segment(0, 1).unwrap());
        drop(cache.segment(0, 2).unwrap()); // evicts segment 0
        assert!(cache.eviction_count() > 0);
        drop(cache.segment(0, 0).unwrap()); // dropped: must re-fault
        assert_eq!(cache.fault_count(), 4, "3 distinct segments + 1 re-fault");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn impossible_budget_is_typed_refusal() {
        let trace = Arc::new(ring_trace(4, 100));
        let (path, store) = tmp_store(&trace, 32);
        let cfg = ReplayConfig { network: NetworkConfig::default(), ..Default::default() };
        let (p, h) = testbed(4);
        // Fewer bytes than one segment: nothing can ever be resident.
        let err = replay_store(&store, Arc::new(MemBudget::new(64)), p, &h, &cfg)
            .unwrap_err();
        match err {
            ReplayError::Memory(m) => assert_eq!(m.budget, 64),
            other => panic!("expected Memory, got {other}"),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn damaged_segment_is_typed_and_fail_closed() {
        let trace = Arc::new(ring_trace(4, 200));
        let (path, store) = tmp_store(&trace, 64);
        let m = *store.segment_meta(2, 1).unwrap();
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[m.offset as usize + 20] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let store = Arc::new(Tib2Store::open(&path).unwrap());
        let cfg = ReplayConfig { network: NetworkConfig::default(), ..Default::default() };
        let (p, h) = testbed(4);
        let err = replay_store(&store, Arc::new(MemBudget::unlimited()), p, &h, &cfg)
            .unwrap_err();
        match err {
            ReplayError::Store(StoreError::SegmentDamaged { rank, segment, offset, .. }) => {
                assert_eq!((rank, segment, offset), (2, 1, m.offset));
            }
            other => panic!("expected SegmentDamaged, got {other}"),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn degraded_trims_at_segment_granularity_with_exact_ratio() {
        let trace = Arc::new(ring_trace(4, 200));
        let (path, store) = tmp_store(&trace, 64);
        let m = *store.segment_meta(2, 3).unwrap();
        let kept_exact: u64 =
            (0..3).map(|s| u64::from(store.segment_meta(2, s).unwrap().n_actions)).sum();
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[m.offset as usize + 24] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let store = Arc::new(Tib2Store::open(&path).unwrap());
        let cfg = ReplayConfig { network: NetworkConfig::default(), ..Default::default() };
        let (p, h) = testbed(4);
        let out = replay_store_degraded(
            &store,
            Arc::new(MemBudget::unlimited()),
            p,
            &h,
            &cfg,
            None,
        )
        .unwrap();
        assert!(out.is_partial());
        assert!(out.completeness() < 1.0);
        assert_eq!(out.ranks.len(), 1);
        let d = &out.ranks[0];
        assert_eq!(d.rank, 2);
        assert_eq!(d.reason, DegradationReason::DamagedSegment);
        assert_eq!(d.actions_kept, kept_exact);
        assert_eq!(d.actions_kept + d.lines_trimmed, store.rank_actions(2));
        assert_eq!(out.actions_expected, store.num_actions());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn degraded_clean_store_is_complete() {
        let trace = Arc::new(ring_trace(3, 50));
        let (path, store) = tmp_store(&trace, 32);
        let cfg = ReplayConfig { network: NetworkConfig::default(), ..Default::default() };
        let (p, h) = testbed(3);
        let out = replay_store_degraded(
            &store,
            Arc::new(MemBudget::unlimited()),
            p,
            &h,
            &cfg,
            None,
        )
        .unwrap();
        assert!(!out.is_partial());
        assert_eq!(out.completeness(), 1.0);
        assert_eq!(out.actions_replayed, store.num_actions());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn store_checkpoint_binds_to_footer_hash() {
        use crate::resume::{CheckpointPolicy, CheckpointedStatus, ReplayCheckpoint};
        use tit_core::Budget;

        let trace = Arc::new(ring_trace(4, 120));
        let (path_a, store_a) = tmp_store(&trace, 64);
        // Same platform/config, different trace content.
        let other = Arc::new(ring_trace(4, 121));
        let (path_b, store_b) = tmp_store(&other, 64);
        assert_ne!(store_a.fingerprint(), store_b.fingerprint());

        let cfg = ReplayConfig { network: NetworkConfig::default(), ..Default::default() };
        let ckpath = std::env::temp_dir()
            .join(format!("store-ck-{}.tick", std::process::id()));
        let policy = CheckpointPolicy {
            path: ckpath.clone(),
            every_actions: 50,
            max_wall: Budget::unlimited(),
            stop_after_checkpoints: Some(1),
        };
        let (p, h) = testbed(4);
        let first = replay_store_checkpointed(
            &store_a,
            Arc::new(MemBudget::unlimited()),
            p,
            &h,
            &cfg,
            None,
            Some(&policy),
            None,
        )
        .unwrap();
        assert!(matches!(first.status, CheckpointedStatus::Paused { .. }));
        let ck = ReplayCheckpoint::load(&ckpath).unwrap();

        // Resuming against the other store fails closed.
        let (p, h) = testbed(4);
        let err = replay_store_checkpointed(
            &store_b,
            Arc::new(MemBudget::unlimited()),
            p,
            &h,
            &cfg,
            None,
            None,
            Some(&ck),
        )
        .unwrap_err();
        assert!(matches!(err, ReplayError::Checkpoint { .. }), "{err}");

        // Resuming against the original store finishes bit-identically
        // to the uninterrupted store replay.
        let (p, h) = testbed(4);
        let reference = replay_store(
            &store_a,
            Arc::new(MemBudget::unlimited()),
            p,
            &h,
            &cfg,
        )
        .unwrap();
        let (p, h) = testbed(4);
        let resumed = replay_store_checkpointed(
            &store_a,
            Arc::new(MemBudget::unlimited()),
            p,
            &h,
            &cfg,
            None,
            None,
            Some(&ck),
        )
        .unwrap();
        assert!(resumed.resumed);
        match resumed.status {
            CheckpointedStatus::Finished { simulated_time } => {
                assert_eq!(simulated_time.to_bits(), reference.simulated_time.to_bits());
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        let _ = std::fs::remove_file(path_a);
        let _ = std::fs::remove_file(path_b);
        let _ = std::fs::remove_file(ckpath);
    }
}
