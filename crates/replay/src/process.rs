//! The per-process replaying actor.
//!
//! One [`ReplayActor`] per MPI rank streams actions from its source (an
//! in-memory list or a per-process trace file), expands them through the
//! handler [`Registry`] and executes the resulting micro-ops on the
//! simulation kernel. Non-blocking operations enqueue their kernel op in
//! a FIFO request queue; `wait` completes the oldest one — the format has
//! no request identifiers, and the paper's prototype behaves the same
//! way.

use crate::handlers::{ExpandCtx, MicroOp, Registry};
use crate::collectives::CollectiveAlgo;
use simkern::engine::{Ctx, MailboxKey, OpId};
use simkern::{Actor, Step, Wake};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tit_core::checkpoint::{Dec, Enc};
use tit_core::trace::ProcessTraceReader;
use tit_core::Action;

/// Supplies the action stream of one process.
pub trait ActionSource: Send {
    /// Next action, or `None` at end of trace.
    fn next_action(&mut self) -> std::io::Result<Option<Action>>;
}

/// In-memory action list.
pub struct VecSource(std::vec::IntoIter<Action>);

impl VecSource {
    /// Wraps an owned action list.
    pub fn new(actions: Vec<Action>) -> Self {
        VecSource(actions.into_iter())
    }
}

impl ActionSource for VecSource {
    fn next_action(&mut self) -> std::io::Result<Option<Action>> {
        Ok(self.0.next())
    }
}

/// One rank's slice of a shared interned [`tit_core::CompactTrace`] — the
/// zero-copy source behind [`replay_compact`](crate::replay_compact).
/// Cloning the `Arc` per rank lets all actors stream from one
/// struct-of-arrays allocation.
pub struct CompactSource {
    trace: Arc<tit_core::CompactTrace>,
    rank: usize,
    index: usize,
}

impl CompactSource {
    /// A source over `rank`'s actions in `trace`. Ranks beyond
    /// `trace.num_processes()` simply yield an empty stream.
    pub fn new(trace: Arc<tit_core::CompactTrace>, rank: usize) -> Self {
        CompactSource { trace, rank, index: 0 }
    }
}

impl ActionSource for CompactSource {
    fn next_action(&mut self) -> std::io::Result<Option<Action>> {
        let a = self.trace.get(self.rank, self.index);
        if a.is_some() {
            self.index += 1;
        }
        Ok(a)
    }
}

/// Streaming per-process trace file (`SG_process<N>.trace`).
pub struct FileSource {
    reader: ProcessTraceReader,
    rank: usize,
    path: std::path::PathBuf,
}

impl FileSource {
    /// Opens `path`; every line must belong to `rank`.
    pub fn open(path: &std::path::Path, rank: usize) -> std::io::Result<Self> {
        Ok(FileSource {
            reader: ProcessTraceReader::open(path)?,
            rank,
            path: path.to_path_buf(),
        })
    }

    /// Prefixes `e` with this source's file path, so a parse error
    /// (which already carries the line number and offending token) also
    /// names the file it came from.
    fn with_path(&self, e: std::io::Error) -> std::io::Error {
        std::io::Error::new(e.kind(), format!("{}: {e}", self.path.display()))
    }
}

impl ActionSource for FileSource {
    fn next_action(&mut self) -> std::io::Result<Option<Action>> {
        match self.reader.next_action().map_err(|e| self.with_path(e))? {
            None => Ok(None),
            Some((pid, a)) => {
                if pid != self.rank {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "{}: trace line for p{pid} in p{}'s file",
                            self.path.display(),
                            self.rank
                        ),
                    ));
                }
                Ok(Some(a))
            }
        }
    }
}

/// Streaming binary per-process trace file (`SG_process<N>.btrace`,
/// the paper's future-work format).
pub struct BinFileSource {
    reader: tit_core::binfmt::BinaryTraceReader,
}

impl BinFileSource {
    /// Opens `path`; the embedded rank header must match `rank`.
    pub fn open(path: &std::path::Path, rank: usize) -> std::io::Result<Self> {
        let reader = tit_core::binfmt::BinaryTraceReader::open(path)?;
        if reader.rank() != rank {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("binary trace for p{} opened as p{rank}", reader.rank()),
            ));
        }
        Ok(BinFileSource { reader })
    }
}

impl ActionSource for BinFileSource {
    fn next_action(&mut self) -> std::io::Result<Option<Action>> {
        self.reader.next_action()
    }
}

/// The replaying state machine for one rank.
pub struct ReplayActor {
    rank: usize,
    nproc: usize,
    src: Box<dyn ActionSource>,
    registry: Arc<Registry>,
    algo: CollectiveAlgo,
    micro: VecDeque<MicroOp>,
    expand_buf: Vec<MicroOp>,
    requests: VecDeque<OpId>,
    actions_replayed: Arc<AtomicU64>,
    /// Actions this actor itself has pulled from `src` — the resume
    /// cursor. Unlike the shared `actions_replayed` counter this is
    /// per-rank, so a restored actor knows how far to fast-forward its
    /// own stream.
    cursor: u64,
}

impl ReplayActor {
    /// Builds the actor for `rank`, incrementing `actions_replayed`
    /// once per action pulled from `src`.
    pub fn new(
        rank: usize,
        src: Box<dyn ActionSource>,
        registry: Arc<Registry>,
        algo: CollectiveAlgo,
        actions_replayed: Arc<AtomicU64>,
    ) -> Self {
        ReplayActor {
            rank,
            nproc: 0,
            src,
            registry,
            algo,
            micro: VecDeque::new(),
            expand_buf: Vec::new(),
            requests: VecDeque::new(),
            actions_replayed,
            cursor: 0,
        }
    }

    /// Serializes one queued micro-op (checkpoint payload).
    fn enc_micro(e: &mut Enc, op: &MicroOp) {
        match *op {
            MicroOp::Exec { flops, tag } => {
                e.u8(0);
                e.f64(flops);
                e.u32(tag);
            }
            MicroOp::Send { dst, bytes, tag } => {
                e.u8(1);
                e.usize(dst);
                e.f64(bytes);
                e.u32(tag);
            }
            MicroOp::Recv { src, tag } => {
                e.u8(2);
                e.usize(src);
                e.u32(tag);
            }
            MicroOp::CollSend { dst, bytes, tag } => {
                e.u8(3);
                e.usize(dst);
                e.f64(bytes);
                e.u32(tag);
            }
            MicroOp::CollRecv { src, tag } => {
                e.u8(4);
                e.usize(src);
                e.u32(tag);
            }
            MicroOp::IsendReq { dst, bytes, tag } => {
                e.u8(5);
                e.usize(dst);
                e.f64(bytes);
                e.u32(tag);
            }
            MicroOp::IrecvReq { src, tag } => {
                e.u8(6);
                e.usize(src);
                e.u32(tag);
            }
            MicroOp::WaitReq { tag } => {
                e.u8(7);
                e.u32(tag);
            }
            MicroOp::SetCommSize { nproc } => {
                e.u8(8);
                e.usize(nproc);
            }
        }
    }

    /// Deserializes one micro-op written by [`Self::enc_micro`].
    fn dec_micro(d: &mut Dec<'_>) -> Result<MicroOp, String> {
        Ok(match d.u8()? {
            0 => MicroOp::Exec { flops: d.f64()?, tag: d.u32()? },
            1 => MicroOp::Send { dst: d.usize()?, bytes: d.f64()?, tag: d.u32()? },
            2 => MicroOp::Recv { src: d.usize()?, tag: d.u32()? },
            3 => MicroOp::CollSend { dst: d.usize()?, bytes: d.f64()?, tag: d.u32()? },
            4 => MicroOp::CollRecv { src: d.usize()?, tag: d.u32()? },
            5 => MicroOp::IsendReq { dst: d.usize()?, bytes: d.f64()?, tag: d.u32()? },
            6 => MicroOp::IrecvReq { src: d.usize()?, tag: d.u32()? },
            7 => MicroOp::WaitReq { tag: d.u32()? },
            8 => MicroOp::SetCommSize { nproc: d.usize()? },
            k => return Err(format!("unknown micro-op discriminant {k}")),
        })
    }

    /// Runs one micro-op; `Ok(Some(step))` when it blocks the actor,
    /// `Err` when the trace is structurally impossible at this point.
    fn run_micro(&mut self, ctx: &mut Ctx<'_>, op: MicroOp) -> Result<Option<Step>, String> {
        match op {
            MicroOp::Exec { flops, tag } => Ok(Some(Step::Wait(ctx.execute_tagged(flops, tag)))),
            MicroOp::Send { dst, bytes, tag } => {
                let mb = MailboxKey::p2p(self.rank, dst);
                Ok(Some(Step::Wait(ctx.isend_tagged(mb, bytes, tag))))
            }
            MicroOp::Recv { src, tag } => {
                let mb = MailboxKey::p2p(src, self.rank);
                Ok(Some(Step::Wait(ctx.irecv_tagged(mb, tag))))
            }
            MicroOp::CollSend { dst, bytes, tag } => {
                let mb = MailboxKey::coll(self.rank, dst);
                Ok(Some(Step::Wait(ctx.isend_tagged(mb, bytes, tag))))
            }
            MicroOp::CollRecv { src, tag } => {
                let mb = MailboxKey::coll(src, self.rank);
                Ok(Some(Step::Wait(ctx.irecv_tagged(mb, tag))))
            }
            MicroOp::IsendReq { dst, bytes, tag } => {
                let mb = MailboxKey::p2p(self.rank, dst);
                let op = ctx.isend_tagged(mb, bytes, tag);
                self.requests.push_back(op);
                Ok(None)
            }
            MicroOp::IrecvReq { src, tag } => {
                let mb = MailboxKey::p2p(src, self.rank);
                let op = ctx.irecv_tagged(mb, tag);
                self.requests.push_back(op);
                Ok(None)
            }
            MicroOp::WaitReq { .. } => match self.requests.pop_front() {
                Some(op) => Ok(Some(Step::Wait(op))),
                None => Err("wait with no pending request (malformed trace)".into()),
            },
            MicroOp::SetCommSize { nproc } => {
                self.nproc = nproc;
                Ok(None)
            }
        }
    }
}

impl Actor for ReplayActor {
    fn step(&mut self, ctx: &mut Ctx<'_>, _wake: Wake) -> Step {
        loop {
            if let Some(op) = self.micro.pop_front() {
                match self.run_micro(ctx, op) {
                    Ok(Some(step)) => return step,
                    Ok(None) => continue,
                    // Failure channel: report instead of unwinding —
                    // the engine aborts the run with a typed error
                    // naming this rank.
                    Err(reason) => return Step::Fail { reason },
                }
            }
            let action = match self.src.next_action() {
                Ok(Some(a)) => a,
                Ok(None) => return Step::Done,
                Err(e) => return Step::Fail { reason: format!("trace read failed: {e}") },
            };
            self.actions_replayed.fetch_add(1, Ordering::Relaxed);
            self.cursor += 1;
            let ectx = ExpandCtx { rank: self.rank, nproc: self.nproc, algo: self.algo };
            self.expand_buf.clear();
            if let Err(e) = self.registry.expand(&ectx, &action, &mut self.expand_buf) {
                return Step::Fail { reason: e.to_string() };
            }
            self.micro.extend(self.expand_buf.drain(..));
        }
    }

    fn export_state(&self) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        e.usize(self.rank);
        e.usize(self.nproc);
        e.u64(self.cursor);
        e.usize(self.micro.len());
        for op in &self.micro {
            Self::enc_micro(&mut e, op);
        }
        e.usize(self.requests.len());
        for &op in &self.requests {
            e.usize(op.to_raw());
        }
        Some(e.finish())
    }

    fn import_state(&mut self, state: &[u8]) -> Result<(), String> {
        let mut d = Dec::new(state);
        let rank = d.usize()?;
        if rank != self.rank {
            return Err(format!(
                "checkpointed state for rank {rank} restored into rank {}",
                self.rank
            ));
        }
        let nproc = d.usize()?;
        let cursor = d.u64()?;
        let n_micro = d.usize()?;
        let mut micro = VecDeque::with_capacity(n_micro.min(1 << 16));
        for _ in 0..n_micro {
            micro.push_back(Self::dec_micro(&mut d)?);
        }
        let n_req = d.usize()?;
        let mut requests = VecDeque::with_capacity(n_req.min(1 << 16));
        for _ in 0..n_req {
            requests.push_back(OpId::from_raw(d.usize()?));
        }
        d.expect_done()?;
        // Fast-forward the action stream to the cursor without touching
        // the shared counter — the resumed total is restored from the
        // checkpoint, not re-counted.
        for i in 0..cursor {
            match self.src.next_action() {
                Ok(Some(_)) => {}
                Ok(None) => {
                    return Err(format!(
                        "rank {}: trace ended at action {i} but the checkpoint \
                         consumed {cursor} — trace changed since the checkpoint",
                        self.rank
                    ));
                }
                Err(e) => {
                    return Err(format!(
                        "rank {}: trace read failed while fast-forwarding to \
                         action {cursor}: {e}",
                        self.rank
                    ));
                }
            }
        }
        self.nproc = nproc;
        self.cursor = cursor;
        self.micro = micro;
        self.requests = requests;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_yields_in_order() {
        let mut s = VecSource::new(vec![Action::Wait, Action::Barrier]);
        assert_eq!(s.next_action().unwrap(), Some(Action::Wait));
        assert_eq!(s.next_action().unwrap(), Some(Action::Barrier));
        assert_eq!(s.next_action().unwrap(), None);
    }

    #[test]
    fn compact_source_streams_one_rank() {
        let mut c = tit_core::CompactTrace::new();
        c.begin_process();
        c.push(&Action::Barrier).unwrap();
        c.begin_process();
        c.push(&Action::Wait).unwrap();
        c.push(&Action::Compute { flops: 2.0 }).unwrap();
        let c = Arc::new(c);
        let mut s1 = CompactSource::new(Arc::clone(&c), 1);
        assert_eq!(s1.next_action().unwrap(), Some(Action::Wait));
        assert_eq!(s1.next_action().unwrap(), Some(Action::Compute { flops: 2.0 }));
        assert_eq!(s1.next_action().unwrap(), None);
        let mut beyond = CompactSource::new(c, 9);
        assert_eq!(beyond.next_action().unwrap(), None);
    }

    #[test]
    fn file_source_rejects_foreign_ranks() {
        let dir = std::env::temp_dir().join(format!("titr-fsrc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("SG_process0.trace");
        std::fs::write(&path, "p1 wait\n").unwrap();
        let mut s = FileSource::open(&path, 0).unwrap();
        assert!(s.next_action().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
