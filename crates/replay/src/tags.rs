//! Observer tags identifying replayed action kinds in timed traces and
//! profiles.
//!
//! The numeric values agree with `tit_core::compact::tag` for every
//! keyword both layers know (asserted by a parity test): a tag read
//! from a timed trace and a tag interned in a
//! [`CompactTrace`](tit_core::CompactTrace) mean the same action.

/// A CPU burst (`compute`).
pub const COMPUTE: u32 = 1;
/// A blocking send (`send`).
pub const SEND: u32 = 2;
/// A non-blocking send (`Isend`).
pub const ISEND: u32 = 3;
/// A blocking receive (`recv`).
pub const RECV: u32 = 4;
/// A non-blocking receive (`Irecv`).
pub const IRECV: u32 = 5;
/// A broadcast rooted at rank 0 (`bcast`).
pub const BCAST: u32 = 6;
/// A reduction to rank 0 (`reduce`).
pub const REDUCE: u32 = 7;
/// A reduction followed by a broadcast (`allReduce`).
pub const ALLREDUCE: u32 = 8;
/// A synchronisation barrier (`barrier`).
pub const BARRIER: u32 = 9;
/// Completion of the oldest pending non-blocking request (`wait`).
pub const WAIT: u32 = 10;

/// Every tag the replay layer emits, in numeric order.
pub const ALL: [u32; 10] =
    [COMPUTE, SEND, ISEND, RECV, IRECV, BCAST, REDUCE, ALLREDUCE, BARRIER, WAIT];

/// Human-readable name for a tag.
pub fn name(tag: u32) -> &'static str {
    match tag {
        COMPUTE => "compute",
        SEND => "send",
        ISEND => "Isend",
        RECV => "recv",
        IRECV => "Irecv",
        BCAST => "bcast",
        REDUCE => "reduce",
        ALLREDUCE => "allReduce",
        BARRIER => "barrier",
        WAIT => "wait",
        _ => "other",
    }
}

/// Inverse of [`name`]: resolves an action name back to its tag (used
/// by `tit-profile` to re-aggregate a timed-trace CSV).
pub fn from_name(s: &str) -> Option<u32> {
    ALL.iter().copied().find(|&t| name(t) == s)
}

/// True when the tag denotes communication (for profile aggregation).
pub fn is_comm(tag: u32) -> bool {
    matches!(tag, SEND | ISEND | RECV | IRECV | BCAST | REDUCE | ALLREDUCE | BARRIER | WAIT)
}

/// True when the tag denotes a collective operation — the phase
/// boundaries the time-resolved windowing detects.
pub fn is_collective(tag: u32) -> bool {
    matches!(tag, BCAST | REDUCE | ALLREDUCE | BARRIER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let tags = [COMPUTE, SEND, ISEND, RECV, IRECV, BCAST, REDUCE, ALLREDUCE, BARRIER, WAIT];
        let mut names: Vec<_> = tags.iter().map(|&t| name(t)).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tags.len());
    }

    #[test]
    fn classification() {
        assert!(!is_comm(COMPUTE));
        assert!(is_comm(SEND));
        assert!(is_comm(BARRIER));
    }

    #[test]
    fn collectives_are_exactly_the_four_group_ops() {
        let colls: Vec<_> = ALL.iter().copied().filter(|&t| is_collective(t)).collect();
        assert_eq!(colls, [BCAST, REDUCE, ALLREDUCE, BARRIER]);
        // Every collective is also communication.
        assert!(colls.iter().all(|&t| is_comm(t)));
    }

    #[test]
    fn tags_agree_with_core_interning() {
        // A timed-trace tag and a CompactTrace tag must mean the same
        // action; `comm_size` exists only on the core side (it never
        // reaches the kernel, so the observer never sees it).
        use tit_core::compact::tag;
        for t in ALL {
            assert_eq!(tag::keyword(t), Some(name(t)), "tag {t}");
        }
        assert_eq!(tag::COMM_SIZE, WAIT + 1);
    }

    #[test]
    fn from_name_round_trips_every_tag() {
        for t in ALL {
            assert_eq!(from_name(name(t)), Some(t), "tag {t}");
        }
        assert_eq!(from_name("no-such-action"), None);
    }
}
