//! Observer tags identifying replayed action kinds in timed traces and
//! profiles.

pub const COMPUTE: u32 = 1;
pub const SEND: u32 = 2;
pub const ISEND: u32 = 3;
pub const RECV: u32 = 4;
pub const IRECV: u32 = 5;
pub const BCAST: u32 = 6;
pub const REDUCE: u32 = 7;
pub const ALLREDUCE: u32 = 8;
pub const BARRIER: u32 = 9;
pub const WAIT: u32 = 10;

/// Every tag the replay layer emits, in numeric order.
pub const ALL: [u32; 10] =
    [COMPUTE, SEND, ISEND, RECV, IRECV, BCAST, REDUCE, ALLREDUCE, BARRIER, WAIT];

/// Human-readable name for a tag.
pub fn name(tag: u32) -> &'static str {
    match tag {
        COMPUTE => "compute",
        SEND => "send",
        ISEND => "Isend",
        RECV => "recv",
        IRECV => "Irecv",
        BCAST => "bcast",
        REDUCE => "reduce",
        ALLREDUCE => "allReduce",
        BARRIER => "barrier",
        WAIT => "wait",
        _ => "other",
    }
}

/// Inverse of [`name`]: resolves an action name back to its tag (used
/// by `tit-profile` to re-aggregate a timed-trace CSV).
pub fn from_name(s: &str) -> Option<u32> {
    ALL.iter().copied().find(|&t| name(t) == s)
}

/// True when the tag denotes communication (for profile aggregation).
pub fn is_comm(tag: u32) -> bool {
    matches!(tag, SEND | ISEND | RECV | IRECV | BCAST | REDUCE | ALLREDUCE | BARRIER | WAIT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let tags = [COMPUTE, SEND, ISEND, RECV, IRECV, BCAST, REDUCE, ALLREDUCE, BARRIER, WAIT];
        let mut names: Vec<_> = tags.iter().map(|&t| name(t)).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tags.len());
    }

    #[test]
    fn classification() {
        assert!(!is_comm(COMPUTE));
        assert!(is_comm(SEND));
        assert!(is_comm(BARRIER));
    }

    #[test]
    fn from_name_round_trips_every_tag() {
        for t in ALL {
            assert_eq!(from_name(name(t)), Some(t), "tag {t}");
        }
        assert_eq!(from_name("no-such-action"), None);
    }
}
