//! End-to-end replay driver: trace + platform + deployment → simulated
//! time (Figure 4 of the paper).

use crate::collectives::CollectiveAlgo;
use crate::error::ReplayError;
use crate::handlers::Registry;
use crate::process::{ActionSource, CompactSource, FileSource, ReplayActor, VecSource};
use simkern::netmodel::NetworkConfig;
use simkern::observer::{Fanout, Observer, OpRecord};
use simkern::resource::HostId;
use simkern::{Engine, KernelMode, Platform};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tit_core::trace::process_trace_filename;
use tit_core::TiTrace;

/// Replay-tool configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Network model (the paper's default is the contention-aware
    /// piece-wise-linear MPI model).
    pub network: NetworkConfig,
    /// Collective decomposition shape.
    pub algo: CollectiveAlgo,
    /// Record one timed entry per completed operation (Figure 4's
    /// "timed trace" output). Costs memory proportional to trace size.
    pub collect_records: bool,
    /// Enable kernel self-profiling: the engine counts hot-loop work
    /// (LMM solves, heap traffic) and attributes wall time to phases.
    /// The simulated outcome is byte-identical either way; see
    /// [`simkern::KernelProfile`].
    pub kernel_profile: bool,
    /// Kernel implementation. `Incremental` (default) is the
    /// scale-invariant production path; `Reference` is the full-solve
    /// oracle it is differentially tested against — both simulate
    /// bit-identically (see [`simkern::KernelMode`] and
    /// docs/KERNEL.md).
    pub kernel: KernelMode,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            network: NetworkConfig::mpi_cluster(),
            algo: CollectiveAlgo::Binomial,
            collect_records: false,
            kernel_profile: false,
            kernel: KernelMode::Incremental,
        }
    }
}

/// Results of a replay.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Simulated execution time of the application, seconds.
    pub simulated_time: f64,
    /// Number of trace actions consumed.
    pub actions_replayed: u64,
    /// Wall-clock time of the simulation itself (Figure 9's metric).
    pub wall_time: std::time::Duration,
    /// Timed trace when `collect_records` was set.
    pub records: Option<Vec<OpRecord>>,
    /// Kernel self-profile when `cfg.kernel_profile` was set.
    pub kernel_profile: Option<simkern::KernelProfile>,
}

/// Observer pushing into a shared vector (so the caller keeps access
/// after the engine consumes the box).
struct SharedCollector(Arc<Mutex<Vec<OpRecord>>>);

impl Observer for SharedCollector {
    fn record(&mut self, rec: OpRecord) {
        // panics: mutex poisoned only if another thread already panicked
        self.0.lock().unwrap().push(rec);
    }
}

pub(crate) fn run(
    sources: Vec<Box<dyn ActionSource>>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
) -> Result<ReplayOutcome, ReplayError> {
    if sources.len() != hosts.len() {
        return Err(ReplayError::Deployment { procs: sources.len(), hosts: hosts.len() });
    }
    let mut engine = Engine::new(platform);
    engine.set_kernel_mode(cfg.kernel);
    engine.set_network_config(cfg.network.clone());
    let records = Arc::new(Mutex::new(Vec::new()));
    match (cfg.collect_records, extra) {
        (true, Some(obs)) => engine.set_observer(Box::new(
            Fanout::new().with(Box::new(SharedCollector(records.clone()))).with(obs),
        )),
        (true, None) => engine.set_observer(Box::new(SharedCollector(records.clone()))),
        (false, Some(obs)) => engine.set_observer(obs),
        (false, None) => {}
    }
    if cfg.kernel_profile {
        engine.enable_kernel_profiling();
    }
    let registry = Arc::new(Registry::with_defaults());
    let counter = Arc::new(AtomicU64::new(0));
    for (rank, src) in sources.into_iter().enumerate() {
        let actor =
            ReplayActor::new(rank, src, registry.clone(), cfg.algo, counter.clone());
        engine.spawn(Box::new(actor), hosts[rank]);
    }
    let t0 = std::time::Instant::now();
    let simulated_time = engine.run_checked().map_err(ReplayError::from)?;
    let wall_time = t0.elapsed();
    let kernel_profile = engine.take_kernel_profile();
    let records = if cfg.collect_records {
        // panics: mutex poisoned only if another thread already panicked
        Some(std::mem::take(&mut *records.lock().unwrap()))
    } else {
        None
    };
    Ok(ReplayOutcome {
        simulated_time,
        actions_replayed: counter.load(Ordering::Relaxed),
        wall_time,
        records,
        kernel_profile,
    })
}

/// Replays an in-memory trace. `hosts[rank]` is rank's host.
pub fn replay_memory(
    trace: &TiTrace,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    replay_memory_observed(trace, platform, hosts, cfg, None)
}

/// Like [`replay_memory`], with an extra [`Observer`] installed for the
/// run (composed with the timed-trace collector when
/// `cfg.collect_records` is set). Streaming telemetry sinks — a
/// `titobs` timeline, profile or metrics observer, or several through
/// [`Fanout`] — attach here without buffering the run.
pub fn replay_memory_observed(
    trace: &TiTrace,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
) -> Result<ReplayOutcome, ReplayError> {
    let sources: Vec<Box<dyn ActionSource>> = trace
        .actions
        .iter()
        .map(|a| Box::new(VecSource::new(a.clone())) as Box<dyn ActionSource>)
        .collect();
    run(sources, platform, hosts, cfg, extra)
}

/// Replays per-process trace files `SG_process<rank>.trace` from `dir`,
/// streaming them (constant memory in trace size). A rank whose file is
/// missing is a [`ReplayError::MissingRank`] naming the rank — degraded
/// input degrades to a diagnosis, never to a hang.
pub fn replay_files(
    dir: &Path,
    nproc: usize,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    replay_files_observed(dir, nproc, platform, hosts, cfg, None)
}

/// Like [`replay_files`], with an extra [`Observer`] installed for the
/// run (see [`replay_memory_observed`]). The streaming source plus a
/// streaming observer keep memory constant in trace length.
pub fn replay_files_observed(
    dir: &Path,
    nproc: usize,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
) -> Result<ReplayOutcome, ReplayError> {
    let mut sources: Vec<Box<dyn ActionSource>> = Vec::with_capacity(nproc);
    for rank in 0..nproc {
        let path = dir.join(process_trace_filename(rank));
        let src = FileSource::open(&path, rank)
            .map_err(|source| ReplayError::MissingRank { rank, path: path.clone(), source })?;
        sources.push(Box::new(src));
    }
    run(sources, platform, hosts, cfg, extra)
}

/// Replays a shared interned [`CompactTrace`](tit_core::CompactTrace):
/// the fast path for repeated or memory-bound replays. Ranks stream
/// straight out of the struct-of-arrays storage (~16 bytes/action, no
/// per-rank copies), so a folded ×8 class-D-scale trace loads once and
/// replays many times.
pub fn replay_compact(
    trace: &Arc<tit_core::CompactTrace>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    replay_compact_observed(trace, platform, hosts, cfg, None)
}

/// Like [`replay_compact`], with an extra [`Observer`] installed for the
/// run (see [`replay_memory_observed`]).
pub fn replay_compact_observed(
    trace: &Arc<tit_core::CompactTrace>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
) -> Result<ReplayOutcome, ReplayError> {
    let sources: Vec<Box<dyn ActionSource>> = (0..trace.num_processes())
        .map(|rank| {
            Box::new(CompactSource::new(Arc::clone(trace), rank)) as Box<dyn ActionSource>
        })
        .collect();
    run(sources, platform, hosts, cfg, extra)
}

/// Like [`replay_files`], but ingests the `nproc` per-rank files in
/// parallel (`jobs` worker threads, `0` = one per CPU) into a
/// [`CompactTrace`](tit_core::CompactTrace) first and replays that.
/// Trades the streaming path's constant memory for load throughput; the
/// result is identical — same simulated time, same per-file errors
/// ([`ReplayError::MissingRank`] for an absent file,
/// [`ReplayError::Trace`] for a defective one).
pub fn replay_files_jobs(
    dir: &Path,
    nproc: usize,
    jobs: usize,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
) -> Result<ReplayOutcome, ReplayError> {
    let compact = tit_core::load_compact_exact(dir, nproc, jobs).map_err(|e| {
        if e.source.kind() == std::io::ErrorKind::NotFound {
            ReplayError::MissingRank { rank: e.rank, path: e.path, source: e.source }
        } else {
            ReplayError::Trace { rank: e.rank, detail: e.source.to_string() }
        }
    })?;
    replay_compact_observed(&Arc::new(compact), platform, hosts, cfg, extra)
}

/// Replays binary per-process traces `SG_process<rank>.btrace` from
/// `dir` (the paper's future-work format; see `tit_core::binfmt`).
pub fn replay_binary_files(
    dir: &Path,
    nproc: usize,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    use crate::process::BinFileSource;
    let mut sources: Vec<Box<dyn ActionSource>> = Vec::with_capacity(nproc);
    for rank in 0..nproc {
        let path = dir.join(tit_core::binfmt::binary_trace_filename(rank));
        let src = BinFileSource::open(&path, rank)
            .map_err(|source| ReplayError::MissingRank { rank, path: path.clone(), source })?;
        sources.push(Box::new(src));
    }
    run(sources, platform, hosts, cfg, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tit_core::Action;
    use tit_platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};

    fn mycluster(n: usize) -> (Platform, Vec<HostId>) {
        // The Figure 5 platform, scaled to n nodes.
        let spec = ClusterSpec {
            id: "mycluster".into(),
            prefix: "mycluster-".into(),
            suffix: ".mysite.fr".into(),
            count: n,
            power: 1.17e9,
            cores: 1,
            bw: 1.25e8,
            lat: 16.67e-6,
            bb_bw: 1.25e9,
            bb_lat: 16.67e-6,
            topology: ClusterTopology::Flat,
        };
        let p = PlatformDesc::single(spec).build();
        let hosts = (0..n as u32).map(HostId).collect();
        (p, hosts)
    }

    fn plain_cfg() -> ReplayConfig {
        // Identity network model for analytically-checkable timings.
        ReplayConfig { network: NetworkConfig::default(), ..Default::default() }
    }

    /// The paper's Figure 1 ring (single iteration).
    fn ring_trace() -> TiTrace {
        let mut t = TiTrace::new(4);
        t.push(0, Action::Compute { flops: 1e6 });
        t.push(0, Action::Send { dst: 1, bytes: 1e6 });
        t.push(0, Action::Recv { src: 3, bytes: None });
        for p in 1..4usize {
            t.push(p, Action::Recv { src: p - 1, bytes: None });
            t.push(p, Action::Compute { flops: 1e6 });
            t.push(p, Action::Send { dst: (p + 1) % 4, bytes: 1e6 });
        }
        t
    }

    #[test]
    fn figure_1_ring_replays_to_analytic_time() {
        let (p, hosts) = mycluster(4);
        let out = replay_memory(&ring_trace(), p, &hosts, &plain_cfg()).unwrap();
        // Four sequential hops: compute 1e6/1.17e9 + transfer 1e6/1.25e8
        // + 3 hop latencies each.
        let hop = 1e6 / 1.17e9 + 1e6 / 1.25e8 + 3.0 * 16.67e-6;
        let expect = 4.0 * hop;
        let rel = (out.simulated_time - expect).abs() / expect;
        assert!(
            rel < 1e-9,
            "ring: expected {expect}, got {} (rel {rel})",
            out.simulated_time
        );
        assert_eq!(out.actions_replayed, 12);
    }

    #[test]
    fn replay_is_deterministic() {
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let a = replay_memory(&ring_trace(), p1, &hosts, &plain_cfg()).unwrap();
        let b = replay_memory(&ring_trace(), p2, &hosts, &plain_cfg()).unwrap();
        assert_eq!(a.simulated_time, b.simulated_time);
    }

    #[test]
    fn exchange_with_irecv_wait_does_not_deadlock() {
        // Two ranks post Irecv first, then a (rendezvous) send, then wait:
        // the LU benchmark's exchange pattern.
        let mut t = TiTrace::new(2);
        for (me, other) in [(0usize, 1usize), (1, 0)] {
            t.push(me, Action::Irecv { src: other, bytes: None });
            t.push(me, Action::Send { dst: other, bytes: 1e6 });
            t.push(me, Action::Wait);
        }
        let (p, hosts) = mycluster(2);
        let out = replay_memory(&t, p, &hosts, &plain_cfg()).unwrap();
        // Both transfers share both NICs; either way it takes at least one
        // transfer time.
        assert!(out.simulated_time >= 1e6 / 1.25e8);
    }

    #[test]
    fn collectives_replay_on_all_ranks() {
        let n = 8;
        let mut t = TiTrace::new(n);
        for r in 0..n {
            t.push(r, Action::CommSize { nproc: n });
            t.push(r, Action::Bcast { bytes: 1e5 });
            t.push(r, Action::AllReduce { vcomm: 1e4, vcomp: 1e6 });
            t.push(r, Action::Barrier);
        }
        let (p, hosts) = mycluster(n);
        let out = replay_memory(&t, p, &hosts, &plain_cfg()).unwrap();
        assert!(out.simulated_time > 0.0);
        assert_eq!(out.actions_replayed, (n * 4) as u64);
    }

    #[test]
    fn binomial_beats_flat_bcast() {
        let n = 16;
        let mut t = TiTrace::new(n);
        for r in 0..n {
            t.push(r, Action::CommSize { nproc: n });
            t.push(r, Action::Bcast { bytes: 1e6 });
        }
        let (p1, hosts) = mycluster(n);
        let (p2, _) = mycluster(n);
        let bino = replay_memory(&t, p1, &hosts, &plain_cfg()).unwrap();
        let flat_cfg = ReplayConfig { algo: CollectiveAlgo::Flat, ..plain_cfg() };
        let flat = replay_memory(&t, p2, &hosts, &flat_cfg).unwrap();
        assert!(
            bino.simulated_time < flat.simulated_time,
            "binomial {} vs flat {}",
            bino.simulated_time,
            flat.simulated_time
        );
    }

    #[test]
    fn file_replay_matches_memory_replay() {
        let dir = std::env::temp_dir().join(format!("titr-replayf-{}", std::process::id()));
        let t = ring_trace();
        t.save_per_process(&dir).unwrap();
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let mem = replay_memory(&t, p1, &hosts, &plain_cfg()).unwrap();
        let fil = replay_files(&dir, 4, p2, &hosts, &plain_cfg()).unwrap();
        assert_eq!(mem.simulated_time, fil.simulated_time);
        assert_eq!(mem.actions_replayed, fil.actions_replayed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_replay_matches_memory_replay() {
        let t = ring_trace();
        let compact = Arc::new(tit_core::CompactTrace::from_trace(&t).unwrap());
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let mem = replay_memory(&t, p1, &hosts, &plain_cfg()).unwrap();
        let cmp = replay_compact(&compact, p2, &hosts, &plain_cfg()).unwrap();
        assert_eq!(mem.simulated_time, cmp.simulated_time);
        assert_eq!(mem.actions_replayed, cmp.actions_replayed);
    }

    #[test]
    fn parallel_file_replay_matches_streaming_replay() {
        let dir = std::env::temp_dir().join(format!("titr-pjobs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = ring_trace();
        t.save_per_process(&dir).unwrap();
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let streaming = replay_files(&dir, 4, p1, &hosts, &plain_cfg()).unwrap();
        let parallel =
            replay_files_jobs(&dir, 4, 3, p2, &hosts, &plain_cfg(), None).unwrap();
        assert_eq!(streaming.simulated_time, parallel.simulated_time);
        assert_eq!(streaming.actions_replayed, parallel.actions_replayed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_file_replay_reports_missing_and_defective_ranks() {
        let dir = std::env::temp_dir().join(format!("titr-pjobs-err-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ring_trace().save_per_process(&dir).unwrap();
        let (p1, hosts5) = mycluster(5);
        let err = replay_files_jobs(&dir, 5, 2, p1, &hosts5, &plain_cfg(), None).unwrap_err();
        match err {
            ReplayError::MissingRank { rank, .. } => assert_eq!(rank, 4),
            other => panic!("expected MissingRank, got {other}"),
        }
        std::fs::write(dir.join("SG_process2.trace"), "p2 frobnicate\n").unwrap();
        let (p2, hosts4) = mycluster(4);
        let err = replay_files_jobs(&dir, 4, 2, p2, &hosts4, &plain_cfg(), None).unwrap_err();
        match err {
            ReplayError::Trace { rank, detail } => {
                assert_eq!(rank, 2);
                assert!(detail.contains("frobnicate"), "{detail}");
            }
            other => panic!("expected Trace, got {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_and_text_traces_replay_identically() {
        let dir =
            std::env::temp_dir().join(format!("titr-binreplay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = ring_trace();
        t.save_per_process(&dir).unwrap();
        tit_core::binfmt::convert_dir(&dir, &dir, 4).unwrap();
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let text = replay_files(&dir, 4, p1, &hosts, &plain_cfg()).unwrap();
        let bin = replay_binary_files(&dir, 4, p2, &hosts, &plain_cfg()).unwrap();
        assert_eq!(text.simulated_time, bin.simulated_time);
        assert_eq!(text.actions_replayed, bin.actions_replayed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timed_trace_records_cover_all_ops() {
        let (p, hosts) = mycluster(4);
        let cfg = ReplayConfig { collect_records: true, ..plain_cfg() };
        let out = replay_memory(&ring_trace(), p, &hosts, &cfg).unwrap();
        let recs = out.records.unwrap();
        // 12 actions, each one kernel op.
        assert_eq!(recs.len(), 12);
        // Records end no later than the simulated time and are plausible.
        for r in &recs {
            assert!(r.start >= 0.0 && r.end <= out.simulated_time + 1e-12);
            assert!(r.start <= r.end);
        }
    }

    #[test]
    fn extra_observer_composes_with_record_collection() {
        struct Count(Arc<Mutex<(u64, f64)>>);
        impl Observer for Count {
            fn record(&mut self, _rec: OpRecord) {
                // panics: mutex poisoned only if another thread already panicked
                self.0.lock().unwrap().0 += 1;
            }
            fn engine_ended(&mut self, time: f64) {
                // panics: mutex poisoned only if another thread already panicked
                self.0.lock().unwrap().1 = time;
            }
        }
        let state = Arc::new(Mutex::new((0u64, 0.0f64)));
        let (p, hosts) = mycluster(4);
        let cfg = ReplayConfig { collect_records: true, ..plain_cfg() };
        let out = replay_memory_observed(
            &ring_trace(),
            p,
            &hosts,
            &cfg,
            Some(Box::new(Count(state.clone()))),
        )
        .unwrap();
        let (seen, ended) = *state.lock().unwrap();
        // Both sinks saw every record, and the collector still filled.
        assert_eq!(seen, out.records.unwrap().len() as u64);
        assert_eq!(ended, out.simulated_time);
    }

    #[test]
    fn kernel_profiling_does_not_perturb_simulation() {
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let plain = replay_memory(&ring_trace(), p1, &hosts, &plain_cfg()).unwrap();
        let cfg = ReplayConfig { kernel_profile: true, ..plain_cfg() };
        let prof = replay_memory(&ring_trace(), p2, &hosts, &cfg).unwrap();
        assert_eq!(plain.simulated_time, prof.simulated_time);
        assert!(plain.kernel_profile.is_none(), "off by default");
        let kp = prof.kernel_profile.expect("profile present when requested");
        assert!(kp.ops_completed > 0);
        assert!(kp.solver.solves > 0);
        assert!(kp.heap_pushes >= kp.heap_pops);
        assert!(kp.wall.total_s > 0.0);
    }

    #[test]
    fn unbalanced_trace_deadlocks_with_diagnostic() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Recv { src: 1, bytes: None });
        let (p, hosts) = mycluster(2);
        let err = replay_memory(&t, p, &hosts, &plain_cfg()).unwrap_err();
        match &err {
            ReplayError::Sim(simkern::SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].actor, 0, "rank 0 is the one left hanging");
                assert_eq!(blocked[0].kind, Some(simkern::OpKind::Recv));
            }
            other => panic!("expected a deadlock, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("p0"), "diagnostic must name the rank: {msg}");
    }

    #[test]
    fn mpi_cluster_model_slows_bulk_transfers() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Send { dst: 1, bytes: 1e7 });
        t.push(1, Action::Recv { src: 0, bytes: None });
        let (p1, hosts) = mycluster(2);
        let (p2, _) = mycluster(2);
        let plain = replay_memory(&t, p1, &hosts, &plain_cfg()).unwrap();
        let mpi = replay_memory(&t, p2, &hosts, &ReplayConfig::default()).unwrap();
        assert!(mpi.simulated_time > plain.simulated_time);
    }
}
