//! Point-to-point decomposition of collective operations.
//!
//! The paper's trace format roots all collectives at process 0 (Section
//! 3). The replay tool decomposes each collective into point-to-point
//! messages over a dedicated mailbox channel, rather than using a
//! monolithic performance model — Section 2 calls the monolithic approach
//! a simplification other simulators take; simulating collectives as sets
//! of point-to-point transfers keeps contention effects.
//!
//! Two tree shapes are provided: **binomial** (what MPI implementations
//! typically use; `log2(n)` rounds) and **flat** (root loops over all
//! peers; the ablation baseline).

use crate::handlers::MicroOp;

/// Tree shape for collective decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveAlgo {
    /// Binomial tree rooted at 0.
    #[default]
    Binomial,
    /// Root 0 exchanges with every other rank sequentially.
    Flat,
}

/// Token size (bytes) for barrier messages.
pub const BARRIER_BYTES: f64 = 1.0;

/// Emits micro-ops for a broadcast of `bytes` to every rank (root 0).
pub fn bcast(algo: CollectiveAlgo, rank: usize, nproc: usize, bytes: f64, tag: u32, out: &mut Vec<MicroOp>) {
    assert!(nproc > 0, "bcast with empty communicator");
    if nproc == 1 {
        return;
    }
    match algo {
        CollectiveAlgo::Flat => {
            if rank == 0 {
                for dst in 1..nproc {
                    out.push(MicroOp::CollSend { dst, bytes, tag });
                }
            } else {
                out.push(MicroOp::CollRecv { src: 0, tag });
            }
        }
        CollectiveAlgo::Binomial => {
            // Receive from the parent, then relay to children.
            let mut mask = 1usize;
            while mask < nproc {
                if rank & mask != 0 {
                    out.push(MicroOp::CollRecv { src: rank - mask, tag });
                    break;
                }
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if rank + mask < nproc && rank & (mask - 1) == 0 && rank & mask == 0 {
                    out.push(MicroOp::CollSend { dst: rank + mask, bytes, tag });
                }
                mask >>= 1;
            }
        }
    }
}

/// Emits micro-ops for a reduction to rank 0: `vcomm` bytes per message,
/// `vcomp` flops of local combining before participating.
pub fn reduce(
    algo: CollectiveAlgo,
    rank: usize,
    nproc: usize,
    vcomm: f64,
    vcomp: f64,
    tag: u32,
    out: &mut Vec<MicroOp>,
) {
    assert!(nproc > 0, "reduce with empty communicator");
    if vcomp > 0.0 {
        out.push(MicroOp::Exec { flops: vcomp, tag });
    }
    if nproc == 1 {
        return;
    }
    match algo {
        CollectiveAlgo::Flat => {
            if rank == 0 {
                for src in 1..nproc {
                    out.push(MicroOp::CollRecv { src, tag });
                }
            } else {
                out.push(MicroOp::CollSend { dst: 0, bytes: vcomm, tag });
            }
        }
        CollectiveAlgo::Binomial => {
            // Mirror image of the binomial bcast: gather up the tree.
            let mut mask = 1usize;
            while mask < nproc {
                if rank & mask != 0 {
                    out.push(MicroOp::CollSend { dst: rank - mask, bytes: vcomm, tag });
                    return;
                }
                let src = rank + mask;
                if src < nproc {
                    out.push(MicroOp::CollRecv { src, tag });
                }
                mask <<= 1;
            }
        }
    }
}

/// All-reduce = reduce to 0 + broadcast of the result.
pub fn allreduce(
    algo: CollectiveAlgo,
    rank: usize,
    nproc: usize,
    vcomm: f64,
    vcomp: f64,
    tag: u32,
    out: &mut Vec<MicroOp>,
) {
    reduce(algo, rank, nproc, vcomm, vcomp, tag, out);
    bcast(algo, rank, nproc, vcomm, tag, out);
}

/// Barrier = zero-payload reduce + broadcast (token messages).
pub fn barrier(algo: CollectiveAlgo, rank: usize, nproc: usize, tag: u32, out: &mut Vec<MicroOp>) {
    reduce(algo, rank, nproc, BARRIER_BYTES, 0.0, tag, out);
    bcast(algo, rank, nproc, BARRIER_BYTES, tag, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Checks that the micro-ops of all ranks pair up: every CollSend has
    /// exactly one matching CollRecv, and the exchange graph is
    /// deadlock-free when executed in order (verified by topological
    /// simulation of blocking steps).
    fn check_matched(ops_per_rank: &[Vec<MicroOp>]) {
        let mut sends: HashMap<(usize, usize), u64> = HashMap::new();
        let mut recvs: HashMap<(usize, usize), u64> = HashMap::new();
        for (rank, ops) in ops_per_rank.iter().enumerate() {
            for op in ops {
                match op {
                    MicroOp::CollSend { dst, .. } => {
                        *sends.entry((rank, *dst)).or_insert(0) += 1
                    }
                    MicroOp::CollRecv { src, .. } => {
                        *recvs.entry((*src, rank)).or_insert(0) += 1
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(sends, recvs, "unmatched collective messages");
    }

    fn gen_all(
        n: usize,
        algo: CollectiveAlgo,
        f: impl Fn(usize, &mut Vec<MicroOp>),
    ) -> Vec<Vec<MicroOp>> {
        let _ = algo;
        (0..n)
            .map(|r| {
                let mut v = Vec::new();
                f(r, &mut v);
                v
            })
            .collect()
    }

    #[test]
    fn bcast_matches_for_many_sizes() {
        for algo in [CollectiveAlgo::Binomial, CollectiveAlgo::Flat] {
            for n in [1, 2, 3, 4, 5, 7, 8, 13, 16, 64, 100] {
                let ops = gen_all(n, algo, |r, v| bcast(algo, r, n, 1024.0, 0, v));
                check_matched(&ops);
                // Every non-root receives exactly once.
                for (r, o) in ops.iter().enumerate().skip(1) {
                    let recvs =
                        o.iter().filter(|m| matches!(m, MicroOp::CollRecv { .. })).count();
                    assert_eq!(recvs, 1, "rank {r} of {n} ({algo:?})");
                }
            }
        }
    }

    #[test]
    fn binomial_bcast_root_sends_log_n() {
        let mut v = Vec::new();
        bcast(CollectiveAlgo::Binomial, 0, 64, 8.0, 0, &mut v);
        assert_eq!(v.len(), 6, "root of 64 sends log2(64) messages");
    }

    #[test]
    fn flat_bcast_root_sends_n_minus_1() {
        let mut v = Vec::new();
        bcast(CollectiveAlgo::Flat, 0, 64, 8.0, 0, &mut v);
        assert_eq!(v.len(), 63);
    }

    #[test]
    fn reduce_matches_and_computes() {
        for algo in [CollectiveAlgo::Binomial, CollectiveAlgo::Flat] {
            for n in [1, 2, 3, 6, 8, 16, 33] {
                let ops = gen_all(n, algo, |r, v| reduce(algo, r, n, 64.0, 100.0, 0, v));
                check_matched(&ops);
                for o in &ops {
                    assert!(
                        matches!(o[0], MicroOp::Exec { flops, .. } if flops == 100.0),
                        "vcomp executed first"
                    );
                }
            }
        }
    }

    #[test]
    fn allreduce_is_reduce_plus_bcast() {
        let n = 8;
        let algo = CollectiveAlgo::Binomial;
        let ops = gen_all(n, algo, |r, v| allreduce(algo, r, n, 64.0, 10.0, 0, v));
        check_matched(&ops);
        // Total messages = 2 * (n - 1).
        let total: usize = ops
            .iter()
            .map(|o| o.iter().filter(|m| matches!(m, MicroOp::CollSend { .. })).count())
            .sum();
        assert_eq!(total, 2 * (n - 1));
    }

    #[test]
    fn barrier_has_no_compute() {
        let n = 16;
        let ops = gen_all(n, CollectiveAlgo::Binomial, |r, v| {
            barrier(CollectiveAlgo::Binomial, r, n, 0, v)
        });
        check_matched(&ops);
        for o in &ops {
            assert!(!o.iter().any(|m| matches!(m, MicroOp::Exec { .. })));
        }
    }

    #[test]
    fn single_process_collectives_are_local() {
        let mut v = Vec::new();
        bcast(CollectiveAlgo::Binomial, 0, 1, 8.0, 0, &mut v);
        barrier(CollectiveAlgo::Binomial, 0, 1, 0, &mut v);
        assert!(v.is_empty());
        reduce(CollectiveAlgo::Binomial, 0, 1, 8.0, 50.0, 0, &mut v);
        assert_eq!(v.len(), 1, "only the local combine remains");
    }
}
