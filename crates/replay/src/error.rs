//! The replayer's structured failure model.
//!
//! Everything that can go wrong between "here is a trace directory" and
//! "here is the simulated time" is a [`ReplayError`] variant naming the
//! failing rank, file, or trace line. Nothing in this crate panics on
//! malformed input, and a malformed trace can never hang the replay: a
//! missing or inconsistent rank surfaces as a typed error (possibly a
//! [`simkern::SimError::Deadlock`] with per-actor wait-for diagnostics).

use simkern::SimError;
use std::path::PathBuf;

/// Why a replay did not produce a simulated time.
#[derive(Debug)]
pub enum ReplayError {
    /// A per-rank trace file could not be opened — the gather stage lost
    /// or never produced this rank's trace.
    MissingRank {
        /// The rank whose trace file is unavailable.
        rank: usize,
        /// The path that failed to open.
        path: PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// A rank's trace failed mid-replay: unreadable data, a malformed
    /// line (the detail carries file, line number and offending
    /// keyword), or a structurally impossible action sequence (e.g.
    /// `wait` with no pending request).
    Trace {
        /// The rank whose trace is defective.
        rank: usize,
        /// Human-readable description, naming file/line where known.
        detail: String,
    },
    /// The deployment maps a different number of hosts than the trace
    /// has processes.
    Deployment {
        /// Processes in the trace.
        procs: usize,
        /// Hosts in the deployment.
        hosts: usize,
    },
    /// The simulation kernel aborted: a deadlock (with wait-for
    /// diagnostics per blocked rank) or a protocol violation.
    Sim(SimError),
    /// A checkpoint file could not be written, read, decoded, or does
    /// not match this run's platform/config/trace (fingerprint or
    /// cursor mismatch). Resume fails closed instead of diverging.
    Checkpoint {
        /// What was wrong, naming the file where known.
        detail: String,
    },
    /// A TIB2 segmented store failed verification: damaged footer, a
    /// segment whose checksum does not match the footer's record
    /// (naming rank, segment and byte offset), or a short read. The
    /// replay fails closed — no unverified bytes reach the kernel.
    Store(tit_core::tib2::StoreError),
    /// The segment working set needed more bytes than `--mem-budget`
    /// grants and nothing was left to evict. A typed refusal, never an
    /// OOM kill; the error names the exact shortfall.
    Memory(tit_core::membudget::MemoryExceeded),
}

impl ReplayError {
    /// The failing rank, when the failure is attributable to one.
    pub fn rank(&self) -> Option<usize> {
        match self {
            ReplayError::MissingRank { rank, .. } | ReplayError::Trace { rank, .. } => {
                Some(*rank)
            }
            ReplayError::Store(tit_core::tib2::StoreError::SegmentDamaged {
                rank, ..
            }) => Some(*rank),
            ReplayError::Sim(SimError::ActorFailure { actor, .. } | SimError::Protocol {
actor, .. }) => Some(*actor),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::MissingRank { rank, path, source } => {
                write!(f, "rank {rank}: cannot open trace {}: {source}", path.display())
            }
            ReplayError::Trace { rank, detail } => {
                write!(f, "rank {rank}: {detail}")
            }
            ReplayError::Deployment { procs, hosts } => {
                write!(
                    f,
                    "deployment maps {hosts} host(s) but the trace has {procs} process(es)"
                )
            }
            ReplayError::Sim(e) => write!(f, "{e}"),
            ReplayError::Checkpoint { detail } => write!(f, "checkpoint: {detail}"),
            ReplayError::Store(e) => write!(f, "{e}"),
            ReplayError::Memory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::MissingRank { source, .. } => Some(source),
            ReplayError::Sim(e) => Some(e),
            ReplayError::Store(e) => Some(e),
            ReplayError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ReplayError {
    /// Actor failures fold into [`ReplayError::Trace`] (the failure
    /// channel carries trace-shaped reasons); everything else stays a
    /// kernel error.
    fn from(e: SimError) -> Self {
        match e {
            SimError::ActorFailure { actor, reason, .. } => {
                ReplayError::Trace { rank: actor, detail: reason }
            }
            other => ReplayError::Sim(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_rank_and_file() {
        let e = ReplayError::MissingRank {
            rank: 3,
            path: PathBuf::from("/tmp/SG_process3.trace"),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 3"), "{msg}");
        assert!(msg.contains("SG_process3.trace"), "{msg}");
        assert_eq!(e.rank(), Some(3));
    }

    #[test]
    fn actor_failures_fold_into_trace_errors() {
        let e: ReplayError = SimError::ActorFailure {
            actor: 2,
            time: 0.5,
            reason: "bad keyword at line 7".into(),
        }
        .into();
        assert!(matches!(&e, ReplayError::Trace { rank: 2, .. }), "{e}");
        assert_eq!(e.rank(), Some(2));
    }
}
