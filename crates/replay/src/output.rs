//! Simulation outputs beyond the makespan: timed traces and profiles.
//!
//! Figure 4 of the paper lists three possible outputs of an off-line
//! simulation: the simulated execution time, a *timed trace* (the
//! time-independent trace re-decorated with simulated time stamps) and an
//! application *profile*. The replayer's observer records provide both
//! derived outputs.

use crate::tags;
use simkern::observer::OpRecord;
use std::io::Write;

/// Writes a timed trace as CSV: `rank,action,start,end,volume`.
pub fn write_timed_trace<W: Write>(records: &[OpRecord], w: &mut W) -> std::io::Result<()> {
    writeln!(w, "rank,action,start,end,volume")?;
    for r in records {
        writeln!(
            w,
            "{},{},{:.9},{:.9},{}",
            r.actor,
            tags::name(r.tag),
            r.start,
            r.end,
            r.volume
        )?;
    }
    Ok(())
}

/// Per-rank time split between computation and communication.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankProfile {
    /// Simulated seconds spent in CPU bursts.
    pub compute_time: f64,
    /// Simulated seconds spent in communication operations.
    pub comm_time: f64,
    /// Number of compute operations.
    pub compute_ops: u64,
    /// Number of communication operations.
    pub comm_ops: u64,
}

impl RankProfile {
    /// Total busy time: compute plus communication.
    pub fn total_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }
}

/// Aggregates records into per-rank profiles (index = rank).
pub fn profile(records: &[OpRecord], nproc: usize) -> Vec<RankProfile> {
    let mut rows = vec![RankProfile::default(); nproc];
    for r in records {
        if r.actor >= rows.len() {
            continue;
        }
        let row = &mut rows[r.actor];
        let dt = r.end - r.start;
        if tags::is_comm(r.tag) {
            row.comm_time += dt;
            row.comm_ops += 1;
        } else {
            row.compute_time += dt;
            row.compute_ops += 1;
        }
    }
    rows
}

/// Renders the profile as an aligned text table.
pub fn format_profile(rows: &[RankProfile]) -> String {
    let mut out = String::new();
    out.push_str("rank     compute(s)      comm(s)   comp-ops   comm-ops\n");
    for (rank, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{rank:>4} {:>13.6} {:>12.6} {:>10} {:>10}\n",
            r.compute_time, r.comm_time, r.compute_ops, r.comm_ops
        ));
    }
    out
}

/// Writes the timed trace in the Paje format consumed by SimGrid's
/// visualisation tools (Paje/Vite). One container per MPI process, one
/// state per replayed action.
pub fn write_paje<W: Write>(
    records: &[OpRecord],
    nproc: usize,
    end_time: f64,
    w: &mut W,
) -> std::io::Result<()> {
    // Minimal event-definition header (the fixed Paje preamble).
    w.write_all(
        b"%EventDef PajeDefineContainerType 0
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeDefineStateType 1
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeCreateContainer 2
%  Time date
%  Alias string
%  Type string
%  Container string
%  Name string
%EndEventDef
%EventDef PajeDestroyContainer 3
%  Time date
%  Type string
%  Name string
%EndEventDef
%EventDef PajeSetState 4
%  Time date
%  Type string
%  Container string
%  Value string
%EndEventDef
",
    )?;
    writeln!(w, "0 CT_Proc 0 \"MPI Process\"")?;
    writeln!(w, "1 ST_Action CT_Proc \"Action\"")?;
    for rank in 0..nproc {
        writeln!(w, "2 0.000000 p{rank} CT_Proc 0 \"p{rank}\"")?;
    }
    // States, in start order: enter at start, idle at end.
    let mut sorted: Vec<&OpRecord> = records.iter().collect();
    sorted.sort_by(|a, b| a.start.total_cmp(&b.start));
    for r in sorted {
        writeln!(
            w,
            "4 {:.9} ST_Action p{} \"{}\"",
            r.start,
            r.actor,
            tags::name(r.tag)
        )?;
        writeln!(w, "4 {:.9} ST_Action p{} \"idle\"", r.end, r.actor)?;
    }
    for rank in 0..nproc {
        writeln!(w, "3 {end_time:.9} CT_Proc p{rank}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs() -> Vec<OpRecord> {
        vec![
            OpRecord { actor: 0, tag: tags::COMPUTE, start: 0.0, end: 1.0, volume: 1e9 },
            OpRecord { actor: 0, tag: tags::SEND, start: 1.0, end: 1.5, volume: 1e6 },
            OpRecord { actor: 1, tag: tags::RECV, start: 0.0, end: 1.5, volume: 1e6 },
        ]
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_timed_trace(&recs(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("rank,action"));
        assert!(lines[1].contains("compute"));
        assert!(lines[2].contains("send"));
    }

    #[test]
    fn profile_splits_compute_and_comm() {
        let rows = profile(&recs(), 2);
        assert!((rows[0].compute_time - 1.0).abs() < 1e-12);
        assert!((rows[0].comm_time - 0.5).abs() < 1e-12);
        assert_eq!(rows[0].compute_ops, 1);
        assert_eq!(rows[1].comm_ops, 1);
        assert!((rows[1].total_time() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn paje_output_has_preamble_containers_and_states() {
        let mut buf = Vec::new();
        write_paje(&recs(), 2, 2.0, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("%EventDef PajeDefineContainerType"));
        assert!(text.contains("2 0.000000 p0 CT_Proc 0 \"p0\""));
        assert!(text.contains("4 0.000000000 ST_Action p0 \"compute\""));
        assert!(text.contains("4 1.000000000 ST_Action p0 \"idle\""));
        assert!(text.contains("3 2.000000000 CT_Proc p1"));
        // States sorted by start time.
        let s_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("4 ")).collect();
        let times: Vec<f64> = s_lines
            .iter()
            .step_by(2)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn format_profile_is_aligned() {
        let text = format_profile(&profile(&recs(), 2));
        assert!(text.lines().count() == 3);
        assert!(text.contains("rank"));
    }
}
