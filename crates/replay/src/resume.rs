//! Checkpoint/resume replay: interruptible runs with bit-identical
//! continuation.
//!
//! A long replay periodically pauses at a kernel *safe point*
//! ([`simkern::Engine::run_until`]), exports the full engine state
//! ([`simkern::EngineSnapshot`]) and writes it — together with the
//! per-rank replay-actor state and the action counter — into a `TICK1`
//! container ([`tit_core::checkpoint`]). A later run restores the
//! snapshot, fast-forwards each rank's trace stream to its cursor and
//! continues to the **bit-identical** final simulated time the
//! uninterrupted run would have produced (the snapshot captures raw
//! solver/heap/slab layouts verbatim; see [`simkern::snapshot`]).
//!
//! The checkpoint payload is keyed by a [`fingerprint`] of the
//! platform, network model, collective algorithm and process count:
//! resuming against a different configuration fails closed instead of
//! silently diverging.
//!
//! [`simkern::snapshot`]: simkern::EngineSnapshot

use crate::error::ReplayError;
use crate::handlers::Registry;
use crate::process::{ActionSource, FileSource, ReplayActor};
use crate::simulator::ReplayConfig;
use simkern::engine::MailboxKey;
use simkern::lmm::{CnstSnap, LmmSnapshot, VarSnap};
use simkern::observer::Observer;
use simkern::resource::{HostId, Sharing};
use simkern::snapshot::{
    ActivitySnap, ActorSnap, CommSnap, CommStateSnap, EngineSnapshot, EventKindSnap,
    EventSnap, MailboxSnap, OpSnap, OwnerSnap, SlabSnap,
};
use simkern::{Engine, OpKind, Platform, RunStatus};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tit_core::checkpoint::{fnv1a, read_checkpoint, write_checkpoint, Dec, Enc};
use tit_core::{Budget, Deadline};
use tit_core::trace::process_trace_filename;

/// When and where to write checkpoints during a replay.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (each write atomically replaces the last).
    pub path: PathBuf,
    /// Write a checkpoint every this many replayed actions (`0` = only
    /// on watchdog expiry).
    pub every_actions: u64,
    /// Watchdog: when the wall-clock [`Budget`] expires, write a final
    /// checkpoint at the next safe point and stop. The budget starts
    /// ticking when the replay does, not when the policy is built.
    pub max_wall: Budget,
    /// Stop (successfully, with state saved) after this many checkpoint
    /// writes — the deterministic stand-in for `kill -9` used by the
    /// resume differential tests.
    pub stop_after_checkpoints: Option<u64>,
}

/// Why a checkpointed run stopped before the trace ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauseReason {
    /// The `max_wall` watchdog expired.
    WallLimit,
    /// `stop_after_checkpoints` was reached.
    StopAfter,
}

/// How a checkpointed run ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointedStatus {
    /// The trace replayed to completion.
    Finished {
        /// Simulated execution time, seconds.
        simulated_time: f64,
    },
    /// The run paused with its state saved in the checkpoint file;
    /// rerun with `--resume` to continue.
    Paused {
        /// Simulated time at the pause safe point.
        simulated_time: f64,
        /// What stopped the run.
        reason: PauseReason,
    },
}

/// Result of a checkpointed (or resumed) replay.
#[derive(Debug)]
pub struct CheckpointedOutcome {
    /// Finished or paused-with-state.
    pub status: CheckpointedStatus,
    /// Total trace actions consumed, including those replayed before a
    /// resume (restored from the checkpoint, not re-counted).
    pub actions_replayed: u64,
    /// Wall-clock time of *this* run only.
    pub wall_time: Duration,
    /// Checkpoints written by this run.
    pub checkpoints_written: u64,
    /// True when this run started from a checkpoint.
    pub resumed: bool,
}

/// The decoded contents of a replay checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCheckpoint {
    /// [`fingerprint`] of the configuration the snapshot was taken
    /// under; resume refuses a mismatch.
    pub fingerprint: u64,
    /// Shared action counter at the safe point.
    pub actions_replayed: u64,
    /// Raw engine state.
    pub engine: EngineSnapshot,
}

fn ck_err(detail: impl std::fmt::Display) -> ReplayError {
    ReplayError::Checkpoint { detail: detail.to_string() }
}

/// Hashes everything a snapshot's validity depends on: process count,
/// collective algorithm, network model and the platform's hosts and
/// links. Trace *content* is covered separately — each rank's stream is
/// fast-forwarded by its cursor on resume and fails if the trace got
/// shorter.
pub fn fingerprint(platform: &Platform, cfg: &ReplayConfig, nproc: usize) -> u64 {
    let mut e = Enc::new();
    e.usize(nproc);
    e.u8(match cfg.algo {
        crate::collectives::CollectiveAlgo::Binomial => 0,
        crate::collectives::CollectiveAlgo::Flat => 1,
    });
    e.u8(u8::from(cfg.network.contention));
    match cfg.network.tcp_gamma {
        Some(g) => {
            e.u8(1);
            e.f64(g);
        }
        None => e.u8(0),
    }
    e.f64(cfg.network.eager_threshold);
    let segs = cfg.network.piecewise.segments();
    e.usize(segs.len());
    for s in segs {
        e.f64(s.max_size);
        e.f64(s.lat_factor);
        e.f64(s.bw_factor);
    }
    e.usize(platform.hosts.len());
    for h in &platform.hosts {
        e.bytes(h.name.as_bytes());
        e.f64(h.speed);
        e.u32(h.cores);
    }
    e.usize(platform.links.len());
    for l in &platform.links {
        e.bytes(l.name.as_bytes());
        e.f64(l.bandwidth);
        e.f64(l.latency);
        e.u8(u8::from(matches!(l.sharing, Sharing::FatPipe)));
    }
    e.f64(platform.loopback.bandwidth);
    e.f64(platform.loopback.latency);
    fnv1a(&e.finish())
}

fn enc_bool(e: &mut Enc, v: bool) {
    e.u8(u8::from(v));
}

fn dec_bool(d: &mut Dec<'_>) -> Result<bool, String> {
    match d.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        k => Err(format!("invalid bool byte {k}")),
    }
}

fn enc_mailbox_key(e: &mut Enc, k: MailboxKey) {
    e.u32(k.src);
    e.u32(k.dst);
    e.u8(k.chan);
}

fn dec_mailbox_key(d: &mut Dec<'_>) -> Result<MailboxKey, String> {
    Ok(MailboxKey { src: d.u32()?, dst: d.u32()?, chan: d.u8()? })
}

fn enc_usize_list(e: &mut Enc, v: &[usize]) {
    e.usize(v.len());
    for &x in v {
        e.usize(x);
    }
}

fn dec_usize_list(d: &mut Dec<'_>) -> Result<Vec<usize>, String> {
    let n = d.usize()?;
    let mut v = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        v.push(d.usize()?);
    }
    Ok(v)
}

fn enc_slab<T>(e: &mut Enc, s: &SlabSnap<T>, enc_item: impl Fn(&mut Enc, &T)) {
    e.usize(s.slots.len());
    for slot in &s.slots {
        match slot {
            Some(item) => {
                e.u8(1);
                enc_item(e, item);
            }
            None => e.u8(0),
        }
    }
    enc_usize_list(e, &s.free);
}

fn dec_slab<T>(
    d: &mut Dec<'_>,
    dec_item: impl Fn(&mut Dec<'_>) -> Result<T, String>,
) -> Result<SlabSnap<T>, String> {
    let n = d.usize()?;
    let mut slots = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        slots.push(if dec_bool(d)? { Some(dec_item(d)?) } else { None });
    }
    let free = dec_usize_list(d)?;
    Ok(SlabSnap { slots, free })
}

fn enc_op_kind(e: &mut Enc, k: OpKind) {
    e.u8(match k {
        OpKind::Compute => 0,
        OpKind::Send => 1,
        OpKind::Recv => 2,
        OpKind::Sleep => 3,
    });
}

fn dec_op_kind(d: &mut Dec<'_>) -> Result<OpKind, String> {
    Ok(match d.u8()? {
        0 => OpKind::Compute,
        1 => OpKind::Send,
        2 => OpKind::Recv,
        3 => OpKind::Sleep,
        k => return Err(format!("unknown op kind {k}")),
    })
}

fn enc_engine(e: &mut Enc, s: &EngineSnapshot) {
    e.f64(s.clock);
    e.u64(s.seq);
    e.u64(s.ops_completed);

    e.usize(s.events.len());
    for ev in &s.events {
        e.f64(ev.time);
        e.u64(ev.seq);
        match ev.kind {
            EventKindSnap::LatencyDone { comm } => {
                e.u8(0);
                e.usize(comm);
            }
            EventKindSnap::SleepDone { op } => {
                e.u8(1);
                e.usize(op);
            }
        }
    }

    e.usize(s.completions.len());
    for &(t, k) in &s.completions {
        e.f64(t);
        e.usize(k);
    }

    enc_slab(e, &SlabSnap { slots: s.lmm.cnsts.clone(), free: s.lmm.cnst_free.clone() }, |e, c: &CnstSnap| {
        e.f64(c.capacity);
        enc_usize_list(e, &c.vars);
    });
    enc_slab(e, &SlabSnap { slots: s.lmm.vars.clone(), free: s.lmm.var_free.clone() }, |e, v: &VarSnap| {
        e.f64(v.bound);
        enc_usize_list(e, &v.cnsts);
        e.f64(v.value);
    });

    enc_slab(e, &s.activities, |e, a: &ActivitySnap| {
        e.usize(a.var);
        e.f64(a.remaining);
        e.f64(a.rate);
        e.f64(a.t_last);
        match a.owner {
            OwnerSnap::Exec { op } => {
                e.u8(0);
                e.usize(op);
            }
            OwnerSnap::Comm { comm } => {
                e.u8(1);
                e.usize(comm);
            }
        }
    });

    enc_slab(e, &s.ops, |e, o: &OpSnap| {
        e.usize(o.actor);
        enc_op_kind(e, o.kind);
        e.u32(o.tag);
        e.f64(o.t_start);
        e.f64(o.volume);
        match o.mailbox {
            Some(k) => {
                e.u8(1);
                enc_mailbox_key(e, k);
            }
            None => e.u8(0),
        }
        enc_bool(e, o.complete);
    });

    enc_slab(e, &s.comms, |e, c: &CommSnap| {
        e.f64(c.size);
        e.u32(c.src_host);
        e.u32(c.dst_host);
        e.usize(c.send_op);
        e.opt_usize(c.recv_op);
        enc_bool(e, c.eager);
        e.u8(match c.state {
            CommStateSnap::Unlaunched => 0,
            CommStateSnap::InFlight => 1,
            CommStateSnap::Arrived => 2,
        });
    });

    e.usize(s.mailboxes.len());
    for m in &s.mailboxes {
        enc_mailbox_key(e, m.key);
        enc_usize_list(e, &m.comms);
        e.usize(m.recvs.len());
        for &(op, actor) in &m.recvs {
            e.usize(op);
            e.usize(actor);
        }
    }

    e.usize(s.actors.len());
    for a in &s.actors {
        e.u32(a.host);
        e.opt_usize(a.waiting);
        enc_bool(e, a.alive);
        e.u64(a.phase);
        match &a.state {
            Some(b) => {
                e.u8(1);
                e.bytes(b);
            }
            None => e.u8(0),
        }
    }
}

fn dec_engine(d: &mut Dec<'_>) -> Result<EngineSnapshot, String> {
    let clock = d.f64()?;
    let seq = d.u64()?;
    let ops_completed = d.u64()?;

    let n_events = d.usize()?;
    let mut events = Vec::with_capacity(n_events.min(1 << 16));
    for _ in 0..n_events {
        let time = d.f64()?;
        let ev_seq = d.u64()?;
        let kind = match d.u8()? {
            0 => EventKindSnap::LatencyDone { comm: d.usize()? },
            1 => EventKindSnap::SleepDone { op: d.usize()? },
            k => return Err(format!("unknown event kind {k}")),
        };
        events.push(EventSnap { time, seq: ev_seq, kind });
    }

    let n_comp = d.usize()?;
    let mut completions = Vec::with_capacity(n_comp.min(1 << 16));
    for _ in 0..n_comp {
        let t = d.f64()?;
        let k = d.usize()?;
        completions.push((t, k));
    }

    let cnst_slab = dec_slab(d, |d| {
        Ok(CnstSnap { capacity: d.f64()?, vars: dec_usize_list(d)? })
    })?;
    let var_slab = dec_slab(d, |d| {
        Ok(VarSnap { bound: d.f64()?, cnsts: dec_usize_list(d)?, value: d.f64()? })
    })?;
    let lmm = LmmSnapshot {
        cnsts: cnst_slab.slots,
        cnst_free: cnst_slab.free,
        vars: var_slab.slots,
        var_free: var_slab.free,
    };

    let activities = dec_slab(d, |d| {
        let var = d.usize()?;
        let remaining = d.f64()?;
        let rate = d.f64()?;
        let t_last = d.f64()?;
        let owner = match d.u8()? {
            0 => OwnerSnap::Exec { op: d.usize()? },
            1 => OwnerSnap::Comm { comm: d.usize()? },
            k => return Err(format!("unknown activity owner {k}")),
        };
        Ok(ActivitySnap { var, remaining, rate, t_last, owner })
    })?;

    let ops = dec_slab(d, |d| {
        let actor = d.usize()?;
        let kind = dec_op_kind(d)?;
        let tag = d.u32()?;
        let t_start = d.f64()?;
        let volume = d.f64()?;
        let mailbox = if dec_bool(d)? { Some(dec_mailbox_key(d)?) } else { None };
        let complete = dec_bool(d)?;
        Ok(OpSnap { actor, kind, tag, t_start, volume, mailbox, complete })
    })?;

    let comms = dec_slab(d, |d| {
        let size = d.f64()?;
        let src_host = d.u32()?;
        let dst_host = d.u32()?;
        let send_op = d.usize()?;
        let recv_op = d.opt_usize()?;
        let eager = dec_bool(d)?;
        let state = match d.u8()? {
            0 => CommStateSnap::Unlaunched,
            1 => CommStateSnap::InFlight,
            2 => CommStateSnap::Arrived,
            k => return Err(format!("unknown comm state {k}")),
        };
        Ok(CommSnap { size, src_host, dst_host, send_op, recv_op, eager, state })
    })?;

    let n_mb = d.usize()?;
    let mut mailboxes = Vec::with_capacity(n_mb.min(1 << 16));
    for _ in 0..n_mb {
        let key = dec_mailbox_key(d)?;
        let comms_q = dec_usize_list(d)?;
        let n_recv = d.usize()?;
        let mut recvs = Vec::with_capacity(n_recv.min(1 << 16));
        for _ in 0..n_recv {
            let op = d.usize()?;
            let actor = d.usize()?;
            recvs.push((op, actor));
        }
        mailboxes.push(MailboxSnap { key, comms: comms_q, recvs });
    }

    let n_actors = d.usize()?;
    let mut actors = Vec::with_capacity(n_actors.min(1 << 16));
    for _ in 0..n_actors {
        let host = d.u32()?;
        let waiting = d.opt_usize()?;
        let alive = dec_bool(d)?;
        let phase = d.u64()?;
        let state = if dec_bool(d)? { Some(d.bytes()?.to_vec()) } else { None };
        actors.push(ActorSnap { host, waiting, alive, phase, state });
    }

    Ok(EngineSnapshot {
        clock,
        seq,
        ops_completed,
        events,
        completions,
        lmm,
        activities,
        ops,
        comms,
        mailboxes,
        actors,
    })
}

impl ReplayCheckpoint {
    /// Serializes into a `TICK1` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.fingerprint);
        e.u64(self.actions_replayed);
        enc_engine(&mut e, &self.engine);
        e.finish()
    }

    /// Parses a `TICK1` payload; structurally validates the embedded
    /// engine snapshot before returning.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut d = Dec::new(payload);
        let fingerprint = d.u64()?;
        let actions_replayed = d.u64()?;
        let engine = dec_engine(&mut d)?;
        d.expect_done()?;
        engine.validate()?;
        Ok(ReplayCheckpoint { fingerprint, actions_replayed, engine })
    }

    /// Loads and decodes a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, ReplayError> {
        let payload = read_checkpoint(path)
            .map_err(|e| ck_err(format!("cannot read {}: {e}", path.display())))?;
        Self::decode(&payload)
            .map_err(|e| ck_err(format!("{} is not a valid replay checkpoint: {e}", path.display())))
    }

    /// Encodes and writes a checkpoint file atomically.
    pub fn save(&self, path: &Path) -> Result<(), ReplayError> {
        write_checkpoint(path, &self.encode())
            .map_err(|e| ck_err(format!("cannot write {}: {e}", path.display())))
    }
}

fn open_file_sources(dir: &Path, nproc: usize) -> Result<Vec<Box<dyn ActionSource>>, ReplayError> {
    let mut sources: Vec<Box<dyn ActionSource>> = Vec::with_capacity(nproc);
    for rank in 0..nproc {
        let path = dir.join(process_trace_filename(rank));
        let src = FileSource::open(&path, rank)
            .map_err(|source| ReplayError::MissingRank { rank, path: path.clone(), source })?;
        sources.push(Box::new(src));
    }
    Ok(sources)
}

/// Combines the platform/config fingerprint with a trace-content salt
/// (e.g. a TIB2 store's footer hash, [`tit_core::Tib2Store::fingerprint`]).
/// A salt of `0` means "no trace binding" and leaves the fingerprint
/// unchanged, so plain-file checkpoints stay readable across versions.
pub fn keyed_fingerprint(fp: u64, trace_salt: u64) -> u64 {
    if trace_salt == 0 {
        return fp;
    }
    let mut e = Enc::new();
    e.u64(fp);
    e.u64(trace_salt);
    fnv1a(&e.finish())
}

/// Replays sources under a checkpoint policy, optionally resuming from
/// a prior checkpoint. The core loop: run to the next safe point where
/// a checkpoint is due (action quota or watchdog), export + write, and
/// either continue or stop with state saved.
pub fn run_checkpointed(
    sources: Vec<Box<dyn ActionSource>>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
    policy: Option<&CheckpointPolicy>,
    resume: Option<&ReplayCheckpoint>,
) -> Result<CheckpointedOutcome, ReplayError> {
    run_checkpointed_keyed(sources, platform, hosts, cfg, extra, policy, resume, 0)
}

/// [`run_checkpointed`] with the checkpoint fingerprint additionally
/// keyed on `trace_salt` ([`keyed_fingerprint`]). Store-backed replays
/// pass the TIB2 footer hash here, so a checkpoint refuses to resume
/// against a store whose content changed — not just a different
/// platform or config. `trace_salt == 0` is exactly [`run_checkpointed`].
// One parameter per pipeline input, mirroring run_checkpointed plus the salt.
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed_keyed(
    sources: Vec<Box<dyn ActionSource>>,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
    policy: Option<&CheckpointPolicy>,
    resume: Option<&ReplayCheckpoint>,
    trace_salt: u64,
) -> Result<CheckpointedOutcome, ReplayError> {
    if sources.len() != hosts.len() {
        return Err(ReplayError::Deployment { procs: sources.len(), hosts: hosts.len() });
    }
    let fp = keyed_fingerprint(fingerprint(&platform, cfg, sources.len()), trace_salt);
    let mut engine = Engine::new(platform);
    engine.set_network_config(cfg.network.clone());
    if let Some(obs) = extra {
        engine.set_observer(obs);
    }
    let registry = Arc::new(Registry::with_defaults());
    let counter = Arc::new(AtomicU64::new(0));
    for (rank, src) in sources.into_iter().enumerate() {
        let actor = ReplayActor::new(rank, src, registry.clone(), cfg.algo, counter.clone());
        engine.spawn(Box::new(actor), hosts[rank]);
    }
    let resumed = if let Some(ck) = resume {
        if ck.fingerprint != fp {
            return Err(ck_err(format!(
                "checkpoint fingerprint {:#018x} does not match this \
                 platform/config/deployment ({fp:#018x})",
                ck.fingerprint
            )));
        }
        engine.restore_state(&ck.engine).map_err(ck_err)?;
        counter.store(ck.actions_replayed, Ordering::Relaxed);
        true
    } else {
        false
    };

    let t0 = Instant::now();
    let deadline = policy.map_or_else(Deadline::unlimited, |p| p.max_wall.start());
    let limited = !deadline.is_unlimited();
    let every = policy.map_or(0, |p| p.every_actions);
    let mut written: u64 = 0;
    let mut last_mark = counter.load(Ordering::Relaxed);
    loop {
        let status = {
            let counter = counter.clone();
            let mark = last_mark;
            let mut guard = move |_: &Engine| {
                (every > 0 && counter.load(Ordering::Relaxed).saturating_sub(mark) >= every)
                    || (limited && deadline.expired())
            };
            engine.run_until(&mut guard).map_err(ReplayError::from)?
        };
        match status {
            RunStatus::Completed(simulated_time) => {
                return Ok(CheckpointedOutcome {
                    status: CheckpointedStatus::Finished { simulated_time },
                    actions_replayed: counter.load(Ordering::Relaxed),
                    wall_time: t0.elapsed(),
                    checkpoints_written: written,
                    resumed,
                });
            }
            RunStatus::Paused(simulated_time) => {
                // panics: the guard only fires when a policy supplied a quota
                let p = policy.expect("paused without a checkpoint policy");
                let ck = ReplayCheckpoint {
                    fingerprint: fp,
                    actions_replayed: counter.load(Ordering::Relaxed),
                    engine: engine.export_state().map_err(ck_err)?,
                };
                ck.save(&p.path)?;
                written += 1;
                last_mark = counter.load(Ordering::Relaxed);
                let finish = |reason| {
                    Ok(CheckpointedOutcome {
                        status: CheckpointedStatus::Paused { simulated_time, reason },
                        actions_replayed: last_mark,
                        wall_time: t0.elapsed(),
                        checkpoints_written: written,
                        resumed,
                    })
                };
                if limited && deadline.expired() {
                    return finish(PauseReason::WallLimit);
                }
                if p.stop_after_checkpoints.is_some_and(|k| written >= k) {
                    return finish(PauseReason::StopAfter);
                }
            }
        }
    }
}

/// [`run_checkpointed`] over per-process trace files (fresh start).
pub fn replay_files_checkpointed(
    dir: &Path,
    nproc: usize,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
    policy: &CheckpointPolicy,
) -> Result<CheckpointedOutcome, ReplayError> {
    let sources = open_file_sources(dir, nproc)?;
    run_checkpointed(sources, platform, hosts, cfg, extra, Some(policy), None)
}

/// Resumes a replay of per-process trace files from `checkpoint`,
/// optionally continuing to checkpoint under `policy`. The trace files
/// and configuration must match the checkpointed run; mismatches fail
/// closed ([`ReplayError::Checkpoint`]).
// One parameter per pipeline input; bundling them would just move the
// argument list into a struct literal at every call site.
#[allow(clippy::too_many_arguments)]
pub fn resume_files(
    dir: &Path,
    nproc: usize,
    platform: Platform,
    hosts: &[HostId],
    cfg: &ReplayConfig,
    extra: Option<Box<dyn Observer>>,
    checkpoint: &Path,
    policy: Option<&CheckpointPolicy>,
) -> Result<CheckpointedOutcome, ReplayError> {
    let ck = ReplayCheckpoint::load(checkpoint)?;
    let sources = open_file_sources(dir, nproc)?;
    run_checkpointed(sources, platform, hosts, cfg, extra, policy, Some(&ck))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::netmodel::NetworkConfig;
    use tit_core::{Action, TiTrace};
    use tit_platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};

    fn mycluster(n: usize) -> (Platform, Vec<HostId>) {
        let spec = ClusterSpec {
            id: "mycluster".into(),
            prefix: "mycluster-".into(),
            suffix: ".mysite.fr".into(),
            count: n,
            power: 1.17e9,
            cores: 1,
            bw: 1.25e8,
            lat: 16.67e-6,
            bb_bw: 1.25e9,
            bb_lat: 16.67e-6,
            topology: ClusterTopology::Flat,
        };
        let p = PlatformDesc::single(spec).build();
        let hosts = (0..n as u32).map(HostId).collect();
        (p, hosts)
    }

    fn plain_cfg() -> ReplayConfig {
        ReplayConfig { network: NetworkConfig::default(), ..Default::default() }
    }

    /// A trace with enough structure to exercise p2p, nonblocking and
    /// collective paths across many safe points.
    fn busy_trace(iters: usize) -> TiTrace {
        let n = 4;
        let mut t = TiTrace::new(n);
        for r in 0..n {
            t.push(r, Action::CommSize { nproc: n });
        }
        for _ in 0..iters {
            t.push(0, Action::Compute { flops: 1e6 });
            t.push(0, Action::Send { dst: 1, bytes: 1e6 });
            t.push(0, Action::Recv { src: 3, bytes: None });
            for p in 1..n {
                t.push(p, Action::Irecv { src: p - 1, bytes: None });
                t.push(p, Action::Compute { flops: 5e5 });
                t.push(p, Action::Wait);
                t.push(p, Action::Send { dst: (p + 1) % n, bytes: 1e6 });
            }
            for r in 0..n {
                t.push(r, Action::AllReduce { vcomm: 1e4, vcomp: 1e5 });
            }
        }
        t
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("titr-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let d = tmp_dir("match");
        let t = busy_trace(3);
        t.save_per_process(&d).unwrap();
        let (p1, hosts) = mycluster(4);
        let (p2, _) = mycluster(4);
        let plain = crate::replay_files(&d, 4, p1, &hosts, &plain_cfg()).unwrap();
        let policy = CheckpointPolicy {
            path: d.join("state.tick"),
            every_actions: 7,
            max_wall: Budget::unlimited(),
            stop_after_checkpoints: None,
        };
        let ck = replay_files_checkpointed(&d, 4, p2, &hosts, &plain_cfg(), None, &policy)
            .unwrap();
        match ck.status {
            CheckpointedStatus::Finished { simulated_time } => {
                assert_eq!(simulated_time.to_bits(), plain.simulated_time.to_bits());
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        assert_eq!(ck.actions_replayed, plain.actions_replayed);
        assert!(ck.checkpoints_written > 0, "quota must have fired");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn kill_and_resume_is_bit_identical_at_every_boundary() {
        let d = tmp_dir("diff");
        let t = busy_trace(2);
        t.save_per_process(&d).unwrap();
        let (pref, hosts) = mycluster(4);
        let reference = crate::replay_files(&d, 4, pref, &hosts, &plain_cfg()).unwrap();

        for every in [1u64, 3, 5, 11, 17] {
            let ckpath = d.join(format!("state-{every}.tick"));
            let mut stop_at = 1u64;
            loop {
                // "Kill" the run after `stop_at` checkpoints...
                let (p1, _) = mycluster(4);
                let policy = CheckpointPolicy {
                    path: ckpath.clone(),
                    every_actions: every,
                    max_wall: Budget::unlimited(),
                    stop_after_checkpoints: Some(stop_at),
                };
                let first =
                    replay_files_checkpointed(&d, 4, p1, &hosts, &plain_cfg(), None, &policy)
                        .unwrap();
                match first.status {
                    CheckpointedStatus::Finished { simulated_time } => {
                        // Ran out of boundaries before the stop quota:
                        // the whole interval is covered.
                        assert_eq!(
                            simulated_time.to_bits(),
                            reference.simulated_time.to_bits()
                        );
                        break;
                    }
                    CheckpointedStatus::Paused { .. } => {}
                }
                // ...then resume and run to the end.
                let (p2, _) = mycluster(4);
                let resumed = resume_files(
                    &d,
                    4,
                    p2,
                    &hosts,
                    &plain_cfg(),
                    None,
                    &ckpath,
                    None,
                )
                .unwrap();
                assert!(resumed.resumed);
                match resumed.status {
                    CheckpointedStatus::Finished { simulated_time } => {
                        assert_eq!(
                            simulated_time.to_bits(),
                            reference.simulated_time.to_bits(),
                            "every={every} stop_at={stop_at}: resume diverged"
                        );
                        assert_eq!(resumed.actions_replayed, reference.actions_replayed);
                    }
                    other => panic!("resume must finish, got {other:?}"),
                }
                stop_at += 1;
            }
        }
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_configuration() {
        let d = tmp_dir("fp");
        busy_trace(1).save_per_process(&d).unwrap();
        let (p1, hosts) = mycluster(4);
        let ckpath = d.join("state.tick");
        let policy = CheckpointPolicy {
            path: ckpath.clone(),
            every_actions: 3,
            max_wall: Budget::unlimited(),
            stop_after_checkpoints: Some(1),
        };
        replay_files_checkpointed(&d, 4, p1, &hosts, &plain_cfg(), None, &policy).unwrap();
        // Different network model → different fingerprint → refused.
        let (p2, _) = mycluster(4);
        let err = resume_files(
            &d,
            4,
            p2,
            &hosts,
            &ReplayConfig::default(),
            None,
            &ckpath,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ReplayError::Checkpoint { .. }), "{err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn keyed_fingerprint_binds_trace_content() {
        // Salt 0 is the identity, so legacy checkpoints stay valid.
        assert_eq!(keyed_fingerprint(0xdead_beef, 0), 0xdead_beef);
        // Distinct salts separate, and keying is not a plain XOR/add.
        let a = keyed_fingerprint(0xdead_beef, 1);
        let b = keyed_fingerprint(0xdead_beef, 2);
        assert_ne!(a, b);
        assert_ne!(a, 0xdead_beef ^ 1);
        assert_ne!(a, 0xdead_beef + 1);
    }

    #[test]
    fn keyed_checkpoint_refuses_other_salt() {
        let d = tmp_dir("salt");
        busy_trace(1).save_per_process(&d).unwrap();
        let (p1, hosts) = mycluster(4);
        let ckpath = d.join("state.tick");
        let policy = CheckpointPolicy {
            path: ckpath.clone(),
            every_actions: 3,
            max_wall: Budget::unlimited(),
            stop_after_checkpoints: Some(1),
        };
        let srcs = open_file_sources(&d, 4).unwrap();
        let first = run_checkpointed_keyed(
            srcs, p1, &hosts, &plain_cfg(), None, Some(&policy), None, 0x5eed,
        )
        .unwrap();
        assert!(matches!(first.status, CheckpointedStatus::Paused { .. }));
        let ck = ReplayCheckpoint::load(&ckpath).unwrap();
        // Same platform/config, different store content → refused.
        let (p2, _) = mycluster(4);
        let srcs = open_file_sources(&d, 4).unwrap();
        let err = run_checkpointed_keyed(
            srcs, p2, &hosts, &plain_cfg(), None, None, Some(&ck), 0x0bad,
        )
        .unwrap_err();
        assert!(matches!(err, ReplayError::Checkpoint { .. }), "{err}");
        // The matching salt resumes and finishes.
        let (p3, _) = mycluster(4);
        let srcs = open_file_sources(&d, 4).unwrap();
        let done = run_checkpointed_keyed(
            srcs, p3, &hosts, &plain_cfg(), None, None, Some(&ck), 0x5eed,
        )
        .unwrap();
        assert!(done.resumed);
        assert!(matches!(done.status, CheckpointedStatus::Finished { .. }));
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_fails_closed() {
        let d = tmp_dir("corrupt");
        busy_trace(1).save_per_process(&d).unwrap();
        let (p1, hosts) = mycluster(4);
        let ckpath = d.join("state.tick");
        let policy = CheckpointPolicy {
            path: ckpath.clone(),
            every_actions: 3,
            max_wall: Budget::unlimited(),
            stop_after_checkpoints: Some(1),
        };
        replay_files_checkpointed(&d, 4, p1, &hosts, &plain_cfg(), None, &policy).unwrap();
        let mut bytes = std::fs::read(&ckpath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&ckpath, &bytes).unwrap();
        let (p2, _) = mycluster(4);
        let err =
            resume_files(&d, 4, p2, &hosts, &plain_cfg(), None, &ckpath, None).unwrap_err();
        assert!(matches!(err, ReplayError::Checkpoint { .. }), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn watchdog_writes_final_checkpoint_and_pauses() {
        let d = tmp_dir("wall");
        busy_trace(4).save_per_process(&d).unwrap();
        let (p1, hosts) = mycluster(4);
        let ckpath = d.join("state.tick");
        let policy = CheckpointPolicy {
            path: ckpath.clone(),
            every_actions: 0,
            max_wall: Budget::limited(Duration::ZERO),
            stop_after_checkpoints: None,
        };
        let out = replay_files_checkpointed(&d, 4, p1, &hosts, &plain_cfg(), None, &policy)
            .unwrap();
        match out.status {
            CheckpointedStatus::Paused { reason, .. } => {
                assert_eq!(reason, PauseReason::WallLimit);
            }
            other => panic!("expected watchdog pause, got {other:?}"),
        }
        assert!(ckpath.exists(), "final checkpoint must be on disk");
        // And the saved state resumes to the same result as a plain run.
        let (p2, _) = mycluster(4);
        let (p3, _) = mycluster(4);
        let reference = crate::replay_files(&d, 4, p2, &hosts, &plain_cfg()).unwrap();
        let resumed =
            resume_files(&d, 4, p3, &hosts, &plain_cfg(), None, &ckpath, None).unwrap();
        match resumed.status {
            CheckpointedStatus::Finished { simulated_time } => {
                assert_eq!(simulated_time.to_bits(), reference.simulated_time.to_bits());
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        std::fs::remove_dir_all(&d).unwrap();
    }
}
