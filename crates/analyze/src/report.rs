//! Analysis result types and their deterministic renderings.
//!
//! Everything here is computed once by [`crate::analyze`] and is pure
//! data: the static makespan bounds, the critical path digest, the
//! per-rank summaries and the communication-structure report. Both
//! renderings are deterministic — JSON object keys are emitted in a
//! fixed order and every float goes through
//! [`tit_core::json::push_f64`] so a non-finite value can never
//! corrupt the document.

use tit_core::json;
use tit_core::{Action, TiTrace};

use crate::cost::clamp;

/// Communication pattern classes the analyzer recognises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// No communication at all.
    ComputeOnly,
    /// Unidirectional ring: every rank talks to exactly one neighbour,
    /// all in the same direction.
    Ring,
    /// Symmetric nearest-neighbour exchange with at most two distinct
    /// offsets (1D or 2D decomposition).
    Stencil,
    /// Collective traffic dominates and most of it is `allReduce`.
    AllreduceDominated,
    /// All point-to-point traffic flows through rank 0.
    MasterWorker,
    /// Anything else.
    Irregular,
}

impl Pattern {
    /// Stable lower-snake identifier used in both renderings.
    pub fn as_str(&self) -> &'static str {
        match self {
            Pattern::ComputeOnly => "compute_only",
            Pattern::Ring => "ring",
            Pattern::Stencil => "stencil",
            Pattern::AllreduceDominated => "allreduce_dominated",
            Pattern::MasterWorker => "master_worker",
            Pattern::Irregular => "irregular",
        }
    }
}

/// One `(rank, action class)` aggregate along the critical path.
#[derive(Debug, Clone)]
pub struct Dominator {
    /// Rank owning the actions.
    pub rank: usize,
    /// Action class (a `tit_replay::tags` name).
    pub action: &'static str,
    /// Seconds this aggregate contributes to the path length.
    pub seconds: f64,
    /// Number of path nodes aggregated.
    pub count: u64,
}

/// Digest of one longest weighted path through the graph.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Path length in seconds (equals the lower bound).
    pub length: f64,
    /// Number of events on the path.
    pub hops: usize,
    /// Largest contributors, sorted by descending seconds.
    pub dominators: Vec<Dominator>,
}

/// Per-rank summary of volumes, lower-bound costs and slack.
#[derive(Debug, Clone, Copy)]
pub struct RankSummary {
    /// The rank.
    pub rank: usize,
    /// Minimum slack over the rank's events against the lower bound:
    /// 0 means the rank sits on the critical path.
    pub slack: f64,
    /// Lower-bound seconds of compute.
    pub compute_seconds: f64,
    /// Lower-bound seconds of flows this rank originates.
    pub comm_seconds: f64,
    /// Total floating-point operations.
    pub flops: f64,
    /// Total bytes sent (both channels).
    pub bytes_sent: f64,
    /// Messages originated (both channels).
    pub msgs_sent: u64,
}

/// Communication-structure report.
#[derive(Debug, Clone)]
pub struct Structure {
    /// Recognised pattern class.
    pub pattern: Pattern,
    /// `max / mean` of per-rank flops (0 when there is no compute).
    pub load_imbalance: f64,
    /// Total lower-bound comm seconds over total compute seconds
    /// (non-finite when there is no compute; rendered as `null`).
    pub comm_compute_ratio: f64,
    /// Total application-channel point-to-point bytes.
    pub p2p_bytes: f64,
    /// Total collective payload bytes.
    pub collective_bytes: f64,
    /// `matrix[src][dst]` = p2p bytes, omitted above 128 ranks.
    pub matrix: Option<Vec<Vec<f64>>>,
}

/// Complete result of a static trace analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Number of processes.
    pub nproc: usize,
    /// Number of trace actions analysed.
    pub actions: u64,
    /// Happens-before graph size.
    pub nodes: usize,
    /// Happens-before edge count.
    pub edges: usize,
    /// Network flows the engine would launch.
    pub flows: usize,
    /// Sends with no matching receive.
    pub unmatched_sends: usize,
    /// Receives with no matching send.
    pub unmatched_recvs: usize,
    /// `wait` operations with no pending request.
    pub wait_underflows: usize,
    /// Static makespan lower bound, seconds.
    pub lower_bound: f64,
    /// Static makespan upper bound, seconds.
    pub upper_bound: f64,
    /// Critical path digest.
    pub critical_path: CriticalPath,
    /// One summary per rank.
    pub per_rank: Vec<RankSummary>,
    /// Communication structure.
    pub structure: Structure,
}

/// Ranks above which the JSON matrix is suppressed (quadratic size).
const MATRIX_LIMIT: usize = 128;

/// Classifies the communication structure of `trace`.
/// `comm_seconds`/`compute_seconds` are the whole-trace lower-bound
/// totals (for the comm/compute ratio).
pub(crate) fn structure(trace: &TiTrace, comm_seconds: f64, compute_seconds: f64) -> Structure {
    let np = trace.num_processes();
    let mut matrix = vec![vec![0.0f64; np]; np];
    let mut p2p_bytes = 0.0f64;
    let mut coll_bytes = 0.0f64;
    let mut allreduce_bytes = 0.0f64;
    let mut coll_ops = 0u64;
    let mut flops = vec![0.0f64; np];
    for (rank, actions) in trace.actions.iter().enumerate() {
        for a in actions {
            flops[rank] += clamp(a.flops());
            match *a {
                Action::Send { dst, bytes } | Action::Isend { dst, bytes } if dst < np => {
                    let b = clamp(bytes);
                    matrix[rank][dst] += b;
                    p2p_bytes += b;
                }
                _ => {}
            }
            if a.is_collective() {
                coll_ops += 1;
                let b = clamp(a.comm_bytes().unwrap_or(0.0));
                coll_bytes += b;
                if matches!(a, Action::AllReduce { .. }) {
                    allreduce_bytes += b;
                }
            }
        }
    }
    let pattern = classify(&matrix, np, p2p_bytes, coll_bytes, allreduce_bytes, coll_ops);
    let mean = flops.iter().sum::<f64>() / np.max(1) as f64;
    let max = flops.iter().fold(0.0f64, |a, &b| a.max(b));
    Structure {
        pattern,
        load_imbalance: if mean > 0.0 { max / mean } else { 0.0 },
        comm_compute_ratio: comm_seconds / compute_seconds,
        p2p_bytes,
        collective_bytes: coll_bytes,
        matrix: (np <= MATRIX_LIMIT).then_some(matrix),
    }
}

fn classify(
    matrix: &[Vec<f64>],
    np: usize,
    p2p_bytes: f64,
    coll_bytes: f64,
    allreduce_bytes: f64,
    coll_ops: u64,
) -> Pattern {
    if p2p_bytes == 0.0 && coll_bytes == 0.0 && coll_ops == 0 {
        return Pattern::ComputeOnly;
    }
    if coll_bytes > p2p_bytes {
        return if allreduce_bytes * 2.0 >= coll_bytes {
            Pattern::AllreduceDominated
        } else {
            Pattern::Irregular
        };
    }

    // Boolean out-neighbour sets drive the topology tests.
    let peers: Vec<Vec<usize>> = (0..np)
        .map(|i| (0..np).filter(|&j| matrix[i][j] > 0.0 && i != j).collect())
        .collect();

    // Ring: n ≥ 3, out-degree exactly 1, one consistent direction.
    if np >= 3 && peers.iter().all(|p| p.len() == 1) {
        let fwd = peers.iter().enumerate().all(|(i, p)| p[0] == (i + 1) % np);
        let bwd = peers.iter().enumerate().all(|(i, p)| p[0] == (i + np - 1) % np);
        if fwd || bwd {
            return Pattern::Ring;
        }
    }

    // Master/worker: every p2p edge touches rank 0, which has ≥ 2
    // peers in either direction. Tested before the stencil shape — on
    // tiny rank counts a star also has few distinct offsets.
    if np >= 3 {
        let through_root = (1..np).all(|i| (1..np).all(|j| matrix[i][j] == 0.0));
        let fanout = peers[0].len() + (1..np).filter(|&i| matrix[i][0] > 0.0).count();
        if through_root && fanout >= 2 {
            return Pattern::MasterWorker;
        }
    }

    // Stencil: symmetric edges, ≤ 2 distinct wrap-around offsets,
    // degree ≤ 4 (1D chains/rings and 2D grids/tori).
    let symmetric = (0..np)
        .all(|i| (0..np).all(|j| (matrix[i][j] > 0.0) == (matrix[j][i] > 0.0)));
    if np >= 3 && symmetric && peers.iter().all(|p| !p.is_empty() && p.len() <= 4) {
        let mut offsets: Vec<usize> = Vec::new();
        for (i, p) in peers.iter().enumerate() {
            for &j in p {
                let d = (j + np - i) % np;
                let d = d.min(np - d);
                if !offsets.contains(&d) {
                    offsets.push(d);
                }
            }
        }
        if offsets.len() <= 2 {
            return Pattern::Stencil;
        }
    }
    Pattern::Irregular
}

impl Analysis {
    /// Renders the `tit-analyze-v1` JSON document (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n\"schema\": \"tit-analyze-v1\",");
        o.push_str(&format!("\n\"processes\": {},", self.nproc));
        o.push_str(&format!("\n\"actions\": {},", self.actions));
        o.push_str(&format!(
            "\n\"graph\": {{\"nodes\": {}, \"edges\": {}, \"flows\": {}, \
             \"unmatched_sends\": {}, \"unmatched_recvs\": {}, \"wait_underflows\": {}}},",
            self.nodes,
            self.edges,
            self.flows,
            self.unmatched_sends,
            self.unmatched_recvs,
            self.wait_underflows
        ));
        o.push_str("\n\"bounds\": {\"lower_s\": ");
        json::push_f64(&mut o, self.lower_bound);
        o.push_str(", \"upper_s\": ");
        json::push_f64(&mut o, self.upper_bound);
        o.push_str("},");
        o.push_str("\n\"critical_path\": {\"length_s\": ");
        json::push_f64(&mut o, self.critical_path.length);
        o.push_str(&format!(", \"hops\": {}, \"dominators\": [", self.critical_path.hops));
        for (i, d) in self.critical_path.dominators.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str(&format!("{{\"rank\": {}, \"action\": ", d.rank));
            json::push_string(&mut o, d.action);
            o.push_str(", \"seconds\": ");
            json::push_f64(&mut o, d.seconds);
            o.push_str(&format!(", \"count\": {}}}", d.count));
        }
        o.push_str("]},");
        o.push_str("\n\"ranks\": [");
        for (i, r) in self.per_rank.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!("\n  {{\"rank\": {}, \"slack_s\": ", r.rank));
            json::push_f64(&mut o, r.slack);
            o.push_str(", \"compute_s\": ");
            json::push_f64(&mut o, r.compute_seconds);
            o.push_str(", \"comm_s\": ");
            json::push_f64(&mut o, r.comm_seconds);
            o.push_str(", \"flops\": ");
            json::push_f64(&mut o, r.flops);
            o.push_str(", \"bytes_sent\": ");
            json::push_f64(&mut o, r.bytes_sent);
            o.push_str(&format!(", \"msgs_sent\": {}}}", r.msgs_sent));
        }
        o.push_str("\n],");
        o.push_str("\n\"structure\": {\"pattern\": ");
        json::push_string(&mut o, self.structure.pattern.as_str());
        o.push_str(", \"load_imbalance\": ");
        json::push_f64(&mut o, self.structure.load_imbalance);
        o.push_str(", \"comm_compute_ratio\": ");
        json::push_f64(&mut o, self.structure.comm_compute_ratio);
        o.push_str(", \"p2p_bytes\": ");
        json::push_f64(&mut o, self.structure.p2p_bytes);
        o.push_str(", \"collective_bytes\": ");
        json::push_f64(&mut o, self.structure.collective_bytes);
        o.push_str(", \"matrix\": ");
        match &self.structure.matrix {
            None => o.push_str("null"),
            Some(m) => {
                o.push('[');
                for (i, row) in m.iter().enumerate() {
                    if i > 0 {
                        o.push_str(", ");
                    }
                    o.push('[');
                    for (j, &v) in row.iter().enumerate() {
                        if j > 0 {
                            o.push(',');
                        }
                        json::push_f64(&mut o, v);
                    }
                    o.push(']');
                }
                o.push(']');
            }
        }
        o.push_str("}\n}");
        o
    }

    /// Renders the human-readable text report (trailing newline).
    pub fn render_text(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push_str(&format!(
            "analysis: {} process(es), {} action(s)\n",
            self.nproc, self.actions
        ));
        o.push_str(&format!(
            "graph: {} node(s), {} edge(s), {} flow(s)\n",
            self.nodes, self.edges, self.flows
        ));
        if self.unmatched_sends + self.unmatched_recvs + self.wait_underflows > 0 {
            o.push_str(&format!(
                "warnings: {} unmatched send(s), {} unmatched recv(s), {} wait underflow(s)\n",
                self.unmatched_sends, self.unmatched_recvs, self.wait_underflows
            ));
        }
        o.push_str(&format!(
            "bounds: {:.6e} s <= makespan <= {:.6e} s\n",
            self.lower_bound, self.upper_bound
        ));
        o.push_str(&format!(
            "critical path: {:.6e} s over {} event(s)\n",
            self.critical_path.length, self.critical_path.hops
        ));
        for d in &self.critical_path.dominators {
            o.push_str(&format!(
                "  p{} {:<9} {:.6e} s over {} event(s)\n",
                d.rank, d.action, d.seconds, d.count
            ));
        }
        o.push_str(&format!(
            "structure: {} (p2p {:.3e} B, collectives {:.3e} B, imbalance {:.3}, comm/compute {})\n",
            self.structure.pattern.as_str(),
            self.structure.p2p_bytes,
            self.structure.collective_bytes,
            self.structure.load_imbalance,
            if self.structure.comm_compute_ratio.is_finite() {
                format!("{:.3}", self.structure.comm_compute_ratio)
            } else {
                "n/a".to_string()
            }
        ));
        o.push_str("rank  slack_s       compute_s     comm_s        msgs\n");
        for r in &self.per_rank {
            o.push_str(&format!(
                "p{:<4} {:<13.6e} {:<13.6e} {:<13.6e} {}\n",
                r.rank, r.slack, r.compute_seconds, r.comm_seconds, r.msgs_sent
            ));
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis_with(structure: Structure) -> Analysis {
        Analysis {
            nproc: 2,
            actions: 4,
            nodes: 6,
            edges: 5,
            flows: 1,
            unmatched_sends: 0,
            unmatched_recvs: 0,
            wait_underflows: 0,
            lower_bound: 1.0,
            upper_bound: 2.0,
            critical_path: CriticalPath {
                length: 1.0,
                hops: 3,
                dominators: vec![Dominator {
                    rank: 0,
                    action: "compute",
                    seconds: 0.9,
                    count: 2,
                }],
            },
            per_rank: vec![
                RankSummary {
                    rank: 0,
                    slack: 0.0,
                    compute_seconds: 0.9,
                    comm_seconds: 0.1,
                    flops: 9e8,
                    bytes_sent: 1e6,
                    msgs_sent: 1,
                },
                RankSummary {
                    rank: 1,
                    slack: 0.5,
                    compute_seconds: 0.4,
                    comm_seconds: 0.0,
                    flops: 4e8,
                    bytes_sent: 0.0,
                    msgs_sent: 0,
                },
            ],
            structure,
        }
    }

    fn trace_of(lines: &[&[Action]]) -> TiTrace {
        TiTrace { actions: lines.iter().map(|r| r.to_vec()).collect() }
    }

    #[test]
    fn ring_and_compute_only_classification() {
        use Action::*;
        let ring = trace_of(&[
            &[Send { dst: 1, bytes: 8.0 }, Recv { src: 3, bytes: None }],
            &[Send { dst: 2, bytes: 8.0 }, Recv { src: 0, bytes: None }],
            &[Send { dst: 3, bytes: 8.0 }, Recv { src: 1, bytes: None }],
            &[Send { dst: 0, bytes: 8.0 }, Recv { src: 2, bytes: None }],
        ]);
        assert_eq!(structure(&ring, 1.0, 1.0).pattern, Pattern::Ring);

        let pure = trace_of(&[&[Compute { flops: 1.0 }], &[Compute { flops: 2.0 }]]);
        let s = structure(&pure, 0.0, 3.0 / 1e9);
        assert_eq!(s.pattern, Pattern::ComputeOnly);
        assert!((s.load_imbalance - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn stencil_master_worker_and_allreduce_classification() {
        use Action::*;
        // 1D symmetric chain with wrap-around: offsets {1}.
        let chain: Vec<Vec<Action>> = (0..4)
            .map(|i: usize| {
                vec![
                    Send { dst: (i + 1) % 4, bytes: 8.0 },
                    Send { dst: (i + 3) % 4, bytes: 8.0 },
                ]
            })
            .collect();
        let t = trace_of(&chain.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert_eq!(structure(&t, 1.0, 1.0).pattern, Pattern::Stencil);

        let mw = trace_of(&[
            &[Send { dst: 1, bytes: 8.0 }, Send { dst: 2, bytes: 8.0 }],
            &[Send { dst: 0, bytes: 8.0 }],
            &[Send { dst: 0, bytes: 8.0 }],
        ]);
        assert_eq!(structure(&mw, 1.0, 1.0).pattern, Pattern::MasterWorker);

        let ar = trace_of(&[
            &[CommSize { nproc: 2 }, AllReduce { vcomm: 64.0, vcomp: 1.0 }],
            &[CommSize { nproc: 2 }, AllReduce { vcomm: 64.0, vcomp: 1.0 }],
        ]);
        assert_eq!(structure(&ar, 1.0, 1.0).pattern, Pattern::AllreduceDominated);
    }

    #[test]
    fn json_is_deterministic_and_null_safe() {
        let mut s = Structure {
            pattern: Pattern::Ring,
            load_imbalance: 1.0,
            comm_compute_ratio: f64::INFINITY,
            p2p_bytes: 32.0,
            collective_bytes: 0.0,
            matrix: None,
        };
        let a = analysis_with(s.clone());
        let j = a.to_json();
        assert!(j.contains("\"schema\": \"tit-analyze-v1\""));
        assert!(j.contains("\"comm_compute_ratio\": null"));
        assert!(j.contains("\"matrix\": null"));
        assert!(!j.contains("inf"));
        assert_eq!(j, analysis_with(s.clone()).to_json());

        s.matrix = Some(vec![vec![0.0, 8.0], vec![8.0, 0.0]]);
        let j = analysis_with(s).to_json();
        assert!(j.contains("\"matrix\": [[0,8], [8,0]]"));
    }

    #[test]
    fn text_report_mentions_bounds_and_pattern() {
        let a = analysis_with(Structure {
            pattern: Pattern::Stencil,
            load_imbalance: 1.1,
            comm_compute_ratio: 0.25,
            p2p_bytes: 1e6,
            collective_bytes: 0.0,
            matrix: None,
        });
        let t = a.render_text();
        assert!(t.contains("<= makespan <="));
        assert!(t.contains("stencil"));
        assert!(t.contains("p0"));
    }
}
