//! Happens-before graph construction.
//!
//! One node per *completion event* of a micro-op, with edge weights
//! carrying the **minimum** delay the engine could impose between the
//! two completions. Three edge families:
//!
//! * **program order** — each rank's blocking micro-ops chain
//!   sequentially; non-blocking requests hang off the chain without
//!   advancing it until the matching `wait`.
//! * **FIFO point-to-point matching** — the k-th send from `src` to
//!   `dst` on a channel pairs with the k-th receive `dst` posts from
//!   `src`, exactly the replayer's mailbox discipline. The application
//!   channel reuses [`tit_core::match_p2p`] (the lint matcher); the
//!   collective channel, whose micro-ops only exist after expansion,
//!   gets its own per-pair FIFO zip here.
//! * **collective synchronization** — collectives are expanded through
//!   the *same* [`Registry`] the replayer uses, so their
//!   send/receive trees induce identical cross-rank edges.
//!
//! Because every edge weight under-estimates the engine's delay, the
//! longest weighted path is a sound makespan lower bound; the
//! serialized budgets accumulated alongside give the matching upper
//! bound (see `cost.rs`). A cycle in this graph is exactly a
//! guaranteed communication deadlock, surfaced as a typed error.
//!
//! # Construction strategy
//!
//! Phase 1 (program order) touches only one rank's actions at a time,
//! so it runs per rank on `jobs` worker threads (the same pool
//! discipline as trace ingest), each worker emitting *local* node ids
//! and edges plus per-channel pend tables. The per-rank pieces are
//! then merged in rank order — node ids shifted by a prefix-sum offset
//! — which reproduces, id for id and edge for edge, exactly the graph
//! the old single-pass construction built; the result is therefore
//! byte-identical for every `jobs` value. Single-micro-op actions
//! (compute, send/recv, Isend/Irecv, wait, comm_size) are expanded
//! inline — the construction mirrors the registry's default handlers,
//! pinned by `fast_path_matches_the_registry` below — while
//! collectives and any rebound keyword go through the [`Registry`].

use crate::cost::{clamp, CostModel};
use crate::AnalyzeError;
use simkern::netmodel::NetworkConfig;
use simkern::resource::HostId;
use simkern::Platform;
use std::collections::{BTreeMap, VecDeque};
use tit_core::graph::{DagBuilder, NodeId};
use tit_core::ingest::for_each_rank;
use tit_core::{match_p2p, Action, Dag, TiTrace};
use tit_replay::collectives::CollectiveAlgo;
use tit_replay::handlers::{ExpandCtx, MicroOp, Registry};
use tit_replay::tags;

/// Sentinel for "no pend recorded here" in the per-action tables
/// (also the hard cap on node count, enforced at node creation).
const NONE: NodeId = NodeId::MAX;

/// What a graph node represents: completion of the micro-op expanded
/// from action `index` of `rank`, classified by observer `tag`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// Owning rank.
    pub rank: u32,
    /// Action index within the rank (`u32::MAX` for the start node).
    pub index: u32,
    /// `tit_replay::tags` operation class (0 for the start node).
    pub tag: u32,
}

/// Per-rank volume and lower-cost accumulators for the report.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RankAccum {
    /// Total floating-point operations computed.
    pub flops: f64,
    /// Total bytes sent (application + collective channels).
    pub bytes_sent: f64,
    /// Messages originated (application + collective channels).
    pub msgs_sent: u64,
    /// Lower-bound seconds of compute on this rank's host.
    pub compute_seconds: f64,
    /// Lower-bound seconds of the flows this rank originates.
    pub comm_seconds: f64,
}

/// Node id → [`Event`] table, kept chunked per rank: the chunks are
/// the phase-1 workers' own vectors, moved here instead of copied into
/// one flat allocation (which on large traces would double the
/// table's resident footprint for no query benefit).
pub(crate) struct Events {
    chunks: Vec<Vec<Event>>,
    /// Rank → first node id (prefix sums, length `ranks + 1`).
    off: Vec<NodeId>,
}

impl Events {
    /// The event behind node `v`.
    pub fn get(&self, v: NodeId) -> Event {
        let c = self.off.partition_point(|&o| o <= v) - 1;
        self.chunks[c][(v - self.off[c]) as usize]
    }

    /// All events in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.chunks.iter().flatten()
    }
}

/// The frozen graph plus everything the bounds and reports need.
pub(crate) struct Hb {
    /// Completion-event DAG (payload-free; see [`Hb::events`]).
    pub dag: Dag<()>,
    /// Node id → event description, parallel to the DAG's ids.
    pub events: Events,
    /// Full serialized budget: the static makespan **upper** bound.
    pub upper: f64,
    /// Number of network flows the engine would launch.
    pub flows: usize,
    /// Sends with no matching receive (either channel).
    pub unmatched_sends: usize,
    /// Receives with no matching send (either channel).
    pub unmatched_recvs: usize,
    /// `wait` micro-ops with no pending request.
    pub wait_underflows: usize,
    /// Per-rank accumulators.
    pub per_rank: Vec<RankAccum>,
}

/// A posted point-to-point operation awaiting its cross edge:
/// `post` is the completion the operation became eligible at, `done`
/// its own completion node. `done == NONE` marks an empty table slot.
#[derive(Debug, Clone, Copy)]
struct Pend {
    post: NodeId,
    done: NodeId,
}

impl Pend {
    const EMPTY: Pend = Pend { post: NONE, done: NONE };

    fn shifted(self, off: NodeId) -> Pend {
        Pend { post: self.post + off, done: self.done + off }
    }
}

/// Everything one rank's program-order pass produces, in local node
/// ids (0 = the rank's start node).
struct RankBuild {
    events: Vec<Event>,
    /// `(pred, succ, weight)` in local ids.
    edges: Vec<(NodeId, NodeId, f64)>,
    /// Action index → posted p2p op, application channel.
    app: Vec<Pend>,
    /// Destination rank → collective-channel sends in program order.
    coll_sends: BTreeMap<usize, Vec<(Pend, f64)>>,
    /// Source rank → collective-channel receives in program order.
    coll_recvs: BTreeMap<usize, Vec<Pend>>,
    acc: RankAccum,
    upper: f64,
    flows: usize,
    wait_underflows: usize,
}

/// Mutable state of one rank's program-order pass.
struct RankState<'m, 'p> {
    rank: usize,
    np: usize,
    rb: RankBuild,
    chain: NodeId,
    requests: VecDeque<NodeId>,
    cost: &'m mut CostModel<'p>,
}

impl RankState<'_, '_> {
    fn node(&mut self, index: u32, tag: u32) -> NodeId {
        let id = self.rb.events.len();
        assert!(id < NONE as usize, "happens-before node count overflows u32");
        self.rb.events.push(Event { rank: self.rank as u32, index, tag });
        id as NodeId
    }

    fn edge(&mut self, pred: NodeId, succ: NodeId, w: f64) {
        self.rb.edges.push((pred, succ, w));
    }

    /// Applies one micro-op of action `index`; `nproc` is the rank's
    /// mutable `comm_size` state.
    fn apply(&mut self, index: usize, op: &MicroOp, nproc: &mut usize) {
        let index32 = index as u32;
        match *op {
            MicroOp::Exec { flops, tag } => {
                let n = self.node(index32, tag);
                let w = self.cost.exec_lower(self.rank, flops);
                self.edge(self.chain, n, w);
                self.chain = n;
                self.rb.acc.flops += clamp(flops);
                self.rb.acc.compute_seconds += w;
                self.rb.upper += w + self.cost.exec_host_serial(self.rank, flops);
            }
            MicroOp::Send { dst, bytes, tag } | MicroOp::CollSend { dst, bytes, tag } => {
                let n = self.node(index32, tag);
                let coll = matches!(op, MicroOp::CollSend { .. });
                if dst < self.np {
                    let fc = self.cost.flow(self.rank, dst, bytes);
                    // Eager sends complete at post; rendezvous sends
                    // complete no earlier than post + the flow's
                    // minimum duration.
                    let w = if self.cost.is_eager(bytes) { 0.0 } else { fc.lower() };
                    self.edge(self.chain, n, w);
                    let pend = Pend { post: self.chain, done: n };
                    if coll {
                        self.rb.coll_sends.entry(dst).or_default().push((pend, bytes));
                    } else {
                        self.rb.app[index] = pend;
                    }
                    // Every send launches a flow (eager flows are
                    // buffered even when unmatched).
                    self.rb.flows += 1;
                    self.rb.upper += fc.serial();
                    self.rb.acc.comm_seconds += fc.lower();
                } else {
                    self.edge(self.chain, n, 0.0);
                }
                self.chain = n;
                self.rb.acc.bytes_sent += clamp(bytes);
                self.rb.acc.msgs_sent += 1;
            }
            MicroOp::Recv { src, tag } | MicroOp::CollRecv { src, tag } => {
                let n = self.node(index32, tag);
                self.edge(self.chain, n, 0.0);
                if src < self.np {
                    let pend = Pend { post: self.chain, done: n };
                    if matches!(op, MicroOp::CollRecv { .. }) {
                        self.rb.coll_recvs.entry(src).or_default().push(pend);
                    } else {
                        self.rb.app[index] = pend;
                    }
                }
                self.chain = n;
            }
            MicroOp::IsendReq { dst, bytes, tag } => {
                let n = self.node(index32, tag);
                if dst < self.np {
                    let fc = self.cost.flow(self.rank, dst, bytes);
                    let w = if self.cost.is_eager(bytes) { 0.0 } else { fc.lower() };
                    self.edge(self.chain, n, w);
                    self.rb.app[index] = Pend { post: self.chain, done: n };
                    self.rb.flows += 1;
                    self.rb.upper += fc.serial();
                    self.rb.acc.comm_seconds += fc.lower();
                } else {
                    self.edge(self.chain, n, 0.0);
                }
                // Non-blocking: the chain does not advance.
                self.requests.push_back(n);
                self.rb.acc.bytes_sent += clamp(bytes);
                self.rb.acc.msgs_sent += 1;
            }
            MicroOp::IrecvReq { src, tag } => {
                let n = self.node(index32, tag);
                self.edge(self.chain, n, 0.0);
                if src < self.np {
                    self.rb.app[index] = Pend { post: self.chain, done: n };
                }
                self.requests.push_back(n);
            }
            MicroOp::WaitReq { tag } => {
                let n = self.node(index32, tag);
                self.edge(self.chain, n, 0.0);
                match self.requests.pop_front() {
                    Some(req) => self.edge(req, n, 0.0),
                    None => self.rb.wait_underflows += 1,
                }
                self.chain = n;
            }
            MicroOp::SetCommSize { nproc: n } => {
                *nproc = n;
            }
        }
    }
}

/// Runs one rank's program-order pass. The hot single-micro-op actions
/// are expanded inline (identically to the registry defaults — see
/// `fast_path_matches_the_registry`); collectives and anything else go
/// through `registry`.
fn build_rank(
    rank: usize,
    actions: &[Action],
    np: usize,
    cost: &mut CostModel<'_>,
    registry: &Registry,
    algo: CollectiveAlgo,
) -> Result<RankBuild, AnalyzeError> {
    let mut st = RankState {
        rank,
        np,
        rb: RankBuild {
            events: Vec::with_capacity(actions.len() + 1),
            edges: Vec::with_capacity(actions.len() + 1),
            app: vec![Pend::EMPTY; actions.len()],
            coll_sends: BTreeMap::new(),
            coll_recvs: BTreeMap::new(),
            acc: RankAccum::default(),
            upper: 0.0,
            flows: 0,
            wait_underflows: 0,
        },
        chain: 0,
        requests: VecDeque::new(),
        cost,
    };
    st.node(u32::MAX, 0); // the rank's start node, local id 0
    let mut nproc = 0usize;
    let mut ops: Vec<MicroOp> = Vec::new();
    for (index, action) in actions.iter().enumerate() {
        let fast = match *action {
            Action::Compute { flops } => Some(MicroOp::Exec { flops, tag: tags::COMPUTE }),
            Action::Send { dst, bytes } => Some(MicroOp::Send { dst, bytes, tag: tags::SEND }),
            Action::Isend { dst, bytes } => {
                Some(MicroOp::IsendReq { dst, bytes, tag: tags::ISEND })
            }
            Action::Recv { src, .. } => Some(MicroOp::Recv { src, tag: tags::RECV }),
            Action::Irecv { src, .. } => Some(MicroOp::IrecvReq { src, tag: tags::IRECV }),
            Action::Wait => Some(MicroOp::WaitReq { tag: tags::WAIT }),
            Action::CommSize { nproc } => Some(MicroOp::SetCommSize { nproc }),
            _ => None,
        };
        match fast {
            Some(op) => st.apply(index, &op, &mut nproc),
            None => {
                ops.clear();
                let ctx = ExpandCtx { rank, nproc, algo };
                registry.expand(&ctx, action, &mut ops).map_err(|e| AnalyzeError::Expand {
                    rank,
                    index,
                    detail: e.detail,
                })?;
                for op in &ops {
                    st.apply(index, op, &mut nproc);
                }
            }
        }
    }
    Ok(st.rb)
}

pub(crate) fn build(
    trace: &TiTrace,
    platform: &Platform,
    net: &NetworkConfig,
    hosts: &[HostId],
    algo: CollectiveAlgo,
    jobs: usize,
) -> Result<Hb, AnalyzeError> {
    let np = trace.num_processes();

    // Phase 1, per rank in parallel: program-order nodes and edges in
    // local ids. Each worker gets its own cost model (the route cache
    // is just that — a cache) and registry.
    let mut per: Vec<RankBuild> = for_each_rank(np, jobs, |rank| {
        let registry = Registry::with_defaults();
        let mut cost = CostModel::new(platform, net, hosts);
        build_rank(rank, &trace.actions[rank], np, &mut cost, &registry, algo)
    })?;

    // Merge in rank order: ids shift by the node-count prefix sum,
    // reproducing exactly a single-pass construction. The per-rank
    // edge lists are re-id'd *in place* and donated to the builder by
    // move, and the event table stays chunked per rank — on
    // multi-million-action traces the copies this avoids dominate the
    // wall (fresh pages fault far slower than resident ones).
    let total_nodes: usize = per.iter().map(|rb| rb.events.len()).sum();
    let mut off = Vec::with_capacity(np + 1);
    let mut acc_off = 0usize;
    for rb in &per {
        off.push(acc_off as NodeId);
        acc_off += rb.events.len();
    }
    off.push(acc_off as NodeId);
    let mut g: DagBuilder<()> = DagBuilder::new();
    g.reserve(total_nodes, 0);
    let mut event_chunks: Vec<Vec<Event>> = Vec::with_capacity(np);
    let mut upper = 0.0f64;
    let mut flows = 0usize;
    let mut wait_underflows = 0usize;
    let mut per_rank = Vec::with_capacity(np);
    for (r, rb) in per.iter_mut().enumerate() {
        let o = off[r];
        for _ in 0..rb.events.len() {
            g.add_node(());
        }
        event_chunks.push(std::mem::take(&mut rb.events));
        for e in &mut rb.edges {
            e.0 += o;
            e.1 += o;
        }
        g.donate_edges(std::mem::take(&mut rb.edges));
        upper += rb.upper;
        flows += rb.flows;
        wait_underflows += rb.wait_underflows;
        per_rank.push(rb.acc);
    }
    let events = Events { chunks: event_chunks, off: off.clone() };

    // Phase 2: cross edges from FIFO matching. Application channel
    // first, via the shared lint matcher (valid because every p2p
    // action expands to exactly one micro-op, so program order over
    // actions equals program order over micro-ops).
    let mut cost = CostModel::new(platform, net, hosts);
    let matching = match_p2p(trace);
    let mut unmatched_sends = matching.unmatched_sends.len();
    let mut unmatched_recvs = matching.unmatched_recvs.len();
    for pair in &matching.matched {
        let (sr, rr) = (pair.send.rank, pair.recv.rank);
        let (Some(&s), Some(&r)) =
            (per[sr].app.get(pair.send.index), per[rr].app.get(pair.recv.index))
        else {
            continue;
        };
        if s.done == NONE || r.done == NONE {
            continue; // out-of-range peer: no flow was modelled
        }
        let bytes = pair.send.bytes.unwrap_or(0.0);
        link_flow(&mut g, &mut cost, s.shifted(off[sr]), r.shifted(off[rr]), sr, rr, bytes);
    }
    drop(matching); // endpoint tables are large; free before the CSR builds

    // Collective channel: per ordered pair, k-th send meets k-th recv.
    // (Iterating src-major over each rank's dst-sorted map is the same
    // (src, dst) lexicographic order the single-pass build used.)
    let empty = Vec::new();
    for (src, rb) in per.iter().enumerate() {
        for (&dst, sends) in &rb.coll_sends {
            let recvs = per[dst].coll_recvs.get(&src).unwrap_or(&empty);
            for (k, &(s, bytes)) in sends.iter().enumerate() {
                match recvs.get(k) {
                    Some(&r) => link_flow(
                        &mut g,
                        &mut cost,
                        s.shifted(off[src]),
                        r.shifted(off[dst]),
                        src,
                        dst,
                        bytes,
                    ),
                    None => unmatched_sends += 1,
                }
            }
            if recvs.len() > sends.len() {
                unmatched_recvs += recvs.len() - sends.len();
            }
        }
    }
    for (dst, rb) in per.iter().enumerate() {
        for (&src, recvs) in &rb.coll_recvs {
            let matched = per.get(src).is_some_and(|s| s.coll_sends.contains_key(&dst));
            if !matched {
                unmatched_recvs += recvs.len();
            }
        }
    }

    drop(per); // pend tables are no longer needed either
    let dag = g.build().map_err(|e| AnalyzeError::Deadlock {
        nodes: e
            .stuck
            .iter()
            .map(|&v| {
                let ev = events.get(v);
                (ev.rank as usize, ev.index as usize)
            })
            .collect(),
    })?;
    Ok(Hb {
        dag,
        events,
        upper,
        flows,
        unmatched_sends,
        unmatched_recvs,
        wait_underflows,
        per_rank,
    })
}

/// Adds the cross edges for one matched flow of `bytes` from rank
/// `src` to rank `dst`.
///
/// Eager: the flow launches at the send's post time even if the
/// receive is not up yet, so the receive completes no earlier than
/// `send.post + cost`. Rendezvous: the flow launches at
/// `max(send.post, recv.post)` and releases *both* sides at its end.
fn link_flow(
    g: &mut DagBuilder<()>,
    cost: &mut CostModel<'_>,
    s: Pend,
    r: Pend,
    src: usize,
    dst: usize,
    bytes: f64,
) {
    let fc = cost.flow(src, dst, bytes);
    let w = fc.lower();
    g.add_edge(s.post, r.done, w);
    if !cost.is_eager(bytes) {
        g.add_edge(r.post, r.done, w);
        g.add_edge(r.post, s.done, w);
        // send.post → send.done already carries `w` from phase 1.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the inline fast path in [`build_rank`] to the registry's
    /// default expansion: for every single-micro-op action the two
    /// must produce the same micro-op, or the analyzer and the
    /// replayer would silently model different programs.
    #[test]
    fn fast_path_matches_the_registry() {
        let registry = Registry::with_defaults();
        let ctx = ExpandCtx { rank: 1, nproc: 4, algo: CollectiveAlgo::Binomial };
        let cases = [
            Action::Compute { flops: 5.0 },
            Action::Send { dst: 2, bytes: 7.0 },
            Action::Isend { dst: 2, bytes: 7.0 },
            Action::Recv { src: 0, bytes: None },
            Action::Irecv { src: 0, bytes: Some(4.0) },
            Action::Wait,
            Action::CommSize { nproc: 4 },
        ];
        for action in &cases {
            let fast = match *action {
                Action::Compute { flops } => MicroOp::Exec { flops, tag: tags::COMPUTE },
                Action::Send { dst, bytes } => MicroOp::Send { dst, bytes, tag: tags::SEND },
                Action::Isend { dst, bytes } => {
                    MicroOp::IsendReq { dst, bytes, tag: tags::ISEND }
                }
                Action::Recv { src, .. } => MicroOp::Recv { src, tag: tags::RECV },
                Action::Irecv { src, .. } => MicroOp::IrecvReq { src, tag: tags::IRECV },
                Action::Wait => MicroOp::WaitReq { tag: tags::WAIT },
                Action::CommSize { nproc } => MicroOp::SetCommSize { nproc },
                _ => unreachable!("case list holds single-micro-op actions only"),
            };
            let mut ops = Vec::new();
            registry.expand(&ctx, action, &mut ops).unwrap();
            assert_eq!(ops, vec![fast], "divergent expansion for {action:?}");
        }
    }
}
