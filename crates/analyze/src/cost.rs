//! The platform cost model, mirrored from the simulation kernel.
//!
//! The static bounds are only sound if every per-operation cost here
//! relates provably to what the engine charges. The invariants, per
//! operation:
//!
//! * **compute** — the engine executes `flops` at a rate bounded by the
//!   host's per-core speed, so the true duration is `≥ flops / speed`
//!   ([`CostModel::exec_lower`], exact when the core is uncontended).
//! * **flow** — the engine charges a latency phase of
//!   `route.latency × lat_factor(size)` followed by a transfer of
//!   `amount = size / bw_factor(size)` bytes at a rate that never
//!   exceeds [`FlowCost::rate_cap`] (the fat-pipe/TCP-window bound and
//!   the narrowest shared-link capacity, exactly as `start_transfer`
//!   assembles them). [`FlowCost::lower`] is therefore a true lower
//!   bound on any flow's duration.
//! * **serialized upper** — [`FlowCost::serial`] is the flow's total
//!   budget in the charging argument behind the upper bound: at every
//!   instant before completion either some flow sits in a latency
//!   phase, some flow runs at its rate bound, or some shared link is
//!   saturated; each such instant consumes one of the (finite) budget
//!   terms `latency`, `amount / bound`, or `amount / cap(L)` for a
//!   link `L` on the route. Summing all budgets over all flows (plus
//!   the compute budgets) therefore bounds the makespan from above,
//!   whatever the interleaving.

use simkern::netmodel::NetworkConfig;
use simkern::resource::HostId;
use simkern::Platform;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher for the packed `(src, dst)` host-pair key: the
/// route cache sits on the per-send hot path, where SipHash is
/// measurable overhead on million-action traces.
#[derive(Default)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut x = self.0 ^ n;
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        self.0 = x;
    }
}

type RouteMap = HashMap<u64, RouteCost, BuildHasherDefault<PairHasher>>;

/// Clamps a trace volume to something the bounds can use: negative and
/// non-finite volumes (which the lint flags as TL0010/TL0011) count as
/// zero work.
pub(crate) fn clamp(v: f64) -> f64 {
    if v.is_finite() && v > 0.0 {
        v
    } else {
        0.0
    }
}

/// Route-level quantities that do not depend on message size, cached
/// per host pair.
#[derive(Debug, Clone, Copy)]
struct RouteCost {
    /// Physical route latency (before model factors).
    latency: f64,
    /// The per-flow rate bound the LMM solver sees: fat-pipe caps,
    /// the TCP window cap `gamma / (2·latency)`, and — mirroring the
    /// engine's special cases — `min_bw` when the flow would otherwise
    /// be entirely unconstrained.
    bound: f64,
    /// `bound` further capped by the narrowest shared link: no rate
    /// the solver can ever assign exceeds this.
    rate_cap: f64,
    /// `Σ 1/capacity` over the route's shared links (0 without
    /// contention).
    inv_cap_sum: f64,
}

/// Size-resolved cost of one point-to-point flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowCost {
    /// Latency phase duration (`route latency × lat_factor`).
    pub latency: f64,
    /// Bytes the solver actually transfers (`size / bw_factor`).
    pub amount: f64,
    /// The flow's own rate bound (may be infinite when nothing but
    /// shared links constrain it).
    pub bound: f64,
    /// Hard cap on any achievable rate (always finite on real routes).
    pub rate_cap: f64,
    /// `Σ 1/capacity` over shared links crossed.
    pub inv_cap_sum: f64,
}

impl FlowCost {
    /// Minimum possible duration of this flow: full latency plus the
    /// transfer at the best rate any solver state allows.
    pub fn lower(&self) -> f64 {
        if self.amount > 0.0 {
            self.latency + self.amount / self.rate_cap
        } else {
            self.latency
        }
    }

    /// The flow's budget in the fully-serialized charging argument
    /// (see the module docs).
    pub fn serial(&self) -> f64 {
        let bound_term = if self.bound.is_finite() && self.amount > 0.0 {
            self.amount / self.bound
        } else {
            0.0
        };
        self.latency + bound_term + self.amount * self.inv_cap_sum
    }
}

/// Per-deployment cost oracle: rank → host speeds plus a route cache.
pub struct CostModel<'a> {
    platform: &'a Platform,
    net: &'a NetworkConfig,
    hosts: &'a [HostId],
    routes: RouteMap,
}

impl<'a> CostModel<'a> {
    /// A cost model for `hosts[rank]`-deployed ranks on `platform`
    /// under network model `net`.
    pub fn new(platform: &'a Platform, net: &'a NetworkConfig, hosts: &'a [HostId]) -> Self {
        CostModel { platform, net, hosts, routes: RouteMap::default() }
    }

    /// Seconds of the minimum-duration compute burst of `flops` on
    /// `rank`'s host (exact when the core is uncontended).
    pub fn exec_lower(&self, rank: usize, flops: f64) -> f64 {
        clamp(flops) / self.platform.host(self.hosts[rank]).speed
    }

    /// Whole-node capacity charge for `flops` on `rank`'s host: the
    /// upper bound's budget for instants where the host CPU is
    /// saturated by oversubscribed ranks.
    pub fn exec_host_serial(&self, rank: usize, flops: f64) -> f64 {
        let h = self.platform.host(self.hosts[rank]);
        clamp(flops) / (h.speed * f64::from(h.cores))
    }

    /// Whether the engine treats a send of `bytes` as eager (sender
    /// released at post time) rather than rendezvous.
    pub fn is_eager(&self, bytes: f64) -> bool {
        bytes <= self.net.eager_threshold
    }

    /// The cost of one flow of `bytes` from `src` to `dst` (ranks).
    pub fn flow(&mut self, src: usize, dst: usize, bytes: f64) -> FlowCost {
        let key = (u64::from(self.hosts[src].0) << 32) | u64::from(self.hosts[dst].0);
        let rc = match self.routes.get(&key) {
            Some(rc) => *rc,
            None => {
                let rc = self.route_cost(self.hosts[src], self.hosts[dst]);
                self.routes.insert(key, rc);
                rc
            }
        };
        let size = clamp(bytes);
        let (lat_f, bw_f) = self.net.piecewise.factors(size);
        FlowCost {
            latency: rc.latency * lat_f,
            amount: size / bw_f,
            bound: rc.bound,
            rate_cap: rc.rate_cap,
            inv_cap_sum: rc.inv_cap_sum,
        }
    }

    fn route_cost(&self, src: HostId, dst: HostId) -> RouteCost {
        let route = self.platform.resolve_route(src, dst);
        let mut bound = route.bound;
        if let Some(gamma) = self.net.tcp_gamma {
            if route.latency > 0.0 {
                bound = bound.min(gamma / (2.0 * route.latency));
            }
        }
        let mut inv_cap_sum = 0.0;
        let mut min_cap = f64::INFINITY;
        if self.net.contention {
            for &l in &route.shared {
                let cap = self.platform.link(l).bandwidth;
                inv_cap_sum += cap.recip();
                min_cap = min_cap.min(cap);
            }
            // The engine falls back to the narrowest physical link when
            // a flow ends up with no constraint and no finite bound.
            if route.shared.is_empty() && bound.is_infinite() {
                bound = route.min_bw;
            }
        } else {
            bound = bound.min(route.min_bw);
        }
        RouteCost { latency: route.latency, bound, rate_cap: bound.min(min_cap), inv_cap_sum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::resource::PlatformBuilder;

    fn two_hosts() -> (Platform, Vec<HostId>) {
        let mut b = PlatformBuilder::new();
        let a = b.add_host("a", 1e9, 1);
        let c = b.add_host("b", 1e9, 1);
        let l = b.add_link("l", 1e8, 1e-5);
        b.add_route(a, c, vec![l]);
        (b.build(), vec![a, c])
    }

    #[test]
    fn identity_flow_lower_is_latency_plus_transfer() {
        let (p, hosts) = two_hosts();
        let net = NetworkConfig::default();
        let mut m = CostModel::new(&p, &net, &hosts);
        let fc = m.flow(0, 1, 1e6);
        let expect = 1e-5 + 1e6 / 1e8;
        assert!((fc.lower() - expect).abs() < 1e-15, "{} vs {expect}", fc.lower());
        // With one shared link, serial = latency + amount/cap (the flow
        // has no finite own bound under contention here).
        assert!((fc.serial() - expect).abs() < 1e-15);
    }

    #[test]
    fn clamped_volumes_cost_nothing() {
        let (p, hosts) = two_hosts();
        let net = NetworkConfig::default();
        let mut m = CostModel::new(&p, &net, &hosts);
        for v in [0.0, -4.0, f64::NAN, f64::INFINITY] {
            let fc = m.flow(0, 1, v);
            assert_eq!(fc.amount, 0.0, "bytes {v}");
            assert_eq!(fc.lower(), fc.latency);
        }
        assert_eq!(m.exec_lower(0, f64::NAN), 0.0);
    }

    #[test]
    fn tcp_gamma_caps_the_rate() {
        let (p, hosts) = two_hosts();
        // gamma/(2·lat) = 1e7 < 1e8
        let net = NetworkConfig { tcp_gamma: Some(2e-5 * 1e7), ..Default::default() };
        let mut m = CostModel::new(&p, &net, &hosts);
        let fc = m.flow(0, 1, 1e6);
        assert!((fc.rate_cap - 1e7).abs() < 1.0, "{}", fc.rate_cap);
        assert!(fc.lower() > 1e6 / 1e8);
    }

    #[test]
    fn constant_model_uses_min_bw() {
        let (p, hosts) = two_hosts();
        let net = NetworkConfig::constant();
        let mut m = CostModel::new(&p, &net, &hosts);
        let fc = m.flow(0, 1, 1e6);
        assert_eq!(fc.rate_cap, 1e8);
        assert_eq!(fc.inv_cap_sum, 0.0);
        // Without contention the serialized budget is just the flow
        // running alone at its bound.
        assert!((fc.serial() - fc.lower()).abs() < 1e-15);
    }

    #[test]
    fn loopback_routes_resolve() {
        let (p, hosts) = two_hosts();
        let net = NetworkConfig::default();
        let mut m = CostModel::new(&p, &net, &hosts);
        let fc = m.flow(1, 1, 4096.0);
        assert!(fc.rate_cap.is_finite() && fc.rate_cap > 0.0);
        assert!(fc.lower() > 0.0);
    }
}
