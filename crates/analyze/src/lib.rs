//! `titanalyze` — static analysis of time-independent traces.
//!
//! Where `tit-replay` *simulates* a trace against a platform model,
//! this crate *analyses* it: it builds the cross-rank happens-before
//! DAG (program order + FIFO point-to-point matching + collective
//! synchronization, using the same action expansion as the replayer),
//! extracts the critical path under the platform cost model, and
//! computes static makespan bounds that provably sandwich any replay
//! result:
//!
//! ```text
//! lower  =  longest weighted path     (infinitely parallel comms)
//! upper  =  fully serialized budget   (everything contends)
//! lower  <=  simulated makespan  <=  upper
//! ```
//!
//! The sandwich is what makes the analyzer useful as a *differential
//! oracle* for the replay engine: any simulated time outside the
//! bounds is a bug in one of the two, and the repository's tests
//! assert the invariant for every engine run. The structure report
//! (communication matrix, pattern class, imbalance) doubles as a cheap
//! pre-filter before expensive replay sweeps.
//!
//! Entry points: [`analyze`] for the full report, [`bounds`] when only
//! the sandwich is needed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cost;
mod hb;
pub mod report;

pub use report::{Analysis, CriticalPath, Dominator, Pattern, RankSummary, Structure};

use simkern::netmodel::NetworkConfig;
use simkern::resource::HostId;
use simkern::Platform;
use tit_core::TiTrace;
use tit_replay::collectives::CollectiveAlgo;
use tit_replay::tags;

/// Analysis parameters; defaults mirror [`tit_replay::ReplayConfig`]
/// (contention-aware MPI model, binomial collectives).
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Network cost model.
    pub network: NetworkConfig,
    /// Collective decomposition shape (must match the replay under
    /// test for the bounds to apply).
    pub algo: CollectiveAlgo,
    /// Worker threads for the per-rank graph-construction pass
    /// (`0` = one per CPU). The result is identical for every value.
    pub jobs: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            network: NetworkConfig::default(),
            algo: CollectiveAlgo::default(),
            jobs: 1,
        }
    }
}

/// Why a trace could not be analysed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// Trace and deployment disagree on the number of processes.
    Deployment {
        /// Processes in the trace.
        procs: usize,
        /// Hosts in the deployment.
        hosts: usize,
    },
    /// An action could not be expanded into micro-ops.
    Expand {
        /// Rank owning the action.
        rank: usize,
        /// Action index within the rank.
        index: usize,
        /// Handler-provided reason.
        detail: String,
    },
    /// The happens-before graph has a cycle: the trace is guaranteed
    /// to deadlock under the replayer's matching discipline.
    Deadlock {
        /// Up to 16 `(rank, action index)` pairs stuck in or behind
        /// the cycle (`usize::MAX` index marks a rank start event).
        nodes: Vec<(usize, usize)>,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Deployment { procs, hosts } => {
                write!(f, "trace has {procs} process(es) but the deployment maps {hosts}")
            }
            AnalyzeError::Expand { rank, index, detail } => {
                write!(f, "p{rank} action {index}: {detail}")
            }
            AnalyzeError::Deadlock { nodes } => {
                write!(f, "guaranteed deadlock; stuck at")?;
                for (i, (rank, index)) in nodes.iter().enumerate() {
                    let sep = if i == 0 { ' ' } else { ',' };
                    if *index == u32::MAX as usize {
                        write!(f, "{sep}p{rank}:start")?;
                    } else {
                        write!(f, "{sep}p{rank}:{index}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Maximum number of dominator aggregates reported per path.
const MAX_DOMINATORS: usize = 12;

/// Runs the full static analysis of `trace` deployed as `hosts` on
/// `platform`.
pub fn analyze(
    trace: &TiTrace,
    platform: &Platform,
    hosts: &[HostId],
    cfg: &AnalyzeConfig,
) -> Result<Analysis, AnalyzeError> {
    let np = trace.num_processes();
    if hosts.len() != np {
        return Err(AnalyzeError::Deployment { procs: np, hosts: hosts.len() });
    }
    let hb = hb::build(trace, platform, &cfg.network, hosts, cfg.algo, cfg.jobs)?;

    let earliest = hb.dag.earliest();
    let lower = hb.dag.longest_path(&earliest.times);
    // Guard against floating-point drift on traces where the two
    // bounds coincide (e.g. a single serial chain).
    let upper = hb.upper.max(lower);

    // Critical path digest: per-(rank, tag) contribution aggregates.
    let path = hb.dag.critical_path(&earliest);
    let mut agg: std::collections::BTreeMap<(u32, u32), (f64, u64)> =
        std::collections::BTreeMap::new();
    let mut prev = 0.0f64;
    for &v in &path {
        let e = earliest.times[v as usize];
        let contrib = e - prev;
        prev = e;
        let ev = hb.events.get(v);
        if contrib > 0.0 && ev.tag != 0 {
            let slot = agg.entry((ev.rank, ev.tag)).or_insert((0.0, 0));
            slot.0 += contrib;
            slot.1 += 1;
        }
    }
    let mut dominators: Vec<Dominator> = agg
        .into_iter()
        .map(|((rank, tag), (seconds, count))| Dominator {
            rank: rank as usize,
            action: tags::name(tag),
            seconds,
            count,
        })
        .collect();
    dominators.sort_by(|a, b| {
        b.seconds
            .partial_cmp(&a.seconds)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.rank.cmp(&b.rank))
    });
    dominators.truncate(MAX_DOMINATORS);

    // Per-rank slack: minimum over the rank's events.
    let latest = hb.dag.latest(lower);
    let mut slack = vec![f64::INFINITY; np];
    for (v, ev) in hb.events.iter().enumerate() {
        let s = latest[v] - earliest.times[v];
        let r = ev.rank as usize;
        if s < slack[r] {
            slack[r] = s;
        }
    }
    let per_rank: Vec<RankSummary> = hb
        .per_rank
        .iter()
        .enumerate()
        .map(|(rank, a)| RankSummary {
            rank,
            slack: if slack[rank].is_finite() { slack[rank].max(0.0) } else { 0.0 },
            compute_seconds: a.compute_seconds,
            comm_seconds: a.comm_seconds,
            flops: a.flops,
            bytes_sent: a.bytes_sent,
            msgs_sent: a.msgs_sent,
        })
        .collect();

    let comm_total: f64 = per_rank.iter().map(|r| r.comm_seconds).sum();
    let compute_total: f64 = per_rank.iter().map(|r| r.compute_seconds).sum();
    let structure = report::structure(trace, comm_total, compute_total);

    Ok(Analysis {
        nproc: np,
        actions: trace.num_actions() as u64,
        nodes: hb.dag.num_nodes(),
        edges: hb.dag.num_edges(),
        flows: hb.flows,
        unmatched_sends: hb.unmatched_sends,
        unmatched_recvs: hb.unmatched_recvs,
        wait_underflows: hb.wait_underflows,
        lower_bound: lower,
        upper_bound: upper,
        critical_path: CriticalPath { length: lower, hops: path.len(), dominators },
        per_rank,
        structure,
    })
}

/// Computes only the `(lower, upper)` makespan bounds — the
/// differential-oracle entry point for engine tests.
pub fn bounds(
    trace: &TiTrace,
    platform: &Platform,
    hosts: &[HostId],
    cfg: &AnalyzeConfig,
) -> Result<(f64, f64), AnalyzeError> {
    let np = trace.num_processes();
    if hosts.len() != np {
        return Err(AnalyzeError::Deployment { procs: np, hosts: hosts.len() });
    }
    let hb = hb::build(trace, platform, &cfg.network, hosts, cfg.algo, cfg.jobs)?;
    let lower = hb.dag.longest_path(&hb.dag.earliest().times);
    Ok((lower, hb.upper.max(lower)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tit_core::Action;
    use tit_platform::desc::{ClusterSpec, ClusterTopology, PlatformDesc};
    use tit_replay::{replay_memory, ReplayConfig};

    fn mycluster(n: u32) -> Platform {
        // The Figure 5 platform, scaled to n nodes.
        let spec = ClusterSpec {
            id: "mycluster".into(),
            prefix: "mycluster-".into(),
            suffix: ".mysite.fr".into(),
            count: n as usize,
            power: 1.17e9,
            cores: 1,
            bw: 1.25e8,
            lat: 16.67e-6,
            bb_bw: 1.25e9,
            bb_lat: 16.67e-6,
            topology: ClusterTopology::Flat,
        };
        PlatformDesc::single(spec).build()
    }

    fn host_ids(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    fn ring_trace(nproc: usize, bytes: f64, flops: f64) -> TiTrace {
        // The Figure 1 shape: rank 0 kicks off, the others receive
        // first (send-first everywhere would deadlock in rendezvous).
        let mut t = TiTrace::new(nproc);
        t.push(0, Action::Compute { flops });
        t.push(0, Action::Send { dst: 1 % nproc, bytes });
        t.push(0, Action::Recv { src: nproc - 1, bytes: None });
        for r in 1..nproc {
            t.push(r, Action::Recv { src: r - 1, bytes: None });
            t.push(r, Action::Compute { flops });
            t.push(r, Action::Send { dst: (r + 1) % nproc, bytes });
        }
        t
    }

    fn plain_cfg() -> AnalyzeConfig {
        AnalyzeConfig { network: NetworkConfig::default(), ..Default::default() }
    }

    #[test]
    fn ring_bounds_sandwich_the_replay() {
        let t = ring_trace(4, 1e6, 1e6);
        let a = analyze(&t, &mycluster(4), &host_ids(4), &plain_cfg()).unwrap();
        let out = replay_memory(
            &t,
            mycluster(4),
            &host_ids(4),
            &ReplayConfig { network: NetworkConfig::default(), ..Default::default() },
        )
        .unwrap();
        assert!(
            a.lower_bound <= out.simulated_time * (1.0 + 1e-9),
            "lower {} > simulated {}",
            a.lower_bound,
            out.simulated_time
        );
        assert!(
            out.simulated_time <= a.upper_bound * (1.0 + 1e-9),
            "simulated {} > upper {}",
            out.simulated_time,
            a.upper_bound
        );
        assert!(a.lower_bound > 0.0);
        assert_eq!(a.structure.pattern, Pattern::Ring);
        assert_eq!(a.flows, 4);
        assert_eq!(a.unmatched_sends, 0);
    }

    #[test]
    fn compute_only_lower_bound_is_exact() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Compute { flops: 2.34e9 });
        t.push(1, Action::Compute { flops: 1.17e9 });
        let a = analyze(&t, &mycluster(2), &host_ids(2), &plain_cfg()).unwrap();
        // 2.34e9 flops at 1.17e9 flop/s = 2 s on the slow rank.
        assert!((a.lower_bound - 2.0).abs() < 1e-12);
        assert_eq!(a.structure.pattern, Pattern::ComputeOnly);
        // Rank 1 finishes in 1 s: slack 1 s; rank 0 is critical.
        assert!((a.per_rank[1].slack - 1.0).abs() < 1e-12);
        assert!(a.per_rank[0].slack.abs() < 1e-12);
        assert_eq!(a.critical_path.dominators[0].action, "compute");
        assert_eq!(a.critical_path.dominators[0].rank, 0);
    }

    #[test]
    fn recv_recv_cycle_is_a_deadlock_error() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Recv { src: 1, bytes: None });
        t.push(0, Action::Send { dst: 1, bytes: 8.0 });
        t.push(1, Action::Recv { src: 0, bytes: None });
        t.push(1, Action::Send { dst: 0, bytes: 8.0 });
        let err = analyze(&t, &mycluster(2), &host_ids(2), &plain_cfg()).unwrap_err();
        let AnalyzeError::Deadlock { nodes } = &err else {
            panic!("expected deadlock, got {err}");
        };
        assert!(!nodes.is_empty());
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn nonblocking_ring_does_not_deadlock() {
        // The classic Irecv-first ring: safe, and the analyzer agrees.
        let n = 4;
        let mut t = TiTrace::new(n);
        for r in 0..n {
            t.push(r, Action::Irecv { src: (r + n - 1) % n, bytes: None });
            t.push(r, Action::Send { dst: (r + 1) % n, bytes: 1e5 });
            t.push(r, Action::Wait);
            t.push(r, Action::Compute { flops: 1e6 });
        }
        let a = analyze(&t, &mycluster(4), &host_ids(4), &plain_cfg()).unwrap();
        assert!(a.lower_bound > 0.0);
        assert_eq!(a.wait_underflows, 0);
        assert_eq!(a.unmatched_recvs, 0);
    }

    #[test]
    fn collectives_are_matched_on_their_own_channel() {
        let n = 4;
        let mut t = TiTrace::new(n);
        for r in 0..n {
            t.push(r, Action::CommSize { nproc: n });
            t.push(r, Action::Compute { flops: 1e6 });
            t.push(r, Action::AllReduce { vcomm: 1e5, vcomp: 1e4 });
            t.push(r, Action::Barrier);
        }
        let a = analyze(&t, &mycluster(4), &host_ids(4), &plain_cfg()).unwrap();
        assert_eq!(a.unmatched_sends, 0, "collective trees must self-match");
        assert_eq!(a.unmatched_recvs, 0);
        let out = replay_memory(
            &t,
            mycluster(4),
            &host_ids(4),
            &ReplayConfig { network: NetworkConfig::default(), ..Default::default() },
        )
        .unwrap();
        assert!(a.lower_bound <= out.simulated_time * (1.0 + 1e-9));
        assert!(out.simulated_time <= a.upper_bound * (1.0 + 1e-9));
    }

    #[test]
    fn deployment_mismatch_and_missing_comm_size_are_typed() {
        let t = ring_trace(4, 8.0, 1.0);
        let err = analyze(&t, &mycluster(2), &host_ids(2), &plain_cfg()).unwrap_err();
        assert!(matches!(err, AnalyzeError::Deployment { procs: 4, hosts: 2 }));

        let mut t = TiTrace::new(2);
        t.push(0, Action::Bcast { bytes: 8.0 });
        t.push(1, Action::Bcast { bytes: 8.0 });
        let err = analyze(&t, &mycluster(2), &host_ids(2), &plain_cfg()).unwrap_err();
        assert!(matches!(err, AnalyzeError::Expand { rank: 0, index: 0, .. }));
    }

    #[test]
    fn unmatched_and_underflow_counters_fire() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Send { dst: 1, bytes: 64.0 });
        t.push(0, Action::Wait);
        t.push(1, Action::Compute { flops: 1.0 });
        let a = analyze(&t, &mycluster(2), &host_ids(2), &plain_cfg()).unwrap();
        assert_eq!(a.unmatched_sends, 1);
        assert_eq!(a.wait_underflows, 1);
        // The eager unmatched send still launches a (buffered) flow.
        assert_eq!(a.flows, 1);
    }

    #[test]
    fn bounds_agrees_with_analyze() {
        let t = ring_trace(4, 1e6, 1e6);
        let a = analyze(&t, &mycluster(4), &host_ids(4), &plain_cfg()).unwrap();
        let (lo, hi) = bounds(&t, &mycluster(4), &host_ids(4), &plain_cfg()).unwrap();
        assert_eq!(lo, a.lower_bound);
        assert_eq!(hi, a.upper_bound);
    }
}
