//! Event-definition (`.edf`) files.
//!
//! TAU stores a unique numeric id per traced event instead of its full
//! signature; the `events.<node>.edf` file maps ids back to descriptions
//! (Section 4.3). Each line carries the id, the group (`MPI`,
//! `TAUEVENT`, ...), a tag, the quoted name, and the event type —
//! `EntryExit` for functions bracketed by enter/leave records,
//! `TriggerValue` for monotonically increasing counters such as
//! `PAPI_FP_OPS`:
//!
//! ```text
//! 49 MPI 0 "MPI_Send() " EntryExit
//! 1 TAUEVENT 1 "PAPI_FP_OPS" TriggerValue
//! ```

use std::collections::HashMap;
use std::io::{BufRead, Write};

/// How an event appears in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Bracketed by enter/leave records.
    EntryExit,
    /// A counter sampled by trigger records.
    TriggerValue,
}

/// One event definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDef {
    pub id: i32,
    pub group: String,
    pub tag: i32,
    pub name: String,
    pub kind: EventKind,
}

/// The id ↔ definition table for one process.
#[derive(Debug, Clone, Default)]
pub struct EventRegistry {
    defs: Vec<EventDef>,
    by_name: HashMap<String, i32>,
    next_id: i32,
}

impl EventRegistry {
    pub fn new() -> Self {
        EventRegistry { defs: Vec::new(), by_name: HashMap::new(), next_id: 1 }
    }

    /// Registers (or finds) an event by name, returning its id.
    pub fn intern(&mut self, group: &str, name: &str, kind: EventKind) -> i32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.defs.push(EventDef {
            id,
            group: group.to_string(),
            tag: i32::from(kind == EventKind::TriggerValue),
            name: name.to_string(),
            kind,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a definition by id.
    pub fn def(&self, id: i32) -> Option<&EventDef> {
        self.defs.iter().find(|d| d.id == id)
    }

    /// Looks up an id by name.
    pub fn id_of(&self, name: &str) -> Option<i32> {
        self.by_name.get(name).copied()
    }

    /// True when `id` is a `TriggerValue` event.
    pub fn is_trigger(&self, id: i32) -> bool {
        self.def(id).map(|d| d.kind == EventKind::TriggerValue).unwrap_or(false)
    }

    pub fn defs(&self) -> &[EventDef] {
        &self.defs
    }

    /// Writes the `.edf` text form.
    pub fn write<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "{} dynamic_trace_events", self.defs.len())?;
        writeln!(w, "# FunctionId Group Tag \"Name Type\" Parameters")?;
        for d in &self.defs {
            let kind = match d.kind {
                EventKind::EntryExit => "EntryExit",
                EventKind::TriggerValue => "TriggerValue",
            };
            writeln!(w, "{} {} {} \"{}\" {}", d.id, d.group, d.tag, d.name, kind)?;
        }
        Ok(())
    }

    /// Parses the `.edf` text form.
    pub fn read<R: BufRead>(r: R) -> std::io::Result<Self> {
        let mut reg = EventRegistry::new();
        for (no, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty()
                || line.starts_with('#')
                || line.ends_with("dynamic_trace_events")
            {
                continue;
            }
            let bad = || {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("events.edf line {}: malformed: {line:?}", no + 1),
                )
            };
            // id group tag "name" kind
            let (head, rest) = line.split_once('"').ok_or_else(bad)?;
            let (name, tail) = rest.rsplit_once('"').ok_or_else(bad)?;
            let mut headf = head.split_whitespace();
            let id: i32 = headf.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let group = headf.next().ok_or_else(bad)?.to_string();
            let tag: i32 = headf.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let kind = match tail.trim() {
                "EntryExit" => EventKind::EntryExit,
                "TriggerValue" => EventKind::TriggerValue,
                _ => return Err(bad()),
            };
            reg.defs.push(EventDef {
                id,
                group,
                tag,
                name: name.to_string(),
                kind,
            });
            reg.by_name.insert(name.to_string(), id);
            reg.next_id = reg.next_id.max(id + 1);
        }
        Ok(reg)
    }

    /// Loads an `.edf` file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        Self::read(std::io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Saves to an `.edf` file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write(&mut w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = EventRegistry::new();
        let a = r.intern("MPI", "MPI_Send()", EventKind::EntryExit);
        let b = r.intern("MPI", "MPI_Send()", EventKind::EntryExit);
        assert_eq!(a, b);
        let c = r.intern("TAUEVENT", "PAPI_FP_OPS", EventKind::TriggerValue);
        assert_ne!(a, c);
        assert!(r.is_trigger(c));
        assert!(!r.is_trigger(a));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut r = EventRegistry::new();
        r.intern("TAUEVENT", "PAPI_FP_OPS", EventKind::TriggerValue);
        r.intern("MPI", "MPI_Send()", EventKind::EntryExit);
        r.intern("TAUEVENT", "Message size sent to all nodes", EventKind::TriggerValue);
        let mut buf = Vec::new();
        r.write(&mut buf).unwrap();
        let back = EventRegistry::read(&buf[..]).unwrap();
        assert_eq!(back.defs(), r.defs());
        assert_eq!(back.id_of("MPI_Send()"), r.id_of("MPI_Send()"));
    }

    #[test]
    fn parses_the_paper_example_lines() {
        let text = "2 dynamic_trace_events\n\
                    # FunctionId Group Tag \"Name Type\" Parameters\n\
                    49 MPI 0 \"MPI_Send() \" EntryExit\n\
                    1 TAUEVENT 1 \"PAPI_FP_OPS\" TriggerValue\n";
        let r = EventRegistry::read(text.as_bytes()).unwrap();
        assert_eq!(r.defs().len(), 2);
        let send = r.def(49).unwrap();
        assert_eq!(send.group, "MPI");
        assert_eq!(send.name, "MPI_Send() ");
        assert_eq!(send.kind, EventKind::EntryExit);
        assert!(r.is_trigger(1));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(EventRegistry::read(&b"49 MPI EntryExit\n"[..]).is_err());
        assert!(EventRegistry::read(&b"49 MPI 0 \"X\" Banana\n"[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("titr-edf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = EventRegistry::new();
        r.intern("MPI", "MPI_Recv()", EventKind::EntryExit);
        let path = dir.join("events.0.edf");
        r.save(&path).unwrap();
        let back = EventRegistry::load(&path).unwrap();
        assert_eq!(back.defs(), r.defs());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
