//! The Trace Format Reader (TFR) callback API.
//!
//! TAU trace files are binary, so the paper's `tau2simgrid` extractor
//! reads them through the TAU Trace Format Reader library: the reader
//! walks the file and invokes one callback per event kind, whose
//! implementation is "let to the developer" (Section 4.3). This module
//! reproduces that interface: implement [`TraceCallbacks`] and hand it to
//! [`read_trace_file`].
//!
//! All callbacks default to no-ops so implementors only write the ones
//! they need — e.g. the extractor cares about enter/leave, triggers and
//! message records, not about user-defined events.

use crate::edf::EventRegistry;
use crate::records::{Record, RecordKind, RECORD_BYTES};
use std::io::Read;
use std::path::Path;

/// Callback set invoked while walking a trace file.
///
/// Times are seconds (converted back from the stored nanoseconds).
// The message callbacks mirror the TAU TFR C API one-for-one, whose
// signatures fix the argument count.
#[allow(unused_variables, clippy::too_many_arguments)]
pub trait TraceCallbacks {
    /// A state (function) was entered.
    fn enter_state(&mut self, time: f64, nid: u16, tid: u16, ev: i32) {}
    /// A state (function) was left.
    fn leave_state(&mut self, time: f64, nid: u16, tid: u16, ev: i32) {}
    /// A counter trigger fired (e.g. `PAPI_FP_OPS`).
    fn event_trigger(&mut self, time: f64, nid: u16, tid: u16, ev: i32, value: i64) {}
    /// A message was sent.
    fn send_message(
        &mut self,
        time: f64,
        nid: u16,
        tid: u16,
        dst_nid: u16,
        dst_tid: u16,
        size: u32,
        tag: u8,
        comm: u8,
    ) {
    }
    /// A message was received.
    fn recv_message(
        &mut self,
        time: f64,
        nid: u16,
        tid: u16,
        src_nid: u16,
        src_tid: u16,
        size: u32,
        tag: u8,
        comm: u8,
    ) {
    }
    /// The trace ended.
    fn end_trace(&mut self, nid: u16, tid: u16) {}
}

fn to_s(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Walks `path`, dispatching every record to `cb`. The `registry`
/// distinguishes counter triggers from state events, exactly the role the
/// `.edf` file plays for TFR.
pub fn read_trace_file(
    path: &Path,
    registry: &EventRegistry,
    cb: &mut impl TraceCallbacks,
) -> std::io::Result<u64> {
    let f = std::fs::File::open(path)?;
    read_trace(std::io::BufReader::with_capacity(1 << 20, f), registry, cb)
}

/// Same as [`read_trace_file`] over any reader. Returns the number of
/// records dispatched.
pub fn read_trace<R: Read>(
    mut r: R,
    registry: &EventRegistry,
    cb: &mut impl TraceCallbacks,
) -> std::io::Result<u64> {
    let mut buf = [0u8; RECORD_BYTES];
    let mut n = 0u64;
    loop {
        // Read one full record, tolerating a clean EOF between records.
        let mut filled = 0;
        while filled < RECORD_BYTES {
            let k = r.read(&mut buf[filled..])?;
            if k == 0 {
                if filled == 0 {
                    return Ok(n);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("truncated record after {n} records"),
                ));
            }
            filled += k;
        }
        let rec = Record::decode(&buf, |ev| registry.is_trigger(ev))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        n += 1;
        let t = to_s(rec.time_ns);
        match rec.kind {
            RecordKind::EnterState { ev } => cb.enter_state(t, rec.nid, rec.tid, ev),
            RecordKind::LeaveState { ev } => cb.leave_state(t, rec.nid, rec.tid, ev),
            RecordKind::EventTrigger { ev, value } => {
                cb.event_trigger(t, rec.nid, rec.tid, ev, value)
            }
            RecordKind::SendMessage { dst_nid, dst_tid, size, tag, comm } => {
                cb.send_message(t, rec.nid, rec.tid, dst_nid, dst_tid, size, tag, comm)
            }
            RecordKind::RecvMessage { src_nid, src_tid, size, tag, comm } => {
                cb.recv_message(t, rec.nid, rec.tid, src_nid, src_tid, size, tag, comm)
            }
            RecordKind::EndTrace => cb.end_trace(rec.nid, rec.tid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::EventKind;

    struct Nop;
    impl TraceCallbacks for Nop {}

    #[test]
    fn truncated_file_is_an_error() {
        let mut reg = EventRegistry::new();
        reg.intern("MPI", "MPI_Send()", EventKind::EntryExit);
        let data = [0u8; 30]; // not a multiple of 24
        let err = read_trace(&data[..], &reg, &mut Nop).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_file_is_zero_records() {
        let reg = EventRegistry::new();
        assert_eq!(read_trace(&[][..], &reg, &mut Nop).unwrap(), 0);
    }

    #[test]
    fn dispatch_order_is_file_order() {
        use crate::records::{Record, RecordKind, RECORD_BYTES};
        let mut reg = EventRegistry::new();
        let ev = reg.intern("MPI", "MPI_Recv()", EventKind::EntryExit);
        let mut data = Vec::new();
        for (i, kind) in [
            RecordKind::EnterState { ev },
            RecordKind::RecvMessage { src_nid: 2, src_tid: 0, size: 64, tag: 0, comm: 0 },
            RecordKind::LeaveState { ev },
        ]
        .into_iter()
        .enumerate()
        {
            let rec = Record { time_ns: i as u64 * 1000, nid: 0, tid: 0, kind };
            let mut buf = [0u8; RECORD_BYTES];
            rec.encode(&mut buf);
            data.extend_from_slice(&buf);
        }
        #[derive(Default)]
        struct Order(Vec<&'static str>);
        impl TraceCallbacks for Order {
            fn enter_state(&mut self, _t: f64, _n: u16, _i: u16, _e: i32) {
                self.0.push("enter");
            }
            fn leave_state(&mut self, _t: f64, _n: u16, _i: u16, _e: i32) {
                self.0.push("leave");
            }
            fn recv_message(
                &mut self,
                _t: f64,
                _n: u16,
                _i: u16,
                _s: u16,
                _st: u16,
                _sz: u32,
                _tg: u8,
                _c: u8,
            ) {
                self.0.push("recv");
            }
        }
        let mut o = Order::default();
        assert_eq!(read_trace(&data[..], &reg, &mut o).unwrap(), 3);
        assert_eq!(o.0, vec!["enter", "recv", "leave"]);
    }
}
