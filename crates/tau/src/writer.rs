//! The per-process trace writer used by the instrumentation layer.
//!
//! One `TauWriter` per MPI rank produces the `tautrace.<n>.0.0.trc`
//! binary file and the matching `events.<n>.edf`. Timestamps are supplied
//! by the caller (the emulator's simulated clock) in seconds and stored
//! in nanoseconds.

use crate::edf::{EventKind, EventRegistry};
use crate::records::{Record, RecordKind, RECORD_BYTES};
use crate::{edf_filename, trace_filename};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Writes one process's TAU trace and event files.
pub struct TauWriter {
    nid: u16,
    registry: EventRegistry,
    w: BufWriter<Box<dyn Write + Send>>,
    trc_path: PathBuf,
    edf_path: PathBuf,
    /// False for the discarding variant: nothing reaches disk.
    persistent: bool,
    records_written: u64,
}

fn to_ns(t: f64) -> u64 {
    debug_assert!(t >= 0.0);
    (t * 1e9).round() as u64
}

impl TauWriter {
    /// Creates `dir/tautrace.<node>.0.0.trc` (+ the edf path for
    /// [`TauWriter::finish`]).
    pub fn create(dir: &Path, node: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let trc_path = dir.join(trace_filename(node));
        let edf_path = dir.join(edf_filename(node));
        let file: Box<dyn Write + Send> = Box::new(File::create(&trc_path)?);
        Ok(TauWriter {
            nid: node as u16,
            registry: EventRegistry::new(),
            w: BufWriter::with_capacity(1 << 20, file),
            trc_path,
            edf_path,
            persistent: true,
            records_written: 0,
        })
    }

    /// A writer that counts records but persists nothing — used when
    /// only the instrumentation *cost* matters (e.g. the Table 2
    /// acquisition-mode timings), not the trace contents.
    pub fn create_discarding(node: usize) -> Self {
        TauWriter {
            nid: node as u16,
            registry: EventRegistry::new(),
            w: BufWriter::with_capacity(1 << 16, Box::new(std::io::sink())),
            trc_path: PathBuf::new(),
            edf_path: PathBuf::new(),
            persistent: false,
            records_written: 0,
        }
    }

    /// Registers (or finds) an `EntryExit` state event.
    pub fn state_event(&mut self, group: &str, name: &str) -> i32 {
        self.registry.intern(group, name, EventKind::EntryExit)
    }

    /// Registers (or finds) a `TriggerValue` counter event.
    pub fn counter_event(&mut self, name: &str) -> i32 {
        self.registry.intern("TAUEVENT", name, EventKind::TriggerValue)
    }

    fn push(&mut self, time: f64, kind: RecordKind) -> std::io::Result<()> {
        let rec = Record { time_ns: to_ns(time), nid: self.nid, tid: 0, kind };
        let mut buf = [0u8; RECORD_BYTES];
        rec.encode(&mut buf);
        self.records_written += 1;
        self.w.write_all(&buf)
    }

    /// Function entry.
    pub fn enter_state(&mut self, time: f64, ev: i32) -> std::io::Result<()> {
        self.push(time, RecordKind::EnterState { ev })
    }

    /// Function exit.
    pub fn leave_state(&mut self, time: f64, ev: i32) -> std::io::Result<()> {
        self.push(time, RecordKind::LeaveState { ev })
    }

    /// Counter sample (e.g. `PAPI_FP_OPS`).
    pub fn event_trigger(&mut self, time: f64, ev: i32, value: i64) -> std::io::Result<()> {
        self.push(time, RecordKind::EventTrigger { ev, value })
    }

    /// Message-send record (inside an `MPI_Send`-like state).
    pub fn send_message(
        &mut self,
        time: f64,
        dst: usize,
        size: u64,
        tag: u8,
        comm: u8,
    ) -> std::io::Result<()> {
        self.push(
            time,
            RecordKind::SendMessage {
                dst_nid: dst as u16,
                dst_tid: 0,
                size: size.min(u32::MAX as u64) as u32,
                tag,
                comm,
            },
        )
    }

    /// Message-receive record (inside `MPI_Recv`/`MPI_Wait`).
    pub fn recv_message(
        &mut self,
        time: f64,
        src: usize,
        size: u64,
        tag: u8,
        comm: u8,
    ) -> std::io::Result<()> {
        self.push(
            time,
            RecordKind::RecvMessage {
                src_nid: src as u16,
                src_tid: 0,
                size: size.min(u32::MAX as u64) as u32,
                tag,
                comm,
            },
        )
    }

    /// Records written so far (24 bytes each on disk).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Trace file path.
    pub fn trc_path(&self) -> &Path {
        &self.trc_path
    }

    /// Writes the end-of-trace record, flushes, and saves the edf file.
    pub fn finish(mut self, time: f64) -> std::io::Result<(PathBuf, PathBuf)> {
        self.push(time, RecordKind::EndTrace)?;
        self.w.flush()?;
        if self.persistent {
            self.registry.save(&self.edf_path)?;
        }
        Ok((self.trc_path, self.edf_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{read_trace_file, TraceCallbacks};

    #[derive(Default)]
    struct Count {
        enters: usize,
        leaves: usize,
        triggers: usize,
        sends: usize,
        recvs: usize,
        ended: bool,
    }

    impl TraceCallbacks for Count {
        fn enter_state(&mut self, _t: f64, _n: u16, _tid: u16, _ev: i32) {
            self.enters += 1;
        }
        fn leave_state(&mut self, _t: f64, _n: u16, _tid: u16, _ev: i32) {
            self.leaves += 1;
        }
        fn event_trigger(&mut self, _t: f64, _n: u16, _tid: u16, _ev: i32, _v: i64) {
            self.triggers += 1;
        }
        fn send_message(
            &mut self,
            _t: f64,
            _n: u16,
            _tid: u16,
            _dst: u16,
            _dtid: u16,
            _size: u32,
            _tag: u8,
            _comm: u8,
        ) {
            self.sends += 1;
        }
        fn recv_message(
            &mut self,
            _t: f64,
            _n: u16,
            _tid: u16,
            _src: u16,
            _stid: u16,
            _size: u32,
            _tag: u8,
            _comm: u8,
        ) {
            self.recvs += 1;
        }
        fn end_trace(&mut self, _n: u16, _tid: u16) {
            self.ended = true;
        }
    }

    #[test]
    fn writes_the_figure_3_sequence_and_reads_it_back() {
        let dir = std::env::temp_dir().join(format!("titr-tauw-{}", std::process::id()));
        let mut w = TauWriter::create(&dir, 1).unwrap();
        let send = w.state_event("MPI", "MPI_Send()");
        let fp = w.counter_event("PAPI_FP_OPS");
        let msz = w.counter_event("Message size sent to all nodes");
        // Figure 3's callback sequence around one MPI_Send.
        w.enter_state(1.42947, send).unwrap();
        w.event_trigger(1.42947, fp, 164_035_532).unwrap();
        w.event_trigger(1.42950, msz, 163_840).unwrap();
        w.send_message(1.42950, 0, 163_840, 1, 0).unwrap();
        w.event_trigger(1.42990, fp, 164_035_624).unwrap();
        w.leave_state(1.42990, send).unwrap();
        let (trc, edf) = w.finish(1.43).unwrap();

        let reg = EventRegistry::load(&edf).unwrap();
        assert!(reg.is_trigger(reg.id_of("PAPI_FP_OPS").unwrap()));
        let mut count = Count::default();
        read_trace_file(&trc, &reg, &mut count).unwrap();
        assert_eq!(count.enters, 1);
        assert_eq!(count.leaves, 1);
        assert_eq!(count.triggers, 3);
        assert_eq!(count.sends, 1);
        assert_eq!(count.recvs, 0);
        assert!(count.ended);
        // On-disk size: 7 records x 24 bytes.
        assert_eq!(std::fs::metadata(&trc).unwrap().len(), 7 * 24);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timestamps_preserve_nanoseconds() {
        let dir = std::env::temp_dir().join(format!("titr-taut-{}", std::process::id()));
        let mut w = TauWriter::create(&dir, 0).unwrap();
        let ev = w.state_event("MPI", "MPI_Init()");
        w.enter_state(0.000000123, ev).unwrap();
        let (trc, edf) = w.finish(1.0).unwrap();
        struct Grab(Vec<f64>);
        impl TraceCallbacks for Grab {
            fn enter_state(&mut self, t: f64, _n: u16, _tid: u16, _ev: i32) {
                self.0.push(t);
            }
        }
        let reg = EventRegistry::load(&edf).unwrap();
        let mut g = Grab(Vec::new());
        read_trace_file(&trc, &reg, &mut g).unwrap();
        assert!((g.0[0] - 0.000000123).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
