//! The binary trace record format.
//!
//! Every event is one fixed-size 24-byte record, mirroring TAU's packed
//! trace layout (the per-event byte cost is what Table 3's TAU-trace
//! sizes measure):
//!
//! ```text
//! offset size field
//! 0      4    ev      event id (EDF) or reserved message-record id
//! 4      2    nid     MPI rank
//! 6      2    tid     thread id (0 for our single-threaded processes)
//! 8      8    par     parameter (counter value / packed message info)
//! 16     8    time    timestamp, nanoseconds
//! ```
//!
//! Message records use reserved negative event ids and pack
//! `(partner, tag, comm, size)` into `par`, like TAU packs message
//! parameters.

/// Size of one record on disk.
pub const RECORD_BYTES: usize = 24;

/// Reserved event id for a message-send record.
pub const EV_SEND_MESSAGE: i32 = -101;
/// Reserved event id for a message-receive record.
pub const EV_RECV_MESSAGE: i32 = -102;
/// Reserved event id for end-of-trace.
pub const EV_END_TRACE: i32 = -103;

/// Decoded record kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Enter an `EntryExit` state (function call); `ev` names it.
    EnterState { ev: i32 },
    /// Leave an `EntryExit` state.
    LeaveState { ev: i32 },
    /// A `TriggerValue` counter sample; `value` is the running counter.
    EventTrigger { ev: i32, value: i64 },
    /// A message was sent to `(dst_nid, dst_tid)`.
    SendMessage { dst_nid: u16, dst_tid: u16, size: u32, tag: u8, comm: u8 },
    /// A message was received from `(src_nid, src_tid)`.
    RecvMessage { src_nid: u16, src_tid: u16, size: u32, tag: u8, comm: u8 },
    /// End of this process's trace.
    EndTrace,
}

/// One trace record: when, who, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    pub time_ns: u64,
    pub nid: u16,
    pub tid: u16,
    pub kind: RecordKind,
}

/// Leave-state records flip the sign bit of the event id, TAU-style; the
/// id itself stays positive and small.
const LEAVE_FLAG: i32 = 1 << 30;

fn pack_message(partner_nid: u16, partner_tid: u16, size: u32, tag: u8, comm: u8) -> i64 {
    ((partner_nid as u64) << 48
        | (partner_tid as u64) << 44
        | (tag as u64) << 36
        | (comm as u64) << 32
        | size as u64) as i64
}

fn unpack_message(par: i64) -> (u16, u16, u32, u8, u8) {
    let p = par as u64;
    (
        (p >> 48) as u16,
        ((p >> 44) & 0xf) as u16,
        (p & 0xffff_ffff) as u32,
        ((p >> 36) & 0xff) as u8,
        ((p >> 32) & 0xf) as u8,
    )
}

impl Record {
    /// Encodes into the 24-byte wire form.
    pub fn encode(&self, out: &mut [u8; RECORD_BYTES]) {
        let (ev, par): (i32, i64) = match self.kind {
            RecordKind::EnterState { ev } => (ev, 0),
            RecordKind::LeaveState { ev } => (ev | LEAVE_FLAG, 0),
            RecordKind::EventTrigger { ev, value } => (ev, value),
            RecordKind::SendMessage { dst_nid, dst_tid, size, tag, comm } => {
                (EV_SEND_MESSAGE, pack_message(dst_nid, dst_tid, size, tag, comm))
            }
            RecordKind::RecvMessage { src_nid, src_tid, size, tag, comm } => {
                (EV_RECV_MESSAGE, pack_message(src_nid, src_tid, size, tag, comm))
            }
            RecordKind::EndTrace => (EV_END_TRACE, 0),
        };
        out[0..4].copy_from_slice(&ev.to_le_bytes());
        out[4..6].copy_from_slice(&self.nid.to_le_bytes());
        out[6..8].copy_from_slice(&self.tid.to_le_bytes());
        out[8..16].copy_from_slice(&par.to_le_bytes());
        out[16..24].copy_from_slice(&self.time_ns.to_le_bytes());
    }

    /// Decodes a 24-byte wire record. The trigger/state distinction needs
    /// the event table, so triggers are returned as `EventTrigger` only
    /// when `is_trigger(ev)` says so.
    pub fn decode(
        buf: &[u8; RECORD_BYTES],
        is_trigger: impl Fn(i32) -> bool,
    ) -> Result<Record, BadRecord> {
        // panics: slice length is fixed by the preceding bounds check
        let ev = i32::from_le_bytes(buf[0..4].try_into().unwrap());
        // panics: slice length is fixed by the preceding bounds check
        let nid = u16::from_le_bytes(buf[4..6].try_into().unwrap());
        // panics: slice length is fixed by the preceding bounds check
        let tid = u16::from_le_bytes(buf[6..8].try_into().unwrap());
        // panics: slice length is fixed by the preceding bounds check
        let par = i64::from_le_bytes(buf[8..16].try_into().unwrap());
        // panics: slice length is fixed by the preceding bounds check
        let time_ns = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let kind = match ev {
            EV_SEND_MESSAGE => {
                let (n, t, s, tag, comm) = unpack_message(par);
                RecordKind::SendMessage { dst_nid: n, dst_tid: t, size: s, tag, comm }
            }
            EV_RECV_MESSAGE => {
                let (n, t, s, tag, comm) = unpack_message(par);
                RecordKind::RecvMessage { src_nid: n, src_tid: t, size: s, tag, comm }
            }
            EV_END_TRACE => RecordKind::EndTrace,
            e if e < 0 => return Err(BadRecord("unknown reserved event id")),
            e if e & LEAVE_FLAG != 0 => RecordKind::LeaveState { ev: e & !LEAVE_FLAG },
            e if is_trigger(e) => RecordKind::EventTrigger { ev: e, value: par },
            e => RecordKind::EnterState { ev: e },
        };
        Ok(Record { time_ns, nid, tid, kind })
    }
}

/// A record that cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadRecord(pub &'static str);

impl std::fmt::Display for BadRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad trace record: {}", self.0)
    }
}

impl std::error::Error for BadRecord {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: RecordKind, is_trigger: impl Fn(i32) -> bool) {
        let r = Record { time_ns: 1_429_470_000, nid: 1, tid: 0, kind };
        let mut buf = [0u8; RECORD_BYTES];
        r.encode(&mut buf);
        let back = Record::decode(&buf, is_trigger).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn state_records_roundtrip() {
        roundtrip(RecordKind::EnterState { ev: 49 }, |_| false);
        roundtrip(RecordKind::LeaveState { ev: 49 }, |_| false);
        roundtrip(RecordKind::EndTrace, |_| false);
    }

    #[test]
    fn trigger_records_roundtrip() {
        roundtrip(RecordKind::EventTrigger { ev: 1, value: 164_035_532 }, |e| e == 1);
        roundtrip(RecordKind::EventTrigger { ev: 46, value: 163_840 }, |e| e == 46);
    }

    #[test]
    fn message_records_roundtrip() {
        // The Figure 3 example: send of 163840 bytes to node 0.
        roundtrip(
            RecordKind::SendMessage { dst_nid: 0, dst_tid: 0, size: 163_840, tag: 1, comm: 0 },
            |_| false,
        );
        roundtrip(
            RecordKind::RecvMessage { src_nid: 999, src_tid: 3, size: u32::MAX, tag: 255, comm: 15 },
            |_| false,
        );
    }

    #[test]
    fn record_is_24_bytes() {
        assert_eq!(RECORD_BYTES, 24);
    }

    #[test]
    fn unknown_reserved_id_rejected() {
        let r = Record { time_ns: 0, nid: 0, tid: 0, kind: RecordKind::EndTrace };
        let mut buf = [0u8; RECORD_BYTES];
        r.encode(&mut buf);
        buf[0..4].copy_from_slice(&(-55i32).to_le_bytes());
        assert!(Record::decode(&buf, |_| false).is_err());
    }
}
