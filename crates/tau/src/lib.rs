//! `tau-sim` — a reimplementation of the TAU tracing substrate.
//!
//! The paper's acquisition chain (Section 4) instruments the MPI
//! application with **TAU**, which produces, per MPI process:
//!
//! * a binary trace file `tautrace.<node>.<context>.<thread>.trc` holding
//!   every event (function enter/leave, hardware-counter triggers,
//!   message send/receive records), and
//! * an event-definition file `events.<node>.edf` mapping the numeric
//!   event ids used in the trace to function descriptions — the
//!   factorisation that keeps TAU traces ~10× the size of the
//!   time-independent ones rather than far more (Section 6.3).
//!
//! TAU's binary format is read through the **Trace Format Reader** (TFR)
//! library, a callback API; [`reader`] reproduces it
//! ([`reader::TraceCallbacks`] mirrors TFR's eleven callback slots for
//! the event kinds our traces contain), and `tit-extract` implements the
//! callbacks to produce time-independent traces, exactly like the paper's
//! `tau2simgrid` tool.

#![forbid(unsafe_code)]

pub mod edf;
pub mod records;
pub mod reader;
pub mod writer;

pub use edf::{EventDef, EventKind, EventRegistry};
pub use reader::{read_trace_file, TraceCallbacks};
pub use records::{Record, RecordKind, RECORD_BYTES};
pub use writer::TauWriter;

/// Conventional TAU trace file name for an MPI rank (single-threaded:
/// context and thread are 0).
pub fn trace_filename(node: usize) -> String {
    format!("tautrace.{node}.0.0.trc")
}

/// Conventional event-definition file name.
pub fn edf_filename(node: usize) -> String {
    format!("events.{node}.edf")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_name_conventions() {
        assert_eq!(trace_filename(3), "tautrace.3.0.0.trc");
        assert_eq!(edf_filename(12), "events.12.edf");
    }
}
