//! Minimal JSON encoding helpers shared by every hand-rolled emitter.
//!
//! The repository's report writers (`titlint` findings, `titobs`
//! metrics/profiles, `tit-analyze` reports) emit JSON by hand to stay
//! dependency-free. The two defect classes such emitters historically
//! grow — unescaped control characters in strings and raw `NaN`/`inf`
//! in number position, both of which make the document unparseable —
//! are fixed here once: [`escape_into`]/[`push_string`] produce the
//! escapes RFC 8259 requires, and [`push_f64`] maps every non-finite
//! `f64` to `null` (JSON has no NaN or infinity literal).

use std::fmt::Write as _;

/// Appends the RFC 8259 string-escape of `s` to `out`, **without**
/// surrounding quotes.
///
/// `"` and `\` are backslash-escaped, `\n`/`\r`/`\t` use their short
/// forms, and every other control character below U+0020 becomes a
/// `\u00XX` escape. All other characters pass through verbatim.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `s` as a complete JSON string (quotes included) to `out`.
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Returns `s` as a complete JSON string (quotes included).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_string(&mut out, s);
    out
}

/// Appends `v` in JSON number position: finite values print with
/// Rust's shortest round-trip `Display`, non-finite values (which JSON
/// cannot represent) become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Returns `v` formatted as by [`push_f64`].
pub fn fmt_f64(v: f64) -> String {
    let mut out = String::new();
    push_f64(&mut out, v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_required_by_rfc_8259() {
        assert_eq!(escaped("plain"), "\"plain\"");
        assert_eq!(escaped("a\"b"), "\"a\\\"b\"");
        assert_eq!(escaped("a\\b"), "\"a\\\\b\"");
        assert_eq!(escaped("a\nb\rc\td"), "\"a\\nb\\rc\\td\"");
        assert_eq!(escaped("\u{1}\u{1f}"), "\"\\u0001\\u001f\"");
        // Characters at and above U+0020 pass through, including
        // non-ASCII ones.
        assert_eq!(escaped("é☃"), "\"é☃\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(-3e-9), "-0.000000003");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn push_variants_append() {
        let mut out = String::from("x:");
        push_string(&mut out, "y\nz");
        out.push(',');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "x:\"y\\nz\",null");
    }
}
