//! Trace containers and file IO.
//!
//! The paper stores one trace file per process
//! (`SG_process<N>.trace`, Figure 2) or, for small runs, a single merged
//! file (Figure 1). Both layouts are supported, in-memory and streaming.
//! Streaming matters: Section 6.5 acquires a 32.5 GiB trace, far beyond
//! what should be resident during replay.

use crate::action::{Action, Pid};
use crate::codec::{format_action_into, parse_line, ParseError};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Conventional per-process trace file name (`SG_process<N>.trace`).
pub fn process_trace_filename(rank: Pid) -> String {
    format!("SG_process{rank}.trace")
}

/// An in-memory time-independent trace: one action list per process.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TiTrace {
    /// `actions[rank]` is the ordered action list of process `rank`.
    pub actions: Vec<Vec<Action>>,
}

impl TiTrace {
    /// An empty trace for `nproc` processes.
    pub fn new(nproc: usize) -> Self {
        TiTrace { actions: vec![Vec::new(); nproc] }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.actions.len()
    }

    /// Total number of actions across all processes.
    pub fn num_actions(&self) -> usize {
        self.actions.iter().map(Vec::len).sum()
    }

    /// Appends an action to `rank`'s list, growing the process set if
    /// needed.
    pub fn push(&mut self, rank: Pid, action: Action) {
        if rank >= self.actions.len() {
            self.actions.resize(rank + 1, Vec::new());
        }
        self.actions[rank].push(action);
    }

    /// Parses a merged trace (one file, lines of all processes).
    pub fn from_reader<R: BufRead>(r: R) -> Result<Self, ParseError> {
        let mut t = TiTrace::default();
        for (i, line) in r.lines().enumerate() {
            let line = line.map_err(|e| ParseError {
                line: i + 1,
                message: format!("io error: {e}"),
            })?;
            if let Some((pid, a)) = parse_line(&line, i + 1)? {
                t.push(pid, a);
            }
        }
        Ok(t)
    }

    /// Parses a merged trace from a string.
    pub fn from_str_merged(s: &str) -> Result<Self, ParseError> {
        Self::from_reader(s.as_bytes())
    }

    /// Loads a merged trace file.
    pub fn load_merged(path: &Path) -> std::io::Result<Self> {
        let f = File::open(path)?;
        Self::from_reader(BufReader::with_capacity(1 << 20, f))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Loads per-process trace files `SG_process*.trace` from `dir`,
    /// stopping at the first missing rank.
    pub fn load_per_process(dir: &Path) -> std::io::Result<Self> {
        let mut t = TiTrace::default();
        let mut rank = 0;
        loop {
            let path = dir.join(process_trace_filename(rank));
            if !path.exists() {
                break;
            }
            let sub = Self::load_merged(&path)?;
            for (pid, actions) in sub.actions.into_iter().enumerate() {
                for a in actions {
                    t.push(pid, a);
                }
            }
            rank += 1;
        }
        if rank == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no SG_process0.trace in {}", dir.display()),
            ));
        }
        Ok(t)
    }

    /// Writes the merged single-file layout.
    pub fn write_merged<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut buf = String::with_capacity(64);
        for (rank, actions) in self.actions.iter().enumerate() {
            for a in actions {
                buf.clear();
                format_action_into(&mut buf, rank, a);
                buf.push('\n');
                w.write_all(buf.as_bytes())?;
            }
        }
        Ok(())
    }

    /// Saves the merged layout to `path`.
    pub fn save_merged(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::with_capacity(1 << 20, File::create(path)?);
        self.write_merged(&mut w)?;
        w.flush()
    }

    /// Merges adjacent `compute` actions per process (summing volumes).
    ///
    /// Extraction from TAU traces cannot distinguish two back-to-back
    /// CPU bursts — the `PAPI_FP_OPS` counter is only sampled at MPI
    /// boundaries — so extracted traces are always in this coalesced
    /// form; replay timing is unaffected (durations add).
    pub fn coalesce_computes(&mut self) {
        for actions in &mut self.actions {
            let mut out: Vec<Action> = Vec::with_capacity(actions.len());
            for a in actions.drain(..) {
                match (out.last_mut(), a) {
                    (
                        Some(Action::Compute { flops: acc }),
                        Action::Compute { flops },
                    ) => *acc += flops,
                    (_, a) => out.push(a),
                }
            }
            *actions = out;
        }
    }

    /// Saves one `SG_process<N>.trace` per process under `dir`; returns
    /// the paths.
    pub fn save_per_process(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.actions.len());
        for (rank, actions) in self.actions.iter().enumerate() {
            let path = dir.join(process_trace_filename(rank));
            let mut w = BufWriter::with_capacity(1 << 20, File::create(&path)?);
            let mut buf = String::with_capacity(64);
            for a in actions {
                buf.clear();
                format_action_into(&mut buf, rank, a);
                buf.push('\n');
                w.write_all(buf.as_bytes())?;
            }
            w.flush()?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// Streaming writer for one process's trace file.
///
/// Used by the extraction stage so multi-GiB traces never live in memory.
pub struct ProcessTraceWriter {
    rank: Pid,
    w: BufWriter<File>,
    buf: String,
    actions_written: u64,
}

impl ProcessTraceWriter {
    /// Creates `dir/SG_process<rank>.trace`.
    pub fn create(dir: &Path, rank: Pid) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let f = File::create(dir.join(process_trace_filename(rank)))?;
        Ok(ProcessTraceWriter {
            rank,
            w: BufWriter::with_capacity(1 << 20, f),
            buf: String::with_capacity(64),
            actions_written: 0,
        })
    }

    /// Appends one action.
    pub fn write(&mut self, action: &Action) -> std::io::Result<()> {
        self.buf.clear();
        format_action_into(&mut self.buf, self.rank, action);
        self.buf.push('\n');
        self.actions_written += 1;
        self.w.write_all(self.buf.as_bytes())
    }

    /// Number of actions written so far.
    pub fn actions_written(&self) -> u64 {
        self.actions_written
    }

    /// Flushes and closes the file.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.w.flush()
    }
}

/// Streaming reader over one process's trace file.
pub struct ProcessTraceReader {
    r: BufReader<File>,
    line: String,
    line_no: usize,
}

impl ProcessTraceReader {
    /// Opens `path` (a per-process or merged trace file).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Ok(ProcessTraceReader {
            r: BufReader::with_capacity(1 << 20, File::open(path)?),
            line: String::with_capacity(64),
            line_no: 0,
        })
    }

    /// Reads the next `(pid, action)`; `Ok(None)` at end of file.
    pub fn next_action(&mut self) -> std::io::Result<Option<(Pid, Action)>> {
        loop {
            self.line.clear();
            let n = self.r.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            match parse_line(&self.line, self.line_no) {
                Ok(Some(pa)) => return Ok(Some(pa)),
                Ok(None) => {} // comment or blank line: read on
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_trace() -> TiTrace {
        // Figure 1's ring, one loop iteration.
        let mut t = TiTrace::new(4);
        t.push(0, Action::Compute { flops: 1e6 });
        t.push(0, Action::Send { dst: 1, bytes: 1e6 });
        t.push(0, Action::Recv { src: 3, bytes: None });
        for p in 1..4 {
            t.push(p, Action::Recv { src: p - 1, bytes: None });
            t.push(p, Action::Compute { flops: 1e6 });
            t.push(p, Action::Send { dst: (p + 1) % 4, bytes: 1e6 });
        }
        t
    }

    #[test]
    fn merged_roundtrip() {
        let t = ring_trace();
        let mut buf = Vec::new();
        t.write_merged(&mut buf).unwrap();
        let t2 = TiTrace::from_reader(&buf[..]).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn merged_matches_figure_1_text() {
        let t = ring_trace();
        let mut buf = Vec::new();
        t.write_merged(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("p0 compute 1000000\n"));
        assert!(text.contains("p0 send p1 1000000\n"));
        assert!(text.contains("p0 recv p3\n"));
        assert!(text.contains("p3 send p0 1000000\n"));
    }

    #[test]
    fn per_process_files_roundtrip() {
        let dir = std::env::temp_dir().join(format!("titr-test-{}", std::process::id()));
        let t = ring_trace();
        let paths = t.save_per_process(&dir).unwrap();
        assert_eq!(paths.len(), 4);
        assert!(paths[2].file_name().unwrap().to_str().unwrap() == "SG_process2.trace");
        let t2 = TiTrace::load_per_process(&dir).unwrap();
        assert_eq!(t, t2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_writer_reader_roundtrip() {
        let dir =
            std::env::temp_dir().join(format!("titr-stream-{}", std::process::id()));
        let mut w = ProcessTraceWriter::create(&dir, 3).unwrap();
        let actions = [
            Action::CommSize { nproc: 8 },
            Action::Compute { flops: 5e8 },
            Action::Isend { dst: 0, bytes: 1024.0 },
            Action::Wait,
        ];
        for a in &actions {
            w.write(a).unwrap();
        }
        assert_eq!(w.actions_written(), 4);
        w.finish().unwrap();
        let mut r =
            ProcessTraceReader::open(&dir.join(process_trace_filename(3))).unwrap();
        let mut got = Vec::new();
        while let Some((pid, a)) = r.next_action().unwrap() {
            assert_eq!(pid, 3);
            got.push(a);
        }
        assert_eq!(got, actions);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coalesce_merges_adjacent_computes_only() {
        let mut t = TiTrace::new(1);
        t.push(0, Action::Compute { flops: 10.0 });
        t.push(0, Action::Compute { flops: 5.0 });
        t.push(0, Action::Barrier);
        t.push(0, Action::Compute { flops: 1.0 });
        t.push(0, Action::Compute { flops: 2.0 });
        t.coalesce_computes();
        assert_eq!(
            t.actions[0],
            vec![
                Action::Compute { flops: 15.0 },
                Action::Barrier,
                Action::Compute { flops: 3.0 }
            ]
        );
    }

    #[test]
    fn push_grows_process_set() {
        let mut t = TiTrace::default();
        t.push(5, Action::Barrier);
        assert_eq!(t.num_processes(), 6);
        assert_eq!(t.num_actions(), 1);
    }

    #[test]
    fn load_missing_dir_errors() {
        let dir = std::env::temp_dir().join("titr-definitely-missing-xyz");
        assert!(TiTrace::load_per_process(&dir).is_err());
    }
}
