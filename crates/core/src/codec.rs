//! Text codec for time-independent traces.
//!
//! One action per line, whitespace separated:
//!
//! ```text
//! <pid> <keyword> <args...>
//! ```
//!
//! where `<pid>` is `p` + rank. Volumes accept both integer (`163840`)
//! and scientific (`1e6`) notation, as in the paper's Figure 1. Writing
//! uses integer form whenever the volume is integral — the compact form
//! dominates the trace-size measurements of Table 3.

use crate::action::{Action, Pid};
use std::fmt::Write as _;

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number when known (0 otherwise).
    pub line: usize,
    /// What was wrong with the line.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_pid(tok: &str, line: usize) -> Result<Pid, ParseError> {
    let digits = tok.strip_prefix('p').unwrap_or(tok);
    digits
        .parse::<usize>()
        .map_err(|_| err(line, format!("invalid process id {tok:?}")))
}

fn parse_vol(tok: &str, line: usize) -> Result<f64, ParseError> {
    let v: f64 =
        tok.parse().map_err(|_| err(line, format!("invalid volume {tok:?}")))?;
    if !v.is_finite() || v < 0.0 {
        return Err(err(line, format!("volume must be finite and >= 0, got {tok:?}")));
    }
    Ok(v)
}

/// Parses one trace line into `(pid, action)`.
///
/// Empty lines and `#` comments yield `Ok(None)`.
pub fn parse_line(raw: &str, line_no: usize) -> Result<Option<(Pid, Action)>, ParseError> {
    let raw = raw.trim();
    if raw.is_empty() || raw.starts_with('#') {
        return Ok(None);
    }
    let mut it = it_fields(raw);
    let pid_tok = it.next().ok_or_else(|| err(line_no, "empty line"))?;
    let pid = parse_pid(pid_tok, line_no)?;
    let kw = it.next().ok_or_else(|| err(line_no, "missing action keyword"))?;
    let mut arg = |what: &str| {
        it.next().ok_or_else(|| err(line_no, format!("{kw}: missing {what}")))
    };
    let action = match kw {
        "compute" => Action::Compute { flops: parse_vol(arg("volume")?, line_no)? },
        "send" => Action::Send {
            dst: parse_pid(arg("destination")?, line_no)?,
            bytes: parse_vol(arg("volume")?, line_no)?,
        },
        "Isend" | "isend" => Action::Isend {
            dst: parse_pid(arg("destination")?, line_no)?,
            bytes: parse_vol(arg("volume")?, line_no)?,
        },
        "recv" => {
            let src = parse_pid(arg("source")?, line_no)?;
            let bytes = match it_next_opt(&mut it) {
                Some(tok) => Some(parse_vol(tok, line_no)?),
                None => None,
            };
            Action::Recv { src, bytes }
        }
        "Irecv" | "irecv" => {
            let src = parse_pid(arg("source")?, line_no)?;
            let bytes = match it_next_opt(&mut it) {
                Some(tok) => Some(parse_vol(tok, line_no)?),
                None => None,
            };
            Action::Irecv { src, bytes }
        }
        "bcast" => Action::Bcast { bytes: parse_vol(arg("volume")?, line_no)? },
        "reduce" => Action::Reduce {
            vcomm: parse_vol(arg("vcomm")?, line_no)?,
            vcomp: parse_vol(arg("vcomp")?, line_no)?,
        },
        "allReduce" | "allreduce" => Action::AllReduce {
            vcomm: parse_vol(arg("vcomm")?, line_no)?,
            vcomp: parse_vol(arg("vcomp")?, line_no)?,
        },
        "barrier" => Action::Barrier,
        "comm_size" => Action::CommSize {
            nproc: arg("#proc")?
                .parse()
                .map_err(|_| err(line_no, "comm_size: invalid process count"))?,
        },
        "wait" => Action::Wait,
        other => return Err(err(line_no, format!("unknown action keyword {other:?}"))),
    };
    if it.next().is_some() {
        return Err(err(line_no, format!("{kw}: trailing garbage")));
    }
    Ok(Some((pid, action)))
}

fn it_fields(s: &str) -> std::str::SplitWhitespace<'_> {
    s.split_whitespace()
}

fn it_next_opt<'a>(it: &mut std::str::SplitWhitespace<'a>) -> Option<&'a str> {
    it.next()
}

/// Appends a volume in its most compact form (integer when integral).
fn push_vol(out: &mut String, v: f64) {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Appends the canonical line for `(pid, action)` (no trailing newline).
pub fn format_action_into(out: &mut String, pid: Pid, action: &Action) {
    let _ = write!(out, "p{pid} {}", action.keyword());
    match action {
        Action::Compute { flops } => {
            out.push(' ');
            push_vol(out, *flops);
        }
        Action::Send { dst, bytes } | Action::Isend { dst, bytes } => {
            let _ = write!(out, " p{dst} ");
            push_vol(out, *bytes);
        }
        Action::Recv { src, bytes } | Action::Irecv { src, bytes } => {
            let _ = write!(out, " p{src}");
            if let Some(b) = bytes {
                out.push(' ');
                push_vol(out, *b);
            }
        }
        Action::Bcast { bytes } => {
            out.push(' ');
            push_vol(out, *bytes);
        }
        Action::Reduce { vcomm, vcomp } | Action::AllReduce { vcomm, vcomp } => {
            out.push(' ');
            push_vol(out, *vcomm);
            out.push(' ');
            push_vol(out, *vcomp);
        }
        Action::CommSize { nproc } => {
            let _ = write!(out, " {nproc}");
        }
        Action::Barrier | Action::Wait => {}
    }
}

/// Formats the canonical line for `(pid, action)`.
pub fn format_action(pid: Pid, action: &Action) -> String {
    let mut s = String::with_capacity(24);
    format_action_into(&mut s, pid, action);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pid: Pid, a: Action) {
        let line = format_action(pid, &a);
        let (p2, a2) = parse_line(&line, 1).unwrap().unwrap();
        assert_eq!(p2, pid, "pid roundtrip for {line:?}");
        assert_eq!(a2, a, "action roundtrip for {line:?}");
    }

    #[test]
    fn figure_1_lines_parse() {
        // The exact trace of the paper's Figure 1 (right-hand side).
        let lines = [
            "p0 compute 1e6",
            "p0 send p1 1e6",
            "p0 recv p3",
            "p1 recv p0",
            "p1 compute 1e6",
            "p1 send p2 1e6",
        ];
        for (i, l) in lines.iter().enumerate() {
            let (pid, _) = parse_line(l, i + 1).unwrap().unwrap();
            assert_eq!(pid, usize::from(i >= 3));
        }
        let (_, a) = parse_line("p0 compute 1e6", 1).unwrap().unwrap();
        assert_eq!(a, Action::Compute { flops: 1e6 });
        let (_, a) = parse_line("p0 send p1 1e6", 1).unwrap().unwrap();
        assert_eq!(a, Action::Send { dst: 1, bytes: 1e6 });
        let (_, a) = parse_line("p0 recv p3", 1).unwrap().unwrap();
        assert_eq!(a, Action::Recv { src: 3, bytes: None });
    }

    #[test]
    fn all_actions_roundtrip() {
        roundtrip(0, Action::Compute { flops: 1e6 });
        roundtrip(1, Action::Send { dst: 0, bytes: 163840.0 });
        roundtrip(2, Action::Isend { dst: 5, bytes: 1.5 });
        roundtrip(3, Action::Recv { src: 2, bytes: None });
        roundtrip(3, Action::Recv { src: 2, bytes: Some(64.0) });
        roundtrip(4, Action::Irecv { src: 1, bytes: None });
        roundtrip(5, Action::Bcast { bytes: 4096.0 });
        roundtrip(6, Action::Reduce { vcomm: 8.0, vcomp: 16.0 });
        roundtrip(7, Action::AllReduce { vcomm: 40.0, vcomp: 80.0 });
        roundtrip(8, Action::Barrier);
        roundtrip(9, Action::CommSize { nproc: 64 });
        roundtrip(10, Action::Wait);
    }

    #[test]
    fn integral_volumes_written_compactly() {
        assert_eq!(
            format_action(1, &Action::Send { dst: 0, bytes: 163840.0 }),
            "p1 send p0 163840"
        );
    }

    #[test]
    fn comments_and_blanks_skipped() {
        assert_eq!(parse_line("", 1).unwrap(), None);
        assert_eq!(parse_line("   ", 2).unwrap(), None);
        assert_eq!(parse_line("# header", 3).unwrap(), None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_line("p0 fly 12", 7).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("fly"));
    }

    #[test]
    fn rejects_negative_and_nan_volumes() {
        assert!(parse_line("p0 compute -5", 1).is_err());
        assert!(parse_line("p0 compute NaN", 1).is_err());
        assert!(parse_line("p0 compute inf", 1).is_err());
    }

    #[test]
    fn rejects_trailing_garbage_and_missing_args() {
        assert!(parse_line("p0 barrier extra", 1).is_err());
        assert!(parse_line("p0 send p1", 1).is_err());
        assert!(parse_line("p0 send", 1).is_err());
        assert!(parse_line("p0", 1).is_err());
    }

    #[test]
    fn scientific_notation_accepted() {
        let (_, a) = parse_line("p0 compute 2.5e9", 1).unwrap().unwrap();
        assert_eq!(a, Action::Compute { flops: 2.5e9 });
    }
}
