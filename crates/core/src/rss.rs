//! Resident-set-size introspection for memory-budget accounting.
//!
//! The `--mem-budget` governor ([`crate::membudget`]) bounds what the
//! replayer *charges*; this module reads back what the kernel actually
//! *granted*, so the CLI self-report and the scale benchmark can assert
//! "peak RSS stayed under the cap" against ground truth instead of
//! internal bookkeeping.
//!
//! Linux-only by nature (`/proc/self/status` and `/proc/self/statm`);
//! on other platforms every probe returns `None` and callers print
//! nothing rather than lying.

/// Peak resident set size (`VmHWM`) of the calling process in bytes,
/// or `None` when `/proc` is unavailable or unparseable.
pub fn peak_rss_bytes() -> Option<u64> {
    status_kib("VmHWM:").map(|kib| kib * 1024)
}

/// Current resident set size in bytes: `VmRSS` from
/// `/proc/self/status`, falling back to `/proc/self/statm` (resident
/// pages × 4 KiB, the fixed page size on every platform we target).
pub fn current_rss_bytes() -> Option<u64> {
    if let Some(kib) = status_kib("VmRSS:") {
        return Some(kib * 1024);
    }
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// Extracts a `kB` field from `/proc/self/status` by line prefix.
fn status_kib(prefix: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(prefix))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_sane_on_linux() {
        // The test suite runs on Linux: both probes must answer, peak
        // must dominate current, and a live process is at least a page.
        let peak = peak_rss_bytes().expect("/proc/self/status VmHWM");
        let cur = current_rss_bytes().expect("VmRSS or statm");
        assert!(peak >= 4096, "peak {peak}");
        assert!(cur >= 4096, "current {cur}");
        assert!(peak >= cur / 2, "peak {peak} vs current {cur}");
    }

    #[test]
    fn peak_rss_tracks_allocation() {
        let before = peak_rss_bytes().unwrap();
        // Touch 32 MiB so the high-water mark provably moves if it was
        // ever going to (it may already be higher from other tests).
        let v = vec![7u8; 32 << 20];
        assert_eq!(v[31 << 20], 7);
        let after = peak_rss_bytes().unwrap();
        assert!(after >= before, "{after} < {before}");
    }
}
