//! The `TICK1` checkpoint container and its little binary codec.
//!
//! Long replays (the paper's §6.5 runs a 1024-process LU class-D trace)
//! must survive interruption: a checkpoint written every N actions lets
//! a killed run resume instead of restarting from zero. This module
//! owns the *container* — a versioned, checksummed file written
//! atomically — while the replay layer owns the *payload* (the engine
//! snapshot serialization), keeping `tit-core` free of simulation
//! dependencies.
//!
//! # File layout
//!
//! ```text
//! offset  size  field
//! 0       5     magic "TICK1"
//! 5       4     format version, u32 LE (currently 1)
//! 9       8     payload length, u64 LE
//! 17      8     FNV-1a-64 checksum of the payload, u64 LE
//! 25      n     payload bytes
//! ```
//!
//! Everything is little-endian. The checksum is integrity-only (bit
//! rot, truncation), not authentication. Files are written through
//! [`crate::atomicio::write_atomic`], so a crash during a checkpoint
//! write leaves the *previous* checkpoint intact — the resume path
//! never sees a half-written file, and even a damaged one fails closed
//! through the checksum.
//!
//! [`Enc`]/[`Dec`] are the deterministic byte codec payloads are built
//! with: fixed-width little-endian integers, `f64` as raw IEEE-754
//! bits (round-trips NaN and signed zero — bit-identical resume depends
//! on it), and length-prefixed byte strings.

use std::io;
use std::path::Path;

/// Container magic.
pub const MAGIC: &[u8; 5] = b"TICK1";

/// Current container format version.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 5 + 4 + 8 + 8;

/// FNV-1a 64-bit hash — the workspace's standard tiny checksum (also
/// used by the trace compressor): well-spread, dependency-free, and
/// stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes `payload` as a `TICK1` file at `path`, atomically.
pub fn write_checkpoint(path: &Path, payload: &[u8]) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    crate::atomicio::write_atomic(path, &bytes)
}

fn bad(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Reads and validates a `TICK1` file, returning its payload. Magic,
/// version, length and checksum mismatches all surface as
/// `InvalidData` naming what was wrong.
pub fn read_checkpoint(path: &Path) -> io::Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN {
        return Err(bad(format!(
            "checkpoint {} is {} bytes, shorter than the {HEADER_LEN}-byte header",
            path.display(),
            bytes.len()
        )));
    }
    if &bytes[..5] != MAGIC {
        return Err(bad(format!("checkpoint {} has wrong magic", path.display())));
    }
    let version = u32::from_le_bytes(bytes[5..9].try_into().unwrap_or([0; 4]));
    if version != VERSION {
        return Err(bad(format!(
            "checkpoint {} has format version {version}, this build reads {VERSION}",
            path.display()
        )));
    }
    let len = u64::from_le_bytes(bytes[9..17].try_into().unwrap_or([0; 8]));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(bad(format!(
            "checkpoint {} declares {len} payload bytes but carries {} (truncated?)",
            path.display(),
            payload.len()
        )));
    }
    let sum = u64::from_le_bytes(bytes[17..25].try_into().unwrap_or([0; 8]));
    let actual = fnv1a(payload);
    if sum != actual {
        return Err(bad(format!(
            "checkpoint {} checksum mismatch: header {sum:#018x}, payload {actual:#018x}",
            path.display()
        )));
    }
    Ok(payload.to_vec())
}

/// Deterministic byte encoder for checkpoint payloads.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits — exact round-trip,
    /// including NaN payloads and signed zeros.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends an `Option` discriminant followed by the value when set.
    pub fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.usize(x);
            }
            None => self.u8(0),
        }
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked decoder over a checkpoint payload: every take validates the
/// remaining length, so truncated or corrupt payloads error instead of
/// panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "checkpoint payload truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                )
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().map_err(|_| "u32 slice".to_string())?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().map_err(|_| "u64 slice".to_string())?))
    }

    /// Reads a `usize` (stored as `u64`; errors when it would not fit).
    pub fn usize(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("usize value {v} overflows this platform"))
    }

    /// Reads an `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads an optional `usize` written by [`Enc::opt_usize`].
    pub fn opt_usize(&mut self) -> Result<Option<usize>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            d => Err(format!("invalid Option discriminant {d}")),
        }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Errors unless the payload was fully consumed — catches payloads
    /// with trailing garbage (e.g. a version skew in the producer).
    pub fn expect_done(&self) -> Result<(), String> {
        if self.is_done() {
            Ok(())
        } else {
            Err(format!(
                "checkpoint payload has {} trailing bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("titc-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn codec_round_trips_every_type() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.usize(12345);
        e.f64(-0.0);
        e.f64(f64::INFINITY);
        e.f64(1.000_000_000_000_000_2);
        e.bytes(b"payload");
        e.opt_usize(None);
        e.opt_usize(Some(9));
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64().unwrap(), f64::INFINITY);
        assert_eq!(d.f64().unwrap().to_bits(), 1.000_000_000_000_000_2f64.to_bits());
        assert_eq!(d.bytes().unwrap(), b"payload");
        assert_eq!(d.opt_usize().unwrap(), None);
        assert_eq!(d.opt_usize().unwrap(), Some(9));
        d.expect_done().unwrap();
    }

    #[test]
    fn decoder_errors_on_truncation_not_panics() {
        let mut e = Enc::new();
        e.u64(42);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes[..5]);
        assert!(d.u64().is_err());
        // Length prefix larger than the buffer.
        let mut e = Enc::new();
        e.usize(1 << 40);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert!(d.bytes().is_err());
    }

    #[test]
    fn container_round_trips() {
        let d = tmp_dir("roundtrip");
        let p = d.join("state.tick");
        write_checkpoint(&p, b"engine state here").unwrap();
        assert_eq!(read_checkpoint(&p).unwrap(), b"engine state here");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn container_rejects_damage() {
        let d = tmp_dir("damage");
        let p = d.join("state.tick");
        write_checkpoint(&p, b"engine state here").unwrap();
        let good = std::fs::read(&p).unwrap();

        // Truncated payload.
        std::fs::write(&p, &good[..good.len() - 3]).unwrap();
        let e = read_checkpoint(&p).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("truncated"), "{e}");

        // Flipped payload bit.
        let mut flipped = good.clone();
        *flipped.last_mut().unwrap() ^= 0x10;
        std::fs::write(&p, &flipped).unwrap();
        let e = read_checkpoint(&p).unwrap_err();
        assert!(e.to_string().contains("checksum"), "{e}");

        // Wrong magic.
        let mut wrong = good.clone();
        wrong[0] = b'X';
        std::fs::write(&p, &wrong).unwrap();
        assert!(read_checkpoint(&p).unwrap_err().to_string().contains("magic"));

        // Future version.
        let mut newer = good;
        newer[5] = 99;
        std::fs::write(&p, &newer).unwrap();
        assert!(read_checkpoint(&p).unwrap_err().to_string().contains("version"));
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
