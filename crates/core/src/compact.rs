//! Compact struct-of-arrays action storage with interned tags.
//!
//! A boxed [`Action`] costs 24 bytes (discriminant plus two `f64`
//! payload slots), and a [`TiTrace`] adds one `Vec` per rank on top.
//! The paper's Section 6.5 replay keeps a class D × 1024 trace resident
//! — hundreds of millions of actions — so the replay simulator stores
//! traces as a [`CompactTrace`]: four parallel arrays (interned `u32`
//! [`tag`], `u32` peer, `f64` volume, and a rank-offset index) at
//! 16 bytes per action, reconstructing each [`Action`] on demand.
//!
//! The encoding is lossless: [`CompactTrace::from_trace`] followed by
//! [`CompactTrace::to_trace`] reproduces the input exactly for every
//! trace the codec can parse. Two trace properties make that possible:
//!
//! * volumes are finite (`NaN` never parses), freeing the `NaN` bit
//!   pattern to encode a receive *without* a byte annotation;
//! * `reduce`/`allReduce` carry two volumes but no peer, freeing the
//!   peer slot to index a side table holding the second volume.
//!
//! ```
//! use tit_core::{Action, TiTrace};
//! use tit_core::compact::CompactTrace;
//!
//! let mut t = TiTrace::new(2);
//! t.push(0, Action::Send { dst: 1, bytes: 1e6 });
//! t.push(1, Action::Recv { src: 0, bytes: None });
//! let c = CompactTrace::from_trace(&t).unwrap();
//! assert_eq!(c.num_actions(), 2);
//! assert_eq!(c.to_trace(), t); // lossless round-trip
//! ```

use crate::action::{Action, Pid};
use crate::trace::TiTrace;

pub mod tag {
    //! Interned action tag ids: one `u32` per Table 1 keyword.
    //!
    //! Values 1–10 deliberately match the replay layer's observer tags
    //! (`tit_replay::tags`), so a tag read out of a compact trace can
    //! label timed-trace entries without translation; `comm_size` never
    //! reaches the observer layer and takes the next free id.
    //!
    //! ```
    //! use tit_core::{compact::tag, Action};
    //!
    //! let a = Action::AllReduce { vcomm: 8.0, vcomp: 16.0 };
    //! assert_eq!(tag::of(&a), tag::ALLREDUCE);
    //! assert_eq!(tag::keyword(tag::ALLREDUCE), Some("allReduce"));
    //! assert_eq!(tag::from_keyword("allReduce"), Some(tag::ALLREDUCE));
    //! ```

    use crate::action::Action;

    /// `compute` — CPU burst.
    pub const COMPUTE: u32 = 1;
    /// `send` — blocking send.
    pub const SEND: u32 = 2;
    /// `Isend` — non-blocking send.
    pub const ISEND: u32 = 3;
    /// `recv` — blocking receive.
    pub const RECV: u32 = 4;
    /// `Irecv` — non-blocking receive.
    pub const IRECV: u32 = 5;
    /// `bcast` — broadcast rooted at process 0.
    pub const BCAST: u32 = 6;
    /// `reduce` — reduction to process 0.
    pub const REDUCE: u32 = 7;
    /// `allReduce` — reduction plus broadcast.
    pub const ALLREDUCE: u32 = 8;
    /// `barrier` — synchronisation barrier.
    pub const BARRIER: u32 = 9;
    /// `wait` — completes the oldest pending non-blocking request.
    pub const WAIT: u32 = 10;
    /// `comm_size` — declares the communicator size.
    pub const COMM_SIZE: u32 = 11;

    /// Every interned tag, in numeric order.
    pub const ALL: [u32; 11] = [
        COMPUTE, SEND, ISEND, RECV, IRECV, BCAST, REDUCE, ALLREDUCE, BARRIER, WAIT,
        COMM_SIZE,
    ];

    /// The trace keyword a tag stands for; `None` for unknown ids.
    pub fn keyword(tag: u32) -> Option<&'static str> {
        Some(match tag {
            COMPUTE => "compute",
            SEND => "send",
            ISEND => "Isend",
            RECV => "recv",
            IRECV => "Irecv",
            BCAST => "bcast",
            REDUCE => "reduce",
            ALLREDUCE => "allReduce",
            BARRIER => "barrier",
            WAIT => "wait",
            COMM_SIZE => "comm_size",
            _ => return None,
        })
    }

    /// The interned tag of an action.
    pub fn of(action: &Action) -> u32 {
        match action {
            Action::Compute { .. } => COMPUTE,
            Action::Send { .. } => SEND,
            Action::Isend { .. } => ISEND,
            Action::Recv { .. } => RECV,
            Action::Irecv { .. } => IRECV,
            Action::Bcast { .. } => BCAST,
            Action::Reduce { .. } => REDUCE,
            Action::AllReduce { .. } => ALLREDUCE,
            Action::Barrier => BARRIER,
            Action::CommSize { .. } => COMM_SIZE,
            Action::Wait => WAIT,
        }
    }

    /// Inverse of [`keyword`]: resolves a Table 1 keyword to its tag.
    pub fn from_keyword(kw: &str) -> Option<u32> {
        ALL.iter().copied().find(|&t| keyword(t) == Some(kw))
    }
}

/// Peer-slot sentinel for actions without a peer rank.
pub(crate) const NO_PEER: u32 = u32::MAX;

/// Why a trace cannot be interned into a [`CompactTrace`].
///
/// Both cases are outside what the codec can produce from a trace file
/// (pids are bounded by memory long before `u32::MAX`, and `NaN` never
/// parses), so hitting one means the in-memory trace was built by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactError {
    /// A peer rank or communicator size exceeds the `u32` intern range.
    PeerTooLarge {
        /// The offending rank or communicator size.
        value: usize,
    },
    /// A volume is `NaN`, which the encoding reserves as the sentinel
    /// for "receive without a byte annotation".
    NanVolume,
    /// More `reduce`/`allReduce` actions than the side table can index.
    TooManyReduces,
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::PeerTooLarge { value } => {
                write!(f, "rank or communicator size {value} exceeds the u32 intern range")
            }
            CompactError::NanVolume => {
                write!(f, "NaN volume (reserved for unannotated receives)")
            }
            CompactError::TooManyReduces => {
                write!(f, "too many reduce actions for the u32 side-table index")
            }
        }
    }
}

impl std::error::Error for CompactError {}

/// A time-independent trace in struct-of-arrays form: 16 bytes per
/// action instead of a boxed [`Action`] list per rank.
///
/// Actions are stored rank-major: rank `r` owns the index range
/// `offsets[r]..offsets[r + 1]` of the three parallel entry arrays.
/// Build one with [`CompactTrace::from_trace`], or incrementally with
/// [`CompactTrace::begin_process`] / [`CompactTrace::push`].
///
/// ```
/// use tit_core::{Action, TiTrace};
/// use tit_core::compact::CompactTrace;
///
/// let mut c = CompactTrace::new();
/// c.begin_process(); // opens rank 0
/// c.push(&Action::Compute { flops: 1e6 }).unwrap();
/// c.begin_process(); // opens rank 1
/// c.push(&Action::Reduce { vcomm: 64.0, vcomp: 1000.0 }).unwrap();
/// assert_eq!(c.num_processes(), 2);
/// assert_eq!(c.get(1, 0), Some(Action::Reduce { vcomm: 64.0, vcomp: 1000.0 }));
/// assert_eq!(c.get(0, 1), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompactTrace {
    /// Rank boundaries: rank `r` spans entries `offsets[r]..offsets[r+1]`.
    offsets: Vec<usize>,
    /// Interned [`tag`] id per entry.
    tags: Vec<u32>,
    /// Peer rank (send/recv), communicator size (`comm_size`), side-table
    /// index (`reduce`/`allReduce`) or [`NO_PEER`].
    peers: Vec<u32>,
    /// Primary volume; `NaN` encodes a receive without a byte annotation.
    vols: Vec<f64>,
    /// Side table of `vcomp` volumes for `reduce`/`allReduce` entries.
    aux: Vec<f64>,
}

impl Default for CompactTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactTrace {
    /// An empty compact trace (no processes, no actions).
    pub fn new() -> Self {
        CompactTrace {
            offsets: vec![0],
            tags: Vec::new(),
            peers: Vec::new(),
            vols: Vec::new(),
            aux: Vec::new(),
        }
    }

    /// Interns a boxed trace. Fails only on traces no trace file can
    /// produce (see [`CompactError`]).
    pub fn from_trace(t: &TiTrace) -> Result<Self, CompactError> {
        let mut c = CompactTrace::new();
        let n = t.num_actions();
        c.tags.reserve_exact(n);
        c.peers.reserve_exact(n);
        c.vols.reserve_exact(n);
        c.offsets.reserve_exact(t.num_processes());
        for actions in &t.actions {
            c.begin_process();
            for a in actions {
                c.push(a)?;
            }
        }
        Ok(c)
    }

    /// Expands back to the boxed per-rank form (the exact inverse of
    /// [`CompactTrace::from_trace`]).
    pub fn to_trace(&self) -> TiTrace {
        let mut t = TiTrace::new(self.num_processes());
        for (rank, actions) in t.actions.iter_mut().enumerate() {
            actions.extend(self.iter_rank(rank));
        }
        t
    }

    /// Opens the action list of the next rank; subsequent
    /// [`CompactTrace::push`] calls append to it.
    pub fn begin_process(&mut self) {
        self.offsets.push(self.tags.len());
    }

    /// Appends an action to the most recently opened rank (opening rank
    /// 0 implicitly if none is).
    pub fn push(&mut self, action: &Action) -> Result<(), CompactError> {
        if self.offsets.len() == 1 {
            self.begin_process();
        }
        let (t, peer, vol) = self.encode(action)?;
        self.tags.push(t);
        self.peers.push(peer);
        self.vols.push(vol);
        // panics: offsets always holds at least the opening boundary
        *self.offsets.last_mut().unwrap() += 1;
        Ok(())
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of actions across all processes.
    pub fn num_actions(&self) -> usize {
        self.tags.len()
    }

    /// Number of actions of one rank (0 for out-of-range ranks).
    pub fn rank_len(&self, rank: usize) -> usize {
        self.rank_span(rank).len()
    }

    /// `rank`'s `index`-th action, or `None` out of range.
    pub fn get(&self, rank: usize, index: usize) -> Option<Action> {
        let span = self.rank_span(rank);
        let i = span.start.checked_add(index)?;
        if i >= span.end {
            return None;
        }
        Some(self.decode(i))
    }

    /// Iterates one rank's actions in order (empty for out-of-range
    /// ranks), decoding on the fly.
    pub fn iter_rank(&self, rank: usize) -> impl Iterator<Item = Action> + '_ {
        self.rank_span(rank).map(move |i| self.decode(i))
    }

    /// Bytes of heap behind the arrays — the number the Section 6.5
    /// memory argument is about (a boxed [`TiTrace`] costs
    /// `24 * num_actions()` plus a `Vec` header per rank).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.tags.capacity() * std::mem::size_of::<u32>()
            + self.peers.capacity() * std::mem::size_of::<u32>()
            + self.vols.capacity() * std::mem::size_of::<f64>()
            + self.aux.capacity() * std::mem::size_of::<f64>()
    }

    fn rank_span(&self, rank: usize) -> std::ops::Range<usize> {
        match (self.offsets.get(rank), self.offsets.get(rank + 1)) {
            (Some(&s), Some(&e)) => s..e,
            _ => 0..0,
        }
    }

    fn encode(&mut self, a: &Action) -> Result<(u32, u32, f64), CompactError> {
        encode_parts(a, &mut self.aux)
    }

    fn decode(&self, i: usize) -> Action {
        decode_parts(self.tags[i], self.peers[i], self.vols[i], &self.aux)
    }

    /// Appends pre-interned columns (a TIB2 segment, see
    /// [`crate::tib2`]) to the most recently opened rank, rebasing the
    /// segment-local `reduce`/`allReduce` side-table indices onto this
    /// trace's global side table. Fails only when the combined side
    /// table outgrows the `u32` index range.
    pub fn append_segment(
        &mut self,
        seg: &crate::tib2::SegmentColumns,
    ) -> Result<(), CompactError> {
        if self.offsets.len() == 1 {
            self.begin_process();
        }
        let end = self.aux.len() + seg.aux.len();
        if end > NO_PEER as usize {
            return Err(CompactError::TooManyReduces);
        }
        let base = self.aux.len() as u32;
        for i in 0..seg.tags.len() {
            let t = seg.tags[i];
            let peer = if t == tag::REDUCE || t == tag::ALLREDUCE {
                seg.peers[i] + base
            } else {
                seg.peers[i]
            };
            self.tags.push(t);
            self.peers.push(peer);
            self.vols.push(seg.vols[i]);
        }
        self.aux.extend_from_slice(&seg.aux);
        // panics: offsets always holds at least the opening boundary
        *self.offsets.last_mut().unwrap() += seg.tags.len();
        Ok(())
    }
}

/// Encodes one action into its interned `(tag, peer, volume)` triple,
/// appending any secondary volume to `aux` — the peer slot of a
/// `reduce`/`allReduce` entry is the side-table index it landed at.
/// Shared by [`CompactTrace`] and the TIB2 segment writer (which passes
/// a segment-local side table).
pub(crate) fn encode_parts(
    a: &Action,
    aux: &mut Vec<f64>,
) -> Result<(u32, u32, f64), CompactError> {
    fn peer(p: Pid) -> Result<u32, CompactError> {
        match u32::try_from(p) {
            Ok(v) if v != NO_PEER => Ok(v),
            _ => Err(CompactError::PeerTooLarge { value: p }),
        }
    }
    fn finite(v: f64) -> Result<f64, CompactError> {
        if v.is_nan() {
            Err(CompactError::NanVolume)
        } else {
            Ok(v)
        }
    }
    let mut second = |vcomp: f64| -> Result<u32, CompactError> {
        let idx = u32::try_from(aux.len())
            .ok()
            .filter(|&v| v != NO_PEER)
            .ok_or(CompactError::TooManyReduces)?;
        aux.push(finite(vcomp)?);
        Ok(idx)
    };
    Ok(match *a {
        Action::Compute { flops } => (tag::COMPUTE, NO_PEER, finite(flops)?),
        Action::Send { dst, bytes } => (tag::SEND, peer(dst)?, finite(bytes)?),
        Action::Isend { dst, bytes } => (tag::ISEND, peer(dst)?, finite(bytes)?),
        Action::Recv { src, bytes } => {
            (tag::RECV, peer(src)?, bytes.map_or(Ok(f64::NAN), finite)?)
        }
        Action::Irecv { src, bytes } => {
            (tag::IRECV, peer(src)?, bytes.map_or(Ok(f64::NAN), finite)?)
        }
        Action::Bcast { bytes } => (tag::BCAST, NO_PEER, finite(bytes)?),
        Action::Reduce { vcomm, vcomp } => (tag::REDUCE, second(vcomp)?, finite(vcomm)?),
        Action::AllReduce { vcomm, vcomp } => {
            (tag::ALLREDUCE, second(vcomp)?, finite(vcomm)?)
        }
        Action::Barrier => (tag::BARRIER, NO_PEER, 0.0),
        Action::CommSize { nproc } => (tag::COMM_SIZE, peer(nproc)?, 0.0),
        Action::Wait => (tag::WAIT, NO_PEER, 0.0),
    })
}

/// The exact inverse of [`encode_parts`] for one entry. `aux` is the
/// side table the entry's `reduce`/`allReduce` index points into.
/// Callers must have validated the tag and index (the compact arrays
/// by construction, TIB2 segments at read time).
pub(crate) fn decode_parts(tag_id: u32, peer: u32, vol: f64, aux: &[f64]) -> Action {
    let peer = peer as usize;
    let opt_vol = if vol.is_nan() { None } else { Some(vol) };
    match tag_id {
        tag::COMPUTE => Action::Compute { flops: vol },
        tag::SEND => Action::Send { dst: peer, bytes: vol },
        tag::ISEND => Action::Isend { dst: peer, bytes: vol },
        tag::RECV => Action::Recv { src: peer, bytes: opt_vol },
        tag::IRECV => Action::Irecv { src: peer, bytes: opt_vol },
        tag::BCAST => Action::Bcast { bytes: vol },
        tag::REDUCE => Action::Reduce { vcomm: vol, vcomp: aux[peer] },
        tag::ALLREDUCE => Action::AllReduce { vcomm: vol, vcomp: aux[peer] },
        tag::BARRIER => Action::Barrier,
        tag::COMM_SIZE => Action::CommSize { nproc: peer },
        tag::WAIT => Action::Wait,
        // panics: callers only pass ids produced by `encode_parts`
        other => unreachable!("uninterned tag {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_action() -> Vec<Action> {
        vec![
            Action::Compute { flops: 1e6 },
            Action::Send { dst: 1, bytes: 1024.0 },
            Action::Isend { dst: 2, bytes: 0.5 },
            Action::Recv { src: 3, bytes: None },
            Action::Recv { src: 3, bytes: Some(64.0) },
            Action::Irecv { src: 0, bytes: None },
            Action::Irecv { src: 0, bytes: Some(0.0) },
            Action::Bcast { bytes: 4096.0 },
            Action::Reduce { vcomm: 64.0, vcomp: 1000.0 },
            Action::AllReduce { vcomm: 40.0, vcomp: 500.0 },
            Action::Barrier,
            Action::CommSize { nproc: 8 },
            Action::Wait,
        ]
    }

    #[test]
    fn every_action_round_trips() {
        let mut t = TiTrace::new(3);
        for (i, a) in every_action().into_iter().enumerate() {
            t.push(i % 3, a);
        }
        let c = CompactTrace::from_trace(&t).unwrap();
        assert_eq!(c.num_processes(), 3);
        assert_eq!(c.num_actions(), 13);
        assert_eq!(c.to_trace(), t);
    }

    #[test]
    fn empty_ranks_survive() {
        let mut t = TiTrace::new(4);
        t.push(2, Action::Barrier);
        let c = CompactTrace::from_trace(&t).unwrap();
        assert_eq!(c.num_processes(), 4);
        assert_eq!(c.rank_len(0), 0);
        assert_eq!(c.rank_len(2), 1);
        assert_eq!(c.to_trace(), t);
    }

    #[test]
    fn get_and_iter_agree() {
        let mut t = TiTrace::new(2);
        for a in every_action() {
            t.push(1, a);
        }
        let c = CompactTrace::from_trace(&t).unwrap();
        let via_iter: Vec<Action> = c.iter_rank(1).collect();
        let via_get: Vec<Action> =
            (0..c.rank_len(1)).map(|i| c.get(1, i).unwrap()).collect();
        assert_eq!(via_iter, via_get);
        assert_eq!(via_iter, t.actions[1]);
        assert_eq!(c.get(1, c.rank_len(1)), None);
        assert_eq!(c.get(7, 0), None);
        assert_eq!(c.iter_rank(7).count(), 0);
    }

    #[test]
    fn unannotated_and_annotated_receives_stay_distinct() {
        let mut t = TiTrace::new(1);
        t.push(0, Action::Recv { src: 0, bytes: None });
        t.push(0, Action::Recv { src: 0, bytes: Some(0.0) });
        let c = CompactTrace::from_trace(&t).unwrap();
        assert_eq!(c.get(0, 0), Some(Action::Recv { src: 0, bytes: None }));
        assert_eq!(c.get(0, 1), Some(Action::Recv { src: 0, bytes: Some(0.0) }));
    }

    #[test]
    fn nan_volume_and_huge_peer_are_rejected() {
        let mut t = TiTrace::new(1);
        t.push(0, Action::Compute { flops: f64::NAN });
        assert_eq!(CompactTrace::from_trace(&t), Err(CompactError::NanVolume));
        let mut t = TiTrace::new(1);
        t.push(0, Action::Recv { src: 0, bytes: Some(f64::NAN) });
        assert_eq!(CompactTrace::from_trace(&t), Err(CompactError::NanVolume));
        if usize::BITS > 32 {
            let mut t = TiTrace::new(1);
            t.push(0, Action::Send { dst: u32::MAX as usize, bytes: 1.0 });
            assert_eq!(
                CompactTrace::from_trace(&t),
                Err(CompactError::PeerTooLarge { value: u32::MAX as usize })
            );
        }
    }

    #[test]
    fn compact_is_smaller_than_boxed() {
        let mut t = TiTrace::new(8);
        for r in 0..8 {
            for i in 0..1000 {
                t.push(r, Action::Send { dst: (r + 1) % 8, bytes: i as f64 });
            }
        }
        let c = CompactTrace::from_trace(&t).unwrap();
        let boxed = t.num_actions() * std::mem::size_of::<Action>();
        assert!(
            c.heap_bytes() < boxed,
            "compact {} vs boxed {boxed}",
            c.heap_bytes()
        );
    }

    #[test]
    fn tag_keyword_matches_action_keyword() {
        for a in every_action() {
            assert_eq!(tag::keyword(tag::of(&a)), Some(a.keyword()));
            assert_eq!(tag::from_keyword(a.keyword()), Some(tag::of(&a)));
        }
        assert_eq!(tag::keyword(0), None);
        assert_eq!(tag::keyword(99), None);
        assert_eq!(tag::from_keyword("frobnicate"), None);
    }
}
