//! A small weighted-DAG arena for static trace analyses.
//!
//! `tit-analyze` models a trace as a happens-before graph: one node per
//! event (operation completion), one weighted edge per precedence
//! constraint, where the weight is the minimum delay between the
//! predecessor's completion and the successor's. The analyses it needs
//! are all single-pass over a topological order: earliest completion
//! times (longest weighted paths from the sources), latest times
//! against a deadline (whence per-node slack), and extraction of one
//! critical path.
//!
//! The arena is built in two phases: [`DagBuilder`] accepts nodes and
//! edges in any order (cross-rank edges are only known after matching,
//! which happens long after both endpoints exist), then
//! [`DagBuilder::build`] runs Kahn's algorithm once, producing a
//! [`Dag`] with a frozen topological order and a compact CSR successor
//! table. A cycle — which for the happens-before construction is
//! exactly a guaranteed communication deadlock — is a typed
//! [`CycleError`] naming stuck nodes, never a panic or a hang.
//!
//! Multi-million-node graphs are the norm (one node per trace action),
//! so the layout is built around minimising resident memory and copies:
//! producers that already hold edge lists *donate* them by move
//! ([`DagBuilder::donate_edges`]) instead of re-pushing, the CSR keeps
//! a single direction (successors, split into a target array and a
//! weight array so traversal-only passes touch 4 bytes per edge), the
//! offset table doubles as the fill cursor (no cloned cursor array),
//! and the donated edge lists are freed before Kahn's queue allocates.
//! Predecessor queries are never needed: earliest/latest times relax
//! along successor edges, and the critical path is recovered from the
//! best-predecessor links recorded during the earliest sweep.

/// Index of a node in its [`Dag`]/[`DagBuilder`].
pub type NodeId = u32;

/// `(pred, succ, weight)`: the constraint that `succ` completes no
/// earlier than `weight` seconds after `pred`.
pub type Edge = (NodeId, NodeId, f64);

/// Sentinel in `Earliest::best_pred` for "no predecessor".
const NO_PRED: NodeId = NodeId::MAX;

/// Accumulates nodes and weighted edges in arbitrary order.
#[derive(Debug, Clone)]
pub struct DagBuilder<P> {
    payloads: Vec<P>,
    /// Edge lists moved in whole by producers, in donation order.
    chunks: Vec<Vec<Edge>>,
    /// Edges added one at a time after the last donation.
    tail: Vec<Edge>,
}

impl<P> Default for DagBuilder<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> DagBuilder<P> {
    /// An empty builder.
    pub fn new() -> Self {
        DagBuilder { payloads: Vec::new(), chunks: Vec::new(), tail: Vec::new() }
    }

    /// Pre-allocates for `nodes` more nodes and `edges` more
    /// individually-added edges (donated chunks bring their own
    /// storage).
    pub fn reserve(&mut self, nodes: usize, edges: usize) {
        self.payloads.reserve(nodes);
        self.tail.reserve(edges);
    }

    /// Adds a node carrying `payload`; returns its id.
    pub fn add_node(&mut self, payload: P) -> NodeId {
        assert!(self.payloads.len() < u32::MAX as usize, "DAG node count overflows u32");
        self.payloads.push(payload);
        (self.payloads.len() - 1) as NodeId
    }

    /// Adds the constraint `succ` completes no earlier than `weight`
    /// seconds after `pred`. Both nodes must already exist.
    pub fn add_edge(&mut self, pred: NodeId, succ: NodeId, weight: f64) {
        debug_assert!((pred as usize) < self.payloads.len());
        debug_assert!((succ as usize) < self.payloads.len());
        self.tail.push((pred, succ, weight));
    }

    /// Moves a whole edge list into the builder without copying the
    /// edges one by one — the cheap path for producers (the analyzer's
    /// per-rank pass) that already materialized their edges. Insertion
    /// order is preserved relative to [`DagBuilder::add_edge`]: the
    /// donated edges sort after everything added before this call.
    pub fn donate_edges(&mut self, edges: Vec<Edge>) {
        debug_assert!(edges.iter().all(
            |&(p, s, _)| (p as usize) < self.payloads.len() && (s as usize) < self.payloads.len()
        ));
        if !self.tail.is_empty() {
            self.chunks.push(std::mem::take(&mut self.tail));
        }
        if !edges.is_empty() {
            self.chunks.push(edges);
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.payloads.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum::<usize>() + self.tail.len()
    }

    /// Freezes the graph: verifies acyclicity (Kahn's algorithm) and
    /// builds the CSR successor table plus a topological order.
    pub fn build(mut self) -> Result<Dag<P>, CycleError> {
        let n = self.payloads.len();
        let m = self.num_edges();
        assert!(m < u32::MAX as usize, "DAG edge count overflows u32");
        if !self.tail.is_empty() {
            self.chunks.push(std::mem::take(&mut self.tail));
        }
        let chunks = self.chunks;

        // Successor CSR by counting sort. `succ_off` is used three
        // ways in place — out-degree counts, then fill cursors, then
        // (after a shift) the final offsets — to avoid a cloned cursor
        // array on multi-hundred-MB graphs.
        let mut succ_off = vec![0u32; n + 1];
        for chunk in &chunks {
            for &(p, _, _) in chunk {
                succ_off[p as usize] += 1;
            }
        }
        let mut sum = 0u32;
        for slot in &mut succ_off {
            let c = *slot;
            *slot = sum;
            sum += c;
        }
        let mut targets = vec![0 as NodeId; m];
        let mut weights = vec![0.0f64; m];
        let mut indegree = vec![0u32; n];
        for chunk in &chunks {
            for &(p, s, w) in chunk {
                let i = succ_off[p as usize] as usize;
                targets[i] = s;
                weights[i] = w;
                succ_off[p as usize] += 1;
                indegree[s as usize] += 1;
            }
        }
        // Each cursor now sits at the *end* of its bucket: shift right
        // to recover the start offsets.
        for i in (1..=n).rev() {
            succ_off[i] = succ_off[i - 1];
        }
        if n > 0 {
            succ_off[0] = 0;
        }
        // The edge lists are no longer needed; free them before
        // Kahn's structures allocate.
        drop(chunks);

        // Kahn, FIFO seeded in id order: deterministic topo order.
        let mut topo = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<NodeId> =
            (0..n as u32).filter(|&v| indegree[v as usize] == 0).collect();
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            let (a, b) = (succ_off[v as usize] as usize, succ_off[v as usize + 1] as usize);
            for &s in &targets[a..b] {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if topo.len() != n {
            let stuck: Vec<NodeId> =
                (0..n as u32).filter(|&v| indegree[v as usize] > 0).take(16).collect();
            return Err(CycleError { stuck });
        }
        Ok(Dag { payloads: self.payloads, topo, succ_off, targets, weights })
    }
}

/// The builder found a cycle: the graph is not a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Up to 16 node ids left with unresolved predecessors (members or
    /// downstream victims of a cycle), in id order.
    pub stuck: Vec<NodeId>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dependency cycle involving {} or more node(s)", self.stuck.len())
    }
}

impl std::error::Error for CycleError {}

/// Earliest completion times plus the back-links needed to walk a
/// critical path, as produced by [`Dag::earliest`].
#[derive(Debug, Clone)]
pub struct Earliest {
    /// Per-node earliest completion time (longest weighted path from
    /// any source, sources completing at 0).
    pub times: Vec<f64>,
    /// Per node, the predecessor that last *strictly* tightened its
    /// earliest time during the topological sweep (`u32::MAX` for
    /// sources).
    best_pred: Vec<NodeId>,
}

/// A frozen weighted DAG: payloads, a topological order, and a CSR
/// successor table (targets and weights in separate arrays, so
/// structure-only passes stream 4 bytes per edge).
#[derive(Debug, Clone)]
pub struct Dag<P> {
    payloads: Vec<P>,
    topo: Vec<NodeId>,
    succ_off: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
}

impl<P> Dag<P> {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.payloads.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The payload attached to `v`.
    pub fn payload(&self, v: NodeId) -> &P {
        &self.payloads[v as usize]
    }

    /// The `(succ, weight)` edges out of `v`.
    pub fn succs(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (a, b) = (self.succ_off[v as usize] as usize, self.succ_off[v as usize + 1] as usize);
        self.targets[a..b].iter().copied().zip(self.weights[a..b].iter().copied())
    }

    /// Earliest completion time per node — the longest weighted path
    /// from any source, with sources completing at 0 — plus the
    /// back-links for [`Dag::critical_path`]. Times are identical to a
    /// max-over-predecessors recurrence (`max` over finite floats is
    /// order-independent); only the tie-break among equally-critical
    /// back-links depends on the sweep order, deterministically.
    pub fn earliest(&self) -> Earliest {
        let n = self.payloads.len();
        let mut times = vec![0.0f64; n];
        let mut best_pred = vec![NO_PRED; n];
        for &v in &self.topo {
            let tv = times[v as usize];
            for (s, w) in self.succs(v) {
                let t = tv + w;
                if t > times[s as usize] {
                    times[s as usize] = t;
                    best_pred[s as usize] = v;
                }
            }
        }
        Earliest { times, best_pred }
    }

    /// The makespan lower bound: the largest earliest time (0 for an
    /// empty graph).
    pub fn longest_path(&self, times: &[f64]) -> f64 {
        times.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Latest completion time per node such that every node still
    /// finishes by `deadline`. `slack(v) = latest[v] - earliest[v]`.
    pub fn latest(&self, deadline: f64) -> Vec<f64> {
        let mut l = vec![deadline; self.payloads.len()];
        for &v in self.topo.iter().rev() {
            let mut lv = l[v as usize];
            for (s, w) in self.succs(v) {
                let t = l[s as usize] - w;
                if t < lv {
                    lv = t;
                }
            }
            l[v as usize] = lv;
        }
        l
    }

    /// One critical path, source → sink: starts from the first node
    /// attaining the makespan and follows the recorded back-links.
    /// Deterministic for a deterministic build order.
    pub fn critical_path(&self, e: &Earliest) -> Vec<NodeId> {
        let mut path = Vec::new();
        if self.payloads.is_empty() {
            return path;
        }
        let mut v = 0 as NodeId;
        let mut best = f64::NEG_INFINITY;
        for (i, &t) in e.times.iter().enumerate() {
            if t > best {
                best = t;
                v = i as NodeId;
            }
        }
        loop {
            path.push(v);
            match e.best_pred[v as usize] {
                NO_PRED => break,
                u => v = u,
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_longest_path_and_slack() {
        // a → b (3) → d (1); a → c (1) → d (1): critical a-b-d = 4.
        let mut g = DagBuilder::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 3.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(c, d, 1.0);
        let dag = g.build().unwrap();
        let e = dag.earliest();
        assert_eq!(e.times, vec![0.0, 3.0, 1.0, 4.0]);
        assert_eq!(dag.longest_path(&e.times), 4.0);
        let l = dag.latest(4.0);
        // c may finish as late as 3 (slack 2); a, b, d are tight.
        assert_eq!(l, vec![0.0, 3.0, 3.0, 4.0]);
        let path = dag.critical_path(&e);
        assert_eq!(path, vec![a, b, d]);
    }

    #[test]
    fn out_of_order_edges_are_fine() {
        let mut g = DagBuilder::new();
        let x = g.add_node(0);
        let y = g.add_node(1);
        // Edge goes "backwards" in id order: y precedes x.
        g.add_edge(y, x, 2.0);
        let dag = g.build().unwrap();
        let e = dag.earliest();
        assert_eq!(e.times[x as usize], 2.0);
        assert_eq!(e.times[y as usize], 0.0);
    }

    #[test]
    fn donated_chunks_merge_with_single_edges() {
        let mut g = DagBuilder::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.donate_edges(vec![(b, c, 2.0), (a, c, 0.5)]);
        g.donate_edges(Vec::new()); // empty donation is a no-op
        g.add_edge(c, d, 3.0);
        assert_eq!(g.num_edges(), 4);
        let dag = g.build().unwrap();
        assert_eq!(dag.num_edges(), 4);
        let e = dag.earliest();
        assert_eq!(e.times, vec![0.0, 1.0, 3.0, 6.0]);
        assert_eq!(dag.critical_path(&e), vec![a, b, c, d]);
    }

    #[test]
    fn cycle_is_a_typed_error() {
        let mut g = DagBuilder::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, a, 1.0);
        let err = g.build().unwrap_err();
        assert_eq!(err.stuck, vec![a, b]);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g: DagBuilder<()> = DagBuilder::new();
        let dag = g.build().unwrap();
        assert_eq!(dag.longest_path(&dag.earliest().times), 0.0);
        assert!(dag.critical_path(&dag.earliest()).is_empty());

        let mut g = DagBuilder::new();
        g.add_node(());
        g.add_node(());
        let dag = g.build().unwrap();
        assert_eq!(dag.earliest().times, vec![0.0, 0.0]);
        assert_eq!(dag.critical_path(&dag.earliest()).len(), 1);
    }

    #[test]
    fn parallel_edges_take_the_max() {
        let mut g = DagBuilder::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 5.0);
        let dag = g.build().unwrap();
        assert_eq!(dag.earliest().times[b as usize], 5.0);
    }
}
