//! Hard memory-budget governance for segment residency.
//!
//! The §6.5 argument is only honest if replay memory is *bounded*, not
//! merely small: a 32.5 GiB trace on a 16 GiB node must either fit the
//! declared envelope or fail with a typed error — never an OOM kill
//! half-way through a campaign. [`MemBudget`] is that envelope: a hard
//! byte cap that residency is charged against before any allocation is
//! made. The replay layer's segment cache charges a segment's decoded
//! size before reading it, evicts least-recently-touched unpinned
//! segments to make room, and when nothing is evictable surfaces
//! [`MemoryExceeded`] — the caller learns exactly how far over the
//! budget the working set is (`tit-replay --mem-budget`).
//!
//! Charging is lock-free (a compare-exchange loop on the resident
//! counter), so concurrent replay workers can fault segments without
//! serializing on the governor. The peak-resident high-water mark is
//! tracked for the scale benchmark's flat-memory assertion
//! (`BENCH_scale.json`).

use std::sync::atomic::{AtomicU64, Ordering};

/// A charge was refused: granting `requested` more bytes on top of
/// `resident` would exceed `budget`, and the caller had nothing left
/// to evict. Replay surfaces this as a typed error instead of letting
/// the allocator run into the kernel's OOM killer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryExceeded {
    /// The configured hard cap in bytes.
    pub budget: u64,
    /// Bytes the refused charge asked for.
    pub requested: u64,
    /// Bytes resident (pinned + cached) at refusal time.
    pub resident: u64,
}

impl std::fmt::Display for MemoryExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: {} bytes requested with {} of {} resident \
             (working set needs at least {} bytes — raise --mem-budget)",
            self.requested,
            self.resident,
            self.budget,
            self.resident + self.requested
        )
    }
}

impl std::error::Error for MemoryExceeded {}

/// A hard byte cap with charge/release accounting and a peak
/// high-water mark.
#[derive(Debug)]
pub struct MemBudget {
    cap: u64,
    resident: AtomicU64,
    peak: AtomicU64,
}

impl MemBudget {
    /// A governor with a hard cap of `cap` bytes.
    #[must_use]
    pub fn new(cap: u64) -> Self {
        MemBudget { cap, resident: AtomicU64::new(0), peak: AtomicU64::new(0) }
    }

    /// A governor that never refuses (cap `u64::MAX`) — accounting and
    /// peak tracking still run, so even unbudgeted replays report their
    /// segment working set.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// The configured cap in bytes.
    #[must_use]
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// True when built with [`MemBudget::unlimited`].
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.cap == u64::MAX
    }

    /// Bytes currently charged.
    #[must_use]
    pub fn resident(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// High-water mark of [`MemBudget::resident`] over the governor's
    /// lifetime.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Books `bytes` against the cap, or refuses with the exact
    /// shortfall. Refusal changes nothing; the caller may evict and
    /// retry.
    pub fn try_charge(&self, bytes: u64) -> Result<(), MemoryExceeded> {
        let mut cur = self.resident.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > self.cap {
                return Err(MemoryExceeded {
                    budget: self.cap,
                    requested: bytes,
                    resident: cur,
                });
            }
            match self.resident.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns `bytes` to the budget (saturating: releasing more than
    /// was charged clamps at zero rather than wrapping).
    pub fn release(&self, bytes: u64) {
        let mut cur = self.resident.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.resident.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_peak() {
        let b = MemBudget::new(100);
        b.try_charge(60).unwrap();
        b.try_charge(40).unwrap();
        assert_eq!(b.resident(), 100);
        assert_eq!(b.peak(), 100);
        b.release(60);
        assert_eq!(b.resident(), 40);
        assert_eq!(b.peak(), 100);
        b.try_charge(30).unwrap();
        assert_eq!(b.peak(), 100);
    }

    #[test]
    fn refusal_is_exact_and_side_effect_free() {
        let b = MemBudget::new(100);
        b.try_charge(80).unwrap();
        let err = b.try_charge(30).unwrap_err();
        assert_eq!(err, MemoryExceeded { budget: 100, requested: 30, resident: 80 });
        assert_eq!(b.resident(), 80, "refusal must not book anything");
        assert!(err.to_string().contains("110 bytes"), "{err}");
    }

    #[test]
    fn release_saturates() {
        let b = MemBudget::new(10);
        b.try_charge(5).unwrap();
        b.release(100);
        assert_eq!(b.resident(), 0);
    }

    #[test]
    fn unlimited_never_refuses_but_still_accounts() {
        let b = MemBudget::unlimited();
        assert!(b.is_unlimited());
        b.try_charge(u64::MAX / 2).unwrap();
        b.try_charge(u64::MAX / 2).unwrap();
        assert!(b.peak() > 0);
    }

    #[test]
    fn concurrent_charges_never_exceed_cap() {
        let b = std::sync::Arc::new(MemBudget::new(1000));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = std::sync::Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut granted = 0u64;
                for _ in 0..1000 {
                    if b.try_charge(7).is_ok() {
                        granted += 7;
                        assert!(b.resident() <= 1000);
                        b.release(7);
                    }
                }
                granted
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.resident(), 0);
        assert!(b.peak() <= 1000);
    }
}
