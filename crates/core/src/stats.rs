//! Trace statistics: action counts, volumes, byte sizes.
//!
//! Table 3 of the paper reports, per benchmark instance, the
//! time-independent trace size in MiB and the number of actions in
//! millions; this module computes both (and more) from in-memory traces or
//! trace files.

use crate::action::Action;
use crate::codec::format_action_into;
use crate::trace::TiTrace;
use std::collections::BTreeMap;
use std::path::Path;

/// Aggregate statistics over a time-independent trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Number of processes in the trace.
    pub num_processes: usize,
    /// Total number of actions across all processes.
    pub num_actions: u64,
    /// Actions per keyword (`compute`, `send`, ...).
    pub per_keyword: BTreeMap<&'static str, u64>,
    /// Total computation volume, flops.
    pub total_flops: f64,
    /// Total communication volume, bytes (send-side + collectives).
    pub total_bytes: f64,
    /// Receive-side volume, bytes, summed over receives that carry a
    /// byte annotation. In a complete trace every transfer is counted
    /// once in [`TraceStats::total_bytes`]; when only a subset of ranks
    /// is streamed (per-rank statistics), this is the only visibility
    /// into inbound traffic.
    pub recv_bytes: f64,
    /// Receives whose byte volume is unknown (no annotation in the
    /// trace; only the matching send carries the size). Previously these
    /// were silently counted as zero bytes.
    pub unsized_recvs: u64,
    /// Size of the canonical text encoding, bytes.
    pub encoded_bytes: u64,
}

impl TraceStats {
    /// Computes statistics for an in-memory trace.
    pub fn of(trace: &TiTrace) -> Self {
        let mut s = TraceStats { num_processes: trace.num_processes(), ..Default::default() };
        let mut line = String::with_capacity(64);
        for (rank, actions) in trace.actions.iter().enumerate() {
            for a in actions {
                s.add(rank, a, &mut line);
            }
        }
        s
    }

    /// Streams statistics from trace files without loading them.
    pub fn of_files(paths: &[std::path::PathBuf]) -> std::io::Result<Self> {
        let mut s = TraceStats::default();
        let mut line = String::with_capacity(64);
        let mut max_pid = 0usize;
        let mut any = false;
        for p in paths {
            let mut r = crate::trace::ProcessTraceReader::open(p)?;
            while let Some((pid, a)) = r.next_action()? {
                any = true;
                max_pid = max_pid.max(pid);
                s.add(pid, &a, &mut line);
            }
        }
        s.num_processes = if any { max_pid + 1 } else { 0 };
        Ok(s)
    }

    fn add(&mut self, rank: usize, a: &Action, scratch: &mut String) {
        self.num_actions += 1;
        *self.per_keyword.entry(a.keyword()).or_insert(0) += 1;
        self.total_flops += a.flops();
        match a {
            // Count transfers once in `total_bytes`, on the sender side;
            // account the receive side separately so a partial trace
            // (per-rank streaming) does not lose inbound volume, and so
            // unknown receive volumes are counted, not zeroed.
            Action::Recv { .. } | Action::Irecv { .. } => match a.comm_bytes() {
                Some(b) => self.recv_bytes += b,
                None => self.unsized_recvs += 1,
            },
            other => self.total_bytes += other.bytes(),
        }
        scratch.clear();
        format_action_into(scratch, rank, a);
        self.encoded_bytes += scratch.len() as u64 + 1; // + newline
    }

    /// Encoded size in MiB (the unit of Table 3).
    pub fn encoded_mib(&self) -> f64 {
        self.encoded_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Actions in millions (the unit of Table 3).
    pub fn actions_millions(&self) -> f64 {
        self.num_actions as f64 / 1e6
    }
}

/// Size of a file in MiB, for comparing on-disk trace formats.
pub fn file_size_mib(path: &Path) -> std::io::Result<f64> {
    Ok(std::fs::metadata(path)?.len() as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TiTrace {
        let mut t = TiTrace::new(2);
        t.push(0, Action::CommSize { nproc: 2 });
        t.push(0, Action::Compute { flops: 100.0 });
        t.push(0, Action::Send { dst: 1, bytes: 50.0 });
        t.push(0, Action::AllReduce { vcomm: 8.0, vcomp: 4.0 });
        t.push(1, Action::CommSize { nproc: 2 });
        t.push(1, Action::Recv { src: 0, bytes: None });
        t.push(1, Action::AllReduce { vcomm: 8.0, vcomp: 4.0 });
        t
    }

    #[test]
    fn counts_and_volumes() {
        let s = TraceStats::of(&sample());
        assert_eq!(s.num_processes, 2);
        assert_eq!(s.num_actions, 7);
        assert_eq!(s.per_keyword["comm_size"], 2);
        assert_eq!(s.per_keyword["allReduce"], 2);
        assert_eq!(s.per_keyword["send"], 1);
        assert!((s.total_flops - 108.0).abs() < 1e-12);
        // 50 (send) + 8 + 8 (allReduce on both ranks); recv not counted.
        assert!((s.total_bytes - 66.0).abs() < 1e-12);
        // The unannotated recv is reported as unsized, not silently 0.
        assert_eq!(s.unsized_recvs, 1);
        assert_eq!(s.recv_bytes, 0.0);
    }

    #[test]
    fn annotated_recvs_are_accounted_receive_side() {
        let mut t = TiTrace::new(1);
        t.push(0, Action::Recv { src: 0, bytes: Some(32.0) });
        t.push(0, Action::Irecv { src: 0, bytes: Some(8.0) });
        t.push(0, Action::Irecv { src: 0, bytes: None });
        let s = TraceStats::of(&t);
        assert_eq!(s.total_bytes, 0.0);
        assert!((s.recv_bytes - 40.0).abs() < 1e-12);
        assert_eq!(s.unsized_recvs, 1);
    }

    #[test]
    fn encoded_size_matches_serialization() {
        let t = sample();
        let s = TraceStats::of(&t);
        let mut buf = Vec::new();
        t.write_merged(&mut buf).unwrap();
        assert_eq!(s.encoded_bytes, buf.len() as u64);
    }

    #[test]
    fn stream_and_memory_agree() {
        let t = sample();
        let dir = std::env::temp_dir().join(format!("titr-stats-{}", std::process::id()));
        let paths = t.save_per_process(&dir).unwrap();
        let s1 = TraceStats::of(&t);
        let s2 = TraceStats::of_files(&paths).unwrap();
        assert_eq!(s1, s2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unit_helpers() {
        let s = TraceStats { encoded_bytes: 2 * 1024 * 1024, num_actions: 3_000_000, ..Default::default() };
        assert!((s.encoded_mib() - 2.0).abs() < 1e-12);
        assert!((s.actions_millions() - 3.0).abs() < 1e-12);
    }
}
