//! Wall-clock budgets and deadlines.
//!
//! PR 5 gave `tit-replay` a `--max-wall` watchdog: when the wall-clock
//! budget expires, the replay checkpoints at the next safe point and
//! stops instead of being lost. The serving layer (`tit-serve`) needs
//! the same idea per *request*: every replay request carries a budget,
//! and a request that overruns returns a quantified partial result
//! instead of hogging a worker forever. This module is the one shared
//! vocabulary both enforce deadlines through.
//!
//! A [`Budget`] is a *declaration* — "this work may spend at most D
//! wall-clock seconds" (or is unlimited). Calling [`Budget::start`]
//! anchors it at the current instant and yields a [`Deadline`], the
//! *running* form that the simulation loop polls at its safe points.
//! Keeping the two separate makes the common bug impossible: a budget
//! stored in a config struct never starts ticking until the work
//! actually begins.

use std::time::{Duration, Instant};

/// A wall-clock spending limit that has not started ticking yet.
///
/// `Budget` is plain data (`Copy`, comparable), so it can live in
/// configuration structs, be defaulted, and be parsed from CLI flags or
/// request fields. [`Budget::start`] turns it into a running
/// [`Deadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    limit: Option<Duration>,
}

impl Budget {
    /// No limit: [`Deadline::expired`] is always false.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget { limit: None }
    }

    /// At most `limit` of wall-clock time.
    #[must_use]
    pub fn limited(limit: Duration) -> Self {
        Budget { limit: Some(limit) }
    }

    /// At most `secs` seconds; negative or non-finite values clamp to a
    /// zero budget (already expired), mirroring how a watchdog treats a
    /// nonsensical limit as "stop at the first safe point".
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            Budget::limited(Duration::from_secs_f64(secs))
        } else {
            Budget::limited(Duration::ZERO)
        }
    }

    /// The declared limit, `None` when unlimited.
    #[must_use]
    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// True when no limit was declared.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.limit.is_none()
    }

    /// Anchors the budget at the current instant: the returned
    /// [`Deadline`] expires once the limit has elapsed from *now*.
    #[must_use]
    pub fn start(&self) -> Deadline {
        Deadline { at: self.limit.map(|l| Instant::now() + l) }
    }
}

/// A running deadline produced by [`Budget::start`].
///
/// Cheap to copy and to poll; simulation loops consult
/// [`Deadline::expired`] at their safe points.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires (an unlimited budget, started).
    #[must_use]
    pub fn unlimited() -> Self {
        Deadline { at: None }
    }

    /// True once the budget has been spent. Never true for an unlimited
    /// budget.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry: `None` when unlimited, zero once
    /// expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// True when this deadline can never expire. Lets hot loops skip
    /// the [`Instant::now`] call of [`Deadline::expired`] entirely.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.at.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.limit(), None);
        let d = b.start();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert!(!Deadline::unlimited().expired());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Budget::limited(Duration::ZERO).start();
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired_yet() {
        let b = Budget::from_secs_f64(3600.0);
        assert_eq!(b.limit(), Some(Duration::from_secs(3600)));
        let d = b.start();
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3599));
    }

    #[test]
    fn nonsense_seconds_clamp_to_zero() {
        for s in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let b = Budget::from_secs_f64(s);
            assert_eq!(b.limit(), Some(Duration::ZERO), "secs={s}");
            assert!(b.start().expired(), "secs={s}");
        }
        // 0.0 itself is "no time at all", not "unlimited".
        assert!(Budget::from_secs_f64(0.0).start().expired());
    }

    #[test]
    fn budget_is_plain_data() {
        let a = Budget::limited(Duration::from_millis(5));
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(Budget::default(), Budget::unlimited());
    }

    #[test]
    fn budget_does_not_tick_until_started() {
        let b = Budget::limited(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(20));
        // Declared 20ms ago, but started now: not expired.
        assert!(!b.start().expired());
    }
}
