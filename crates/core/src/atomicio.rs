//! Crash-safe file writing: tmp + fsync + rename.
//!
//! Every artifact the pipeline leaves behind — gathered bundles, timed
//! traces, profiles, metrics, checkpoints — must either exist complete
//! or not exist at all. A run killed mid-write must never leave a
//! truncated file that a later stage would misparse (the paper's
//! campaigns replay for hours; PR 1's fault model showed truncation is
//! the most common damage). The recipe is the classic one: write to a
//! same-directory temporary sibling, flush, `fsync`, then atomically
//! rename over the destination. The rename is atomic on POSIX; the
//! directory fsync afterwards is best-effort (not all platforms allow
//! it) and only affects durability, not atomicity.
//!
//! [`AtomicFile`] is the streaming form (`impl Write`), used by writers
//! that produce output incrementally; [`write_atomic`] is the one-shot
//! convenience for rendered strings.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A file that only appears at its destination on [`commit`].
///
/// Writes stream into a temporary sibling (`<name>.tmp<pid>` in the
/// same directory, so the final rename cannot cross a filesystem).
/// Dropping without committing removes the temporary: an interrupted
/// run leaves nothing behind at the destination path.
///
/// [`commit`]: AtomicFile::commit
#[derive(Debug)]
pub struct AtomicFile {
    tmp_path: PathBuf,
    dest: PathBuf,
    file: Option<File>,
}

impl AtomicFile {
    /// Opens a temporary sibling of `dest` for writing.
    pub fn create(dest: &Path) -> io::Result<AtomicFile> {
        let file_name = dest
            .file_name()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("atomic write target {} has no file name", dest.display()),
                )
            })?
            .to_owned();
        let mut tmp_name = file_name;
        tmp_name.push(format!(".tmp{}", std::process::id()));
        let tmp_path = dest.with_file_name(tmp_name);
        let file = File::create(&tmp_path)?;
        Ok(AtomicFile { tmp_path, dest: dest.to_path_buf(), file: Some(file) })
    }

    /// Flushes, fsyncs and renames the temporary over the destination.
    /// Nothing is visible at the destination until this returns `Ok`.
    pub fn commit(mut self) -> io::Result<()> {
        // panics: `file` is only taken here and in Drop, which cannot both run
        let file = self.file.take().expect("atomic file committed twice");
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp_path, &self.dest)?;
        // Durability of the rename itself: fsync the directory when the
        // platform allows opening one (best-effort — atomicity already
        // holds without it).
        if let Some(dir) = self.dest.parent() {
            let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // panics: `file` is present until commit consumes self
        self.file.as_mut().expect("write after commit").write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        // panics: `file` is present until commit consumes self
        self.file.as_mut().expect("write after commit").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            // Uncommitted: remove the temporary, keep the destination
            // (whatever state it was in) untouched.
            let _ = std::fs::remove_file(&self.tmp_path);
        }
    }
}

/// Writes `bytes` to `dest` atomically (tmp + fsync + rename).
pub fn write_atomic(dest: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = AtomicFile::create(dest)?;
    f.write_all(bytes)?;
    f.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("titc-atomic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn commit_makes_content_visible() {
        let d = tmp_dir("commit");
        let dest = d.join("out.txt");
        write_atomic(&dest, b"hello").unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"hello");
        // No stray temporary left behind.
        assert_eq!(std::fs::read_dir(&d).unwrap().count(), 1);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn drop_without_commit_leaves_destination_untouched() {
        let d = tmp_dir("drop");
        let dest = d.join("out.txt");
        std::fs::write(&dest, b"old").unwrap();
        {
            let mut f = AtomicFile::create(&dest).unwrap();
            f.write_all(b"half-written new conten").unwrap();
            // dropped uncommitted
        }
        assert_eq!(std::fs::read(&dest).unwrap(), b"old");
        assert_eq!(std::fs::read_dir(&d).unwrap().count(), 1, "tmp cleaned up");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn commit_replaces_existing_file() {
        let d = tmp_dir("replace");
        let dest = d.join("out.txt");
        std::fs::write(&dest, b"old").unwrap();
        let mut f = AtomicFile::create(&dest).unwrap();
        f.write_all(b"new").unwrap();
        f.commit().unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"new");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn streaming_writes_accumulate() {
        let d = tmp_dir("stream");
        let dest = d.join("out.bin");
        let mut f = AtomicFile::create(&dest).unwrap();
        for chunk in [b"ab".as_slice(), b"cd", b"ef"] {
            f.write_all(chunk).unwrap();
        }
        f.commit().unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"abcdef");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn target_without_file_name_is_rejected() {
        assert!(AtomicFile::create(Path::new("/")).is_err());
    }
}
