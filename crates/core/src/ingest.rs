//! Parallel ingestion of per-rank trace files.
//!
//! Replaying the paper's Section 6.5 trace means reading 1024 per-rank
//! files before the first simulated second; parsing, not simulation, is
//! the wall-clock bottleneck. The loaders here read rank files
//! concurrently with scoped worker threads (one rank per task,
//! work-stealing over an atomic counter — the same shape as the
//! extraction stage's `tau2ti`), then merge the per-rank results in
//! deterministic rank order.
//!
//! The contract: [`load_per_process_jobs`] is **bit-for-bit identical**
//! to the serial [`TiTrace::load_per_process`] — same trace, same error
//! for the lowest failing rank — and `jobs <= 1` *is* the serial path,
//! which stays the differential-test oracle.
//!
//! ```
//! use tit_core::{ingest, Action, TiTrace};
//!
//! let dir = std::env::temp_dir().join(format!("tit-ingest-doc-{}", std::process::id()));
//! let mut t = TiTrace::new(4);
//! for r in 0..4 {
//!     t.push(r, Action::Compute { flops: 1e6 });
//!     t.push(r, Action::Send { dst: (r + 1) % 4, bytes: 1e6 });
//! }
//! t.save_per_process(&dir).unwrap();
//!
//! let parallel = ingest::load_per_process_jobs(&dir, 4).unwrap();
//! let serial = TiTrace::load_per_process(&dir).unwrap(); // the oracle
//! assert_eq!(parallel, serial);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::action::Action;
use crate::compact::CompactTrace;
use crate::trace::{process_trace_filename, TiTrace};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `--jobs` value: `0` means one worker per available CPU,
/// anything else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
    } else {
        jobs
    }
}

/// Counts the consecutive `SG_process<N>.trace` files present in `dir`
/// starting at rank 0 — the rank-discovery rule of
/// [`TiTrace::load_per_process`].
pub fn rank_file_count(dir: &Path) -> usize {
    let mut n = 0;
    while dir.join(process_trace_filename(n)).exists() {
        n += 1;
    }
    n
}

/// Runs `f(rank)` for every rank in `0..n` on up to `jobs` scoped
/// worker threads and returns the results in rank order.
///
/// On failure the error of the **lowest** failing rank is returned —
/// exactly the error a serial rank-order loop would have stopped at.
/// This is the scheduling core shared by every parallel loader (the
/// lint crate reuses it for its total, finding-producing loads).
pub fn for_each_rank<T, E, F>(n: usize, jobs: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let workers = effective_jobs(jobs).clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<T, E>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let rank = next.fetch_add(1, Ordering::Relaxed);
                if rank >= n {
                    return;
                }
                let res = f(rank);
                // panics: mutex poisoned only if another thread already panicked
                slots.lock().unwrap()[rank] = Some(res);
            });
        }
    });
    // panics: mutex poisoned only if another thread already panicked
    let slots = slots.into_inner().unwrap();
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot {
            // panics: every rank below `n` was claimed by exactly one worker
            None => unreachable!("rank left unprocessed"),
            Some(Ok(t)) => out.push(t),
            Some(Err(e)) => return Err(e),
        }
    }
    Ok(out)
}

/// Parallel [`TiTrace::load_per_process`]: loads the consecutive
/// `SG_process<N>.trace` files of `dir` with up to `jobs` worker
/// threads (`0` = one per CPU) and merges them in rank order.
///
/// Bit-for-bit identical to the serial loader, including its error
/// behaviour (`jobs <= 1` *delegates* to it): a missing rank 0 is
/// `NotFound`, a defective file yields the lowest failing rank's error.
pub fn load_per_process_jobs(dir: &Path, jobs: usize) -> io::Result<TiTrace> {
    if effective_jobs(jobs) <= 1 {
        return TiTrace::load_per_process(dir);
    }
    let n = rank_file_count(dir);
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no SG_process0.trace in {}", dir.display()),
        ));
    }
    let subs = for_each_rank(n, jobs, |rank| {
        TiTrace::load_merged(&dir.join(process_trace_filename(rank)))
    })?;
    let mut t = TiTrace::default();
    for sub in subs {
        for (pid, actions) in sub.actions.into_iter().enumerate() {
            for a in actions {
                t.push(pid, a);
            }
        }
    }
    Ok(t)
}

/// A failure of an exact-width load, naming the rank it happened on.
#[derive(Debug)]
pub struct IngestError {
    /// The rank whose trace file failed to load.
    pub rank: usize,
    /// The per-rank trace file involved.
    pub path: std::path::PathBuf,
    /// What went wrong (`NotFound` for a missing rank file,
    /// `InvalidData` for parse failures and foreign-pid lines).
    pub source: io::Error,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {}: cannot load {}: {}", self.rank, self.path.display(), self.source)
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Loads one clean rank file: every line must carry the file's own pid
/// (the same rule the replayer's streaming `FileSource` enforces).
fn load_rank_exact(dir: &Path, rank: usize) -> Result<Vec<Action>, IngestError> {
    let path = dir.join(process_trace_filename(rank));
    let fail = |source: io::Error| IngestError { rank, path: path.clone(), source };
    let sub = TiTrace::load_merged(&path).map_err(fail)?;
    let mut own = Vec::new();
    for (pid, actions) in sub.actions.into_iter().enumerate() {
        if pid == rank {
            own = actions;
        } else if !actions.is_empty() {
            return Err(fail(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line for p{pid} in p{rank}'s file"),
            )));
        }
    }
    Ok(own)
}

/// Loads exactly ranks `0..nproc` (the replay tool's `--np` contract)
/// with up to `jobs` workers; every rank file must exist and contain
/// only its own pid's lines. The result always has `nproc` processes
/// (ranks whose file is empty get an empty action list).
pub fn load_exact(dir: &Path, nproc: usize, jobs: usize) -> Result<TiTrace, IngestError> {
    let per_rank = for_each_rank(nproc, jobs, |rank| load_rank_exact(dir, rank))?;
    Ok(TiTrace { actions: per_rank })
}

/// Like [`load_exact`], interning straight into the replay simulator's
/// [`CompactTrace`] form (each rank's boxed action list is dropped as
/// soon as it is interned).
pub fn load_compact_exact(
    dir: &Path,
    nproc: usize,
    jobs: usize,
) -> Result<CompactTrace, IngestError> {
    let per_rank = for_each_rank(nproc, jobs, |rank| load_rank_exact(dir, rank))?;
    let mut c = CompactTrace::new();
    for (rank, actions) in per_rank.into_iter().enumerate() {
        c.begin_process();
        for a in &actions {
            c.push(a).map_err(|e| IngestError {
                rank,
                path: dir.join(process_trace_filename(rank)),
                source: io::Error::new(io::ErrorKind::InvalidData, e),
            })?;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("titr-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn ring(n: usize, iters: usize) -> TiTrace {
        let mut t = TiTrace::new(n);
        for _ in 0..iters {
            for r in 0..n {
                t.push(r, Action::Compute { flops: 1e6 });
                t.push(r, Action::Send { dst: (r + 1) % n, bytes: 1e6 });
                t.push(r, Action::Recv { src: (r + n - 1) % n, bytes: None });
            }
        }
        t
    }

    #[test]
    fn parallel_load_equals_serial_oracle() {
        let dir = tmp("eq");
        let t = ring(8, 50);
        t.save_per_process(&dir).unwrap();
        let serial = TiTrace::load_per_process(&dir).unwrap();
        for jobs in [0, 2, 3, 8, 64] {
            let parallel = load_per_process_jobs(&dir, jobs).unwrap();
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_rank0_matches_serial_error() {
        let dir = tmp("none");
        std::fs::create_dir_all(&dir).unwrap();
        let serial = TiTrace::load_per_process(&dir).unwrap_err();
        let parallel = load_per_process_jobs(&dir, 4).unwrap_err();
        assert_eq!(serial.kind(), parallel.kind());
        assert_eq!(serial.to_string(), parallel.to_string());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lowest_rank_error_matches_serial() {
        let dir = tmp("err");
        ring(6, 4).save_per_process(&dir).unwrap();
        // Corrupt two ranks; the serial loader stops at the lower one.
        std::fs::write(dir.join(process_trace_filename(2)), "p2 frobnicate 1\n").unwrap();
        std::fs::write(dir.join(process_trace_filename(5)), "p5 bogus\n").unwrap();
        let serial = TiTrace::load_per_process(&dir).unwrap_err();
        let parallel = load_per_process_jobs(&dir, 4).unwrap_err();
        assert_eq!(serial.kind(), parallel.kind());
        assert_eq!(serial.to_string(), parallel.to_string());
        assert!(serial.to_string().contains("frobnicate"), "{serial}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_gap_stops_discovery_like_serial() {
        let dir = tmp("gap");
        ring(6, 2).save_per_process(&dir).unwrap();
        std::fs::remove_file(dir.join(process_trace_filename(3))).unwrap();
        let serial = TiTrace::load_per_process(&dir).unwrap();
        let parallel = load_per_process_jobs(&dir, 4).unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(rank_file_count(&dir), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_exact_requires_every_rank_and_pads() {
        let dir = tmp("exact");
        ring(4, 2).save_per_process(&dir).unwrap();
        std::fs::write(dir.join(process_trace_filename(4)), "").unwrap();
        let t = load_exact(&dir, 5, 2).unwrap();
        assert_eq!(t.num_processes(), 5, "empty file still owns a rank slot");
        assert!(t.actions[4].is_empty());
        let err = load_exact(&dir, 7, 2).unwrap_err();
        assert_eq!(err.rank, 5);
        assert_eq!(err.source.kind(), io::ErrorKind::NotFound);
        assert!(err.to_string().contains("SG_process5.trace"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_exact_rejects_foreign_pids() {
        let dir = tmp("foreign");
        ring(2, 1).save_per_process(&dir).unwrap();
        std::fs::write(dir.join(process_trace_filename(1)), "p0 wait\n").unwrap();
        let err = load_exact(&dir, 2, 2).unwrap_err();
        assert_eq!(err.rank, 1);
        assert_eq!(err.source.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("p0"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_load_matches_boxed_load() {
        let dir = tmp("compact");
        let t = ring(5, 10);
        t.save_per_process(&dir).unwrap();
        let c = load_compact_exact(&dir, 5, 3).unwrap();
        assert_eq!(c.to_trace(), load_exact(&dir, 5, 1).unwrap());
        assert_eq!(c.to_trace(), t);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }
}
