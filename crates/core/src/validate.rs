//! Structural validation of time-independent traces.
//!
//! A trace that violates these rules cannot replay (it would deadlock or
//! crash the replayer), so validation runs after extraction and before
//! replay:
//!
//! * every point-to-point send has a matching receive (per ordered pair);
//! * `comm_size` precedes any collective and is consistent across
//!   processes (Section 3: "the `comm_size` action has to appear in the
//!   trace file associated to each process prior to any collective");
//! * all processes perform the same sequence of collective kinds;
//! * a `wait` never outnumbers the non-blocking requests issued before it;
//! * referenced ranks are within the process set.
//!
//! [`validate()`] is a compatibility wrapper kept for callers of the
//! original aggregate checks; it is now implemented on top of the
//! *ordered* per-pair matching primitives ([`match_p2p`],
//! [`collective_sequences`]) shared with the `titlint` static analyzer,
//! which supersedes it (deadlock-cycle detection, per-finding severities
//! and source locations, JSON output).

use crate::action::Action;
use crate::trace::TiTrace;
use std::collections::BTreeMap;

/// One endpoint (the send side or the receive side) of a point-to-point
/// communication, located in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2pEndpoint {
    /// Rank performing the operation.
    pub rank: usize,
    /// Index of the action in `rank`'s action list.
    pub index: usize,
    /// The other side: destination for sends, source for receives.
    pub peer: usize,
    /// Byte volume: always known for sends, optional for receives.
    pub bytes: Option<f64>,
    /// True for `Isend`/`Irecv`.
    pub nonblocking: bool,
}

/// A send matched to its receive in per-ordered-pair FIFO order (the
/// replayer's mailbox discipline: the k-th send from `src` to `dst`
/// pairs with the k-th receive posted by `dst` from `src`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPair {
    /// The send side (`send` or `Isend`).
    pub send: P2pEndpoint,
    /// The receive side (`recv` or `Irecv`).
    pub recv: P2pEndpoint,
}

/// Result of ordered point-to-point matching over a whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct P2pMatching {
    /// Send/receive pairs matched in per-pair FIFO order.
    pub matched: Vec<MatchedPair>,
    /// Sends with no matching receive (the peer posts too few).
    pub unmatched_sends: Vec<P2pEndpoint>,
    /// Receives with no matching send.
    pub unmatched_recvs: Vec<P2pEndpoint>,
}

/// Matches every point-to-point send to its receive in per-ordered-pair
/// FIFO order, the discipline the replayer's mailboxes implement.
///
/// Unlike an aggregate count this pins each leftover operation to a
/// `(rank, action index)` location, which is what the static analyzer
/// reports and what [`validate()`] folds back into per-pair totals.
pub fn match_p2p(trace: &TiTrace) -> P2pMatching {
    // (src, dst) -> (sends in program order, recvs in program order).
    let mut pairs: BTreeMap<(usize, usize), (Vec<P2pEndpoint>, Vec<P2pEndpoint>)> =
        BTreeMap::new();
    for (rank, actions) in trace.actions.iter().enumerate() {
        for (index, a) in actions.iter().enumerate() {
            match *a {
                Action::Send { dst, bytes } | Action::Isend { dst, bytes } => {
                    let ep = P2pEndpoint {
                        rank,
                        index,
                        peer: dst,
                        bytes: Some(bytes),
                        nonblocking: matches!(a, Action::Isend { .. }),
                    };
                    pairs.entry((rank, dst)).or_default().0.push(ep);
                }
                Action::Recv { src, bytes } | Action::Irecv { src, bytes } => {
                    let ep = P2pEndpoint {
                        rank,
                        index,
                        peer: src,
                        bytes,
                        nonblocking: matches!(a, Action::Irecv { .. }),
                    };
                    pairs.entry((src, rank)).or_default().1.push(ep);
                }
                _ => {}
            }
        }
    }
    let mut out = P2pMatching::default();
    for (_, (sends, recvs)) in pairs {
        let paired = sends.len().min(recvs.len());
        for (s, r) in sends.iter().zip(recvs.iter()) {
            out.matched.push(MatchedPair { send: *s, recv: *r });
        }
        out.unmatched_sends.extend_from_slice(&sends[paired..]);
        out.unmatched_recvs.extend_from_slice(&recvs[paired..]);
    }
    out
}

/// Per-rank collective sequences: for each rank, the ordered list of
/// `(action index, keyword)` of its collective operations. Replay
/// requires these sequences to agree across the communicator.
pub fn collective_sequences(trace: &TiTrace) -> Vec<Vec<(usize, &'static str)>> {
    trace
        .actions
        .iter()
        .map(|actions| {
            actions
                .iter()
                .enumerate()
                .filter(|(_, a)| a.is_collective())
                .map(|(i, a)| (i, a.keyword()))
                .collect()
        })
        .collect()
}

/// A structural defect making a trace non-replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `sends` from `src` to `dst` but `recvs` in the opposite direction.
    UnbalancedPair {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Sends from `src` to `dst`.
        sends: u64,
        /// Receives posted by `dst` from `src`.
        recvs: u64,
    },
    /// A collective appears before `comm_size` on `rank`.
    CollectiveBeforeCommSize {
        /// Offending rank.
        rank: usize,
        /// Index of the collective in `rank`'s action list.
        index: usize,
    },
    /// Processes disagree on the communicator size.
    InconsistentCommSize {
        /// Offending rank.
        rank: usize,
        /// Size this rank declared.
        declared: usize,
        /// Size the other ranks declared.
        expected: usize,
    },
    /// Collective sequences differ between `rank` and rank 0.
    CollectiveMismatch {
        /// Diverging rank.
        rank: usize,
        /// Position of the first diverging collective.
        index: usize,
    },
    /// A `wait` with no pending request.
    WaitWithoutRequest {
        /// Offending rank.
        rank: usize,
        /// Index of the `wait` in `rank`'s action list.
        index: usize,
    },
    /// Requests still pending at the end of `rank`'s trace.
    DanglingRequests {
        /// Offending rank.
        rank: usize,
        /// Requests never completed by a `wait`.
        pending: u64,
    },
    /// An action references a rank outside the process set.
    RankOutOfRange {
        /// Rank performing the action.
        rank: usize,
        /// Index of the action in `rank`'s list.
        index: usize,
        /// The out-of-range rank it references.
        referenced: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ValidationError::*;
        match self {
            UnbalancedPair { src, dst, sends, recvs } => write!(
                f,
                "p{src}->p{dst}: {sends} send(s) but {recvs} matching recv(s)"
            ),
            CollectiveBeforeCommSize { rank, index } => {
                write!(f, "p{rank}: collective at action {index} before comm_size")
            }
            InconsistentCommSize { rank, declared, expected } => write!(
                f,
                "p{rank}: comm_size {declared} but other ranks declared {expected}"
            ),
            CollectiveMismatch { rank, index } => write!(
                f,
                "p{rank}: collective sequence diverges from p0 at collective #{index}"
            ),
            WaitWithoutRequest { rank, index } => {
                write!(f, "p{rank}: wait at action {index} with no pending request")
            }
            DanglingRequests { rank, pending } => {
                write!(f, "p{rank}: {pending} non-blocking request(s) never waited")
            }
            RankOutOfRange { rank, index, referenced } => write!(
                f,
                "p{rank}: action {index} references p{referenced}, outside the process set"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates `trace`, returning every defect found (empty = valid).
///
/// Compatibility wrapper: per-pair balance is derived from the ordered
/// matching of [`match_p2p`] (the aggregate counting it used to do
/// itself), and collective agreement from [`collective_sequences`]. The
/// `titlint` crate performs the full static analysis — deadlock cycles,
/// volume sanity, source locations — on the same primitives.
pub fn validate(trace: &TiTrace) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let n = trace.num_processes();

    // Ordered point-to-point matching, folded back into per-pair totals.
    let matching = match_p2p(trace);
    let mut pairs: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    for m in &matching.matched {
        let c = pairs.entry((m.send.rank, m.send.peer)).or_insert((0, 0));
        c.0 += 1;
        c.1 += 1;
    }
    for s in &matching.unmatched_sends {
        pairs.entry((s.rank, s.peer)).or_insert((0, 0)).0 += 1;
    }
    for r in &matching.unmatched_recvs {
        pairs.entry((r.peer, r.rank)).or_insert((0, 0)).1 += 1;
    }
    for (&(src, dst), &(sends, recvs)) in &pairs {
        if sends != recvs {
            errors.push(ValidationError::UnbalancedPair { src, dst, sends, recvs });
        }
    }

    // Rank ranges, comm_size discipline, wait/request discipline.
    let mut comm_size: Option<usize> = None;
    for (rank, actions) in trace.actions.iter().enumerate() {
        let mut seen_comm_size = false;
        let mut pending_reqs: u64 = 0;
        for (index, a) in actions.iter().enumerate() {
            match a {
                Action::Send { dst: peer, .. }
                | Action::Isend { dst: peer, .. }
                | Action::Recv { src: peer, .. }
                | Action::Irecv { src: peer, .. }
                    if *peer >= n => {
                        errors.push(ValidationError::RankOutOfRange {
                            rank,
                            index,
                            referenced: *peer,
                        });
                    }
                Action::CommSize { nproc } => {
                    seen_comm_size = true;
                    match comm_size {
                        None => comm_size = Some(*nproc),
                        Some(expected) if expected != *nproc => {
                            errors.push(ValidationError::InconsistentCommSize {
                                rank,
                                declared: *nproc,
                                expected,
                            });
                        }
                        _ => {}
                    }
                }
                Action::Wait => {
                    if pending_reqs == 0 {
                        errors.push(ValidationError::WaitWithoutRequest { rank, index });
                    } else {
                        pending_reqs -= 1;
                    }
                }
                _ => {}
            }
            if a.is_collective() && !seen_comm_size {
                errors.push(ValidationError::CollectiveBeforeCommSize { rank, index });
            }
            if a.is_nonblocking() {
                pending_reqs += 1;
            }
        }
        if pending_reqs > 0 {
            errors.push(ValidationError::DanglingRequests { rank, pending: pending_reqs });
        }
    }

    // Collective sequences must agree across the communicator.
    let coll_seqs = collective_sequences(trace);
    if n > 1 {
        let reference = &coll_seqs[0];
        for (rank, seq) in coll_seqs.iter().enumerate().skip(1) {
            let diverge = reference
                .iter()
                .zip(seq.iter())
                .position(|((_, a), (_, b))| a != b)
                .or(if reference.len() != seq.len() {
                    Some(reference.len().min(seq.len()))
                } else {
                    None
                });
            if let Some(index) = diverge {
                errors.push(ValidationError::CollectiveMismatch { rank, index });
            }
        }
    }

    errors.sort_by_key(|e| format!("{e:?}"));
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_ring() -> TiTrace {
        let mut t = TiTrace::new(2);
        for r in 0..2usize {
            t.push(r, Action::CommSize { nproc: 2 });
        }
        t.push(0, Action::Compute { flops: 10.0 });
        t.push(0, Action::Send { dst: 1, bytes: 64.0 });
        t.push(1, Action::Recv { src: 0, bytes: None });
        for r in 0..2usize {
            t.push(r, Action::Barrier);
        }
        t
    }

    #[test]
    fn valid_trace_has_no_errors() {
        assert!(validate(&valid_ring()).is_empty());
    }

    #[test]
    fn detects_unbalanced_pair() {
        let mut t = valid_ring();
        t.push(0, Action::Send { dst: 1, bytes: 1.0 });
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnbalancedPair { src: 0, dst: 1, sends: 2, recvs: 1 })));
    }

    #[test]
    fn detects_collective_before_comm_size() {
        let mut t = TiTrace::new(1);
        t.push(0, Action::Barrier);
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::CollectiveBeforeCommSize { rank: 0, index: 0 })));
    }

    #[test]
    fn detects_inconsistent_comm_size() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::CommSize { nproc: 2 });
        t.push(1, Action::CommSize { nproc: 3 });
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::InconsistentCommSize { rank: 1, declared: 3, expected: 2 })));
    }

    #[test]
    fn detects_collective_sequence_mismatch() {
        let mut t = TiTrace::new(2);
        for r in 0..2usize {
            t.push(r, Action::CommSize { nproc: 2 });
        }
        t.push(0, Action::Barrier);
        t.push(0, Action::Bcast { bytes: 8.0 });
        t.push(1, Action::Bcast { bytes: 8.0 });
        t.push(1, Action::Barrier);
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::CollectiveMismatch { rank: 1, index: 0 })));
    }

    #[test]
    fn detects_wait_without_request_and_dangling() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Wait);
        t.push(1, Action::Irecv { src: 0, bytes: None });
        // Balance the pair so only the request errors remain.
        t.push(0, Action::Send { dst: 1, bytes: 1.0 });
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::WaitWithoutRequest { rank: 0, index: 0 })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DanglingRequests { rank: 1, pending: 1 })));
    }

    #[test]
    fn detects_rank_out_of_range() {
        let mut t = TiTrace::new(1);
        t.push(0, Action::Send { dst: 7, bytes: 1.0 });
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::RankOutOfRange { rank: 0, index: 0, referenced: 7 })));
    }

    #[test]
    fn match_p2p_pairs_in_fifo_order_and_reports_leftovers() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Send { dst: 1, bytes: 10.0 });
        t.push(0, Action::Isend { dst: 1, bytes: 20.0 });
        t.push(1, Action::Recv { src: 0, bytes: Some(10.0) });
        t.push(1, Action::Irecv { src: 0, bytes: None });
        t.push(1, Action::Wait);
        t.push(0, Action::Send { dst: 1, bytes: 30.0 }); // no matching recv
        t.push(1, Action::Recv { src: 1, bytes: None }); // self, no send
        let m = match_p2p(&t);
        assert_eq!(m.matched.len(), 2);
        // FIFO: first send pairs with first posted receive.
        assert_eq!(m.matched[0].send.bytes, Some(10.0));
        assert_eq!(m.matched[0].recv.index, 0);
        assert_eq!(m.matched[1].send.bytes, Some(20.0));
        assert!(m.matched[1].recv.nonblocking);
        assert_eq!(m.unmatched_sends.len(), 1);
        assert_eq!(m.unmatched_sends[0].index, 2);
        assert_eq!(m.unmatched_recvs.len(), 1);
        assert_eq!(m.unmatched_recvs[0].peer, 1);
    }

    #[test]
    fn collective_sequences_carry_action_indices() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::CommSize { nproc: 2 });
        t.push(0, Action::Barrier);
        t.push(0, Action::Compute { flops: 1.0 });
        t.push(0, Action::Bcast { bytes: 8.0 });
        t.push(1, Action::Barrier);
        let seqs = collective_sequences(&t);
        assert_eq!(seqs[0], vec![(1, "barrier"), (3, "bcast")]);
        assert_eq!(seqs[1], vec![(0, "barrier")]);
    }

    #[test]
    fn irecv_plus_wait_is_valid() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Irecv { src: 1, bytes: None });
        t.push(0, Action::Compute { flops: 5.0 });
        t.push(0, Action::Wait);
        t.push(1, Action::Send { dst: 0, bytes: 32.0 });
        assert!(validate(&t).is_empty());
    }
}
