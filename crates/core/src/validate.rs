//! Structural validation of time-independent traces.
//!
//! A trace that violates these rules cannot replay (it would deadlock or
//! crash the replayer), so validation runs after extraction and before
//! replay:
//!
//! * every point-to-point send has a matching receive (per ordered pair);
//! * `comm_size` precedes any collective and is consistent across
//!   processes (Section 3: "the `comm_size` action has to appear in the
//!   trace file associated to each process prior to any collective");
//! * all processes perform the same sequence of collective kinds;
//! * a `wait` never outnumbers the non-blocking requests issued before it;
//! * referenced ranks are within the process set.

use crate::action::Action;
use crate::trace::TiTrace;
use std::collections::HashMap;

/// A structural defect making a trace non-replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `sends` from `src` to `dst` but `recvs` in the opposite direction.
    UnbalancedPair { src: usize, dst: usize, sends: u64, recvs: u64 },
    /// A collective appears before `comm_size` on `rank`.
    CollectiveBeforeCommSize { rank: usize, index: usize },
    /// Processes disagree on the communicator size.
    InconsistentCommSize { rank: usize, declared: usize, expected: usize },
    /// Collective sequences differ between `rank` and rank 0.
    CollectiveMismatch { rank: usize, index: usize },
    /// A `wait` with no pending request.
    WaitWithoutRequest { rank: usize, index: usize },
    /// Requests still pending at the end of `rank`'s trace.
    DanglingRequests { rank: usize, pending: u64 },
    /// An action references a rank outside the process set.
    RankOutOfRange { rank: usize, index: usize, referenced: usize },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ValidationError::*;
        match self {
            UnbalancedPair { src, dst, sends, recvs } => write!(
                f,
                "p{src}->p{dst}: {sends} send(s) but {recvs} matching recv(s)"
            ),
            CollectiveBeforeCommSize { rank, index } => {
                write!(f, "p{rank}: collective at action {index} before comm_size")
            }
            InconsistentCommSize { rank, declared, expected } => write!(
                f,
                "p{rank}: comm_size {declared} but other ranks declared {expected}"
            ),
            CollectiveMismatch { rank, index } => write!(
                f,
                "p{rank}: collective sequence diverges from p0 at collective #{index}"
            ),
            WaitWithoutRequest { rank, index } => {
                write!(f, "p{rank}: wait at action {index} with no pending request")
            }
            DanglingRequests { rank, pending } => {
                write!(f, "p{rank}: {pending} non-blocking request(s) never waited")
            }
            RankOutOfRange { rank, index, referenced } => write!(
                f,
                "p{rank}: action {index} references p{referenced}, outside the process set"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates `trace`, returning every defect found (empty = valid).
pub fn validate(trace: &TiTrace) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let n = trace.num_processes();
    // (src, dst) -> (sends, recvs)
    let mut pairs: HashMap<(usize, usize), (u64, u64)> = HashMap::new();
    let mut comm_size: Option<usize> = None;
    let mut coll_seqs: Vec<Vec<&'static str>> = vec![Vec::new(); n];

    for (rank, actions) in trace.actions.iter().enumerate() {
        let mut seen_comm_size = false;
        let mut pending_reqs: u64 = 0;
        for (index, a) in actions.iter().enumerate() {
            match a {
                Action::Send { dst, .. } | Action::Isend { dst, .. } => {
                    if *dst >= n {
                        errors.push(ValidationError::RankOutOfRange {
                            rank,
                            index,
                            referenced: *dst,
                        });
                    }
                    pairs.entry((rank, *dst)).or_insert((0, 0)).0 += 1;
                }
                Action::Recv { src, .. } | Action::Irecv { src, .. } => {
                    if *src >= n {
                        errors.push(ValidationError::RankOutOfRange {
                            rank,
                            index,
                            referenced: *src,
                        });
                    }
                    pairs.entry((*src, rank)).or_insert((0, 0)).1 += 1;
                }
                Action::CommSize { nproc } => {
                    seen_comm_size = true;
                    match comm_size {
                        None => comm_size = Some(*nproc),
                        Some(expected) if expected != *nproc => {
                            errors.push(ValidationError::InconsistentCommSize {
                                rank,
                                declared: *nproc,
                                expected,
                            });
                        }
                        _ => {}
                    }
                }
                Action::Wait => {
                    if pending_reqs == 0 {
                        errors.push(ValidationError::WaitWithoutRequest { rank, index });
                    } else {
                        pending_reqs -= 1;
                    }
                }
                _ => {}
            }
            if a.is_collective() {
                if !seen_comm_size {
                    errors.push(ValidationError::CollectiveBeforeCommSize { rank, index });
                }
                coll_seqs[rank].push(a.keyword());
            }
            if a.is_nonblocking() {
                pending_reqs += 1;
            }
        }
        if pending_reqs > 0 {
            errors.push(ValidationError::DanglingRequests { rank, pending: pending_reqs });
        }
    }

    for (&(src, dst), &(sends, recvs)) in &pairs {
        if sends != recvs {
            errors.push(ValidationError::UnbalancedPair { src, dst, sends, recvs });
        }
    }

    // Collective sequences must agree across the communicator.
    if n > 1 {
        let reference = &coll_seqs[0];
        for (rank, seq) in coll_seqs.iter().enumerate().skip(1) {
            let diverge = reference
                .iter()
                .zip(seq.iter())
                .position(|(a, b)| a != b)
                .or(if reference.len() != seq.len() {
                    Some(reference.len().min(seq.len()))
                } else {
                    None
                });
            if let Some(index) = diverge {
                errors.push(ValidationError::CollectiveMismatch { rank, index });
            }
        }
    }

    errors.sort_by_key(|e| format!("{e:?}"));
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_ring() -> TiTrace {
        let mut t = TiTrace::new(2);
        for r in 0..2usize {
            t.push(r, Action::CommSize { nproc: 2 });
        }
        t.push(0, Action::Compute { flops: 10.0 });
        t.push(0, Action::Send { dst: 1, bytes: 64.0 });
        t.push(1, Action::Recv { src: 0, bytes: None });
        for r in 0..2usize {
            t.push(r, Action::Barrier);
        }
        t
    }

    #[test]
    fn valid_trace_has_no_errors() {
        assert!(validate(&valid_ring()).is_empty());
    }

    #[test]
    fn detects_unbalanced_pair() {
        let mut t = valid_ring();
        t.push(0, Action::Send { dst: 1, bytes: 1.0 });
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnbalancedPair { src: 0, dst: 1, sends: 2, recvs: 1 })));
    }

    #[test]
    fn detects_collective_before_comm_size() {
        let mut t = TiTrace::new(1);
        t.push(0, Action::Barrier);
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::CollectiveBeforeCommSize { rank: 0, index: 0 })));
    }

    #[test]
    fn detects_inconsistent_comm_size() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::CommSize { nproc: 2 });
        t.push(1, Action::CommSize { nproc: 3 });
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::InconsistentCommSize { rank: 1, declared: 3, expected: 2 })));
    }

    #[test]
    fn detects_collective_sequence_mismatch() {
        let mut t = TiTrace::new(2);
        for r in 0..2usize {
            t.push(r, Action::CommSize { nproc: 2 });
        }
        t.push(0, Action::Barrier);
        t.push(0, Action::Bcast { bytes: 8.0 });
        t.push(1, Action::Bcast { bytes: 8.0 });
        t.push(1, Action::Barrier);
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::CollectiveMismatch { rank: 1, index: 0 })));
    }

    #[test]
    fn detects_wait_without_request_and_dangling() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Wait);
        t.push(1, Action::Irecv { src: 0, bytes: None });
        // Balance the pair so only the request errors remain.
        t.push(0, Action::Send { dst: 1, bytes: 1.0 });
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::WaitWithoutRequest { rank: 0, index: 0 })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DanglingRequests { rank: 1, pending: 1 })));
    }

    #[test]
    fn detects_rank_out_of_range() {
        let mut t = TiTrace::new(1);
        t.push(0, Action::Send { dst: 7, bytes: 1.0 });
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::RankOutOfRange { rank: 0, index: 0, referenced: 7 })));
    }

    #[test]
    fn irecv_plus_wait_is_valid() {
        let mut t = TiTrace::new(2);
        t.push(0, Action::Irecv { src: 1, bytes: None });
        t.push(0, Action::Compute { flops: 5.0 });
        t.push(0, Action::Wait);
        t.push(1, Action::Send { dst: 0, bytes: 32.0 });
        assert!(validate(&t).is_empty());
    }
}
