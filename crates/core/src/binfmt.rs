//! Binary time-independent trace format.
//!
//! The paper's conclusion lists, as future work, "techniques to reduce
//! the size of the traces, e.g., using a binary format". This module
//! implements that format: one byte-oriented record per action with
//! varint-coded ranks and volumes (volumes are stored as varints when
//! integral — virtually always, since they count flops or bytes — and as
//! raw `f64` otherwise, flagged in the opcode byte).
//!
//! On LU traces the binary form is ~3-4× smaller than the text form
//! before compression (see the `ablations` experiment), while remaining
//! streamable in both directions.
//!
//! Layout: magic `TIB1`, varint rank, varint action count, then records:
//!
//! ```text
//! opcode:u8 [args...]       // bit 7 set = f64 volumes follow
//! ```

use crate::action::{Action, Pid};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"TIB1";

const OP_COMPUTE: u8 = 1;
const OP_SEND: u8 = 2;
const OP_ISEND: u8 = 3;
const OP_RECV: u8 = 4;
const OP_IRECV: u8 = 5;
const OP_BCAST: u8 = 6;
const OP_REDUCE: u8 = 7;
const OP_ALLREDUCE: u8 = 8;
const OP_BARRIER: u8 = 9;
const OP_COMM_SIZE: u8 = 10;
const OP_WAIT: u8 = 11;
/// Set when the record's volumes are raw `f64` (non-integral).
const FLAG_FLOAT: u8 = 0x80;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> std::io::Result<()> {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[b]);
        }
        w.write_all(&[b | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        v |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
    }
}

fn integral(v: f64) -> bool {
    v.fract() == 0.0 && (0.0..9.0e15).contains(&v)
}

struct VolWriter {
    float: bool,
}

impl VolWriter {
    fn for_action(a: &Action) -> Self {
        let vols: [f64; 2] = match a {
            Action::Compute { flops } => [*flops, 0.0],
            Action::Send { bytes, .. } | Action::Isend { bytes, .. } => [*bytes, 0.0],
            Action::Recv { bytes, .. } | Action::Irecv { bytes, .. } => {
                [bytes.unwrap_or(0.0), 0.0]
            }
            Action::Bcast { bytes } => [*bytes, 0.0],
            Action::Reduce { vcomm, vcomp } | Action::AllReduce { vcomm, vcomp } => {
                [*vcomm, *vcomp]
            }
            _ => [0.0, 0.0],
        };
        VolWriter { float: !vols.iter().all(|&v| integral(v)) }
    }

    fn put<W: Write>(&self, w: &mut W, v: f64) -> std::io::Result<()> {
        if self.float {
            w.write_all(&v.to_le_bytes())
        } else {
            write_varint(w, v as u64)
        }
    }
}

fn get_vol<R: Read>(r: &mut R, float: bool) -> std::io::Result<f64> {
    if float {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        let v = f64::from_le_bytes(b);
        if !v.is_finite() || v < 0.0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "invalid volume",
            ));
        }
        Ok(v)
    } else {
        Ok(read_varint(r)? as f64)
    }
}

/// Writes one action record.
pub fn write_action<W: Write>(w: &mut W, a: &Action) -> std::io::Result<()> {
    let vw = VolWriter::for_action(a);
    let flag = if vw.float { FLAG_FLOAT } else { 0 };
    match a {
        Action::Compute { flops } => {
            w.write_all(&[OP_COMPUTE | flag])?;
            vw.put(w, *flops)
        }
        Action::Send { dst, bytes } => {
            w.write_all(&[OP_SEND | flag])?;
            write_varint(w, *dst as u64)?;
            vw.put(w, *bytes)
        }
        Action::Isend { dst, bytes } => {
            w.write_all(&[OP_ISEND | flag])?;
            write_varint(w, *dst as u64)?;
            vw.put(w, *bytes)
        }
        Action::Recv { src, .. } => {
            w.write_all(&[OP_RECV])?;
            write_varint(w, *src as u64)
        }
        Action::Irecv { src, .. } => {
            w.write_all(&[OP_IRECV])?;
            write_varint(w, *src as u64)
        }
        Action::Bcast { bytes } => {
            w.write_all(&[OP_BCAST | flag])?;
            vw.put(w, *bytes)
        }
        Action::Reduce { vcomm, vcomp } => {
            w.write_all(&[OP_REDUCE | flag])?;
            vw.put(w, *vcomm)?;
            vw.put(w, *vcomp)
        }
        Action::AllReduce { vcomm, vcomp } => {
            w.write_all(&[OP_ALLREDUCE | flag])?;
            vw.put(w, *vcomm)?;
            vw.put(w, *vcomp)
        }
        Action::Barrier => w.write_all(&[OP_BARRIER]),
        Action::CommSize { nproc } => {
            w.write_all(&[OP_COMM_SIZE])?;
            write_varint(w, *nproc as u64)
        }
        Action::Wait => w.write_all(&[OP_WAIT]),
    }
}

/// Reads one action record.
pub fn read_action<R: Read>(r: &mut R) -> std::io::Result<Action> {
    let mut op = [0u8; 1];
    r.read_exact(&mut op)?;
    let float = op[0] & FLAG_FLOAT != 0;
    Ok(match op[0] & !FLAG_FLOAT {
        OP_COMPUTE => Action::Compute { flops: get_vol(r, float)? },
        OP_SEND => Action::Send {
            dst: read_varint(r)? as Pid,
            bytes: get_vol(r, float)?,
        },
        OP_ISEND => Action::Isend {
            dst: read_varint(r)? as Pid,
            bytes: get_vol(r, float)?,
        },
        OP_RECV => Action::Recv { src: read_varint(r)? as Pid, bytes: None },
        OP_IRECV => Action::Irecv { src: read_varint(r)? as Pid, bytes: None },
        OP_BCAST => Action::Bcast { bytes: get_vol(r, float)? },
        OP_REDUCE => Action::Reduce {
            vcomm: get_vol(r, float)?,
            vcomp: get_vol(r, float)?,
        },
        OP_ALLREDUCE => Action::AllReduce {
            vcomm: get_vol(r, float)?,
            vcomp: get_vol(r, float)?,
        },
        OP_BARRIER => Action::Barrier,
        OP_COMM_SIZE => Action::CommSize { nproc: read_varint(r)? as usize },
        OP_WAIT => Action::Wait,
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown binary opcode {other}"),
            ))
        }
    })
}

/// Conventional binary trace file name.
pub fn binary_trace_filename(rank: Pid) -> String {
    format!("SG_process{rank}.btrace")
}

/// Streaming binary writer for one rank's trace.
pub struct BinaryTraceWriter {
    w: BufWriter<std::fs::File>,
    count_pos_fixup: PathBuf,
    rank: Pid,
    actions: u64,
}

impl BinaryTraceWriter {
    /// Creates `dir/SG_process<rank>.btrace`.
    pub fn create(dir: &Path, rank: Pid) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(binary_trace_filename(rank));
        let mut w = BufWriter::with_capacity(1 << 20, std::fs::File::create(&path)?);
        w.write_all(MAGIC)?;
        write_varint(&mut w, rank as u64)?;
        Ok(BinaryTraceWriter { w, count_pos_fixup: path, rank, actions: 0 })
    }

    /// Appends one action to the stream.
    pub fn write(&mut self, a: &Action) -> std::io::Result<()> {
        self.actions += 1;
        write_action(&mut self.w, a)
    }

    /// The rank this writer serialises.
    pub fn rank(&self) -> Pid {
        self.rank
    }

    /// Number of actions written so far.
    pub fn actions_written(&self) -> u64 {
        self.actions
    }

    /// Flushes; returns the path.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.w.flush()?;
        Ok(self.count_pos_fixup)
    }
}

/// Streaming binary reader for one rank's trace.
pub struct BinaryTraceReader {
    r: BufReader<std::fs::File>,
    rank: Pid,
}

impl BinaryTraceReader {
    /// Opens a binary trace file, checking the magic header.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut r = BufReader::with_capacity(1 << 20, std::fs::File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a binary time-independent trace (bad magic)",
            ));
        }
        let rank = read_varint(&mut r)? as Pid;
        Ok(BinaryTraceReader { r, rank })
    }

    /// The rank recorded in the file header.
    pub fn rank(&self) -> Pid {
        self.rank
    }

    /// Next action; `Ok(None)` at a clean end of file.
    pub fn next_action(&mut self) -> std::io::Result<Option<Action>> {
        let mut op = [0u8; 1];
        if self.r.read(&mut op)? == 0 {
            return Ok(None);
        }
        // Re-dispatch with the opcode already consumed: chain readers.
        let rest = &mut self.r;
        let float = op[0] & FLAG_FLOAT != 0;
        let a = match op[0] & !FLAG_FLOAT {
            OP_COMPUTE => Action::Compute { flops: get_vol(rest, float)? },
            OP_SEND => Action::Send {
                dst: read_varint(rest)? as Pid,
                bytes: get_vol(rest, float)?,
            },
            OP_ISEND => Action::Isend {
                dst: read_varint(rest)? as Pid,
                bytes: get_vol(rest, float)?,
            },
            OP_RECV => Action::Recv { src: read_varint(rest)? as Pid, bytes: None },
            OP_IRECV => Action::Irecv { src: read_varint(rest)? as Pid, bytes: None },
            OP_BCAST => Action::Bcast { bytes: get_vol(rest, float)? },
            OP_REDUCE => Action::Reduce {
                vcomm: get_vol(rest, float)?,
                vcomp: get_vol(rest, float)?,
            },
            OP_ALLREDUCE => Action::AllReduce {
                vcomm: get_vol(rest, float)?,
                vcomp: get_vol(rest, float)?,
            },
            OP_BARRIER => Action::Barrier,
            OP_COMM_SIZE => Action::CommSize { nproc: read_varint(rest)? as usize },
            OP_WAIT => Action::Wait,
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unknown binary opcode {other}"),
                ))
            }
        };
        Ok(Some(a))
    }
}

/// Converts a text per-process trace dir into binary form; returns
/// `(text_bytes, binary_bytes)` for size comparisons.
pub fn convert_dir(text_dir: &Path, bin_dir: &Path, nproc: usize) -> std::io::Result<(u64, u64)> {
    let mut text_total = 0;
    let mut bin_total = 0;
    for rank in 0..nproc {
        let tpath = text_dir.join(crate::trace::process_trace_filename(rank));
        text_total += std::fs::metadata(&tpath)?.len();
        let mut r = crate::trace::ProcessTraceReader::open(&tpath)?;
        let mut w = BinaryTraceWriter::create(bin_dir, rank)?;
        while let Some((pid, a)) = r.next_action()? {
            debug_assert_eq!(pid, rank);
            w.write(&a)?;
        }
        let path = w.finish()?;
        bin_total += std::fs::metadata(path)?.len();
    }
    Ok((text_total, bin_total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(a: Action) {
        let mut buf = Vec::new();
        write_action(&mut buf, &a).unwrap();
        let back = read_action(&mut &buf[..]).unwrap();
        // Recv/Irecv drop the optional byte count by design.
        let normalized = match a {
            Action::Recv { src, .. } => Action::Recv { src, bytes: None },
            Action::Irecv { src, .. } => Action::Irecv { src, bytes: None },
            other => other,
        };
        assert_eq!(back, normalized, "roundtrip of {a:?}");
    }

    #[test]
    fn every_action_roundtrips() {
        roundtrip(Action::Compute { flops: 1e6 });
        roundtrip(Action::Compute { flops: 123.456 }); // float path
        roundtrip(Action::Send { dst: 1, bytes: 163840.0 });
        roundtrip(Action::Isend { dst: 4095, bytes: 0.5 });
        roundtrip(Action::Recv { src: 3, bytes: Some(9.0) });
        roundtrip(Action::Irecv { src: 0, bytes: None });
        roundtrip(Action::Bcast { bytes: 4096.0 });
        roundtrip(Action::Reduce { vcomm: 40.0, vcomp: 1000.0 });
        roundtrip(Action::AllReduce { vcomm: 40.5, vcomp: 1000.25 });
        roundtrip(Action::Barrier);
        roundtrip(Action::CommSize { nproc: 1024 });
        roundtrip(Action::Wait);
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        let a = Action::Send { dst: 13, bytes: 163840.0 };
        let text = crate::codec::format_action(12, &a).len() + 1;
        let mut bin = Vec::new();
        write_action(&mut bin, &a).unwrap();
        assert!(
            bin.len() * 3 <= text,
            "binary {} vs text {text} bytes",
            bin.len()
        );
    }

    #[test]
    fn file_roundtrip_and_size_gain() {
        let dir = std::env::temp_dir().join(format!("titr-bin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A realistic trace: LU-shaped action mix.
        let mut actions = vec![Action::CommSize { nproc: 8 }];
        for i in 0..5000usize {
            actions.push(Action::Irecv { src: i % 8, bytes: None });
            actions.push(Action::Wait);
            actions.push(Action::Compute { flops: 162000.0 });
            actions.push(Action::Send { dst: (i + 1) % 8, bytes: 520.0 });
        }
        let text_dir = dir.join("text");
        let mut t = crate::trace::TiTrace::new(8);
        for a in &actions {
            t.push(3, *a);
        }
        t.save_per_process(&text_dir).unwrap();
        let bin_dir = dir.join("bin");
        let (text_bytes, bin_bytes) = convert_dir(&text_dir, &bin_dir, 8).unwrap();
        assert!(
            bin_bytes * 3 < text_bytes,
            "binary {bin_bytes} vs text {text_bytes}"
        );
        // Read back rank 3 and compare.
        let mut r =
            BinaryTraceReader::open(&bin_dir.join(binary_trace_filename(3))).unwrap();
        assert_eq!(r.rank(), 3);
        let mut got = Vec::new();
        while let Some(a) = r.next_action().unwrap() {
            got.push(a);
        }
        assert_eq!(got, actions);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_files_rejected() {
        let dir = std::env::temp_dir().join(format!("titr-binbad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.btrace");
        std::fs::write(&p, b"NOPE").unwrap();
        assert!(BinaryTraceReader::open(&p).is_err());
        std::fs::write(&p, [b'T', b'I', b'B', b'1', 0, 0x7f]).unwrap();
        let mut r = BinaryTraceReader::open(&p).unwrap();
        assert!(r.next_action().is_err(), "opcode 0x7f is invalid");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut &buf[..]).unwrap(), v);
        }
    }
}
