//! `TIB2`: the segmented, checksummed on-disk trace store (DESIGN.md
//! §5i, docs/FORMATS.md §TIB2).
//!
//! PR 4's [`CompactTrace`] made replay memory 16 bytes per action —
//! but the whole trace still has to be resident. The paper's §6.5
//! headline (LU class D, 1024 ranks, a 32.5 GiB trace) needs the
//! opposite shape: an on-disk form that can be *paged, not parsed*,
//! where replay touches O(ranks + resident segments) bytes however
//! long the trace is. `TIB2` is that form: the struct-of-arrays
//! columns of [`CompactTrace`], cut into fixed-action-count segments,
//! each independently decodable and independently checksummed.
//!
//! Robustness is the other half of the contract. Every segment read is
//! fail-closed — the FNV-1a-64 checksum recorded in the footer is
//! verified before a single action is decoded, and a mismatch is a
//! typed [`StoreError::SegmentDamaged`] naming rank, segment and byte
//! offset. The footer itself is length-framed and checksummed by the
//! fixed-size trailer, so *any* bit flip anywhere in the file lands in
//! some checksum's domain: segment damage is attributable (and
//! survivable at segment granularity in `--degraded` replay), footer
//! or trailer damage fails the open. There is no byte in a `TIB2` file
//! whose corruption goes undetected.
//!
//! ## Layout
//!
//! ```text
//! head     "TIB2" u32:version
//! segments rank-major; each:
//!            header   u32:rank u32:seg_index u32:n_actions u32:payload_len
//!            payload  n x u32:tag | n x u32:peer | n x f64:vol
//!                     u32:n_aux | n_aux x f64:aux
//! footer   Enc{ nranks, per rank: nsegs,
//!               per seg: u64:offset u32:n_actions u32:payload_len u64:fnv }
//! trailer  u64:footer_len u64:footer_fnv "TIB2-END"
//! ```
//!
//! All integers little-endian; volumes are `f64::to_bits` (`NaN`
//! encodes an unannotated receive, exactly as in [`CompactTrace`]).
//! The `reduce`/`allReduce` peer slot indexes the *segment-local* side
//! table, so a segment decodes with no context beyond its own bytes.
//! A segment's checksum domain is its header plus payload; the
//! `footer_fnv` of the trailer doubles as the store's content
//! fingerprint (checkpoints taken against a store embed it — see
//! `tit-replay --store --checkpoint`).
//!
//! Writing is streaming ([`Tib2Writer`] holds one open segment, so a
//! generator can emit a multi-GiB store without ever materializing the
//! trace) and atomic when pointed at an [`crate::atomicio::AtomicFile`].
//! Reading ([`Tib2Store`]) keeps only the footer index resident and
//! serves segments by positioned reads (`read_at`), which is how the
//! replay layer's segment cache bounds residency under
//! [`crate::membudget::MemBudget`].

use crate::action::Action;
use crate::checkpoint::{fnv1a, Dec, Enc};
use crate::compact::{decode_parts, encode_parts, tag, CompactError, CompactTrace, NO_PEER};
use crate::ingest::for_each_rank;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// File magic, first 4 bytes.
const MAGIC: [u8; 4] = *b"TIB2";
/// Format version after the magic.
const VERSION: u32 = 1;
/// End-of-file magic, last 8 bytes of the trailer.
const END_MAGIC: [u8; 8] = *b"TIB2-END";
/// head = magic + version.
const HEAD_LEN: u64 = 8;
/// trailer = footer_len + footer_fnv + end magic.
const TRAILER_LEN: u64 = 24;
/// Per-segment header: rank, seg_index, n_actions, payload_len.
const SEG_HEADER_LEN: usize = 16;

/// Default actions per segment (~64 KiB of payload): large enough that
/// the 40-byte footer entry is noise, small enough that a damaged
/// segment costs a sliver of the trace and residency is fine-grained.
pub const DEFAULT_SEG_ACTIONS: usize = 4096;

/// Why a `TIB2` store could not be opened or a segment could not be
/// served. Every variant is fail-closed: no partially-verified bytes
/// ever reach the replay kernel.
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read at all.
    Io {
        /// The store file involved.
        path: PathBuf,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// The head magic is not `TIB2` — not a store, or its first bytes
    /// were overwritten.
    BadMagic {
        /// The four bytes found where the magic belongs.
        found: [u8; 4],
    },
    /// The head carries a version this reader does not speak.
    BadVersion {
        /// The version found.
        found: u32,
    },
    /// The footer or trailer is truncated, fails its own checksum, or
    /// decodes to an inconsistent index. Nothing in the file can be
    /// trusted; `--degraded` replay cannot salvage a store whose index
    /// is gone.
    FooterDamaged {
        /// What was wrong.
        detail: String,
    },
    /// One segment failed verification: checksum mismatch, short read,
    /// a header that contradicts the footer, or structurally invalid
    /// columns. Names exactly which bytes are untrustworthy; every
    /// other segment remains servable.
    SegmentDamaged {
        /// Rank owning the segment.
        rank: usize,
        /// Segment index within the rank.
        segment: usize,
        /// Byte offset of the segment header in the file.
        offset: u64,
        /// What was wrong (checksum expected/found, short read, ...).
        detail: String,
    },
    /// A rank or segment index beyond what the footer declares.
    OutOfRange {
        /// Requested rank.
        rank: usize,
        /// Requested segment index.
        segment: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store {}: {source}", path.display())
            }
            StoreError::BadMagic { found } => {
                write!(f, "not a TIB2 store (magic {found:02x?})")
            }
            StoreError::BadVersion { found } => {
                write!(f, "TIB2 version {found} not supported (this reader speaks {VERSION})")
            }
            StoreError::FooterDamaged { detail } => {
                write!(f, "TIB2 footer damaged: {detail}")
            }
            StoreError::SegmentDamaged { rank, segment, offset, detail } => {
                write!(
                    f,
                    "TIB2 segment damaged: rank {rank} segment {segment} \
                     at offset {offset}: {detail}"
                )
            }
            StoreError::OutOfRange { rank, segment } => {
                write!(f, "rank {rank} segment {segment} is out of range for this store")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One decoded segment: a self-contained slice of [`CompactTrace`]
/// columns whose `reduce`/`allReduce` side-table indices are
/// segment-local. This is the unit of residency the memory governor
/// accounts for.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentColumns {
    pub(crate) tags: Vec<u32>,
    pub(crate) peers: Vec<u32>,
    pub(crate) vols: Vec<f64>,
    pub(crate) aux: Vec<f64>,
}

impl Default for SegmentColumns {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentColumns {
    /// An empty segment.
    pub fn new() -> Self {
        SegmentColumns { tags: Vec::new(), peers: Vec::new(), vols: Vec::new(), aux: Vec::new() }
    }

    /// Actions held.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when no actions are held.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Appends one action (segment-local side table).
    pub fn push(&mut self, a: &Action) -> Result<(), CompactError> {
        let (t, peer, vol) = encode_parts(a, &mut self.aux)?;
        self.tags.push(t);
        self.peers.push(peer);
        self.vols.push(vol);
        Ok(())
    }

    /// Decodes the `i`-th action.
    ///
    /// # Panics
    /// On an out-of-range `i`. Segments read from a store are
    /// structurally validated (tags and side-table indices), so decode
    /// itself cannot fail on them.
    pub fn action(&self, i: usize) -> Action {
        decode_parts(self.tags[i], self.peers[i], self.vols[i], &self.aux)
    }

    /// Heap bytes behind the decoded columns — what a resident segment
    /// charges against the memory budget.
    pub fn heap_bytes(&self) -> usize {
        self.tags.capacity() * 4
            + self.peers.capacity() * 4
            + self.vols.capacity() * 8
            + self.aux.capacity() * 8
    }

    /// On-disk payload length of this segment.
    fn payload_len(&self) -> usize {
        16 * self.len() + 4 + 8 * self.aux.len()
    }

    /// Serializes header + payload for segment `seg_index` of `rank`.
    fn serialize(&self, rank: u32, seg_index: u32) -> Vec<u8> {
        let n = self.len();
        let mut buf = Vec::with_capacity(SEG_HEADER_LEN + self.payload_len());
        buf.extend_from_slice(&rank.to_le_bytes());
        buf.extend_from_slice(&seg_index.to_le_bytes());
        buf.extend_from_slice(&(n as u32).to_le_bytes());
        buf.extend_from_slice(&(self.payload_len() as u32).to_le_bytes());
        for &t in &self.tags {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        for &p in &self.peers {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        for &v in &self.vols {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&(self.aux.len() as u32).to_le_bytes());
        for &a in &self.aux {
            buf.extend_from_slice(&a.to_bits().to_le_bytes());
        }
        buf
    }
}

/// Footer entry for one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegMeta {
    /// Byte offset of the segment header in the file.
    pub offset: u64,
    /// Actions the segment holds.
    pub n_actions: u32,
    /// Payload bytes after the 16-byte segment header.
    pub payload_len: u32,
    /// FNV-1a-64 over header + payload.
    pub checksum: u64,
}

impl SegMeta {
    /// Estimated heap bytes of the decoded segment (columns only) —
    /// the residency charge the replay cache books *before* reading,
    /// so the budget can refuse without paying the allocation first.
    pub fn decoded_bytes(&self) -> u64 {
        // payload_len = 16 n + 4 + 8 n_aux, and decoded columns cost
        // exactly 16 n + 8 n_aux: the payload length minus the aux
        // count word is the in-memory size.
        u64::from(self.payload_len.saturating_sub(4))
    }
}

/// What [`Tib2Writer::finish`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tib2Summary {
    /// Ranks written.
    pub ranks: usize,
    /// Total actions across all ranks.
    pub actions: u64,
    /// Total segments.
    pub segments: u64,
    /// Total file bytes, head through trailer.
    pub bytes: u64,
    /// The store's content fingerprint (the trailer's `footer_fnv`).
    pub fingerprint: u64,
}

/// Streaming segmented writer: holds one open segment, so memory is
/// O(`seg_actions`) however large the trace — a generator can emit a
/// class-D-scale store directly (`tit-gen --tib2`). Point it at an
/// [`crate::atomicio::AtomicFile`] and commit after [`finish`] for the
/// all-or-nothing on-disk contract.
///
/// [`finish`]: Tib2Writer::finish
#[derive(Debug)]
pub struct Tib2Writer<W: Write> {
    out: W,
    pos: u64,
    seg_actions: usize,
    cur: SegmentColumns,
    index: Vec<Vec<SegMeta>>,
    actions: u64,
}

impl<W: Write> Tib2Writer<W> {
    /// Starts a store on `out` (writes the head immediately) cutting
    /// segments every `seg_actions` actions (0 means
    /// [`DEFAULT_SEG_ACTIONS`]).
    pub fn new(mut out: W, seg_actions: usize) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        let seg_actions = if seg_actions == 0 { DEFAULT_SEG_ACTIONS } else { seg_actions };
        Ok(Tib2Writer {
            out,
            pos: HEAD_LEN,
            seg_actions,
            cur: SegmentColumns::new(),
            index: Vec::new(),
            actions: 0,
        })
    }

    /// Opens the next rank's stream (flushing the previous rank's open
    /// segment). Ranks are written in order; empty ranks are legal and
    /// cost one footer word.
    pub fn begin_rank(&mut self) -> io::Result<()> {
        if !self.index.is_empty() {
            self.flush_segment()?;
        }
        self.index.push(Vec::new());
        Ok(())
    }

    /// Appends one action to the current rank, cutting a segment when
    /// full. Opens rank 0 implicitly if no rank is open.
    pub fn push(&mut self, a: &Action) -> io::Result<()> {
        if self.index.is_empty() {
            self.index.push(Vec::new());
        }
        self.cur.push(a).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.actions += 1;
        if self.cur.len() >= self.seg_actions {
            self.flush_segment()?;
        }
        Ok(())
    }

    fn flush_segment(&mut self) -> io::Result<()> {
        if self.cur.is_empty() {
            return Ok(());
        }
        // panics: flush_segment only runs with a rank open
        let rank = self.index.len() - 1;
        let seg_index = self.index[rank].len();
        let bytes = self.cur.serialize(rank as u32, seg_index as u32);
        let checksum = fnv1a(&bytes);
        self.out.write_all(&bytes)?;
        self.index[rank].push(SegMeta {
            offset: self.pos,
            n_actions: self.cur.len() as u32,
            payload_len: self.cur.payload_len() as u32,
            checksum,
        });
        self.pos += bytes.len() as u64;
        self.cur = SegmentColumns::new();
        Ok(())
    }

    /// Flushes the open segment, writes footer and trailer, and hands
    /// the sink back (so an `AtomicFile` can be committed).
    pub fn finish(mut self) -> io::Result<(W, Tib2Summary)> {
        self.flush_segment()?;
        let mut e = Enc::new();
        e.usize(self.index.len());
        for segs in &self.index {
            e.usize(segs.len());
            for m in segs {
                e.u64(m.offset);
                e.u32(m.n_actions);
                e.u32(m.payload_len);
                e.u64(m.checksum);
            }
        }
        let footer = e.finish();
        let footer_fnv = fnv1a(&footer);
        self.out.write_all(&footer)?;
        self.out.write_all(&(footer.len() as u64).to_le_bytes())?;
        self.out.write_all(&footer_fnv.to_le_bytes())?;
        self.out.write_all(&END_MAGIC)?;
        self.out.flush()?;
        let segments = self.index.iter().map(Vec::len).sum::<usize>() as u64;
        let summary = Tib2Summary {
            ranks: self.index.len(),
            actions: self.actions,
            segments,
            bytes: self.pos + footer.len() as u64 + TRAILER_LEN,
            fingerprint: footer_fnv,
        };
        Ok((self.out, summary))
    }
}

/// Writes a fully-resident [`CompactTrace`] as a `TIB2` store,
/// atomically (tmp + fsync + rename; see [`crate::atomicio`]).
pub fn write_compact_atomic(
    dest: &Path,
    trace: &CompactTrace,
    seg_actions: usize,
) -> io::Result<Tib2Summary> {
    let af = crate::atomicio::AtomicFile::create(dest)?;
    let mut w = Tib2Writer::new(io::BufWriter::new(af), seg_actions)?;
    for rank in 0..trace.num_processes() {
        w.begin_rank()?;
        for a in trace.iter_rank(rank) {
            w.push(&a)?;
        }
    }
    let (out, summary) = w.finish()?;
    out.into_inner().map_err(|e| io::Error::other(e.to_string()))?.commit()?;
    Ok(summary)
}

/// Converts a per-process text trace directory into a `TIB2` store.
/// Parsing fans out over `jobs` workers ([`for_each_rank`]); the store
/// itself is written serially in rank order, so the output bytes are
/// identical for every `jobs` value.
pub fn convert_dir_atomic(
    dir: &Path,
    nproc: usize,
    dest: &Path,
    seg_actions: usize,
    jobs: usize,
) -> io::Result<Tib2Summary> {
    let trace = crate::ingest::load_compact_exact(dir, nproc, jobs)
        .map_err(|e| io::Error::new(e.source.kind(), e.to_string()))?;
    write_compact_atomic(dest, &trace, seg_actions)
}

/// An opened, index-verified `TIB2` store.
///
/// `open` validates head, trailer and footer fail-closed; after it
/// returns, only the per-rank segment index (40 bytes per segment) is
/// resident. Segments are served by positioned reads — [`Tib2Store`]
/// is `Sync`, so one store handle feeds every replay worker without
/// locking.
#[derive(Debug)]
pub struct Tib2Store {
    file: File,
    path: PathBuf,
    index: Vec<Vec<SegMeta>>,
    rank_actions: Vec<u64>,
    footer_fnv: u64,
    file_len: u64,
}

impl Tib2Store {
    /// Opens and verifies a store's framing: head magic and version,
    /// trailer magic, footer length, footer checksum, and index sanity
    /// (every segment in bounds, payload lengths structurally
    /// consistent). Segment *content* is verified lazily, per read.
    pub fn open(path: &Path) -> Result<Tib2Store, StoreError> {
        let ioerr = |source| StoreError::Io { path: path.to_path_buf(), source };
        let mut file = File::open(path).map_err(ioerr)?;
        let file_len = file.metadata().map_err(ioerr)?.len();
        if file_len < HEAD_LEN + TRAILER_LEN {
            return Err(StoreError::FooterDamaged {
                detail: format!("file is {file_len} bytes — too short for head and trailer"),
            });
        }
        let mut head = [0u8; 8];
        file.read_exact(&mut head).map_err(ioerr)?;
        if head[..4] != MAGIC {
            // panics: the slice is exactly 4 bytes
            return Err(StoreError::BadMagic { found: head[..4].try_into().unwrap() });
        }
        // panics: the slice is exactly 4 bytes
        let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::BadVersion { found: version });
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64))).map_err(ioerr)?;
        file.read_exact(&mut trailer).map_err(ioerr)?;
        if trailer[16..24] != END_MAGIC {
            return Err(StoreError::FooterDamaged {
                detail: "end magic missing (truncated or overwritten tail)".to_string(),
            });
        }
        // panics: the slices are exactly 8 bytes
        let footer_len = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_fnv = u64::from_le_bytes(trailer[8..16].try_into().unwrap()); // panics: 8-byte slice
        if footer_len > file_len - HEAD_LEN - TRAILER_LEN {
            return Err(StoreError::FooterDamaged {
                detail: format!(
                    "footer length {footer_len} exceeds the file ({file_len} bytes)"
                ),
            });
        }
        let footer_start = file_len - TRAILER_LEN - footer_len;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact_at(&mut footer, footer_start).map_err(ioerr)?;
        let actual = fnv1a(&footer);
        if actual != footer_fnv {
            return Err(StoreError::FooterDamaged {
                detail: format!(
                    "footer checksum mismatch: trailer says {footer_fnv:#018x}, \
                     footer hashes to {actual:#018x}"
                ),
            });
        }
        let index = decode_footer(&footer, footer_start)?;
        let rank_actions =
            index.iter().map(|segs| segs.iter().map(|m| u64::from(m.n_actions)).sum()).collect();
        Ok(Tib2Store { file, path: path.to_path_buf(), index, rank_actions, footer_fnv, file_len })
    }

    /// Reads just the content fingerprint (the trailer's `footer_fnv`)
    /// without decoding the footer — the cheap revalidation probe a
    /// handle cache runs on every hit to notice a store replaced on
    /// disk. Validates the end magic only; a full [`Tib2Store::open`]
    /// still decides whether the store is usable.
    pub fn read_fingerprint(path: &Path) -> Result<u64, StoreError> {
        let ioerr = |source| StoreError::Io { path: path.to_path_buf(), source };
        let file = File::open(path).map_err(ioerr)?;
        let file_len = file.metadata().map_err(ioerr)?.len();
        if file_len < HEAD_LEN + TRAILER_LEN {
            return Err(StoreError::FooterDamaged {
                detail: format!("file is {file_len} bytes — too short for head and trailer"),
            });
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact_at(&mut trailer, file_len - TRAILER_LEN).map_err(ioerr)?;
        if trailer[16..24] != END_MAGIC {
            return Err(StoreError::FooterDamaged {
                detail: "end magic missing (truncated or overwritten tail)".to_string(),
            });
        }
        // panics: the slice is exactly 8 bytes
        Ok(u64::from_le_bytes(trailer[8..16].try_into().unwrap()))
    }

    /// The store file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Ranks in the store.
    pub fn num_ranks(&self) -> usize {
        self.index.len()
    }

    /// Segments of one rank (0 for out-of-range ranks).
    pub fn num_segments(&self, rank: usize) -> usize {
        self.index.get(rank).map_or(0, Vec::len)
    }

    /// Actions of one rank, from the footer index alone.
    pub fn rank_actions(&self, rank: usize) -> u64 {
        self.rank_actions.get(rank).copied().unwrap_or(0)
    }

    /// Total actions across all ranks, from the footer index alone.
    pub fn num_actions(&self) -> u64 {
        self.rank_actions.iter().sum()
    }

    /// Footer entry of one segment.
    pub fn segment_meta(&self, rank: usize, seg: usize) -> Option<&SegMeta> {
        self.index.get(rank)?.get(seg)
    }

    /// The store's content fingerprint: the footer's FNV-1a-64 (which
    /// transitively covers every segment checksum). Checkpoints taken
    /// against a store embed this, so resume refuses a swapped or
    /// rewritten store.
    pub fn fingerprint(&self) -> u64 {
        self.footer_fnv
    }

    /// Reads, verifies and decodes one segment — fail-closed: the
    /// checksum is checked over the raw bytes before any decoding, the
    /// embedded header must agree with the footer, and the decoded
    /// columns are structurally validated (known tags, side-table
    /// indices in range) so later [`SegmentColumns::action`] calls
    /// cannot fail.
    pub fn read_segment(&self, rank: usize, seg: usize) -> Result<SegmentColumns, StoreError> {
        let meta = *self.segment_meta(rank, seg).ok_or(StoreError::OutOfRange { rank, segment: seg })?;
        let damaged = |detail: String| StoreError::SegmentDamaged {
            rank,
            segment: seg,
            offset: meta.offset,
            detail,
        };
        let total = SEG_HEADER_LEN + meta.payload_len as usize;
        let mut buf = vec![0u8; total];
        self.file.read_exact_at(&mut buf, meta.offset).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                damaged(format!("short read ({total} bytes wanted)"))
            } else {
                StoreError::Io { path: self.path.clone(), source: e }
            }
        })?;
        let actual = fnv1a(&buf);
        if actual != meta.checksum {
            return Err(damaged(format!(
                "checksum mismatch: footer says {:#018x}, segment hashes to {actual:#018x}",
                meta.checksum
            )));
        }
        let u32_at = |i: usize| {
            // panics: `buf` holds at least the 16-byte header
            u32::from_le_bytes(buf[i..i + 4].try_into().unwrap())
        };
        if u32_at(0) != rank as u32
            || u32_at(4) != seg as u32
            || u32_at(8) != meta.n_actions
            || u32_at(12) != meta.payload_len
        {
            return Err(damaged(format!(
                "segment header (rank {} seg {} n {} len {}) contradicts the footer",
                u32_at(0),
                u32_at(4),
                u32_at(8),
                u32_at(12)
            )));
        }
        decode_payload(&buf[SEG_HEADER_LEN..], meta.n_actions as usize).map_err(damaged)
    }

    /// Verifies one segment without keeping the decoded columns.
    pub fn verify_segment(&self, rank: usize, seg: usize) -> Result<(), StoreError> {
        self.read_segment(rank, seg).map(|_| ())
    }

    /// Full-store verification sweep in O(one segment) memory: every
    /// segment is read, checksummed and structurally decoded; damage
    /// reports come back per segment (an empty list means the store is
    /// bit-exact). This is what `--degraded` store replay runs first.
    pub fn verify(&self) -> Vec<StoreError> {
        let mut damage = Vec::new();
        for rank in 0..self.num_ranks() {
            for seg in 0..self.num_segments(rank) {
                if let Err(e) = self.verify_segment(rank, seg) {
                    damage.push(e);
                }
            }
        }
        damage
    }
}

/// Decodes and sanity-checks the footer index.
fn decode_footer(footer: &[u8], footer_start: u64) -> Result<Vec<Vec<SegMeta>>, StoreError> {
    let bad = |detail: String| StoreError::FooterDamaged { detail };
    let mut d = Dec::new(footer);
    let nranks = d.usize().map_err(bad)?;
    // 2 footer words minimum per rank; refuses absurd counts before
    // allocating.
    if nranks > footer.len() {
        return Err(bad(format!("{nranks} ranks cannot fit a {}-byte footer", footer.len())));
    }
    let mut index = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        let nsegs = d.usize().map_err(bad)?;
        if nsegs > footer.len() {
            return Err(bad(format!(
                "rank {rank}: {nsegs} segments cannot fit a {}-byte footer",
                footer.len()
            )));
        }
        let mut segs = Vec::with_capacity(nsegs);
        for seg in 0..nsegs {
            let offset = d.u64().map_err(bad)?;
            let n_actions = d.u32().map_err(bad)?;
            let payload_len = d.u32().map_err(bad)?;
            let checksum = d.u64().map_err(bad)?;
            let n = u64::from(n_actions);
            // payload = 16 n + 4 + 8 n_aux must hold for some n_aux.
            let fixed = 16 * n + 4;
            if u64::from(payload_len) < fixed || (u64::from(payload_len) - fixed) % 8 != 0 {
                return Err(bad(format!(
                    "rank {rank} segment {seg}: payload length {payload_len} is \
                     inconsistent with {n_actions} actions"
                )));
            }
            let end = offset
                .checked_add(SEG_HEADER_LEN as u64)
                .and_then(|v| v.checked_add(u64::from(payload_len)));
            if offset < HEAD_LEN || end.is_none_or(|e| e > footer_start) {
                return Err(bad(format!(
                    "rank {rank} segment {seg}: offset {offset} (+{payload_len}) \
                     falls outside the segment region"
                )));
            }
            segs.push(SegMeta { offset, n_actions, payload_len, checksum });
        }
        index.push(segs);
    }
    d.expect_done().map_err(bad)?;
    Ok(index)
}

/// Decodes a verified payload into columns, validating every tag and
/// side-table index so decode-on-replay is infallible.
fn decode_payload(payload: &[u8], n: usize) -> Result<SegmentColumns, String> {
    let need = 16 * n + 4;
    if payload.len() < need {
        return Err(format!("payload holds {} bytes, {need} needed", payload.len()));
    }
    let u32_at = |i: usize| {
        // panics: bounds checked above / below before every call
        u32::from_le_bytes(payload[i..i + 4].try_into().unwrap())
    };
    let f64_at = |i: usize| {
        // panics: bounds checked above / below before every call
        f64::from_bits(u64::from_le_bytes(payload[i..i + 8].try_into().unwrap()))
    };
    let tags: Vec<u32> = (0..n).map(|i| u32_at(4 * i)).collect();
    let peers: Vec<u32> = (0..n).map(|i| u32_at(4 * n + 4 * i)).collect();
    let vols: Vec<f64> = (0..n).map(|i| f64_at(8 * n + 8 * i)).collect();
    let n_aux = u32_at(16 * n) as usize;
    if payload.len() != need + 8 * n_aux {
        return Err(format!(
            "payload holds {} bytes, {} needed for {n_aux} side-table entries",
            payload.len(),
            need + 8 * n_aux
        ));
    }
    let aux: Vec<f64> = (0..n_aux).map(|i| f64_at(16 * n + 4 + 8 * i)).collect();
    for i in 0..n {
        let t = tags[i];
        if tag::keyword(t).is_none() {
            return Err(format!("entry {i}: unknown tag {t}"));
        }
        if (t == tag::REDUCE || t == tag::ALLREDUCE) && peers[i] as usize >= n_aux {
            return Err(format!(
                "entry {i}: side-table index {} out of range ({n_aux} entries)",
                peers[i]
            ));
        }
        if t != tag::RECV && t != tag::IRECV && vols[i].is_nan() {
            return Err(format!("entry {i}: NaN volume on a non-receive"));
        }
        if (t == tag::SEND || t == tag::ISEND || t == tag::RECV || t == tag::IRECV
            || t == tag::COMM_SIZE)
            && peers[i] == NO_PEER
        {
            return Err(format!("entry {i}: missing peer on tag {t}"));
        }
    }
    Ok(SegmentColumns { tags, peers, vols, aux })
}

/// Loads a whole store into a fully-resident [`CompactTrace`],
/// verifying every segment. Decoding fans out over `jobs` workers at
/// **segment** granularity using the footer index (no parsing, no
/// scanning — each work unit seeks straight to its segment), so a
/// store with few ranks but many segments still saturates the worker
/// pool; stitching is serial in rank-major segment order, so the
/// result is identical for every `jobs` value. On damage, the error
/// of the rank-major-first failing segment is returned — exactly what
/// a serial loop would have stopped at.
pub fn load_compact_store(store: &Tib2Store, jobs: usize) -> Result<CompactTrace, StoreError> {
    // One work unit per segment, flattened in rank-major order.
    let units: Vec<(usize, usize)> = (0..store.num_ranks())
        .flat_map(|rank| (0..store.num_segments(rank)).map(move |seg| (rank, seg)))
        .collect();
    let cols: Vec<SegmentColumns> = for_each_rank(units.len(), jobs, |i| {
        let (rank, seg) = units[i];
        store.read_segment(rank, seg)
    })?;
    let mut c = CompactTrace::new();
    let mut open_ranks = 0;
    for (&(rank, _), seg) in units.iter().zip(&cols) {
        while open_ranks <= rank {
            c.begin_process();
            open_ranks += 1;
        }
        // A validated segment's side table always rebase-fits: the
        // store's total side-table entries were interned once
        // already at write time.
        c.append_segment(seg).map_err(|e| StoreError::FooterDamaged {
            detail: format!("side table overflow while stitching: {e}"),
        })?;
    }
    // Trailing (and interior) segment-less ranks still exist.
    while open_ranks < store.num_ranks() {
        c.begin_process();
        open_ranks += 1;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TiTrace;

    fn sample_trace(np: usize, per_rank: usize) -> CompactTrace {
        let mut t = TiTrace::new(np);
        for rank in 0..np {
            t.push(rank, Action::CommSize { nproc: np });
            for i in 0..per_rank {
                match i % 5 {
                    0 => t.push(rank, Action::Compute { flops: 1e6 + i as f64 }),
                    1 => t.push(rank, Action::Send { dst: (rank + 1) % np, bytes: 64.0 }),
                    2 => t.push(
                        rank,
                        Action::Recv { src: (rank + np - 1) % np, bytes: None },
                    ),
                    3 => t.push(rank, Action::AllReduce { vcomm: 8.0, vcomp: i as f64 }),
                    _ => t.push(rank, Action::Barrier),
                }
            }
        }
        CompactTrace::from_trace(&t).unwrap()
    }

    fn write_tmp(trace: &CompactTrace, seg_actions: usize) -> (tempdir::TempDir, PathBuf) {
        let dir = tempdir::TempDir::new();
        let path = dir.path().join("trace.tib2");
        write_compact_atomic(&path, trace, seg_actions).unwrap();
        (dir, path)
    }

    /// Minimal self-cleaning temp dir (std-only; no tempfile crate).
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempDir(PathBuf);
        static SEQ: AtomicU64 = AtomicU64::new(0);

        impl TempDir {
            pub fn new() -> TempDir {
                let n = SEQ.fetch_add(1, Ordering::Relaxed);
                let p = std::env::temp_dir()
                    .join(format!("tib2-test-{}-{n}", std::process::id()));
                std::fs::create_dir_all(&p).unwrap();
                TempDir(p)
            }
            pub fn path(&self) -> &Path {
                &self.0
            }
        }
        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }


    #[test]
    fn round_trip_multi_segment() {
        let trace = sample_trace(4, 1000);
        let (dir, path) = write_tmp(&trace, 64);
        let store = Tib2Store::open(&path).unwrap();
        assert_eq!(store.num_ranks(), 4);
        assert_eq!(store.num_actions() as usize, trace.num_actions());
        assert!(store.num_segments(0) > 1, "expected multiple segments");
        let back = load_compact_store(&store, 1).unwrap();
        // NaN vols (unannotated receives) defeat derived equality;
        // compare the decoded trace and the re-serialized bytes.
        assert_eq!(back.to_trace(), trace.to_trace());
        let reser = dir.path().join("reser.tib2");
        write_compact_atomic(&reser, &back, 64).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&reser).unwrap());
    }

    #[test]
    fn parallel_load_equals_serial() {
        let trace = sample_trace(6, 700);
        let (dir, path) = write_tmp(&trace, 128);
        let store = Tib2Store::open(&path).unwrap();
        let serial = load_compact_store(&store, 1).unwrap();
        let parallel = load_compact_store(&store, 4).unwrap();
        // Byte-identity across --jobs values: re-serialize both loads.
        let ps = dir.path().join("serial.tib2");
        let pp = dir.path().join("parallel.tib2");
        write_compact_atomic(&ps, &serial, 128).unwrap();
        write_compact_atomic(&pp, &parallel, 128).unwrap();
        assert_eq!(std::fs::read(&ps).unwrap(), std::fs::read(&pp).unwrap());
        assert_eq!(std::fs::read(&ps).unwrap(), std::fs::read(&path).unwrap());
    }

    #[test]
    fn parallel_load_is_segment_granular_on_a_single_rank() {
        // One rank, many segments: rank-granular fan-out would leave
        // every worker but one idle; segment-granular fan-out must
        // still produce the serial loader's exact bytes.
        let trace = sample_trace(1, 3000);
        let (dir, path) = write_tmp(&trace, 64);
        let store = Tib2Store::open(&path).unwrap();
        assert!(store.num_segments(0) > 8);
        let serial = load_compact_store(&store, 1).unwrap();
        let parallel = load_compact_store(&store, 4).unwrap();
        let ps = dir.path().join("serial.tib2");
        let pp = dir.path().join("parallel.tib2");
        write_compact_atomic(&ps, &serial, 64).unwrap();
        write_compact_atomic(&pp, &parallel, 64).unwrap();
        assert_eq!(std::fs::read(&ps).unwrap(), std::fs::read(&pp).unwrap());
        assert_eq!(std::fs::read(&ps).unwrap(), std::fs::read(&path).unwrap());
    }

    #[test]
    fn writer_output_is_deterministic() {
        let trace = sample_trace(3, 500);
        let (_d, path_a) = write_tmp(&trace, 100);
        let (_d2, path_b) = write_tmp(&trace, 100);
        assert_eq!(std::fs::read(&path_a).unwrap(), std::fs::read(&path_b).unwrap());
    }

    #[test]
    fn empty_ranks_survive() {
        let mut t = TiTrace::new(4);
        t.push(2, Action::Barrier);
        let trace = CompactTrace::from_trace(&t).unwrap();
        let (_d, path) = write_tmp(&trace, 8);
        let store = Tib2Store::open(&path).unwrap();
        assert_eq!(store.num_ranks(), 4);
        assert_eq!(store.num_segments(0), 0);
        assert_eq!(store.rank_actions(2), 1);
        assert_eq!(load_compact_store(&store, 1).unwrap().to_trace(), t);
    }

    #[test]
    fn flipped_payload_bit_is_segment_damage() {
        let trace = sample_trace(2, 300);
        let (_d, path) = write_tmp(&trace, 64);
        let mut bytes = std::fs::read(&path).unwrap();
        let store = Tib2Store::open(&path).unwrap();
        let m = *store.segment_meta(1, 2).unwrap();
        bytes[m.offset as usize + SEG_HEADER_LEN + 5] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let store = Tib2Store::open(&path).unwrap();
        match store.read_segment(1, 2) {
            Err(StoreError::SegmentDamaged { rank, segment, offset, detail }) => {
                assert_eq!((rank, segment, offset), (1, 2, m.offset));
                assert!(detail.contains("checksum mismatch"), "{detail}");
            }
            other => panic!("expected SegmentDamaged, got {other:?}"),
        }
        // Sibling segments still verify.
        store.read_segment(1, 0).unwrap();
        store.read_segment(0, 0).unwrap();
        assert_eq!(store.verify().len(), 1);
    }

    #[test]
    fn flipped_footer_bit_fails_open() {
        let trace = sample_trace(2, 100);
        let (_d, path) = write_tmp(&trace, 32);
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        // 40 bytes into the trailer-relative footer region.
        bytes[len - TRAILER_LEN as usize - 40] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match Tib2Store::open(&path) {
            Err(StoreError::FooterDamaged { detail }) => {
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected FooterDamaged, got {other:?}"),
        }
    }

    #[test]
    fn truncation_fails_open() {
        let trace = sample_trace(2, 100);
        let (_d, path) = write_tmp(&trace, 32);
        let bytes = std::fs::read(&path).unwrap();
        for keep in [bytes.len() - 1, bytes.len() - TRAILER_LEN as usize, 9, 0] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                matches!(
                    Tib2Store::open(&path),
                    Err(StoreError::FooterDamaged { .. } | StoreError::BadMagic { .. })
                ),
                "truncation to {keep} bytes must fail the open"
            );
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let trace = sample_trace(1, 10);
        let (_d, path) = write_tmp(&trace, 8);
        let mut bytes = std::fs::read(&path).unwrap();
        let good = bytes.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Tib2Store::open(&path), Err(StoreError::BadMagic { .. })));
        bytes = good;
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Tib2Store::open(&path),
            Err(StoreError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn out_of_range_is_typed() {
        let trace = sample_trace(2, 10);
        let (_d, path) = write_tmp(&trace, 8);
        let store = Tib2Store::open(&path).unwrap();
        assert!(matches!(
            store.read_segment(5, 0),
            Err(StoreError::OutOfRange { rank: 5, segment: 0 })
        ));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample_trace(2, 50);
        let mut t = a.to_trace();
        t.push(1, Action::Barrier);
        let b = CompactTrace::from_trace(&t).unwrap();
        let (_d1, pa) = write_tmp(&a, 16);
        let (_d2, pb) = write_tmp(&b, 16);
        let fa = Tib2Store::open(&pa).unwrap().fingerprint();
        let fb = Tib2Store::open(&pb).unwrap().fingerprint();
        assert_ne!(fa, fb);
    }

    #[test]
    fn decoded_bytes_matches_heap() {
        let trace = sample_trace(1, 200);
        let (_d, path) = write_tmp(&trace, 64);
        let store = Tib2Store::open(&path).unwrap();
        let m = *store.segment_meta(0, 0).unwrap();
        let seg = store.read_segment(0, 0).unwrap();
        assert_eq!(m.decoded_bytes() as usize, seg.heap_bytes());
    }
}
