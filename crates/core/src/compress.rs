//! Self-contained LZ77 block compressor.
//!
//! Section 6.5 of the paper reports that the 32.5 GiB class-D
//! time-independent trace compresses to 1.2 GiB with gzip (≈ 27×).
//! External codec crates are outside this project's dependency budget, so
//! we implement a small LZ77 compressor (greedy hash-chain matching,
//! 64 KiB window, varint-coded tokens). Trace text is extremely
//! repetitive — the same `pN send|recv|compute` skeletons with few
//! distinct volumes — so even this byte-oriented scheme reaches ratios of
//! the same order as gzip's; the `largetrace` experiment documents both
//! its ratio and the paper's.
//!
//! Format: magic `TIZ1`, varint original length, then tokens:
//! `0x00 len bytes…` (literal run) or `0x01 dist len` (match, dist ≥ 1,
//! len ≥ 4), all varint-coded.

const MAGIC: &[u8; 4] = b"TIZ1";
const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 12;
/// Hash-chain probes per position; more = better ratio, slower.
const MAX_PROBES: usize = 16;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn hash4(data: &[u8], i: usize) -> usize {
    let w = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (w.wrapping_mul(2654435761) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

/// Compresses `data`; the output always round-trips through
/// [`decompress`].
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    out.extend_from_slice(MAGIC);
    write_varint(&mut out, data.len() as u64);

    // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut i = 0;
    let mut lit_start = 0;
    while i < data.len() {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut probes = 0;
            while cand != usize::MAX && probes < MAX_PROBES {
                let dist = i - cand;
                if dist == 0 || dist > WINDOW {
                    break;
                }
                let max = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= MAX_MATCH {
                        break;
                    }
                }
                let next = prev[cand % WINDOW];
                if next == usize::MAX || next >= cand {
                    break;
                }
                cand = next;
                probes += 1;
            }
            prev[i % WINDOW] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            // Flush pending literals.
            if lit_start < i {
                out.push(0x00);
                write_varint(&mut out, (i - lit_start) as u64);
                out.extend_from_slice(&data[lit_start..i]);
            }
            out.push(0x01);
            write_varint(&mut out, best_dist as u64);
            write_varint(&mut out, best_len as u64);
            // Insert hash entries for the skipped region (sparsely, every
            // position would be slow for long matches).
            let end = i + best_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= data.len() && j < end {
                let h = hash4(data, j);
                prev[j % WINDOW] = head[h];
                head[h] = j;
                j += 1 + best_len / 16;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    if lit_start < data.len() {
        out.push(0x00);
        write_varint(&mut out, (data.len() - lit_start) as u64);
        out.extend_from_slice(&data[lit_start..]);
    }
    out
}

/// Decompression failure (corrupt or truncated input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptData(pub &'static str);

impl std::fmt::Display for CorruptData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed data: {}", self.0)
    }
}

impl std::error::Error for CorruptData {}

/// Decompresses a [`compress`] output.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CorruptData> {
    if data.len() < 4 || &data[..4] != MAGIC {
        return Err(CorruptData("bad magic"));
    }
    let mut pos = 4;
    let orig_len =
        read_varint(data, &mut pos).ok_or(CorruptData("truncated header"))? as usize;
    let mut out = Vec::with_capacity(orig_len);
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            0x00 => {
                let len = read_varint(data, &mut pos)
                    .ok_or(CorruptData("truncated literal length"))?
                    as usize;
                if pos + len > data.len() {
                    return Err(CorruptData("literal run past end"));
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            0x01 => {
                let dist = read_varint(data, &mut pos)
                    .ok_or(CorruptData("truncated match distance"))?
                    as usize;
                let len = read_varint(data, &mut pos)
                    .ok_or(CorruptData("truncated match length"))?
                    as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CorruptData("match distance out of range"));
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (dist < len).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(CorruptData("unknown token tag")),
        }
    }
    if out.len() != orig_len {
        return Err(CorruptData("length mismatch"));
    }
    Ok(out)
}

/// Convenience: compression ratio original/compressed for `data`.
pub fn ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    data.len() as f64 / compress(data).len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn incompressible_random_bytes_roundtrip() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let data: Vec<u8> = (0..10_000).map(|_| rng.random()).collect();
        roundtrip(&data);
    }

    #[test]
    fn repetitive_trace_text_compresses_well() {
        let mut text = String::new();
        for i in 0..5000 {
            text.push_str(&format!("p{} compute 163840\n", i % 8));
            text.push_str(&format!("p{} send p{} 163840\n", i % 8, (i + 1) % 8));
            text.push_str(&format!("p{} recv p{}\n", (i + 1) % 8, i % 8));
        }
        let data = text.as_bytes();
        roundtrip(data);
        let r = ratio(data);
        assert!(r > 10.0, "trace text should compress >10x, got {r:.1}x");
    }

    #[test]
    fn overlapping_match_rle() {
        let data = vec![b'x'; 100_000];
        let c = compress(&data);
        assert!(c.len() < 200, "RLE-like input should collapse: {} bytes", c.len());
        roundtrip(&data);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decompress(b"").is_err());
        assert!(decompress(b"NOPE").is_err());
        let mut c = compress(b"hello hello hello hello");
        c.truncate(c.len() - 1);
        assert!(decompress(&c).is_err());
        let mut c2 = compress(b"hello hello hello hello");
        let last = c2.len() - 1;
        c2[last] ^= 0xff;
        // Either an error or a wrong-length detection; never a panic.
        let _ = decompress(&c2);
    }

    #[test]
    fn long_matches_beyond_window_still_roundtrip() {
        // Period slightly larger than the window.
        let mut data = Vec::new();
        let unit: Vec<u8> = (0..70_000u32).map(|i| (i % 251) as u8).collect();
        data.extend_from_slice(&unit);
        data.extend_from_slice(&unit);
        roundtrip(&data);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn roundtrip_repetitive(seed in any::<u64>(), reps in 1usize..50) {
            let unit = seed.to_le_bytes();
            let mut data = Vec::new();
            for _ in 0..reps { data.extend_from_slice(&unit); }
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decompress(&data);
        }
    }
}
