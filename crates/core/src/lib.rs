//! `tit-core` — the time-independent trace format.
//!
//! The paper's first contribution (Section 3) is an execution-log format
//! that is **independent of time**: instead of time-stamped events, each
//! trace line records the *volume* of an action — a number of floating
//! point operations for a CPU burst, a number of bytes for a
//! communication. Volumes do not depend on the host platform, so a trace
//! acquired anywhere (folded onto few CPUs, scattered across clusters)
//! replays identically.
//!
//! A trace is a list of actions per MPI process:
//!
//! ```text
//! p0 compute 1e6
//! p0 send p1 1e6
//! p0 recv p3
//! ```
//!
//! This crate provides the action vocabulary ([`Action`], Table 1 of the
//! paper), parsing and serialisation ([`codec`]), whole-trace containers
//! and streaming per-process readers/writers ([`trace`]), statistics
//! ([`stats`]), structural validation ([`validate()`]), the block
//! compressor used for the paper's Section 6.5 compressed-size figure
//! ([`compress`]), a struct-of-arrays interned form for the replay hot
//! path ([`compact`]), parallel per-rank file ingestion ([`ingest`]),
//! crash-safe output writing ([`atomicio`]), the versioned `TICK1`
//! checkpoint container ([`checkpoint`]), wall-clock budgets shared by
//! the CLI watchdog and the serving layer ([`deadline`]), a small
//! LRU cache for fingerprint-keyed shared state ([`lru`]), a weighted
//! DAG arena for happens-before analyses ([`graph`]) and the JSON
//! escape/number helpers every hand-rolled emitter shares ([`json`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod action;
pub mod atomicio;
pub mod binfmt;
pub mod checkpoint;
pub mod codec;
pub mod compact;
pub mod compress;
pub mod deadline;
pub mod graph;
pub mod ingest;
pub mod json;
pub mod lru;
pub mod membudget;
pub mod rss;
pub mod stats;
pub mod tib2;
pub mod trace;
pub mod validate;

pub use action::{Action, Pid};
pub use atomicio::{write_atomic, AtomicFile};
pub use compact::{CompactError, CompactTrace};
pub use deadline::{Budget, Deadline};
pub use graph::{CycleError, Dag, DagBuilder, NodeId};
pub use lru::Lru;
pub use membudget::{MemBudget, MemoryExceeded};
pub use tib2::{SegmentColumns, StoreError, Tib2Store, Tib2Writer};
pub use ingest::{load_compact_exact, load_exact, load_per_process_jobs, IngestError};
pub use binfmt::{BinaryTraceReader, BinaryTraceWriter};
pub use codec::{format_action, parse_line, ParseError};
pub use stats::TraceStats;
pub use trace::{ProcessTraceReader, ProcessTraceWriter, TiTrace};
pub use validate::{
    collective_sequences, match_p2p, validate, MatchedPair, P2pEndpoint, P2pMatching,
    ValidationError,
};
