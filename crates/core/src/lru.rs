//! A small deterministic LRU cache.
//!
//! The serving layer keeps parsed platforms and interned compact traces
//! in memory, keyed by their content fingerprint (the `TICK1` FNV-1a-64
//! of [`crate::checkpoint::fnv1a`]), so that a thousand what-if requests
//! against one bundle parse it once. The cache is deliberately tiny and
//! boring: a `HashMap` plus a monotonic recency stamp, with an `O(len)`
//! eviction scan. Capacities here are tens of entries (distinct
//! platforms/traces a daemon juggles), not millions — a linked-list LRU
//! would buy nothing but unsafe code or index gymnastics.
//!
//! Values are returned by clone; callers store `Arc<T>` so a hit is a
//! refcount bump and an evicted entry stays alive for requests already
//! holding it.

use std::collections::HashMap;
use std::hash::Hash;

/// Least-recently-used cache with a fixed capacity.
#[derive(Debug)]
pub struct Lru<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    /// An empty cache holding at most `cap` entries (`cap == 0` caches
    /// nothing: every insert is immediately evicted).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Lru { cap, tick: 0, map: HashMap::new() }
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(stamp, v)| {
            *stamp = tick;
            v.clone()
        })
    }

    /// True when `key` is cached; does **not** touch recency.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value` as most-recently-used, evicting the least
    /// recently used entry when over capacity. Returns the evicted
    /// pair, if any (the new entry itself when `cap == 0`).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        self.map.insert(key, (self.tick, value));
        if self.map.len() <= self.cap {
            return None;
        }
        // Over capacity by exactly one: scan out the oldest stamp. Ties
        // are impossible (the tick is monotonic), so eviction order is
        // deterministic regardless of HashMap iteration order.
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(k, _)| k.clone());
        let k = oldest?;
        let (_, v) = self.map.remove(&k)?;
        Some((k, v))
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_len() {
        let mut c: Lru<u64, &str> = Lru::new(2);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.insert(1, "one"), None);
        assert_eq!(c.insert(2, "two"), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some("one"));
        assert!(c.contains(&2));
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: Lru<u64, u64> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 is the LRU entry.
        assert_eq!(c.get(&1), Some(10));
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.contains(&1) && c.contains(&3) && !c.contains(&2));
    }

    #[test]
    fn reinsert_refreshes_recency_and_value() {
        let mut c: Lru<u64, u64> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 2 becomes LRU
        assert_eq!(c.len(), 2);
        assert_eq!(c.insert(3, 30), Some((2, 20)));
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c: Lru<u64, u64> = Lru::new(0);
        assert_eq!(c.insert(1, 10), Some((1, 10)));
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn contains_does_not_refresh() {
        let mut c: Lru<u64, u64> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.contains(&1)); // no recency bump
        assert_eq!(c.insert(3, 30), Some((1, 10)), "1 stayed LRU");
    }

    #[test]
    fn clear_empties() {
        let mut c: Lru<u64, u64> = Lru::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn eviction_order_is_deterministic_over_many_entries() {
        // Insert 100, capacity 10: survivors must be exactly the last 10.
        let mut c: Lru<u64, u64> = Lru::new(10);
        for i in 0..100u64 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 10);
        for i in 90..100 {
            assert!(c.contains(&i), "entry {i} must survive");
        }
        for i in 0..90 {
            assert!(!c.contains(&i), "entry {i} must be evicted");
        }
    }
}
