//! The time-independent action vocabulary (Table 1 of the paper).
//!
//! Each action is performed by one process and carries volumes instead of
//! durations: flops for computations, bytes for communications. Collective
//! operations are rooted at process 0 and involve the whole communicator
//! whose size a prior `comm_size` action declared (the paper's prototype
//! does not implement `MPI_Comm_split`).

/// An MPI process rank (the `pN` ids of the trace format).
pub type Pid = usize;

/// One entry of a time-independent trace.
///
/// Volumes are `f64`, matching the paper's use of scientific notation
/// (`1e6`) alongside exact byte counts (`163840`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// CPU burst of `flops` floating-point operations.
    Compute {
        /// Number of floating-point operations.
        flops: f64,
    },
    /// Blocking send of `bytes` to `dst` (`MPI_Send`).
    Send {
        /// Destination rank.
        dst: Pid,
        /// Message size in bytes.
        bytes: f64,
    },
    /// Non-blocking send of `bytes` to `dst` (`MPI_Isend`).
    Isend {
        /// Destination rank.
        dst: Pid,
        /// Message size in bytes.
        bytes: f64,
    },
    /// Blocking receive from `src` (`MPI_Recv`). The byte volume is
    /// optional in the on-disk format: Figure 1 of the paper omits it
    /// (the matching send carries the size), while Table 1 lists it.
    Recv {
        /// Source rank.
        src: Pid,
        /// Declared message size, when the trace annotates it.
        bytes: Option<f64>,
    },
    /// Non-blocking receive from `src` (`MPI_Irecv`).
    Irecv {
        /// Source rank.
        src: Pid,
        /// Declared message size, when the trace annotates it.
        bytes: Option<f64>,
    },
    /// Broadcast of `bytes` rooted at process 0 (`MPI_Broadcast`).
    Bcast {
        /// Broadcast payload in bytes.
        bytes: f64,
    },
    /// Reduction to process 0: `vcomm` bytes communicated, `vcomp` flops
    /// of local combining (`MPI_Reduce`).
    Reduce {
        /// Bytes communicated.
        vcomm: f64,
        /// Flops of local combining.
        vcomp: f64,
    },
    /// Reduction + broadcast (`MPI_Allreduce`).
    AllReduce {
        /// Bytes communicated.
        vcomm: f64,
        /// Flops of local combining.
        vcomp: f64,
    },
    /// Synchronisation barrier (`MPI_Barrier`).
    Barrier,
    /// Declares the communicator size; must precede any collective
    /// (`MPI_Comm_size`).
    CommSize {
        /// Declared number of processes in the communicator.
        nproc: usize,
    },
    /// Completes the oldest pending non-blocking request (`MPI_Wait`).
    Wait,
}

impl Action {
    /// The trace keyword for this action (`compute`, `send`, ...).
    pub fn keyword(&self) -> &'static str {
        match self {
            Action::Compute { .. } => "compute",
            Action::Send { .. } => "send",
            Action::Isend { .. } => "Isend",
            Action::Recv { .. } => "recv",
            Action::Irecv { .. } => "Irecv",
            Action::Bcast { .. } => "bcast",
            Action::Reduce { .. } => "reduce",
            Action::AllReduce { .. } => "allReduce",
            Action::Barrier => "barrier",
            Action::CommSize { .. } => "comm_size",
            Action::Wait => "wait",
        }
    }

    /// Flops this action computes (0 for pure communications).
    pub fn flops(&self) -> f64 {
        match self {
            Action::Compute { flops } => *flops,
            Action::Reduce { vcomp, .. } | Action::AllReduce { vcomp, .. } => *vcomp,
            _ => 0.0,
        }
    }

    /// Bytes this action communicates from this process's perspective
    /// (receives report the declared volume when present).
    ///
    /// Lossy: a receive without a byte annotation reports `0.0` even
    /// though the matching send may carry a large volume. Use
    /// [`Action::comm_bytes`] when "unknown" must stay distinguishable
    /// from "zero".
    pub fn bytes(&self) -> f64 {
        match self {
            Action::Send { bytes, .. } | Action::Isend { bytes, .. } => *bytes,
            Action::Recv { bytes, .. } | Action::Irecv { bytes, .. } => bytes.unwrap_or(0.0),
            Action::Bcast { bytes } => *bytes,
            Action::Reduce { vcomm, .. } | Action::AllReduce { vcomm, .. } => *vcomm,
            _ => 0.0,
        }
    }

    /// Bytes this action communicates, when statically known.
    ///
    /// `None` for a receive whose byte annotation is absent from the
    /// trace — the volume exists but only the matching send carries it
    /// (resolve it through [`crate::validate::match_p2p`]). Actions
    /// that do not communicate at all return `Some(0.0)`.
    pub fn comm_bytes(&self) -> Option<f64> {
        match self {
            Action::Recv { bytes, .. } | Action::Irecv { bytes, .. } => *bytes,
            other => Some(other.bytes()),
        }
    }

    /// True for collective operations (need a prior `comm_size`).
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            Action::Bcast { .. }
                | Action::Reduce { .. }
                | Action::AllReduce { .. }
                | Action::Barrier
        )
    }

    /// True for non-blocking operations that enqueue a request a later
    /// `wait` completes.
    pub fn is_nonblocking(&self) -> bool {
        matches!(self, Action::Isend { .. } | Action::Irecv { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_match_table_1() {
        assert_eq!(Action::Compute { flops: 1.0 }.keyword(), "compute");
        assert_eq!(Action::Send { dst: 0, bytes: 1.0 }.keyword(), "send");
        assert_eq!(Action::Isend { dst: 0, bytes: 1.0 }.keyword(), "Isend");
        assert_eq!(Action::Recv { src: 0, bytes: None }.keyword(), "recv");
        assert_eq!(Action::Irecv { src: 0, bytes: None }.keyword(), "Irecv");
        assert_eq!(Action::Bcast { bytes: 1.0 }.keyword(), "bcast");
        assert_eq!(Action::Reduce { vcomm: 1.0, vcomp: 1.0 }.keyword(), "reduce");
        assert_eq!(Action::AllReduce { vcomm: 1.0, vcomp: 1.0 }.keyword(), "allReduce");
        assert_eq!(Action::Barrier.keyword(), "barrier");
        assert_eq!(Action::CommSize { nproc: 4 }.keyword(), "comm_size");
        assert_eq!(Action::Wait.keyword(), "wait");
    }

    #[test]
    fn volume_accessors() {
        let a = Action::AllReduce { vcomm: 8.0, vcomp: 16.0 };
        assert_eq!(a.bytes(), 8.0);
        assert_eq!(a.flops(), 16.0);
        assert_eq!(Action::Compute { flops: 3.0 }.flops(), 3.0);
        assert_eq!(Action::Wait.bytes(), 0.0);
        assert_eq!(Action::Recv { src: 1, bytes: Some(7.0) }.bytes(), 7.0);
        assert_eq!(Action::Recv { src: 1, bytes: None }.bytes(), 0.0);
    }

    #[test]
    fn comm_bytes_distinguishes_unknown_from_zero() {
        assert_eq!(Action::Recv { src: 1, bytes: None }.comm_bytes(), None);
        assert_eq!(Action::Irecv { src: 1, bytes: None }.comm_bytes(), None);
        assert_eq!(Action::Recv { src: 1, bytes: Some(7.0) }.comm_bytes(), Some(7.0));
        assert_eq!(Action::Send { dst: 0, bytes: 9.0 }.comm_bytes(), Some(9.0));
        assert_eq!(Action::Compute { flops: 3.0 }.comm_bytes(), Some(0.0));
        assert_eq!(Action::Wait.comm_bytes(), Some(0.0));
    }

    #[test]
    fn classification() {
        assert!(Action::Barrier.is_collective());
        assert!(Action::Bcast { bytes: 1.0 }.is_collective());
        assert!(!Action::Send { dst: 0, bytes: 1.0 }.is_collective());
        assert!(Action::Isend { dst: 0, bytes: 1.0 }.is_nonblocking());
        assert!(Action::Irecv { src: 0, bytes: None }.is_nonblocking());
        assert!(!Action::Wait.is_nonblocking());
    }
}
