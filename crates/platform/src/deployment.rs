//! Deployment descriptions: which host runs each MPI process.
//!
//! Mirrors the paper's Figure 6: a list of `<process host=... function=
//! "pN">` entries, optionally carrying the per-process trace file as an
//! `<argument>` (Section 5's per-process trace layout). Programmatic
//! builders cover the acquisition modes of Section 4.2: *regular* (one
//! process per node), *folded* (several processes per node) and
//! *scattered* (nodes from several sites).

use crate::xml::{self, Element, XmlError};
use simkern::resource::HostId;
use simkern::Platform;

/// One process placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployEntry {
    /// Host name in the platform description.
    pub host: String,
    /// Function name; the paper uses `p<rank>`.
    pub function: String,
    /// Extra arguments (e.g. the per-process trace file).
    pub args: Vec<String>,
}

/// A full deployment: entry `i` places MPI rank `i`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Deployment {
    pub entries: Vec<DeployEntry>,
}

impl Deployment {
    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.entries.len()
    }

    /// Places `nproc` ranks on `hosts`, one per host, cycling when there
    /// are more ranks than hosts (regular mode when `nproc <= hosts`).
    pub fn round_robin(hosts: &[String], nproc: usize) -> Self {
        assert!(!hosts.is_empty());
        Deployment {
            entries: (0..nproc)
                .map(|r| DeployEntry {
                    host: hosts[r % hosts.len()].clone(),
                    function: format!("p{r}"),
                    args: Vec::new(),
                })
                .collect(),
        }
    }

    /// Folding mode: `fold` consecutive ranks per host (block mapping).
    /// `F-8` for 64 ranks uses 8 hosts with ranks 0..8 on the first.
    pub fn folded(hosts: &[String], nproc: usize, fold: usize) -> Self {
        assert!(fold > 0);
        let needed = nproc.div_ceil(fold);
        assert!(
            hosts.len() >= needed,
            "folding {nproc} ranks by {fold} needs {needed} hosts, have {}",
            hosts.len()
        );
        Deployment {
            entries: (0..nproc)
                .map(|r| DeployEntry {
                    host: hosts[r / fold].clone(),
                    function: format!("p{r}"),
                    args: Vec::new(),
                })
                .collect(),
        }
    }

    /// Scattering mode: ranks split in contiguous blocks across sites
    /// (each site contributes `nproc / sites.len()` ranks, remainder to
    /// the first sites), one rank per host inside a site.
    pub fn scattered(sites: &[Vec<String>], nproc: usize) -> Self {
        assert!(!sites.is_empty());
        let nsites = sites.len();
        let base = nproc / nsites;
        let extra = nproc % nsites;
        let mut entries = Vec::with_capacity(nproc);
        let mut rank = 0;
        for (si, site) in sites.iter().enumerate() {
            let quota = base + usize::from(si < extra);
            assert!(
                site.len() >= quota,
                "site {si} has {} hosts but needs {quota}",
                site.len()
            );
            for host in &site[..quota] {
                entries.push(DeployEntry {
                    host: host.clone(),
                    function: format!("p{rank}"),
                    args: Vec::new(),
                });
                rank += 1;
            }
        }
        Deployment { entries }
    }

    /// Scattering and folding combined (`SF-(u,v)` in Table 2): blocks
    /// across `sites`, `fold` ranks per node inside each site.
    pub fn scattered_folded(sites: &[Vec<String>], nproc: usize, fold: usize) -> Self {
        assert!(!sites.is_empty() && fold > 0);
        let nsites = sites.len();
        let base = nproc / nsites;
        let extra = nproc % nsites;
        let mut entries = Vec::with_capacity(nproc);
        let mut rank = 0;
        for (si, site) in sites.iter().enumerate() {
            let quota = base + usize::from(si < extra);
            let nodes = quota.div_ceil(fold);
            assert!(
                site.len() >= nodes,
                "site {si} has {} hosts but needs {nodes} for fold {fold}",
                site.len()
            );
            for i in 0..quota {
                entries.push(DeployEntry {
                    host: site[i / fold].clone(),
                    function: format!("p{rank}"),
                    args: Vec::new(),
                });
                rank += 1;
            }
        }
        Deployment { entries }
    }

    /// Attaches the conventional per-process trace file argument to every
    /// entry (`SG_process<rank>.trace`).
    pub fn with_trace_args(mut self) -> Self {
        for (r, e) in self.entries.iter_mut().enumerate() {
            e.args = vec![format!("SG_process{r}.trace")];
        }
        self
    }

    /// Resolves host names against a built platform, rank-ordered.
    pub fn host_ids(&self, platform: &Platform) -> Vec<HostId> {
        self.entries
            .iter()
            .map(|e| {
                platform
                    .host_by_name(&e.host)
                    // panics: documented contract: the descriptor must be self-consistent
                    .unwrap_or_else(|| panic!("deployment host {:?} not in platform", e.host))
            })
            .collect()
    }

    /// Number of distinct hosts used.
    pub fn distinct_hosts(&self) -> usize {
        let mut names: Vec<&str> = self.entries.iter().map(|e| e.host.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    // ------------------------------------------------------------------
    // XML (Figure 6 format)

    /// Parses a deployment file.
    pub fn from_xml_str(text: &str) -> Result<Self, XmlError> {
        let root = xml::parse(text)?;
        if root.name != "platform" {
            return Err(XmlError(format!("expected <platform>, got <{}>", root.name)));
        }
        let mut entries = Vec::new();
        for p in root.children_named("process") {
            let args = p
                .children_named("argument")
                .map(|a| a.attr_parse::<String>("value"))
                .collect::<Result<Vec<_>, _>>()?;
            entries.push(DeployEntry {
                host: p.attr_parse("host")?,
                function: p.attr_parse("function")?,
                args,
            });
        }
        if entries.is_empty() {
            return Err(XmlError("deployment contains no <process>".into()));
        }
        // Order by rank encoded in the function name when possible.
        entries.sort_by_key(|e| {
            e.function.strip_prefix('p').and_then(|s| s.parse::<usize>().ok()).unwrap_or(usize::MAX)
        });
        Ok(Deployment { entries })
    }

    /// Emits the Figure 6 XML form.
    pub fn to_xml_string(&self) -> String {
        let mut root = Element::new("platform").with_attr("version", 3);
        for e in &self.entries {
            let mut p = Element::new("process")
                .with_attr("host", &e.host)
                .with_attr("function", &e.function);
            for a in &e.args {
                p = p.with_child(Element::new("argument").with_attr("value", a));
            }
            root = root.with_child(p);
        }
        format!(
            "<?xml version='1.0'?>\n<!DOCTYPE platform SYSTEM \"simgrid.dtd\">\n{}",
            root.to_xml()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn round_robin_regular_mode() {
        let d = Deployment::round_robin(&hosts("h", 4), 4);
        assert_eq!(d.num_processes(), 4);
        assert_eq!(d.entries[2].host, "h2");
        assert_eq!(d.entries[2].function, "p2");
        assert_eq!(d.distinct_hosts(), 4);
    }

    #[test]
    fn folded_blocks_consecutive_ranks() {
        let d = Deployment::folded(&hosts("h", 8), 16, 4);
        assert_eq!(d.distinct_hosts(), 4);
        assert_eq!(d.entries[0].host, "h0");
        assert_eq!(d.entries[3].host, "h0");
        assert_eq!(d.entries[4].host, "h1");
        assert_eq!(d.entries[15].host, "h3");
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn folded_rejects_too_few_hosts() {
        Deployment::folded(&hosts("h", 1), 16, 4);
    }

    #[test]
    fn scattered_splits_across_sites() {
        let sites = vec![hosts("a", 10), hosts("b", 10)];
        let d = Deployment::scattered(&sites, 8);
        assert_eq!(d.entries[0].host, "a0");
        assert_eq!(d.entries[3].host, "a3");
        assert_eq!(d.entries[4].host, "b0");
        assert_eq!(d.entries[7].host, "b3");
    }

    #[test]
    fn scattered_folded_combines_both() {
        let sites = vec![hosts("a", 4), hosts("b", 4)];
        let d = Deployment::scattered_folded(&sites, 16, 4);
        assert_eq!(d.distinct_hosts(), 4);
        assert_eq!(d.entries[0].host, "a0");
        assert_eq!(d.entries[7].host, "a1");
        assert_eq!(d.entries[8].host, "b0");
        assert_eq!(d.entries[15].host, "b1");
    }

    #[test]
    fn xml_roundtrip_with_trace_args() {
        let d = Deployment::round_robin(&hosts("mycluster-", 4), 4).with_trace_args();
        let text = d.to_xml_string();
        assert!(text.contains("function=\"p0\""));
        assert!(text.contains("SG_process1.trace"));
        let back = Deployment::from_xml_str(&text).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn parses_paper_figure_6() {
        let doc = r#"<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
<process host="mycluster-0.mysite.fr" function="p0"/>
<process host="mycluster-1.mysite.fr" function="p1"/>
<process host="mycluster-2.mysite.fr" function="p2"/>
<process host="mycluster-3.mysite.fr" function="p3"/>
</platform>"#;
        let d = Deployment::from_xml_str(doc).unwrap();
        assert_eq!(d.num_processes(), 4);
        assert_eq!(d.entries[3].host, "mycluster-3.mysite.fr");
    }

    #[test]
    fn host_ids_resolve_against_platform() {
        use crate::desc::{ClusterSpec, ClusterTopology, PlatformDesc};
        let spec = ClusterSpec {
            id: "c".into(),
            prefix: "mycluster-".into(),
            suffix: ".mysite.fr".into(),
            count: 4,
            power: 1.17e9,
            cores: 1,
            bw: 1.25e8,
            lat: 16.67e-6,
            bb_bw: 1.25e9,
            bb_lat: 16.67e-6,
            topology: ClusterTopology::Flat,
        };
        let desc = PlatformDesc::single(spec.clone());
        let platform = desc.build();
        let d = Deployment::round_robin(&desc.host_names(), 4);
        let ids = d.host_ids(&platform);
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0].0, 0);
        assert_eq!(ids[3].0, 3);
    }
}
