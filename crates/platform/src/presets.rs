//! Models of the evaluation platforms (Section 6.1 of the paper).
//!
//! Two Grid'5000 clusters:
//!
//! * **bordereau** — 93 nodes, 2.6 GHz dual-proc dual-core AMD Opteron
//!   2218 (4 cores/node), all on a single 10 Gbit switch; GigE NICs.
//! * **gdx** — 186 nodes, 2.0 GHz dual-proc AMD Opteron 246 (2 cores),
//!   spread over 18 cabinets, two cabinets per switch, switches joined to
//!   one second-level switch by 1 Gbit Ethernet links.
//!
//! They are interconnected by a dedicated 10 Gbit wide-area network
//! (millisecond-scale latency between the two sites).
//!
//! `power` is the *calibrated application flop rate* per core, not the
//! CPU's peak: the paper calibrates it by timing an instrumented run
//! (Section 5). The defaults below were fixed with that procedure against
//! this repository's LU emulator; `tit-calibrate` recomputes them.

use crate::desc::{ClusterSpec, ClusterTopology, PlatformDesc, WanLink};

/// Calibrated per-core LU flop rate on bordereau (2.6 GHz Opteron 2218).
pub const BORDEREAU_POWER: f64 = 1.17e9;
/// Calibrated per-core LU flop rate on gdx (2.0 GHz Opteron 246),
/// scaled by clock ratio from bordereau.
pub const GDX_POWER: f64 = 0.90e9;

/// The bordereau cluster, truncated to `nodes` (≤ 93 in reality).
pub fn bordereau(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        id: "bordereau".into(),
        prefix: "bordereau-".into(),
        suffix: ".bordeaux.grid5000.fr".into(),
        count: nodes,
        power: BORDEREAU_POWER,
        cores: 4,
        bw: 1.25e8,      // GigE NIC: 1 Gbit/s
        lat: 16.67e-6,   // per-hop latency (ping-pong / 6)
        bb_bw: 1.25e9,   // 10 Gbit backbone switch
        bb_lat: 16.67e-6,
        topology: ClusterTopology::Flat,
    }
}

/// bordereau with one core per node, as used for Table 2
/// ("we use only one core per node").
pub fn bordereau_one_core(nodes: usize) -> ClusterSpec {
    ClusterSpec { cores: 1, ..bordereau(nodes) }
}

/// The gdx cluster, truncated to `nodes` (≤ 186 in reality). 18 cabinets
/// of ~10-11 nodes, two cabinets behind each switch → groups of ~21.
pub fn gdx(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        id: "gdx".into(),
        prefix: "gdx-".into(),
        suffix: ".orsay.grid5000.fr".into(),
        count: nodes,
        power: GDX_POWER,
        cores: 2,
        bw: 1.25e8,
        lat: 16.67e-6,
        bb_bw: 1.25e9, // the second-level switch itself is not a bottleneck
        bb_lat: 16.67e-6,
        topology: ClusterTopology::Cabinets { group_size: 21 },
    }
}

/// gdx with one core per node (Table 2 setting).
pub fn gdx_one_core(nodes: usize) -> ClusterSpec {
    ClusterSpec { cores: 1, ..gdx(nodes) }
}

/// Dedicated 10 Gbit inter-site network between Bordeaux and Orsay.
pub fn g5k_wan() -> WanLink {
    WanLink {
        from: "bordereau".into(),
        to: "gdx".into(),
        bw: 1.25e9,
        lat: 5.0e-3, // ~10 ms RTT between the two Grid'5000 sites
    }
}

/// Two-site platform for the scattering experiments: `b` bordereau nodes
/// plus `g` gdx nodes over the dedicated WAN, one core per node.
pub fn grid5000_two_sites(b: usize, g: usize) -> PlatformDesc {
    PlatformDesc {
        clusters: vec![bordereau_one_core(b), gdx_one_core(g)],
        wan: vec![g5k_wan()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::resource::HostId;

    #[test]
    fn bordereau_builds_with_full_size() {
        let p = PlatformDesc::single(bordereau(93)).build();
        assert_eq!(p.num_hosts(), 93);
        let r = p.resolve_route(HostId(0), HostId(92));
        assert_eq!(r.shared.len(), 2);
        assert_eq!(r.bound, 1.25e9);
    }

    #[test]
    fn gdx_builds_with_cabinet_topology() {
        let p = PlatformDesc::single(gdx(186)).build();
        assert_eq!(p.num_hosts(), 186);
        // Hosts 0 and 1 share a cabinet group; 0 and 185 do not.
        let near = p.resolve_route(HostId(0), HostId(1));
        let far = p.resolve_route(HostId(0), HostId(185));
        assert!(far.latency > near.latency);
        assert_eq!(near.shared.len(), 2);
        assert_eq!(far.shared.len(), 4);
    }

    #[test]
    fn two_site_platform_routes_across_wan() {
        let desc = grid5000_two_sites(32, 32);
        let p = desc.build();
        assert_eq!(p.num_hosts(), 64);
        let cross = p.resolve_route(HostId(0), HostId(40));
        assert!(cross.latency > 5e-3);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the preset relationship
    fn gdx_is_slower_than_bordereau() {
        assert!(GDX_POWER < BORDEREAU_POWER);
        // Roughly the 2.0/2.6 clock ratio.
        let ratio = GDX_POWER / BORDEREAU_POWER;
        assert!(ratio > 0.7 && ratio < 0.85, "ratio {ratio}");
    }

    #[test]
    fn one_core_variants() {
        assert_eq!(bordereau_one_core(8).cores, 1);
        assert_eq!(gdx_one_core(8).cores, 1);
        assert_eq!(bordereau(8).cores, 4);
    }
}
