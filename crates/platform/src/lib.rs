//! `tit-platform` — platform and deployment descriptions.
//!
//! The replay tool takes three inputs (Figure 4 of the paper): the
//! time-independent trace(s), a description of the **target platform**
//! (Figure 5), and a **deployment** mapping processes onto processors
//! (Figure 6). This crate implements:
//!
//! * a small dependency-free XML parser ([`xml`]) for the SimGrid-style
//!   description files;
//! * platform models ([`desc`]): flat switched clusters (bordereau-like),
//!   hierarchical cabinet clusters (gdx-like), and multi-site assemblies
//!   interconnected by wide-area links, all compiled into a
//!   [`simkern::Platform`] with the appropriate routing;
//! * deployment descriptions ([`deployment`]): parse/emit the XML form
//!   and programmatic builders for the paper's acquisition modes (regular,
//!   folded, scattered);
//! * presets ([`presets`]) describing the two Grid'5000 clusters of the
//!   evaluation section and their interconnection.

#![forbid(unsafe_code)]

pub mod deployment;
pub mod desc;
pub mod presets;
pub mod xml;

pub use deployment::Deployment;
pub use desc::{ClusterSpec, ClusterTopology, PlatformDesc, WanLink};
