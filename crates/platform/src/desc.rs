//! Platform descriptions and their compilation to a [`simkern::Platform`].
//!
//! Mirrors the paper's Figure 5: a `<cluster>` element describes `radical`
//! homogeneous nodes (`power` flop/s) behind a switched interconnect
//! (per-node links of `bw`/`lat`, backbone `bb_bw`/`bb_lat`). Two
//! topologies cover the evaluation platforms:
//!
//! * **Flat** — every node hangs off one backbone switch (the *bordereau*
//!   cluster: 93 nodes on a single 10 G switch). A route crosses two
//!   node links and the switch, i.e. three latencies — the paper's
//!   "divide the ping-pong latency by six" rule (Section 5).
//! * **Cabinets** — nodes grouped in cabinets, two cabinets per switch,
//!   switches connected to a second-level switch by 1 G links (the *gdx*
//!   cluster: 186 nodes, 18 cabinets). Distant nodes cross three switches.
//!
//! Multiple clusters are interconnected by wide-area links
//! (`<interconnect>`, our compact stand-in for SimGrid's `<ASroute>`),
//! which the scattered acquisition mode of Section 4.2 exercises.

use crate::xml::{self, Element, XmlError};
use simkern::resource::{
    HostId, LinkId, PlatformBuilder, Router, Sharing,
};
use simkern::Platform;

/// Interconnect layout inside one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterTopology {
    /// All nodes behind a single backbone switch.
    Flat,
    /// Nodes grouped by `group_size` behind shared cabinet switches,
    /// cabinet switches linked to a second-level switch.
    Cabinets { group_size: usize },
}

/// One homogeneous cluster (Figure 5's `<cluster>`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    pub id: String,
    pub prefix: String,
    pub suffix: String,
    /// Number of nodes.
    pub count: usize,
    /// Per-core power, flop/s.
    pub power: f64,
    /// Cores per node (the paper's nodes are dual-proc dual-core).
    pub cores: u32,
    /// Node link bandwidth, bytes/s.
    pub bw: f64,
    /// Node link latency, seconds.
    pub lat: f64,
    /// Backbone bandwidth, bytes/s.
    pub bb_bw: f64,
    /// Backbone latency, seconds.
    pub bb_lat: f64,
    pub topology: ClusterTopology,
}

impl ClusterSpec {
    /// Host name of node `i` (`prefix` + index + `suffix`).
    pub fn host_name(&self, i: usize) -> String {
        format!("{}{}{}", self.prefix, i, self.suffix)
    }
}

/// A wide-area link between two clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct WanLink {
    /// `id` of the source cluster.
    pub from: String,
    /// `id` of the destination cluster.
    pub to: String,
    pub bw: f64,
    pub lat: f64,
}

/// A full platform: clusters plus wide-area interconnects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlatformDesc {
    pub clusters: Vec<ClusterSpec>,
    pub wan: Vec<WanLink>,
}

impl PlatformDesc {
    /// Single-cluster platform.
    pub fn single(cluster: ClusterSpec) -> Self {
        PlatformDesc { clusters: vec![cluster], wan: Vec::new() }
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.clusters.iter().map(|c| c.count).sum()
    }

    /// All host names, cluster by cluster, node order.
    pub fn host_names(&self) -> Vec<String> {
        let mut v = Vec::with_capacity(self.num_hosts());
        for c in &self.clusters {
            for i in 0..c.count {
                v.push(c.host_name(i));
            }
        }
        v
    }

    // ------------------------------------------------------------------
    // XML (Figure 5 format)

    /// Parses a platform file.
    pub fn from_xml_str(text: &str) -> Result<Self, XmlError> {
        let root = xml::parse(text)?;
        if root.name != "platform" {
            return Err(XmlError(format!("expected <platform>, got <{}>", root.name)));
        }
        let mut desc = PlatformDesc::default();
        // Clusters may sit directly under <platform> or inside <AS>.
        let mut stack: Vec<&Element> = vec![&root];
        while let Some(el) = stack.pop() {
            for child in &el.children {
                match child.name.as_str() {
                    "AS" => stack.push(child),
                    "cluster" => desc.clusters.push(parse_cluster(child)?),
                    "interconnect" => desc.wan.push(WanLink {
                        from: child.attr_parse("src")?,
                        to: child.attr_parse("dst")?,
                        bw: child.attr_parse("bw")?,
                        lat: child.attr_parse("lat")?,
                    }),
                    _ => {}
                }
            }
        }
        if desc.clusters.is_empty() {
            return Err(XmlError("platform contains no <cluster>".into()));
        }
        Ok(desc)
    }

    /// Emits the Figure 5 XML form.
    pub fn to_xml_string(&self) -> String {
        let mut as_el = Element::new("AS")
            .with_attr("id", "AS_site")
            .with_attr("routing", "Full");
        for c in &self.clusters {
            let mut el = Element::new("cluster")
                .with_attr("id", &c.id)
                .with_attr("prefix", &c.prefix)
                .with_attr("suffix", &c.suffix)
                .with_attr("radical", format!("0-{}", c.count - 1))
                .with_attr("power", format!("{:E}", c.power))
                .with_attr("bw", format!("{:E}", c.bw))
                .with_attr("lat", format!("{:E}", c.lat))
                .with_attr("bb_bw", format!("{:E}", c.bb_bw))
                .with_attr("bb_lat", format!("{:E}", c.bb_lat))
                .with_attr("cores", c.cores);
            if let ClusterTopology::Cabinets { group_size } = c.topology {
                el = el.with_attr("group_size", group_size);
            }
            as_el = as_el.with_child(el);
        }
        for w in &self.wan {
            as_el = as_el.with_child(
                Element::new("interconnect")
                    .with_attr("src", &w.from)
                    .with_attr("dst", &w.to)
                    .with_attr("bw", format!("{:E}", w.bw))
                    .with_attr("lat", format!("{:E}", w.lat)),
            );
        }
        let root = Element::new("platform").with_attr("version", 3).with_child(as_el);
        format!(
            "<?xml version='1.0'?>\n<!DOCTYPE platform SYSTEM \"simgrid.dtd\">\n{}",
            root.to_xml()
        )
    }

    // ------------------------------------------------------------------
    // Compilation to a runtime platform

    /// Builds the simulation-kernel platform with full routing.
    pub fn build(&self) -> Platform {
        let mut pb = PlatformBuilder::new();
        let mut clusters = Vec::new();
        for c in &self.clusters {
            clusters.push(build_cluster(&mut pb, c));
        }
        // Wide-area links.
        let mut wan = std::collections::HashMap::new();
        for w in &self.wan {
            let a = self
                .clusters
                .iter()
                .position(|c| c.id == w.from)
                // panics: documented contract: the descriptor must be self-consistent
                .unwrap_or_else(|| panic!("interconnect references unknown cluster {}", w.from));
            let b = self
                .clusters
                .iter()
                .position(|c| c.id == w.to)
                // panics: documented contract: the descriptor must be self-consistent
                .unwrap_or_else(|| panic!("interconnect references unknown cluster {}", w.to));
            let l = pb.add_link(&format!("wan-{}-{}", w.from, w.to), w.bw, w.lat);
            wan.insert((a, b), l);
            wan.insert((b, a), l);
        }
        let mut host_cluster = Vec::new();
        for (ci, c) in self.clusters.iter().enumerate() {
            for i in 0..c.count {
                host_cluster.push((ci, i));
            }
        }
        let router = MultiClusterRouter { clusters, wan, host_cluster };
        pb.build_with_router(Box::new(router))
    }
}

fn parse_cluster(el: &Element) -> Result<ClusterSpec, XmlError> {
    let radical: String = el.attr_parse("radical")?;
    let count = parse_radical(&radical)
        .ok_or_else(|| XmlError(format!("bad radical {radical:?} (expected \"0-N\")")))?;
    let cores = match el.attr("cores") {
        Some(_) => el.attr_parse("cores")?,
        None => 1,
    };
    let topology = match el.attr("group_size") {
        Some(_) => ClusterTopology::Cabinets { group_size: el.attr_parse("group_size")? },
        None => ClusterTopology::Flat,
    };
    Ok(ClusterSpec {
        id: el.attr_parse("id")?,
        prefix: el.attr_parse("prefix")?,
        suffix: el.attr_parse("suffix")?,
        count,
        power: el.attr_parse("power")?,
        cores,
        bw: el.attr_parse("bw")?,
        lat: el.attr_parse("lat")?,
        bb_bw: el.attr_parse("bb_bw")?,
        bb_lat: el.attr_parse("bb_lat")?,
        topology,
    })
}

/// Parses `"0-3"` → 4 nodes.
fn parse_radical(r: &str) -> Option<usize> {
    let (a, b) = r.split_once('-')?;
    let a: usize = a.trim().parse().ok()?;
    let b: usize = b.trim().parse().ok()?;
    (a == 0 && b >= a).then_some(b + 1)
}

/// Per-cluster link structure after compilation.
struct BuiltCluster {
    /// One NIC link per host (shared both directions).
    host_links: Vec<LinkId>,
    /// Flat: the backbone switch. Cabinets: the second-level switch.
    backbone: LinkId,
    /// Cabinets only.
    groups: Option<GroupInfo>,
}

struct GroupInfo {
    /// Group index of each host.
    group_of: Vec<usize>,
    /// Cabinet switch (fat-pipe) per group.
    switch: Vec<LinkId>,
    /// Shared uplink from cabinet switch to the second level, per group.
    uplink: Vec<LinkId>,
}

fn build_cluster(pb: &mut PlatformBuilder, c: &ClusterSpec) -> BuiltCluster {
    let mut host_links = Vec::with_capacity(c.count);
    for i in 0..c.count {
        pb.add_host(&c.host_name(i), c.power, c.cores);
        host_links.push(pb.add_link(&format!("{}-nic{}", c.id, i), c.bw, c.lat));
    }
    let backbone = pb.add_link_with_sharing(
        &format!("{}-bb", c.id),
        c.bb_bw,
        c.bb_lat,
        Sharing::FatPipe,
    );
    let groups = match c.topology {
        ClusterTopology::Flat => None,
        ClusterTopology::Cabinets { group_size } => {
            assert!(group_size > 0, "cabinet group size must be positive");
            let ngroups = c.count.div_ceil(group_size);
            let mut switch = Vec::with_capacity(ngroups);
            let mut uplink = Vec::with_capacity(ngroups);
            for g in 0..ngroups {
                switch.push(pb.add_link_with_sharing(
                    &format!("{}-sw{}", c.id, g),
                    c.bb_bw,
                    c.bb_lat,
                    Sharing::FatPipe,
                ));
                uplink.push(pb.add_link(&format!("{}-up{}", c.id, g), c.bw, c.lat));
            }
            let group_of = (0..c.count).map(|i| i / group_size).collect();
            Some(GroupInfo { group_of, switch, uplink })
        }
    };
    BuiltCluster { host_links, backbone, groups }
}

/// Routing across the compiled clusters.
struct MultiClusterRouter {
    clusters: Vec<BuiltCluster>,
    wan: std::collections::HashMap<(usize, usize), LinkId>,
    /// Global host index → (cluster index, local index).
    host_cluster: Vec<(usize, usize)>,
}

impl MultiClusterRouter {
    /// Links from a host up to its cluster's top-level switch (inclusive).
    fn ascend(&self, ci: usize, local: usize, out: &mut Vec<LinkId>) {
        let c = &self.clusters[ci];
        out.push(c.host_links[local]);
        if let Some(g) = &c.groups {
            let grp = g.group_of[local];
            out.push(g.switch[grp]);
            out.push(g.uplink[grp]);
        }
        out.push(c.backbone);
    }

    /// Same path, switch-to-host direction.
    fn descend(&self, ci: usize, local: usize, out: &mut Vec<LinkId>) {
        let c = &self.clusters[ci];
        out.push(c.backbone);
        if let Some(g) = &c.groups {
            let grp = g.group_of[local];
            out.push(g.uplink[grp]);
            out.push(g.switch[grp]);
        }
        out.push(c.host_links[local]);
    }
}

impl Router for MultiClusterRouter {
    fn route(&self, src: HostId, dst: HostId, out: &mut Vec<LinkId>) {
        let (ca, la) = self.host_cluster[src.0 as usize];
        let (cb, lb) = self.host_cluster[dst.0 as usize];
        if ca == cb {
            let c = &self.clusters[ca];
            match &c.groups {
                None => {
                    // host — backbone switch — host.
                    out.push(c.host_links[la]);
                    out.push(c.backbone);
                    out.push(c.host_links[lb]);
                }
                Some(g) => {
                    let ga = g.group_of[la];
                    let gb = g.group_of[lb];
                    if ga == gb {
                        // host — cabinet switch — host.
                        out.push(c.host_links[la]);
                        out.push(g.switch[ga]);
                        out.push(c.host_links[lb]);
                    } else {
                        // Three switches: cabinet, second level, cabinet.
                        out.push(c.host_links[la]);
                        out.push(g.switch[ga]);
                        out.push(g.uplink[ga]);
                        out.push(c.backbone);
                        out.push(g.uplink[gb]);
                        out.push(g.switch[gb]);
                        out.push(c.host_links[lb]);
                    }
                }
            }
        } else {
            let wan = *self
                .wan
                .get(&(ca, cb))
                // panics: documented contract: the descriptor must be self-consistent
                .unwrap_or_else(|| panic!("no interconnect between clusters {ca} and {cb}"));
            self.ascend(ca, la, out);
            out.push(wan);
            self.descend(cb, lb, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_spec(n: usize) -> ClusterSpec {
        ClusterSpec {
            id: "c".into(),
            prefix: "node-".into(),
            suffix: ".site.fr".into(),
            count: n,
            power: 1.17e9,
            cores: 1,
            bw: 1.25e8,
            lat: 16.67e-6,
            bb_bw: 1.25e9,
            bb_lat: 16.67e-6,
            topology: ClusterTopology::Flat,
        }
    }

    fn cab_spec(n: usize, group: usize) -> ClusterSpec {
        ClusterSpec {
            id: "g".into(),
            prefix: "gdx-".into(),
            suffix: ".fr".into(),
            topology: ClusterTopology::Cabinets { group_size: group },
            ..flat_spec(n)
        }
    }

    #[test]
    fn radical_parsing() {
        assert_eq!(parse_radical("0-3"), Some(4));
        assert_eq!(parse_radical("0-0"), Some(1));
        assert_eq!(parse_radical("1-3"), None);
        assert_eq!(parse_radical("x"), None);
    }

    #[test]
    fn flat_cluster_route_has_three_latencies() {
        let p = PlatformDesc::single(flat_spec(4)).build();
        assert_eq!(p.num_hosts(), 4);
        let r = p.resolve_route(HostId(0), HostId(3));
        // Two NIC links shared + fat-pipe backbone.
        assert_eq!(r.shared.len(), 2);
        assert!((r.latency - 3.0 * 16.67e-6).abs() < 1e-12);
        assert_eq!(r.bound, 1.25e9);
    }

    #[test]
    fn cabinet_cluster_same_and_cross_group_routes() {
        let p = PlatformDesc::single(cab_spec(8, 4)).build();
        // Same group (hosts 0 and 3): 2 NIC + cabinet switch.
        let same = p.resolve_route(HostId(0), HostId(3));
        assert_eq!(same.shared.len(), 2);
        assert!((same.latency - 3.0 * 16.67e-6).abs() < 1e-12);
        // Cross group (hosts 0 and 7): 2 NIC + 2 uplinks shared, 3 switches.
        let cross = p.resolve_route(HostId(0), HostId(7));
        assert_eq!(cross.shared.len(), 4);
        assert!((cross.latency - 7.0 * 16.67e-6).abs() < 1e-11);
    }

    #[test]
    fn two_site_route_crosses_wan() {
        let mut desc = PlatformDesc::single(flat_spec(2));
        desc.clusters.push(ClusterSpec { id: "g".into(), prefix: "g-".into(), ..flat_spec(2) });
        desc.wan.push(WanLink { from: "c".into(), to: "g".into(), bw: 1.25e9, lat: 5e-3 });
        let p = desc.build();
        assert_eq!(p.num_hosts(), 4);
        let r = p.resolve_route(HostId(0), HostId(3));
        // 2 NIC links + wan shared; both backbones fat-pipe.
        assert_eq!(r.shared.len(), 3);
        assert!(r.latency > 5e-3, "wan latency dominates: {}", r.latency);
        // Intra-site still cheap.
        let intra = p.resolve_route(HostId(2), HostId(3));
        assert!(intra.latency < 1e-4);
    }

    #[test]
    fn host_names_follow_prefix_suffix() {
        let desc = PlatformDesc::single(flat_spec(3));
        let names = desc.host_names();
        assert_eq!(names, vec!["node-0.site.fr", "node-1.site.fr", "node-2.site.fr"]);
        let p = desc.build();
        assert_eq!(p.host_by_name("node-1.site.fr"), Some(HostId(1)));
    }

    #[test]
    fn xml_roundtrip() {
        let mut desc = PlatformDesc::single(flat_spec(4));
        desc.clusters.push(cab_spec(8, 4));
        desc.wan.push(WanLink { from: "c".into(), to: "g".into(), bw: 1.25e9, lat: 5e-3 });
        let text = desc.to_xml_string();
        let back = PlatformDesc::from_xml_str(&text).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn parses_paper_figure_5() {
        let doc = r#"<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
<AS id="AS_mysite" routing="Full">
<cluster id="AS_mycluster"
prefix="mycluster-" suffix=".mysite.fr"
radical="0-3" power="1.17E9"
bw="1.25E8" lat="16.67E-6"
bb_bw="1.25E9" bb_lat="16.67E-6"/>
</AS>
</platform>"#;
        let desc = PlatformDesc::from_xml_str(doc).unwrap();
        assert_eq!(desc.clusters.len(), 1);
        let c = &desc.clusters[0];
        assert_eq!(c.count, 4);
        assert_eq!(c.power, 1.17e9);
        assert_eq!(c.host_name(0), "mycluster-0.mysite.fr");
        let p = desc.build();
        assert_eq!(p.num_hosts(), 4);
    }

    #[test]
    fn cores_default_to_one() {
        let doc = r#"<platform><cluster id="c" prefix="n" suffix="" radical="0-1"
            power="1E9" bw="1E8" lat="1E-5" bb_bw="1E9" bb_lat="1E-5"/></platform>"#;
        let desc = PlatformDesc::from_xml_str(doc).unwrap();
        assert_eq!(desc.clusters[0].cores, 1);
    }
}
