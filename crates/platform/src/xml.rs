//! A minimal XML parser for SimGrid-style platform/deployment files.
//!
//! Handles exactly what those files use: the `<?xml?>` prolog, a
//! `<!DOCTYPE>` declaration, comments, and nested elements with
//! double- or single-quoted attributes (including self-closing tags).
//! Character data, CDATA, entities and namespaces are not needed and not
//! supported (text content is ignored).

/// An XML element: name, attributes in document order, children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<Element>,
}

impl Element {
    /// Creates an element with a name and no attributes/children.
    pub fn new(name: &str) -> Self {
        Element { name: name.to_string(), ..Default::default() }
    }

    /// Value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Attribute parsed as `T`, with a descriptive error.
    pub fn attr_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, XmlError> {
        let v = self
            .attr(key)
            .ok_or_else(|| XmlError(format!("<{}> missing attribute {key:?}", self.name)))?;
        v.parse().map_err(|_| {
            XmlError(format!("<{}> attribute {key}={v:?} is not a valid value", self.name))
        })
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: &str, value: impl ToString) -> Self {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a child (builder style).
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// First child with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serialises with 2-space indentation (SimGrid file style).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out, 0);
        out
    }

    fn write_xml(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
        } else {
            out.push_str(">\n");
            for c in &self.children {
                c.write_xml(out, depth + 1);
            }
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
        }
    }
}

fn escape(v: &str) -> String {
    v.replace('&', "&amp;").replace('<', "&lt;").replace('"', "&quot;")
}

fn unescape(v: &str) -> String {
    v.replace("&lt;", "<").replace("&gt;", ">").replace("&quot;", "\"").replace("&amp;", "&")
}

/// Malformed XML (or unsupported construct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError(pub String);

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xml error: {}", self.0)
    }
}

impl std::error::Error for XmlError {}

/// Parses a document, returning its root element.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser { s: input.as_bytes(), pos: 0 };
    p.skip_prolog();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos < p.s.len() {
        return Err(XmlError(format!("trailing content at byte {}", p.pos)));
    }
    Ok(root)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn starts_with(&self, pat: &str) -> bool {
        self.s[self.pos..].starts_with(pat.as_bytes())
    }

    fn skip_until(&mut self, pat: &str) -> Result<(), XmlError> {
        let hay = &self.s[self.pos..];
        match hay.windows(pat.len()).position(|w| w == pat.as_bytes()) {
            Some(i) => {
                self.pos += i + pat.len();
                Ok(())
            }
            None => Err(XmlError(format!("unterminated construct, expected {pat:?}"))),
        }
    }

    /// Skips whitespace, comments, prolog, doctype.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    self.pos = self.s.len();
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    self.pos = self.s.len();
                }
            } else if self.starts_with("<!") {
                if self.skip_until(">").is_err() {
                    self.pos = self.s.len();
                }
            } else {
                return;
            }
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_misc();
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.s.len() {
            let c = self.s[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b':' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError(format!("expected name at byte {start}")));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if !self.starts_with("<") {
            return Err(XmlError(format!("expected '<' at byte {}", self.pos)));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut el = Element::new(&name);
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.pos += 2;
                return Ok(el);
            }
            if self.starts_with(">") {
                self.pos += 1;
                break;
            }
            // Attribute.
            let key = self.parse_name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return Err(XmlError(format!("attribute {key:?} missing '='")));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = *self
                .s
                .get(self.pos)
                .ok_or_else(|| XmlError("unexpected end in attribute".into()))?;
            if quote != b'"' && quote != b'\'' {
                return Err(XmlError(format!("attribute {key:?} value must be quoted")));
            }
            self.pos += 1;
            let vstart = self.pos;
            while self.pos < self.s.len() && self.s[self.pos] != quote {
                self.pos += 1;
            }
            if self.pos >= self.s.len() {
                return Err(XmlError(format!("unterminated value for {key:?}")));
            }
            let value =
                unescape(&String::from_utf8_lossy(&self.s[vstart..self.pos]));
            self.pos += 1;
            el.attrs.push((key, value));
        }
        // Children until the closing tag.
        loop {
            self.skip_misc();
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != el.name {
                    return Err(XmlError(format!(
                        "mismatched closing tag: expected </{}>, got </{close}>",
                        el.name
                    )));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return Err(XmlError("malformed closing tag".into()));
                }
                self.pos += 1;
                return Ok(el);
            }
            if self.starts_with("<") {
                el.children.push(self.parse_element()?);
            } else if self.pos >= self.s.len() {
                return Err(XmlError(format!("unclosed element <{}>", el.name)));
            } else {
                // Text content: skipped (not used by the file formats).
                while self.pos < self.s.len() && self.s[self.pos] != b'<' {
                    self.pos += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_5_platform_file() {
        // Verbatim from the paper (Figure 5).
        let doc = r#"<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
<AS id="AS_mysite" routing="Full">
<cluster id="AS_mycluster"
prefix="mycluster-" suffix=".mysite.fr"
radical="0-3" power="1.17E9"
bw="1.25E8" lat="16.67E-6"
bb_bw="1.25E9" bb_lat="16.67E-6"/>
</AS>
</platform>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "platform");
        assert_eq!(root.attr("version"), Some("3"));
        let as_el = root.child("AS").unwrap();
        assert_eq!(as_el.attr("routing"), Some("Full"));
        let cluster = as_el.child("cluster").unwrap();
        assert_eq!(cluster.attr("prefix"), Some("mycluster-"));
        assert_eq!(cluster.attr("radical"), Some("0-3"));
        let power: f64 = cluster.attr_parse("power").unwrap();
        assert_eq!(power, 1.17e9);
    }

    #[test]
    fn parses_figure_6_deployment_file() {
        let doc = r#"<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
<process host="mycluster-0.mysite.fr" function="p0"/>
<process host="mycluster-1.mysite.fr" function="p1">
  <argument value="SG_process1.trace"/>
</process>
</platform>"#;
        let root = parse(doc).unwrap();
        let procs: Vec<_> = root.children_named("process").collect();
        assert_eq!(procs.len(), 2);
        assert_eq!(procs[0].attr("function"), Some("p0"));
        let arg = procs[1].child("argument").unwrap();
        assert_eq!(arg.attr("value"), Some("SG_process1.trace"));
    }

    #[test]
    fn roundtrip_through_to_xml() {
        let el = Element::new("platform")
            .with_attr("version", 3)
            .with_child(
                Element::new("cluster")
                    .with_attr("id", "c")
                    .with_attr("power", "1E9"),
            );
        let text = el.to_xml();
        let back = parse(&text).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn attribute_escaping_roundtrips() {
        let el = Element::new("x").with_attr("v", "a<b&\"c\"");
        let back = parse(&el.to_xml()).unwrap();
        assert_eq!(back.attr("v"), Some("a<b&\"c\""));
    }

    #[test]
    fn single_quoted_attributes() {
        let root = parse("<a k='v'/>").unwrap();
        assert_eq!(root.attr("k"), Some("v"));
    }

    #[test]
    fn comments_are_skipped() {
        let root = parse("<!-- hi --><a><!-- inner --><b/></a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn errors_on_mismatched_tags() {
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a k=v/>").is_err());
    }

    #[test]
    fn attr_parse_reports_bad_values() {
        let root = parse("<a n=\"xyz\"/>").unwrap();
        let e = root.attr_parse::<f64>("n").unwrap_err();
        assert!(e.0.contains("xyz"));
        assert!(root.attr_parse::<f64>("missing").is_err());
    }
}
