//! Fitting the 3-segment piece-wise-linear MPI model.
//!
//! "SimGrid provides a Python script that takes as input the latency and
//! bandwidth [...], the output of the SKaMPI run, and the number of links
//! connecting the two nodes [...]. Then this script determines the
//! latency and bandwidth correction factors that lead to a best-fit of
//! the experimental data for each segment of this piece-wise linear
//! model." (Section 5.)
//!
//! For each candidate pair of segment boundaries, a least-squares line
//! `t(s) = a + b·s` is fitted on the one-way times of each segment;
//! `a = lat_factor × L` and `b = 1 / (bw_factor × B)` give the factors.
//! The boundary pair minimising the total squared error wins.

use crate::pingpong::PingPongSample;
use simkern::netmodel::{PiecewiseModel, Segment};

/// Outcome of the fit.
#[derive(Debug, Clone)]
pub struct FitReport {
    pub model: PiecewiseModel,
    /// Sum of squared residuals of the winning fit.
    pub sse: f64,
    /// The boundaries that won the grid search.
    pub boundaries: (f64, f64),
}

/// Least squares on `(s, t)` points → `(intercept, slope, sse)`.
fn linfit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        // Degenerate segment: horizontal line through the single point.
        let t = points.first().map(|p| p.1).unwrap_or(0.0);
        return (t, 0.0, 0.0);
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let slope = if denom.abs() < 1e-30 { 0.0 } else { (n * sxy - sx * sy) / denom };
    let intercept = (sy - slope * sx) / n;
    let sse = points
        .iter()
        .map(|&(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    (intercept, slope, sse)
}

fn factors_from_line(intercept: f64, slope: f64, base_lat: f64, base_bw: f64) -> (f64, f64) {
    let lat_factor = (intercept / base_lat).clamp(1e-3, 1e3);
    let bw_factor = if slope > 0.0 { (1.0 / (slope * base_bw)).clamp(1e-3, 10.0) } else { 1.0 };
    (lat_factor, bw_factor)
}

/// Fits a 3-segment model to one-way ping-pong times.
///
/// * `base_lat` — the route's physical one-way latency (sum of hops,
///   i.e. `hops × link latency`);
/// * `base_bw` — the route's bottleneck bandwidth.
pub fn fit_piecewise(samples: &[PingPongSample], base_lat: f64, base_bw: f64) -> FitReport {
    assert!(samples.len() >= 6, "need enough samples to fit 3 segments");
    assert!(base_lat > 0.0 && base_bw > 0.0);
    let pts: Vec<(f64, f64)> = samples.iter().map(|s| (s.bytes, s.one_way)).collect();

    // Candidate boundaries: the sample sizes themselves.
    let mut sizes: Vec<f64> = pts.iter().map(|p| p.0).collect();
    sizes.sort_by(f64::total_cmp);
    sizes.dedup();

    let mut best: Option<(f64, (f64, f64), PiecewiseModel)> = None;
    for (i, &b1) in sizes.iter().enumerate().skip(2) {
        for &b2 in sizes.iter().skip(i + 2) {
            if b2 <= b1 {
                continue;
            }
            let seg1: Vec<_> = pts.iter().copied().filter(|p| p.0 < b1).collect();
            let seg2: Vec<_> =
                pts.iter().copied().filter(|p| p.0 >= b1 && p.0 < b2).collect();
            let seg3: Vec<_> = pts.iter().copied().filter(|p| p.0 >= b2).collect();
            if seg1.len() < 2 || seg2.len() < 2 || seg3.len() < 2 {
                continue;
            }
            let mut sse = 0.0;
            let mut segs = Vec::with_capacity(3);
            for (points, max_size) in
                [(&seg1, b1), (&seg2, b2), (&seg3, f64::INFINITY)]
            {
                let (a, b, e) = linfit(points);
                sse += e;
                let (lat_factor, bw_factor) = factors_from_line(a, b, base_lat, base_bw);
                segs.push(Segment { max_size, lat_factor, bw_factor });
            }
            if best.as_ref().map(|(s, _, _)| sse < *s).unwrap_or(true) {
                best = Some((sse, (b1, b2), PiecewiseModel::new(segs)));
            }
        }
    }
    // panics: invariant upheld by construction
    let (sse, boundaries, model) = best.expect("no admissible boundary pair");
    FitReport { model, sse, boundaries }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesises one-way times from a known piecewise ground truth.
    fn synth(model: &PiecewiseModel, base_lat: f64, base_bw: f64, sizes: &[f64]) -> Vec<PingPongSample> {
        sizes
            .iter()
            .map(|&bytes| {
                let (lf, bf) = model.factors(bytes);
                let one_way = lf * base_lat + bytes / (bf * base_bw);
                PingPongSample { bytes, rtt: 2.0 * one_way, one_way }
            })
            .collect()
    }

    #[test]
    fn linfit_recovers_a_line() {
        let pts: Vec<(f64, f64)> =
            (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b, sse) = linfit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!(sse < 1e-12);
    }

    #[test]
    fn fit_recovers_known_factors() {
        let truth = PiecewiseModel::new(vec![
            Segment { max_size: 1420.0, lat_factor: 1.0, bw_factor: 0.42 },
            Segment { max_size: 65536.0, lat_factor: 1.9, bw_factor: 0.90 },
            Segment { max_size: f64::INFINITY, lat_factor: 2.2, bw_factor: 0.975 },
        ]);
        let base_lat = 3.0 * 16.67e-6;
        let base_bw = 1.25e8;
        let sizes = crate::pingpong::default_sizes();
        let samples = synth(&truth, base_lat, base_bw, &sizes);
        let fit = fit_piecewise(&samples, base_lat, base_bw);
        // Bandwidth factors of the two large segments must be recovered
        // tightly (they dominate the fit); the small-message latency
        // factor within a factor of ~2 (few points, tiny values).
        let got = fit.model.segments();
        let want = truth.segments();
        for (g, w) in got.iter().zip(want.iter()).skip(1) {
            let rel_bw = (g.bw_factor - w.bw_factor).abs() / w.bw_factor;
            assert!(rel_bw < 0.1, "bw factor {g:?} vs {w:?}");
        }
        // The fitted model predicts the data well overall.
        for s in &samples {
            let (lf, bf) = fit.model.factors(s.bytes);
            let pred = lf * base_lat + s.bytes / (bf * base_bw);
            let rel = (pred - s.one_way).abs() / s.one_way;
            assert!(rel < 0.25, "size {}: pred {pred}, got {}", s.bytes, s.one_way);
        }
        assert_eq!(fit.model.num_parameters(), 8);
    }

    #[test]
    fn fit_on_affine_data_is_near_identity() {
        // Data from a plain affine model: factors should come out ≈ 1.
        let truth = PiecewiseModel::identity();
        let base_lat = 5e-5;
        let base_bw = 1.25e8;
        let sizes = crate::pingpong::default_sizes();
        let samples = synth(&truth, base_lat, base_bw, &sizes);
        let fit = fit_piecewise(&samples, base_lat, base_bw);
        for seg in fit.model.segments() {
            assert!((seg.bw_factor - 1.0).abs() < 0.1, "{seg:?}");
        }
    }

    #[test]
    #[should_panic(expected = "enough samples")]
    fn too_few_samples_panics() {
        fit_piecewise(
            &[PingPongSample { bytes: 1.0, rtt: 1.0, one_way: 0.5 }],
            1e-5,
            1e8,
        );
    }
}
