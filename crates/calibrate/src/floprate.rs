//! Flop-rate calibration (Section 5, last paragraphs).
//!
//! The procedure the paper describes, applied to the emulated platform:
//! run a *small instrumented instance* of the target application,
//! measure per compute action the number of flops and the time spent,
//! derive per-action rates, take a work-weighted average per process,
//! average across the process set, and repeat five times to smooth
//! run-to-run variation. The resulting single rate instantiates the
//! `power` attribute of the platform file — and its averaging is exactly
//! why replay accuracy suffers when the application's rate is not
//! constant (Section 6.4).

use mpi_emul::ops::OpStream;
use mpi_emul::runtime::{obs_tags, run_emulation_with_records, EmulConfig};
use simkern::resource::HostId;
use tit_platform::desc::PlatformDesc;
use tit_platform::Deployment;

/// Result of the five-run calibration.
#[derive(Debug, Clone)]
pub struct FlopRateCalibration {
    /// Weighted-average rate of each run, flop/s.
    pub per_run: Vec<f64>,
    /// Final calibrated rate (mean of the runs).
    pub rate: f64,
}

/// Calibrates the application flop rate on `desc` using the (small)
/// instance produced by `program`. Performs `runs` runs with distinct
/// seeds, as the paper repeats the procedure five times.
pub fn calibrate_flop_rate(
    program: &dyn Fn(usize, usize) -> Box<dyn OpStream>,
    nproc: usize,
    desc: &PlatformDesc,
    cfg: &EmulConfig,
    runs: usize,
) -> std::io::Result<FlopRateCalibration> {
    assert!(runs >= 1);
    let mut per_run = Vec::with_capacity(runs);
    for run in 0..runs {
        let platform = desc.build();
        let dep = Deployment::round_robin(&desc.host_names(), nproc);
        let hosts: Vec<HostId> = dep.host_ids(&platform);
        let streams: Vec<Box<dyn OpStream>> =
            (0..nproc).map(|r| program(r, nproc)).collect();
        let mut cfg = cfg.clone();
        cfg.instrument = false;
        cfg.seed = cfg.seed.wrapping_add(run as u64 + 1);
        let (_, records) =
            run_emulation_with_records(streams, platform, &hosts, &cfg, None)?;
        // Work-weighted average per process: total flops / total time.
        let mut per_proc: std::collections::HashMap<usize, (f64, f64)> =
            std::collections::HashMap::new();
        for r in records.iter().filter(|r| r.tag == obs_tags::COMPUTE) {
            let dt = r.end - r.start;
            if dt > 0.0 && r.volume > 0.0 {
                let e = per_proc.entry(r.actor).or_insert((0.0, 0.0));
                e.0 += r.volume;
                e.1 += dt;
            }
        }
        if per_proc.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "calibration run produced no compute actions",
            ));
        }
        let mean_rate = per_proc.values().map(|&(v, t)| v / t).sum::<f64>()
            / per_proc.len() as f64;
        per_run.push(mean_rate);
    }
    let rate = per_run.iter().sum::<f64>() / per_run.len() as f64;
    Ok(FlopRateCalibration { per_run, rate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_emul::ops::{MpiOp, VecOpStream};
    use npb::{Class, LuConfig};
    use tit_platform::presets;

    #[test]
    fn uniform_program_recovers_platform_power() {
        // A program running at full efficiency calibrates to the host
        // speed.
        let prog = |_r: usize, _n: usize| -> Box<dyn OpStream> {
            Box::new(VecOpStream::new(vec![MpiOp::compute(1e8), MpiOp::compute(2e8)]))
        };
        let desc = PlatformDesc::single(presets::bordereau_one_core(2));
        let cal =
            calibrate_flop_rate(&prog, 2, &desc, &EmulConfig::default(), 5).unwrap();
        assert_eq!(cal.per_run.len(), 5);
        let rel = (cal.rate - presets::BORDEREAU_POWER).abs() / presets::BORDEREAU_POWER;
        assert!(rel < 1e-6, "rate {} vs power {}", cal.rate, presets::BORDEREAU_POWER);
    }

    #[test]
    fn mixed_efficiency_lands_between_kernel_rates() {
        let prog = |_r: usize, _n: usize| -> Box<dyn OpStream> {
            Box::new(VecOpStream::new(vec![
                MpiOp::Compute { flops: 1e8, efficiency: 1.0 },
                MpiOp::Compute { flops: 1e8, efficiency: 0.5 },
            ]))
        };
        let desc = PlatformDesc::single(presets::bordereau_one_core(1));
        let cal =
            calibrate_flop_rate(&prog, 1, &desc, &EmulConfig::default(), 1).unwrap();
        let p = presets::BORDEREAU_POWER;
        assert!(cal.rate < p && cal.rate > 0.5 * p, "rate {}", cal.rate);
    }

    #[test]
    fn lu_small_instance_calibrates_below_nominal() {
        // LU's kernels run below the calibrated core speed, so the
        // calibrated application rate is below the platform power.
        let lu = LuConfig::new(Class::S, 4).with_itmax(2);
        let desc = PlatformDesc::single(presets::bordereau_one_core(4));
        let cal = calibrate_flop_rate(&lu.program(), 4, &desc, &EmulConfig::default(), 3)
            .unwrap();
        assert!(cal.rate < presets::BORDEREAU_POWER);
        assert!(cal.rate > 0.5 * presets::BORDEREAU_POWER);
    }

    #[test]
    fn pure_communication_program_errors() {
        let prog = |r: usize, _n: usize| -> Box<dyn OpStream> {
            Box::new(VecOpStream::new(if r == 0 {
                vec![MpiOp::Send { dst: 1, bytes: 8.0 }]
            } else {
                vec![MpiOp::Recv { src: 0, bytes: 8.0 }]
            }))
        };
        let desc = PlatformDesc::single(presets::bordereau_one_core(2));
        assert!(calibrate_flop_rate(&prog, 2, &desc, &EmulConfig::default(), 1).is_err());
    }
}
