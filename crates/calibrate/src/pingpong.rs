//! SKaMPI-style `Pingpong_Send_Recv` (Section 5).
//!
//! Two processes on distinct nodes exchange messages of increasing sizes;
//! for each size the round-trip time is measured. The paper derives the
//! platform-file latency from the 1-byte ping-pong divided by **six**:
//! ÷2 for the one-way trip, ÷3 because a cluster path crosses two links
//! and one switch.

use mpi_emul::ops::{MpiOp, OpStream, VecOpStream};
use mpi_emul::runtime::{run_emulation_with_records, EmulConfig};
use simkern::resource::HostId;
use tit_platform::desc::PlatformDesc;

/// One ping-pong measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongSample {
    pub bytes: f64,
    /// Round-trip time, seconds.
    pub rtt: f64,
    /// One-way time (`rtt / 2`).
    pub one_way: f64,
}

/// The default SKaMPI-like size sweep: 1 B to 4 MiB, powers of two plus
/// off-boundary probes.
pub fn default_sizes() -> Vec<f64> {
    let mut v = Vec::new();
    let mut s = 1.0f64;
    while s <= 4.0 * 1024.0 * 1024.0 {
        v.push(s);
        v.push(s * 1.5);
        s *= 2.0;
    }
    v.sort_by(f64::total_cmp);
    v
}

/// Runs the ping-pong between hosts 0 and 1 of `desc` for every size,
/// `reps` exchanges per size (averaged).
pub fn pingpong_samples(
    desc: &PlatformDesc,
    cfg: &EmulConfig,
    sizes: &[f64],
    reps: usize,
) -> std::io::Result<Vec<PingPongSample>> {
    assert!(desc.num_hosts() >= 2, "ping-pong needs two nodes");
    assert!(reps >= 1);
    let mut out = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        // One emulation per size: `reps` ping-pongs back to back.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..reps {
            a.push(MpiOp::Send { dst: 1, bytes });
            a.push(MpiOp::Recv { src: 1, bytes });
            b.push(MpiOp::Recv { src: 0, bytes });
            b.push(MpiOp::Send { dst: 0, bytes });
        }
        let streams: Vec<Box<dyn OpStream>> =
            vec![Box::new(VecOpStream::new(a)), Box::new(VecOpStream::new(b))];
        let platform = desc.build();
        let hosts = [HostId(0), HostId(1)];
        let mut cfg = cfg.clone();
        cfg.instrument = false;
        let (res, _) = run_emulation_with_records(streams, platform, &hosts, &cfg, None)?;
        let rtt = res.exec_time / reps as f64;
        out.push(PingPongSample { bytes, rtt, one_way: rtt / 2.0 });
    }
    Ok(out)
}

/// The paper's latency rule: 1-byte ping-pong time divided by `2 × hops`
/// (6 for a flat cluster: two links + one switch).
pub fn derive_link_latency(samples: &[PingPongSample], hops: usize) -> f64 {
    let one_byte = samples
        .iter()
        .min_by(|x, y| x.bytes.total_cmp(&y.bytes))
        // panics: invariant upheld by construction
        .expect("no ping-pong samples");
    one_byte.rtt / (2.0 * hops as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tit_platform::presets;

    fn no_overhead() -> EmulConfig {
        EmulConfig {
            mpi_per_call: 0.0,
            mpi_per_byte: 0.0,
            network: simkern::netmodel::NetworkConfig::default(),
            ..Default::default()
        }
    }

    #[test]
    fn divide_by_six_recovers_the_link_latency() {
        let desc = PlatformDesc::single(presets::bordereau_one_core(2));
        let samples = pingpong_samples(&desc, &no_overhead(), &[1.0], 3).unwrap();
        let lat = derive_link_latency(&samples, 3);
        let expect = 16.67e-6;
        let rel = (lat - expect).abs() / expect;
        assert!(rel < 0.05, "derived {lat}, expected {expect}");
    }

    #[test]
    fn rtt_grows_with_size() {
        let desc = PlatformDesc::single(presets::bordereau_one_core(2));
        let samples =
            pingpong_samples(&desc, &no_overhead(), &[1.0, 1e4, 1e6], 1).unwrap();
        assert!(samples[0].rtt < samples[1].rtt);
        assert!(samples[1].rtt < samples[2].rtt);
        // Large messages approach the bandwidth bound: 2×size/bw.
        let asymptote = 2.0 * 1e6 / 1.25e8;
        assert!(samples[2].rtt > asymptote * 0.95);
    }

    #[test]
    fn default_sizes_cover_the_segments() {
        let sizes = default_sizes();
        assert!(sizes.iter().any(|&s| s < 1420.0));
        assert!(sizes.iter().any(|&s| (1420.0..65536.0).contains(&s)));
        assert!(sizes.iter().any(|&s| s > 65536.0));
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn reps_average_consistently() {
        let desc = PlatformDesc::single(presets::bordereau_one_core(2));
        let one = pingpong_samples(&desc, &no_overhead(), &[1024.0], 1).unwrap();
        let many = pingpong_samples(&desc, &no_overhead(), &[1024.0], 5).unwrap();
        let rel = (one[0].rtt - many[0].rtt).abs() / one[0].rtt;
        assert!(rel < 1e-9, "deterministic kernel: {rel}");
    }
}
