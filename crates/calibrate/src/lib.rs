//! `tit-calibrate` — instantiating the platform file with pertinent
//! values.
//!
//! "An essential step to make accurate performance predictions through
//! trace replay is the calibration of the simulation framework"
//! (Section 5). Three procedures, matching the paper's:
//!
//! * [`floprate`] — the CPU power: a small instrumented instance of the
//!   target application is run on the platform to describe, the flop
//!   rate of each compute action is derived, a weighted average is taken
//!   per process and over the process set, and the result is averaged
//!   over five runs;
//! * [`pingpong`] — the link latency: a SKaMPI-style
//!   `Pingpong_Send_Recv` experiment; the 1-byte round-trip time is
//!   divided by six (two for the one-way trip, three for the two links
//!   plus switch of a cluster path);
//! * [`piecewise`] — the MPI model: least-squares fit of the per-segment
//!   latency/bandwidth correction factors of the 3-segment
//!   piece-wise-linear model against the ping-pong data.

#![forbid(unsafe_code)]

pub mod floprate;
pub mod pingpong;
pub mod piecewise;

pub use floprate::{calibrate_flop_rate, FlopRateCalibration};
pub use pingpong::{pingpong_samples, PingPongSample};
pub use piecewise::{fit_piecewise, FitReport};
