//! End-to-end daemon tests over real TCP sockets: protocol behavior,
//! load-shedding, deadline partials, preemption identity, drain.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;
use tit_core::{Action, ProcessTraceWriter};
use tit_serve::{Server, ServerConfig};

/// A deadlock-free ring pipeline trace (rank 0 injects, others relay).
fn write_ring(dir: &Path, n: usize, iters: usize) {
    for r in 0..n {
        let mut w = ProcessTraceWriter::create(dir, r).unwrap();
        for _ in 0..iters {
            if r == 0 {
                w.write(&Action::Compute { flops: 1e6 }).unwrap();
                w.write(&Action::Send { dst: 1, bytes: 1e6 }).unwrap();
                w.write(&Action::Recv { src: n - 1, bytes: None }).unwrap();
            } else {
                w.write(&Action::Irecv { src: r - 1, bytes: None }).unwrap();
                w.write(&Action::Compute { flops: 5e5 }).unwrap();
                w.write(&Action::Wait).unwrap();
                w.write(&Action::Send { dst: (r + 1) % n, bytes: 1e6 }).unwrap();
            }
        }
        w.finish().unwrap();
    }
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tit-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

struct Client {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

impl Client {
    fn connect(port: u16) -> Client {
        let s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        Client { r: BufReader::new(s.try_clone().unwrap()), w: s }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.w, "{line}").unwrap();
        self.w.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut out = String::new();
        self.r.read_line(&mut out).unwrap();
        assert!(out.ends_with('\n'), "connection closed early: {out:?}");
        out.trim_end().to_owned()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn field<'a>(resp: &'a str, key: &str) -> Option<&'a str> {
    // Good enough for flat test payloads: find "key":VALUE.
    let pat = format!("\"{key}\":");
    let start = resp.find(&pat)? + pat.len();
    let rest = &resp[start..];
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            if c == '"' {
                *in_str = !*in_str;
            }
            if !*in_str && (c == ',' || c == '}') {
                Some(Some(i))
            } else {
                Some(None)
            }
        })
        .flatten()
        .next()?;
    Some(rest[..end].trim_matches('"'))
}

#[test]
fn ping_stats_malformed_oversized_on_one_connection() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.port());

    let pong = c.roundtrip(r#"{"op":"ping"}"#);
    assert_eq!(pong, r#"{"status":"ok","op":"ping"}"#);

    let stats = c.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "status"), Some("ok"));
    assert_eq!(field(&stats, "queue_depth"), Some("0"));
    assert_eq!(field(&stats, "draining"), Some("false"));

    let bad = c.roundtrip("this is not json");
    assert_eq!(field(&bad, "status"), Some("error"));
    assert_eq!(field(&bad, "code"), Some("bad_request"));

    let unknown = c.roundtrip(r#"{"op":"explode"}"#);
    assert_eq!(field(&unknown, "code"), Some("bad_request"));

    let oversized = c.roundtrip(&format!("{{\"pad\":\"{}\"}}", "x".repeat(2 << 20)));
    assert_eq!(field(&oversized, "code"), Some("oversized"));

    // The connection survives all of the above.
    let pong = c.roundtrip(r#"{"op":"ping"}"#);
    assert_eq!(field(&pong, "status"), Some("ok"));

    server.drain();
    server.wait().unwrap();
}

#[test]
fn burst_beyond_capacity_sheds_with_typed_responses() {
    let d = scratch("shed");
    write_ring(&d, 3, 4);
    let cfg = ServerConfig {
        workers: 1,
        queue_cap: 2,
        job_delay: Duration::from_millis(120),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).unwrap();

    // 8 pipelined requests = 4x queue capacity on a slow single
    // worker: the first fills the worker + queue, the rest shed.
    let mut c = Client::connect(server.port());
    let dir = d.display().to_string();
    for i in 0..8 {
        c.send(&format!(
            "{{\"op\":\"replay\",\"id\":\"r{i}\",\"trace_dir\":{dir:?},\"np\":3}}"
        ));
    }
    let mut ok = 0;
    let mut shed = 0;
    let mut by_id: BTreeMap<String, String> = BTreeMap::new();
    for _ in 0..8 {
        let resp = c.recv();
        let id = field(&resp, "id").unwrap().to_owned();
        match field(&resp, "status").unwrap() {
            "ok" => ok += 1,
            "overloaded" => {
                assert_eq!(field(&resp, "code"), Some("queue_full"), "{resp}");
                assert_eq!(field(&resp, "queue_capacity"), Some("2"), "{resp}");
                shed += 1;
            }
            other => panic!("unexpected status {other}: {resp}"),
        }
        by_id.insert(id, resp);
    }
    assert_eq!(ok + shed, 8);
    assert!(shed >= 5, "a 4x burst on a 120ms worker must shed most requests: {shed}");
    assert!(ok >= 1, "admitted requests must still be served");

    // Every admitted request returned the same (deterministic) payload
    // apart from the id echo.
    let normalized: Vec<String> = by_id
        .values()
        .filter(|r| r.contains("\"status\":\"ok\""))
        .map(|r| {
            let id = field(r, "id").unwrap();
            r.replace(&format!("\"id\":\"{id}\""), "\"id\":\"X\"")
        })
        .collect();
    for w in normalized.windows(2) {
        assert_eq!(w[0], w[1]);
    }

    let shed_before = server.shared().metrics.counter("serve.shed");
    assert_eq!(shed_before, shed);
    server.drain();
    server.wait().unwrap();
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn deadline_and_degraded_requests_return_quantified_partials() {
    let d = scratch("partial");
    write_ring(&d, 3, 80);
    let server = Server::start(ServerConfig {
        slice_actions: 16,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.port());
    let dir = d.display().to_string();

    let resp = c.roundtrip(&format!(
        "{{\"op\":\"replay\",\"id\":\"dl\",\"trace_dir\":{dir:?},\"np\":3,\"max_wall_s\":0}}"
    ));
    assert_eq!(field(&resp, "status"), Some("partial"), "{resp}");
    assert_eq!(field(&resp, "code"), Some("deadline"), "{resp}");
    let completeness: f64 = field(&resp, "completeness").unwrap().parse().unwrap();
    assert!(completeness < 1.0, "{resp}");

    let resp = c.roundtrip(&format!(
        "{{\"op\":\"replay\",\"id\":\"dg\",\"trace_dir\":{dir:?},\"np\":3,\"drop_ranks\":[2]}}"
    ));
    assert_eq!(field(&resp, "status"), Some("partial"), "{resp}");
    assert_eq!(field(&resp, "code"), Some("damaged"), "{resp}");
    assert!(field(&resp, "detail").is_some(), "{resp}");

    server.drain();
    server.wait().unwrap();
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn drain_finishes_backlog_flushes_metrics_and_exits() {
    let d = scratch("drain");
    write_ring(&d, 3, 4);
    let metrics_path = d.join("serve_metrics.json");
    let cfg = ServerConfig {
        workers: 1,
        queue_cap: 8,
        job_delay: Duration::from_millis(30),
        metrics_path: Some(metrics_path.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let mut c = Client::connect(server.port());
    let dir = d.display().to_string();
    for i in 0..3 {
        c.send(&format!(
            "{{\"op\":\"replay\",\"id\":\"q{i}\",\"trace_dir\":{dir:?},\"np\":3}}"
        ));
    }
    let drain = c.roundtrip(r#"{"op":"drain"}"#);
    assert_eq!(field(&drain, "status"), Some("draining"));

    // In-flight work still completes after the drain request.
    let mut ok = 0;
    for _ in 0..3 {
        let resp = c.recv();
        assert_eq!(field(&resp, "status"), Some("ok"), "{resp}");
        ok += 1;
    }
    assert_eq!(ok, 3);
    server.wait().unwrap();

    let text = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(text.contains("\"serve.admitted\":3"), "{text}");
    assert!(text.contains("\"serve.ok\":3"), "{text}");
    assert!(text.contains("serve.queue_depth"), "{text}");
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn store_requests_match_trace_dir_and_fail_closed_when_damaged() {
    let d = scratch("store");
    write_ring(&d, 3, 6);
    // The same trace, interned as a segmented store.
    let store = d.join("ring.tib2");
    let trace = tit_core::load_compact_exact(&d, 3, 1).unwrap();
    tit_core::tib2::write_compact_atomic(&store, &trace, 8).unwrap();

    let server = Server::start(ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.port());
    let dir = d.display().to_string();
    let sp = store.display().to_string();

    let via_dir = c.roundtrip(&format!(
        "{{\"op\":\"replay\",\"id\":\"x\",\"trace_dir\":{dir:?},\"np\":3}}"
    ));
    let via_store =
        c.roundtrip(&format!("{{\"op\":\"replay\",\"id\":\"x\",\"store\":{sp:?},\"np\":3}}"));
    assert_eq!(field(&via_store, "status"), Some("ok"), "{via_store}");
    assert_eq!(via_dir, via_store, "store replay must be payload-identical to trace_dir");

    // A second request is a (revalidated) handle-cache hit.
    let again =
        c.roundtrip(&format!("{{\"op\":\"replay\",\"id\":\"x\",\"store\":{sp:?},\"np\":3}}"));
    assert_eq!(again, via_store);
    assert!(server.shared().metrics.counter("serve.cache_hits") >= 1);

    // An np mismatch is a typed load error, not a crash.
    let bad_np =
        c.roundtrip(&format!("{{\"op\":\"replay\",\"id\":\"n\",\"store\":{sp:?},\"np\":4}}"));
    assert_eq!(field(&bad_np, "status"), Some("error"), "{bad_np}");
    assert_eq!(field(&bad_np, "code"), Some("trace_load"), "{bad_np}");

    // Flip a payload byte: the damaged segment must fail the request
    // closed (typed error), never return a silently wrong time.
    let mut bytes = std::fs::read(&store).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&store, &bytes).unwrap();
    let damaged =
        c.roundtrip(&format!("{{\"op\":\"replay\",\"id\":\"d\",\"store\":{sp:?},\"np\":3}}"));
    assert_eq!(field(&damaged, "status"), Some("error"), "{damaged}");

    server.drain();
    server.wait().unwrap();
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn replay_after_drain_is_refused_as_draining() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.port());
    let resp = c.roundtrip(r#"{"op":"drain"}"#);
    assert_eq!(field(&resp, "status"), Some("draining"));
    let resp = c.roundtrip(r#"{"op":"replay","id":"late","trace_dir":"/t","np":2}"#);
    assert_eq!(field(&resp, "status"), Some("draining"), "{resp}");
    assert_eq!(field(&resp, "id"), Some("late"), "{resp}");
    server.wait().unwrap();
}

/// Serial oracle: one request at a time on a plain server.
fn run_serial(port: u16, lines: &[String]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut c = Client::connect(port);
    for line in lines {
        let resp = c.roundtrip(line);
        out.insert(field(&resp, "id").unwrap().to_owned(), resp);
    }
    out
}

/// Concurrent run: one thread + connection per request.
fn run_concurrent(port: u16, lines: &[String]) -> BTreeMap<String, String> {
    let handles: Vec<_> = lines
        .iter()
        .cloned()
        .map(|line| {
            std::thread::spawn(move || {
                let mut c = Client::connect(port);
                let resp = c.roundtrip(&line);
                (field(&resp, "id").unwrap().to_owned(), resp)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

proptest! {
    /// The core identity guarantee: any mix of admitted requests
    /// (varying platform, network, collectives, remap, degraded
    /// subsets) returns byte-identical payloads whether served one at
    /// a time or concurrently across a contended worker pool with
    /// forced preempt/resume hops at tiny slice granularity.
    #[test]
    fn concurrent_responses_are_byte_identical_to_serial(
        iters in 2usize..5,
        np in 3usize..5,
        seed in 0u64..1_000_000,
    ) {
        let d = scratch(&format!("ident-{iters}-{np}-{seed}"));
        write_ring(&d, np, iters);
        let dir = d.display().to_string();

        // A deterministic little request mix derived from the seed.
        let mut lines = Vec::new();
        for i in 0..6u64 {
            let x = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
            let network = ["mpi", "flow", "constant"][(x % 3) as usize];
            let coll = ["binomial", "flat"][((x >> 2) % 2) as usize];
            let mut extra = String::new();
            if x % 5 == 0 {
                // Degraded subset: drop the last rank.
                extra = format!(",\"drop_ranks\":[{}]", np - 1);
            } else if x % 5 == 1 {
                // Rank remap: reverse placement.
                let map: Vec<String> =
                    (0..np).rev().map(|h| h.to_string()).collect();
                extra = format!(",\"remap\":[{}]", map.join(","));
            }
            lines.push(format!(
                "{{\"op\":\"replay\",\"id\":\"req{i}\",\"trace_dir\":{dir:?},\"np\":{np},\
                 \"network\":\"{network}\",\"collectives\":\"{coll}\"{extra}}}"
            ));
        }

        let plain = Server::start(ServerConfig::default()).unwrap();
        let serial = run_serial(plain.port(), &lines);
        plain.drain();
        plain.wait().unwrap();

        let contended = Server::start(ServerConfig {
            workers: 4,
            slice_actions: 7,
            force_preempt: true,
            max_preemptions: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let concurrent = run_concurrent(contended.port(), &lines);
        let preemptions = contended.shared().metrics.counter("serve.preemptions");
        contended.drain();
        contended.wait().unwrap();

        prop_assert_eq!(serial.len(), concurrent.len());
        for (id, resp) in &serial {
            prop_assert_eq!(Some(resp), concurrent.get(id));
        }
        prop_assert!(preemptions > 0, "forced preemption must actually fire");
        let _ = std::fs::remove_dir_all(&d);
    }
}
