//! A minimal JSON reader/writer for the wire protocol.
//!
//! The workspace has no JSON dependency (every other output is written
//! by hand), but a *server* must parse attacker-shaped input, so this
//! module is a real recursive-descent parser with explicit resource
//! bounds: a maximum input size (enforced by the connection reader
//! before parsing) and a maximum nesting depth (enforced here), so a
//! hostile `[[[[…` cannot exhaust the stack. Everything else is
//! strict-ish RFC 8259: no trailing commas, no comments, no `NaN`.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map):
//! serialization is therefore deterministic, which the byte-identity
//! guarantees of the serving layer rely on. Duplicate keys keep the
//! *first* occurrence on lookup, matching common JSON library behavior.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects 1.5, -1, 1e30).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // panics: writing to a String cannot fail
                    write!(out, "{n}").unwrap();
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes deterministically (object members in insertion order,
/// shortest-roundtrip numbers). Non-finite numbers render as `null` —
/// the protocol never produces them.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // panics: writing to a String cannot fail
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, reason: reason.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    // panics: non-empty by the peek above
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (pos is at the `u`),
    /// including surrogate pairs. Leaves pos after the escape.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            p.pos += 1; // the 'u'
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| p.err("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("bad \\u escape"))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require the low half.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 1; // the '\\'
                let lo = hex4(self)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("bad number {text:?}")))
    }
}

/// Convenience constructor: an object from key/value pairs.
#[must_use]
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_arrays_objects() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "1e3",
            "\"hi\\nthere\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ] {
            let v = parse(text).unwrap();
            let v2 = parse(&v.to_string()).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\q\"",
            "Infinity",
            "NaN",
            "--1",
            "\"\\ud800\"",
        ] {
            assert!(parse(text).is_err(), "{text:?} must be rejected");
        }
    }

    #[test]
    fn depth_bomb_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.reason.contains("nesting"), "{e}");
    }

    #[test]
    fn object_lookup_and_typed_accessors() {
        let v = parse("{\"s\":\"x\",\"n\":3,\"f\":1.5,\"a\":[1],\"s2\":\"y\",\"s\":\"dup\"}")
            .unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"), "first dup wins");
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_u64), None, "1.5 is not a count");
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("zz"), None);
    }

    #[test]
    fn serialization_is_deterministic_and_escaped() {
        let v = obj(vec![
            ("b", Json::Num(1.0)),
            ("a", Json::Str("x\"\\\n\u{1}".into())),
        ]);
        let s = v.to_string();
        assert_eq!(s, "{\"b\":1,\"a\":\"x\\\"\\\\\\n\\u0001\"}");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }
}
