//! The daemon itself: listener, connection readers, worker pool,
//! graceful drain.
//!
//! Thread anatomy (all std, no async):
//!
//! * the **supervisor** (spawned by [`Server::start`]) owns a
//!   non-blocking accept loop; on drain it closes the admission
//!   queue, joins the workers, flushes metrics atomically and exits;
//! * one **reader** per connection parses length-bounded request
//!   lines; control ops answer inline, replay ops go through
//!   admission;
//! * `workers` **executors** pull from the queue and run
//!   [`crate::exec::process_job`].
//!
//! Drain is triggered by the protocol (`{"op":"drain"}`), by
//! [`Server::drain`], or — in the binary — by stdin EOF, the
//! supervisor-friendly analogue of SIGTERM (a std-only daemon cannot
//! install signal handlers without `unsafe`). A SIGKILL instead of a
//! drain loses no durable state: the only file the daemon writes (the
//! metrics snapshot) goes through [`tit_core::write_atomic`].

use crate::accesslog::AccessLog;
use crate::exec::{error_response, process_job, respond, Job, Shared, SharedWriter};
use crate::json::{obj, Json};
use crate::proto::{parse_request, Request};
use crate::queue::Refusal;
use crate::{cache::TraceCache, Admission, ServerConfig};
use std::io::{BufReader, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use titobs::Metrics;

/// A running daemon.
pub struct Server {
    shared: Arc<Shared>,
    draining: Arc<AtomicBool>,
    port: u16,
    supervisor: Option<JoinHandle<std::io::Result<()>>>,
}

impl Server {
    /// Binds, spawns the worker pool and the supervisor, and returns.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let access = match &cfg.access_log {
            Some(path) => Some(crate::accesslog::AccessLog::open(path)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cache: TraceCache::new(cfg.cache_cap, tit_extract::RetryPolicy::default()),
            stores: crate::cache::StoreCache::new(cfg.cache_cap, tit_extract::RetryPolicy::default()),
            queue: Admission::new(cfg.queue_cap),
            metrics: Metrics::new(),
            pressure: AtomicBool::new(cfg.force_preempt),
            access,
            cfg,
        });
        shared.metrics.gauge_set("serve.queue_depth", 0.0);
        if let Some(log) = &shared.access {
            shared.metrics.incr("serve.lost_recovered", log.recovered());
        }
        let draining = Arc::new(AtomicBool::new(false));

        let mut workers = Vec::new();
        for _ in 0..shared.cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&sh)));
        }

        let sh = Arc::clone(&shared);
        let dr = Arc::clone(&draining);
        let supervisor =
            std::thread::spawn(move || supervise(&listener, &sh, &dr, workers));
        Ok(Server { shared, draining, port, supervisor: Some(supervisor) })
    }

    /// The bound port (useful with `addr` port 0).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The shared state (metrics introspection in tests).
    #[must_use]
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Programmatic drain: same effect as the protocol op.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Waits for the daemon to finish draining; returns the
    /// supervisor's result (metrics-flush errors surface here).
    pub fn wait(mut self) -> std::io::Result<()> {
        match self.supervisor.take() {
            Some(h) => h.join().unwrap_or_else(|_| {
                Err(std::io::Error::other("supervisor thread panicked"))
            }),
            None => Ok(()),
        }
    }
}

fn supervise(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    draining: &Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
) -> std::io::Result<()> {
    while !draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let sh = Arc::clone(shared);
                let dr = Arc::clone(draining);
                std::thread::spawn(move || serve_connection(stream, &sh, &dr));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Drain: no new admissions; the backlog (including re-queued
    // preempted jobs) runs to completion, then workers see None.
    shared.queue.close();
    for w in workers {
        let _ = w.join();
    }
    flush_metrics(shared)
}

fn flush_metrics(shared: &Arc<Shared>) -> std::io::Result<()> {
    let Some(path) = &shared.cfg.metrics_path else { return Ok(()) };
    shared.metrics.gauge_set("serve.queue_depth", shared.queue.depth() as f64);
    tit_core::write_atomic(path, shared.metrics.to_json().as_bytes())
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let depth = shared.queue.depth();
        shared.metrics.gauge_set("serve.queue_depth", depth as f64);
        if !shared.cfg.force_preempt && depth < shared.cfg.preempt_backlog {
            shared.pressure.store(false, Ordering::Relaxed);
        }
        process_job(shared, job);
    }
}

/// Reads one length-bounded line. `Ok(None)` is EOF; `Err(())` means
/// the line overflowed (already consumed up to its newline).
fn read_line_bounded(
    r: &mut impl Read,
    max: usize,
) -> std::io::Result<Result<Option<String>, ()>> {
    let mut buf = Vec::new();
    let mut oversized = false;
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() && !oversized {
                    return Ok(Ok(None));
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if buf.len() >= max {
                    oversized = true;
                    buf.clear();
                } else {
                    buf.push(byte[0]);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if oversized {
        return Ok(Err(()));
    }
    Ok(Ok(Some(String::from_utf8_lossy(&buf).into_owned())))
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>, draining: &Arc<AtomicBool>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let out: SharedWriter =
        Arc::new(std::sync::Mutex::new(Box::new(std::io::BufWriter::new(write_half))));
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, shared.cfg.max_line_bytes) {
            Ok(Ok(None)) => return, // EOF
            Ok(Ok(Some(line))) => line,
            Ok(Err(())) => {
                shared.metrics.incr("serve.oversized", 1);
                respond(
                    &out,
                    &error_response(
                        "",
                        "oversized",
                        &format!(
                            "request line exceeds {} bytes",
                            shared.cfg.max_line_bytes
                        ),
                    ),
                );
                continue;
            }
            Err(_) => return, // connection error: nothing to salvage
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.metrics.incr("serve.requests", 1);
        match parse_request(&line) {
            Err(detail) => {
                shared.metrics.incr("serve.bad_requests", 1);
                respond(&out, &error_response("", "bad_request", &detail));
            }
            Ok(Request::Ping) => {
                respond(
                    &out,
                    &obj(vec![
                        ("status", Json::Str("ok".into())),
                        ("op", Json::Str("ping".into())),
                    ]),
                );
            }
            Ok(Request::Stats) => {
                respond(
                    &out,
                    &obj(vec![
                        ("status", Json::Str("ok".into())),
                        ("op", Json::Str("stats".into())),
                        ("queue_depth", Json::Num(shared.queue.depth() as f64)),
                        ("queue_capacity", Json::Num(shared.queue.capacity() as f64)),
                        ("cached_traces", Json::Num(shared.cache.len() as f64)),
                        ("draining", Json::Bool(draining.load(Ordering::SeqCst))),
                    ]),
                );
            }
            Ok(Request::Drain) => {
                shared.metrics.incr("serve.drains", 1);
                draining.store(true, Ordering::SeqCst);
                respond(&out, &obj(vec![("status", Json::Str("draining".into()))]));
            }
            Ok(Request::Metrics) => {
                // Live registry snapshot: re-parse the deterministic
                // titobs rendering into a single-line protocol payload.
                let snapshot = crate::json::parse(shared.metrics.to_json().trim())
                    .unwrap_or(Json::Null);
                respond(
                    &out,
                    &obj(vec![
                        ("status", Json::Str("ok".into())),
                        ("op", Json::Str("metrics".into())),
                        ("metrics", snapshot),
                    ]),
                );
            }
            Ok(Request::Replay(req)) => {
                if draining.load(Ordering::SeqCst) {
                    shared.metrics.incr("serve.shed", 1);
                    if let Some(log) = &shared.access {
                        log.shed(&req.id);
                    }
                    respond(&out, &shed_response(&req.id, Refusal::Draining, shared));
                    continue;
                }
                let seq = shared.access.as_ref().map_or(0, AccessLog::next_seq);
                if let Some(log) = &shared.access {
                    // Logged before submission: once a worker can see
                    // the job, its done record must find an admit
                    // record already on disk (order within the file).
                    log.admit(seq, &req.id);
                }
                let job = Job {
                    deadline: req.budget().start(),
                    req,
                    preemptions: 0,
                    resume: None,
                    out: Arc::clone(&out),
                    seq,
                    admitted: std::time::Instant::now(),
                    load_s: 0.0,
                    replay_s: 0.0,
                };
                match shared.queue.submit(job) {
                    Ok(depth) => {
                        shared.metrics.incr("serve.admitted", 1);
                        shared.metrics.gauge_set("serve.queue_depth", depth as f64);
                        if depth >= shared.cfg.preempt_backlog {
                            shared.pressure.store(true, Ordering::Relaxed);
                        }
                    }
                    Err((job, refusal)) => {
                        shared.metrics.incr("serve.shed", 1);
                        if let Some(log) = &shared.access {
                            // Terminal record under the same seq as
                            // the admit line above.
                            log.done(
                                job.seq,
                                &job.req.id,
                                "shed",
                                crate::accesslog::Spans::default(),
                                0,
                            );
                        }
                        respond(&job.out, &shed_response(&job.req.id, refusal, shared));
                    }
                }
            }
        }
    }
}

fn shed_response(id: &str, refusal: Refusal, shared: &Arc<Shared>) -> Json {
    match refusal {
        Refusal::Full => obj(vec![
            ("status", Json::Str("overloaded".into())),
            ("code", Json::Str("queue_full".into())),
            ("id", Json::Str(id.into())),
            ("queue_capacity", Json::Num(shared.queue.capacity() as f64)),
        ]),
        Refusal::Draining => obj(vec![
            ("status", Json::Str("draining".into())),
            ("code", Json::Str("draining".into())),
            ("id", Json::Str(id.into())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_line_reader_handles_eof_lines_and_overflow() {
        let data = b"short\nlonger line here\n";
        let mut r: &[u8] = data;
        assert_eq!(read_line_bounded(&mut r, 100).unwrap(), Ok(Some("short".into())));
        assert_eq!(
            read_line_bounded(&mut r, 100).unwrap(),
            Ok(Some("longer line here".into()))
        );
        assert_eq!(read_line_bounded(&mut r, 100).unwrap(), Ok(None));

        let mut r: &[u8] = b"0123456789\nok\n";
        assert_eq!(read_line_bounded(&mut r, 4).unwrap(), Err(()));
        assert_eq!(
            read_line_bounded(&mut r, 4).unwrap(),
            Ok(Some("ok".into())),
            "an oversized line is skipped, not fatal"
        );

        // A final line without a newline still comes through.
        let mut r: &[u8] = b"tail";
        assert_eq!(read_line_bounded(&mut r, 100).unwrap(), Ok(Some("tail".into())));
        assert_eq!(read_line_bounded(&mut r, 100).unwrap(), Ok(None));
    }
}
