//! `tit-serve` — a fault-tolerant replay daemon.
//!
//! The paper's replay tool answers one what-if question per process
//! launch. This crate turns it into a long-running service: a
//! multi-threaded daemon speaking newline-delimited JSON over TCP
//! ([`proto`]), answering concurrent replay requests (platform
//! variant plus trace reference, with optional rank remap or degraded
//! subset) from shared immutable state — interned
//! [`tit_core::CompactTrace`]s behind an LRU cache ([`cache`]).
//!
//! The robustness contract, end to end:
//!
//! * **admission control** ([`queue`]) — a fixed-capacity queue;
//!   excess load is shed with typed `overloaded` responses, never
//!   buffered without bound;
//! * **deadlines** ([`tit_core::deadline`]) — each request carries a
//!   wall-clock budget anchored at admission; overruns return a
//!   *partial* result with a completeness ratio, not an error;
//! * **preemption** ([`exec`]) — when the queue backs up, long
//!   simulations checkpoint at a safe point, requeue, and later resume
//!   bit-identically;
//! * **isolation** — a failed or panicking request produces a typed
//!   error response; the worker pool never shrinks;
//! * **graceful drain** ([`server`]) — stop admitting, finish or
//!   finish-after-resume the backlog, flush `serve.*` metrics
//!   atomically, exit.
//!
//! Everything is std-only (no async runtime): blocking worker threads
//! over a condvar queue, one reader thread per connection, responses
//! multiplexed through a per-connection writer lock.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accesslog;
pub mod cache;
pub mod exec;
pub mod json;
pub mod proto;
pub mod queue;
pub mod server;

pub use accesslog::{AccessLog, Spans};
pub use cache::TraceCache;
pub use exec::{Job, Shared, SharedWriter};
pub use proto::{parse_request, PlatformKind, ReplayRequest, Request};
pub use queue::{Admission, Refusal};
pub use server::Server;

use std::path::PathBuf;
use std::time::Duration;

/// Daemon configuration (all knobs have conservative defaults; the
/// test hooks are what the chaos and identity suites drive).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::port`]).
    pub addr: String,
    /// Worker threads executing replay jobs.
    pub workers: usize,
    /// Admission queue capacity: requests beyond it are shed.
    pub queue_cap: usize,
    /// Interned traces kept in the LRU cache.
    pub cache_cap: usize,
    /// Replay slice granularity in actions: deadline and preemption
    /// checks happen at these safe points. `0` disables slicing.
    pub slice_actions: u64,
    /// Queue depth at which workers start preempting long jobs.
    pub preempt_backlog: usize,
    /// Maximum preemption hops per job; after that it runs to
    /// completion (livelock guard).
    pub max_preemptions: u32,
    /// Maximum request line length in bytes; longer lines are refused
    /// with `error/oversized` (and skipped, keeping the connection
    /// usable).
    pub max_line_bytes: usize,
    /// Where to atomically flush the `serve.*` metrics on drain.
    pub metrics_path: Option<PathBuf>,
    /// Structured NDJSON access log: one record per request event,
    /// crash-safe appends, `lost` recovery on restart (see
    /// [`accesslog`]).
    pub access_log: Option<PathBuf>,
    /// Test hook: hold the pressure flag high permanently, so every
    /// eligible job preempts at every slice (exercises resume).
    pub force_preempt: bool,
    /// Test hook: sleep this long before executing each job (makes
    /// queue-overflow sheds deterministic in tests).
    pub job_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            cache_cap: 8,
            slice_actions: 20_000,
            preempt_backlog: 4,
            max_preemptions: 4,
            max_line_bytes: 1 << 20,
            metrics_path: None,
            access_log: None,
            force_preempt: false,
            job_delay: Duration::ZERO,
        }
    }
}
