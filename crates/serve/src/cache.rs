//! Shared immutable trace state behind an LRU cache.
//!
//! A thousand what-if requests against one trace bundle must parse it
//! once: loaded traces are interned as `Arc<CompactTrace>` (immutable,
//! struct-of-arrays — see PR 4) and cached in a [`tit_core::Lru`]
//! keyed by the FNV-1a-64 trace reference key
//! ([`crate::proto::ReplayRequest::trace_key`]). A hit is a refcount
//! bump; an evicted trace stays alive for requests already replaying
//! it.
//!
//! Loads go through the extract pipeline's bounded
//! [`retry policy`](tit_extract::error::RetryPolicy): transient I/O
//! failures (EINTR, timeouts, reset mounts) are retried with
//! deterministic exponential backoff, permanent ones (missing rank
//! file, parse error) fail the request immediately.
//!
//! Two racing requests for the same uncached key may both load it
//! (last insert wins); that wastes one parse but never blocks loads of
//! *other* keys behind a long parse, and both results are identical by
//! construction.

use std::path::Path;
use std::sync::{Arc, Mutex};
use tit_core::{load_compact_exact, CompactTrace, Lru, Tib2Store};
use tit_extract::error::{with_retry, PipelineError, RetryPolicy};

/// The daemon's trace cache.
pub struct TraceCache {
    lru: Mutex<Lru<u64, Arc<CompactTrace>>>,
    retry: RetryPolicy,
}

impl TraceCache {
    /// A cache holding at most `cap` traces, loading under `retry`.
    #[must_use]
    pub fn new(cap: usize, retry: RetryPolicy) -> Self {
        TraceCache { lru: Mutex::new(Lru::new(cap)), retry }
    }

    /// Cached traces.
    #[must_use]
    pub fn len(&self) -> usize {
        // panics: mutex poisoned only if another thread already panicked
        self.lru.lock().unwrap().len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the trace for `key`, loading (with bounded retry) and
    /// interning it on a miss. The boolean is `true` on a cache hit.
    pub fn get_or_load(
        &self,
        key: u64,
        dir: &Path,
        np: usize,
    ) -> Result<(Arc<CompactTrace>, bool), PipelineError> {
        // panics: mutex poisoned only if another thread already panicked
        if let Some(t) = self.lru.lock().unwrap().get(&key) {
            return Ok((t, true));
        }
        let what = format!("load trace {} (np={np})", dir.display());
        let trace = with_retry(&self.retry, &what, |_attempt| {
            load_compact_exact(dir, np, 1)
                .map_err(|e| PipelineError::io(e.path.clone(), e.source))
        })?;
        let trace = Arc::new(trace);
        // panics: mutex poisoned only if another thread already panicked
        self.lru.lock().unwrap().insert(key, Arc::clone(&trace));
        Ok((trace, false))
    }
}

/// The daemon's `TIB2` store-handle cache.
///
/// Opening a store verifies head, trailer and footer; the handle then
/// serves any number of requests with segment reads verified lazily.
/// The LRU is keyed by the request's trace reference key, but every
/// hit is revalidated against the file's *content* fingerprint
/// ([`Tib2Store::read_fingerprint`], a 24-byte trailer read): a store
/// atomically replaced on disk is noticed and reopened, never served
/// stale — the cache behaves as if keyed on the footer hash, without
/// having to open the file to compute the key.
pub struct StoreCache {
    lru: Mutex<Lru<u64, Arc<Tib2Store>>>,
    retry: RetryPolicy,
}

impl StoreCache {
    /// A cache holding at most `cap` open stores, opening under
    /// `retry`.
    #[must_use]
    pub fn new(cap: usize, retry: RetryPolicy) -> Self {
        StoreCache { lru: Mutex::new(Lru::new(cap)), retry }
    }

    /// Cached store handles.
    #[must_use]
    pub fn len(&self) -> usize {
        // panics: mutex poisoned only if another thread already panicked
        self.lru.lock().unwrap().len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the open store for `key`, opening (with bounded retry)
    /// and interning it on a miss or when the on-disk content changed.
    /// The boolean is `true` on a revalidated cache hit.
    pub fn get_or_open(
        &self,
        key: u64,
        path: &Path,
    ) -> Result<(Arc<Tib2Store>, bool), PipelineError> {
        // panics: mutex poisoned only if another thread already panicked
        let cached = self.lru.lock().unwrap().get(&key);
        if let Some(s) = cached {
            // Content revalidation outside the lock: one 24-byte read.
            if Tib2Store::read_fingerprint(path).is_ok_and(|fp| fp == s.fingerprint()) {
                return Ok((s, true));
            }
        }
        let what = format!("open store {}", path.display());
        let store = with_retry(&self.retry, &what, |_attempt| {
            Tib2Store::open(path).map_err(|e| match e {
                tit_core::StoreError::Io { path, source } => PipelineError::io(&path, source),
                // Verification failures are permanent, not transient
                // I/O: surface them as InvalidData, never retried.
                other => PipelineError::io(
                    path,
                    std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
                ),
            })
        })?;
        let store = Arc::new(store);
        // panics: mutex poisoned only if another thread already panicked
        self.lru.lock().unwrap().insert(key, Arc::clone(&store));
        Ok((store, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tit_core::{Action, ProcessTraceWriter};

    fn write_ring(dir: &Path, n: usize, iters: usize) {
        std::fs::create_dir_all(dir).unwrap();
        for r in 0..n {
            let mut w = ProcessTraceWriter::create(dir, r).unwrap();
            for _ in 0..iters {
                w.write(&Action::Compute { flops: 1e6 }).unwrap();
                w.write(&Action::Send { dst: (r + 1) % n, bytes: 1e6 }).unwrap();
                w.write(&Action::Recv { src: (r + n - 1) % n, bytes: None }).unwrap();
            }
            w.finish().unwrap();
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tit-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_trace() {
        let d = tmp("hit");
        write_ring(&d, 3, 2);
        let cache = TraceCache::new(4, RetryPolicy::default());
        let (t1, hit1) = cache.get_or_load(42, &d, 3).unwrap();
        let (t2, hit2) = cache.get_or_load(42, &d, 3).unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&t1, &t2), "a hit is a refcount bump, not a reload");
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_trace_is_a_permanent_error() {
        let cache = TraceCache::new(4, RetryPolicy::default());
        let err = cache
            .get_or_load(7, Path::new("/nonexistent/trace/dir"), 2)
            .unwrap_err();
        assert!(!err.is_transient());
        assert!(cache.is_empty(), "failures are not cached");
    }

    fn write_store(path: &Path, np: usize, iters: usize) -> u64 {
        let mut t = tit_core::TiTrace::new(np);
        for r in 0..np {
            t.push(r, Action::CommSize { nproc: np });
            for _ in 0..iters {
                t.push(r, Action::Compute { flops: 1e6 });
                t.push(r, Action::Send { dst: (r + 1) % np, bytes: 1e6 });
                t.push(r, Action::Recv { src: (r + np - 1) % np, bytes: None });
            }
        }
        let ct = tit_core::CompactTrace::from_trace(&t).unwrap();
        tit_core::tib2::write_compact_atomic(path, &ct, 8).unwrap().fingerprint
    }

    #[test]
    fn store_hit_is_a_refcount_bump() {
        let d = tmp("store-hit");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("a.tib2");
        write_store(&p, 3, 4);
        let cache = StoreCache::new(4, RetryPolicy::default());
        let (s1, hit1) = cache.get_or_open(9, &p).unwrap();
        let (s2, hit2) = cache.get_or_open(9, &p).unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn replaced_store_is_reopened_not_served_stale() {
        let d = tmp("store-swap");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("a.tib2");
        let fp1 = write_store(&p, 3, 4);
        let cache = StoreCache::new(4, RetryPolicy::default());
        let (s1, _) = cache.get_or_open(9, &p).unwrap();
        assert_eq!(s1.fingerprint(), fp1);
        // Same path, new content (atomic replace, like a re-extract).
        let fp2 = write_store(&p, 3, 5);
        assert_ne!(fp1, fp2);
        let (s2, hit) = cache.get_or_open(9, &p).unwrap();
        assert!(!hit, "content change must be a miss");
        assert_eq!(s2.fingerprint(), fp2);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn damaged_store_is_a_permanent_error() {
        let d = tmp("store-bad");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("a.tib2");
        write_store(&p, 2, 3);
        // Cut the trailer: open must fail closed, and not be retried
        // into success.
        let len = std::fs::metadata(&p).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&p).unwrap().set_len(len - 4).unwrap();
        let cache = StoreCache::new(4, RetryPolicy::default());
        let err = cache.get_or_open(1, &p).unwrap_err();
        assert!(!err.is_transient());
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let d = tmp("evict");
        write_ring(&d, 2, 1);
        let cache = TraceCache::new(2, RetryPolicy::default());
        for key in 0..5u64 {
            cache.get_or_load(key, &d, 2).unwrap();
        }
        assert_eq!(cache.len(), 2);
        // The two most recent keys survive.
        assert!(cache.get_or_load(4, &d, 2).unwrap().1);
        assert!(cache.get_or_load(3, &d, 2).unwrap().1);
        assert!(!cache.get_or_load(0, &d, 2).unwrap().1);
        let _ = std::fs::remove_dir_all(&d);
    }
}
