//! Shared immutable trace state behind an LRU cache.
//!
//! A thousand what-if requests against one trace bundle must parse it
//! once: loaded traces are interned as `Arc<CompactTrace>` (immutable,
//! struct-of-arrays — see PR 4) and cached in a [`tit_core::Lru`]
//! keyed by the FNV-1a-64 trace reference key
//! ([`crate::proto::ReplayRequest::trace_key`]). A hit is a refcount
//! bump; an evicted trace stays alive for requests already replaying
//! it.
//!
//! Loads go through the extract pipeline's bounded
//! [`retry policy`](tit_extract::error::RetryPolicy): transient I/O
//! failures (EINTR, timeouts, reset mounts) are retried with
//! deterministic exponential backoff, permanent ones (missing rank
//! file, parse error) fail the request immediately.
//!
//! Two racing requests for the same uncached key may both load it
//! (last insert wins); that wastes one parse but never blocks loads of
//! *other* keys behind a long parse, and both results are identical by
//! construction.

use std::path::Path;
use std::sync::{Arc, Mutex};
use tit_core::{load_compact_exact, CompactTrace, Lru};
use tit_extract::error::{with_retry, PipelineError, RetryPolicy};

/// The daemon's trace cache.
pub struct TraceCache {
    lru: Mutex<Lru<u64, Arc<CompactTrace>>>,
    retry: RetryPolicy,
}

impl TraceCache {
    /// A cache holding at most `cap` traces, loading under `retry`.
    #[must_use]
    pub fn new(cap: usize, retry: RetryPolicy) -> Self {
        TraceCache { lru: Mutex::new(Lru::new(cap)), retry }
    }

    /// Cached traces.
    #[must_use]
    pub fn len(&self) -> usize {
        // panics: mutex poisoned only if another thread already panicked
        self.lru.lock().unwrap().len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the trace for `key`, loading (with bounded retry) and
    /// interning it on a miss. The boolean is `true` on a cache hit.
    pub fn get_or_load(
        &self,
        key: u64,
        dir: &Path,
        np: usize,
    ) -> Result<(Arc<CompactTrace>, bool), PipelineError> {
        // panics: mutex poisoned only if another thread already panicked
        if let Some(t) = self.lru.lock().unwrap().get(&key) {
            return Ok((t, true));
        }
        let what = format!("load trace {} (np={np})", dir.display());
        let trace = with_retry(&self.retry, &what, |_attempt| {
            load_compact_exact(dir, np, 1)
                .map_err(|e| PipelineError::io(e.path.clone(), e.source))
        })?;
        let trace = Arc::new(trace);
        // panics: mutex poisoned only if another thread already panicked
        self.lru.lock().unwrap().insert(key, Arc::clone(&trace));
        Ok((trace, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tit_core::{Action, ProcessTraceWriter};

    fn write_ring(dir: &Path, n: usize, iters: usize) {
        std::fs::create_dir_all(dir).unwrap();
        for r in 0..n {
            let mut w = ProcessTraceWriter::create(dir, r).unwrap();
            for _ in 0..iters {
                w.write(&Action::Compute { flops: 1e6 }).unwrap();
                w.write(&Action::Send { dst: (r + 1) % n, bytes: 1e6 }).unwrap();
                w.write(&Action::Recv { src: (r + n - 1) % n, bytes: None }).unwrap();
            }
            w.finish().unwrap();
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tit-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_trace() {
        let d = tmp("hit");
        write_ring(&d, 3, 2);
        let cache = TraceCache::new(4, RetryPolicy::default());
        let (t1, hit1) = cache.get_or_load(42, &d, 3).unwrap();
        let (t2, hit2) = cache.get_or_load(42, &d, 3).unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&t1, &t2), "a hit is a refcount bump, not a reload");
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_trace_is_a_permanent_error() {
        let cache = TraceCache::new(4, RetryPolicy::default());
        let err = cache
            .get_or_load(7, Path::new("/nonexistent/trace/dir"), 2)
            .unwrap_err();
        assert!(!err.is_transient());
        assert!(cache.is_empty(), "failures are not cached");
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let d = tmp("evict");
        write_ring(&d, 2, 1);
        let cache = TraceCache::new(2, RetryPolicy::default());
        for key in 0..5u64 {
            cache.get_or_load(key, &d, 2).unwrap();
        }
        assert_eq!(cache.len(), 2);
        // The two most recent keys survive.
        assert!(cache.get_or_load(4, &d, 2).unwrap().1);
        assert!(cache.get_or_load(3, &d, 2).unwrap().1);
        assert!(!cache.get_or_load(0, &d, 2).unwrap().1);
        let _ = std::fs::remove_dir_all(&d);
    }
}
