//! `tit-serve` — the replay daemon binary.
//!
//! ```text
//! tit-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!           [--cache-cap N] [--slice N] [--max-line-bytes N]
//!           [--preempt-backlog N] [--max-preemptions N]
//!           [--metrics FILE] [--access-log FILE] [--drain-on-stdin]
//!           [--force-preempt] [--job-delay-ms N]
//! ```
//!
//! Prints `listening on HOST:PORT` once the socket is bound (scripts
//! parse this to find a port-0 assignment), then serves until drained
//! — via the protocol (`{"op":"drain"}`) or, with `--drain-on-stdin`,
//! when stdin reaches EOF (the supervisor-friendly SIGTERM analogue:
//! run the daemon with its stdin on a pipe and close the pipe to stop
//! it). `--force-preempt` and `--job-delay-ms` are the chaos-harness
//! hooks described in docs/SERVING.md.
//!
//! Exit codes: `0` drained cleanly — `1` runtime failure — `2` usage
//! error.

use std::io::Read;
use std::time::Duration;
use tit_cli::Args;
use tit_serve::{Server, ServerConfig};

const USAGE: &str = "tit-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N] [--slice N] [--max-line-bytes N] [--preempt-backlog N] [--max-preemptions N] [--metrics FILE] [--access-log FILE] [--drain-on-stdin] [--force-preempt] [--job-delay-ms N]";

fn main() {
    let args = Args::from_env();
    if args.has_flag("help") {
        println!("usage: {USAGE}");
        return;
    }
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        addr: args.get_or("addr", defaults.addr.clone()),
        workers: args.get_or("workers", defaults.workers),
        queue_cap: args.get_or("queue-cap", defaults.queue_cap),
        cache_cap: args.get_or("cache-cap", defaults.cache_cap),
        slice_actions: args.get_or("slice", defaults.slice_actions),
        preempt_backlog: args.get_or("preempt-backlog", defaults.preempt_backlog),
        max_preemptions: args.get_or("max-preemptions", defaults.max_preemptions),
        max_line_bytes: args.get_or("max-line-bytes", defaults.max_line_bytes),
        metrics_path: args.get("metrics").map(Into::into),
        access_log: args.get("access-log").map(Into::into),
        force_preempt: args.has_flag("force-preempt"),
        job_delay: Duration::from_millis(args.get_or("job-delay-ms", 0)),
    };
    let drain_on_stdin = args.has_flag("drain-on-stdin");

    let server = Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("tit-serve: cannot start: {e}");
        std::process::exit(1);
    });
    println!("listening on 127.0.0.1:{}", server.port());

    if drain_on_stdin {
        // Consume stdin until EOF, then drain: `daemon < pipe` stops
        // gracefully when the supervisor closes the pipe.
        let mut sink = [0u8; 4096];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        server.drain();
    }

    match server.wait() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("tit-serve: {e}");
            std::process::exit(1);
        }
    }
}
