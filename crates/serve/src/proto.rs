//! The `tit-serve` wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line, one response per line; responses carry the
//! request's `id` echo so pipelined clients can match them regardless
//! of completion order. The full grammar, schemas and response-code
//! contract live in `docs/SERVING.md`; this module is the parsing and
//! validation layer that turns untrusted lines into typed requests
//! (every reject carries a human-readable detail for the
//! `bad_request` response).

use crate::json::Json;
use std::path::PathBuf;
use tit_core::Budget;
use tit_replay::collectives::CollectiveAlgo;
use tit_replay::ReplayConfig;

/// Hard cap on `np` (and on `nodes`): a request cannot ask the daemon
/// to spin up an unbounded simulation.
pub const MAX_NP: usize = 4096;

/// A validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Queue/drain introspection.
    Stats,
    /// Graceful shutdown: stop admitting, finish in-flight work,
    /// flush metrics, exit.
    Drain,
    /// Live observability snapshot (`titobs-metrics-v1` registry dump).
    Metrics,
    /// A replay simulation.
    Replay(ReplayRequest),
}

/// The platform preset a replay request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// The bordereau cluster preset (single-core nodes).
    Bordereau,
    /// The gdx cluster preset (single-core nodes).
    Gdx,
}

/// The network model variants of `tit-replay --network`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// Contention-aware piece-wise-linear MPI model (the default).
    Mpi,
    /// Plain flow model.
    Flow,
    /// Constant-time network.
    Constant,
}

/// One replay request: a platform variant, a trace reference, and the
/// robustness knobs (deadline, rank remap, degraded subset).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRequest {
    /// Client-chosen tag echoed back in the response (defaults empty).
    pub id: String,
    /// Per-process trace directory (the trace reference). Empty when
    /// the request names a [`store`](Self::store) instead.
    pub trace_dir: PathBuf,
    /// `TIB2` segmented store file, the alternative trace reference:
    /// the daemon keeps an LRU of open, footer-verified handles
    /// ([`crate::cache::StoreCache`]) and streams segments on demand
    /// instead of interning the whole trace.
    pub store: Option<PathBuf>,
    /// Ranks the trace carries.
    pub np: usize,
    /// Nodes of the platform variant (defaults to `np`).
    pub nodes: usize,
    /// Cluster preset.
    pub platform: PlatformKind,
    /// Network model.
    pub network: NetworkKind,
    /// Collective decomposition.
    pub collectives: CollectiveAlgo,
    /// Explicit rank → node-index map (defaults to round-robin).
    pub remap: Option<Vec<usize>>,
    /// Degraded subset: ranks whose actions are dropped; the replay
    /// runs damage-tolerant and reports a completeness ratio.
    pub drop_ranks: Vec<usize>,
    /// Per-request wall-clock budget, seconds (absent = unlimited).
    pub max_wall_s: Option<f64>,
}

impl ReplayRequest {
    /// The request's wall-clock budget.
    #[must_use]
    pub fn budget(&self) -> Budget {
        self.max_wall_s.map_or_else(Budget::unlimited, Budget::from_secs_f64)
    }

    /// The replay configuration this request selects.
    #[must_use]
    pub fn replay_config(&self) -> ReplayConfig {
        let network = match self.network {
            NetworkKind::Mpi => simkern::NetworkConfig::mpi_cluster(),
            NetworkKind::Flow => simkern::NetworkConfig::default(),
            NetworkKind::Constant => simkern::NetworkConfig::constant(),
        };
        ReplayConfig {
            network,
            algo: self.collectives,
            collect_records: false,
            kernel_profile: false,
            kernel: simkern::KernelMode::Incremental,
        }
    }

    /// Cache key for the trace reference: FNV-1a-64 over the canonical
    /// `path '\0' np` string (the same hash family as the `TICK1`
    /// container checksum). Store references prepend a domain tag so a
    /// directory and a store at the same path never collide.
    #[must_use]
    pub fn trace_key(&self) -> u64 {
        let mut bytes = Vec::new();
        if let Some(store) = &self.store {
            bytes.extend_from_slice(b"tib2\0");
            bytes.extend_from_slice(store.to_string_lossy().as_bytes());
        } else {
            bytes.extend_from_slice(self.trace_dir.to_string_lossy().as_bytes());
        }
        bytes.push(0);
        bytes.extend_from_slice(&(self.np as u64).to_le_bytes());
        tit_core::checkpoint::fnv1a(&bytes)
    }
}

fn field_str(v: &Json, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("field {key:?} must be a string")),
    }
}

fn field_count(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn field_ranks(v: &Json, key: &str, bound: usize) -> Result<Option<Vec<usize>>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                let n = it
                    .as_u64()
                    .ok_or_else(|| format!("field {key:?} must list non-negative integers"))?;
                if n as usize >= bound {
                    return Err(format!("field {key:?}: index {n} out of range (< {bound})"));
                }
                out.push(n as usize);
            }
            Ok(Some(out))
        }
        Some(_) => Err(format!("field {key:?} must be an array")),
    }
}

/// Parses and validates one request line (already length-bounded by
/// the connection reader). The error string is the `bad_request`
/// detail sent back to the client.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = crate::json::parse(line).map_err(|e| e.to_string())?;
    if !matches!(v, Json::Obj(_)) {
        return Err("a request must be a JSON object".into());
    }
    let op = field_str(&v, "op")?.ok_or("missing field \"op\"")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        "metrics" => Ok(Request::Metrics),
        "replay" => parse_replay(&v).map(Request::Replay),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn parse_replay(v: &Json) -> Result<ReplayRequest, String> {
    let store = field_str(v, "store")?;
    let trace_dir = match (&store, field_str(v, "trace_dir")?) {
        (Some(_), Some(_)) => {
            return Err("\"store\" and \"trace_dir\" are mutually exclusive".into())
        }
        (Some(_), None) => String::new(),
        (None, Some(d)) => d,
        (None, None) => return Err("replay needs \"trace_dir\" or \"store\"".into()),
    };
    let np = field_count(v, "np")?.ok_or("replay needs \"np\"")? as usize;
    if np == 0 || np > MAX_NP {
        return Err(format!("\"np\" must be in 1..={MAX_NP}"));
    }
    let nodes = field_count(v, "nodes")?.map_or(np, |n| n as usize);
    if nodes == 0 || nodes > MAX_NP {
        return Err(format!("\"nodes\" must be in 1..={MAX_NP}"));
    }
    let platform = match field_str(v, "platform")?.as_deref() {
        None | Some("bordereau") => PlatformKind::Bordereau,
        Some("gdx") => PlatformKind::Gdx,
        Some(other) => return Err(format!("unknown platform {other:?}")),
    };
    let network = match field_str(v, "network")?.as_deref() {
        None | Some("mpi") => NetworkKind::Mpi,
        Some("flow") => NetworkKind::Flow,
        Some("constant") => NetworkKind::Constant,
        Some(other) => return Err(format!("unknown network {other:?}")),
    };
    let collectives = match field_str(v, "collectives")?.as_deref() {
        None | Some("binomial") => CollectiveAlgo::Binomial,
        Some("flat") => CollectiveAlgo::Flat,
        Some(other) => return Err(format!("unknown collectives {other:?}")),
    };
    let remap = field_ranks(v, "remap", nodes)?;
    if let Some(m) = &remap {
        if m.len() != np {
            return Err(format!("\"remap\" must list one node index per rank ({np})"));
        }
    }
    let drop_ranks = field_ranks(v, "drop_ranks", np)?.unwrap_or_default();
    if drop_ranks.len() >= np {
        return Err("\"drop_ranks\" cannot drop every rank".into());
    }
    let max_wall_s = match v.get("max_wall_s") {
        None | Some(Json::Null) => None,
        Some(n) => {
            let f = n.as_f64().ok_or("field \"max_wall_s\" must be a number")?;
            if f < 0.0 {
                return Err("field \"max_wall_s\" must be non-negative".into());
            }
            Some(f)
        }
    };
    Ok(ReplayRequest {
        id: field_str(v, "id")?.unwrap_or_default(),
        trace_dir: PathBuf::from(trace_dir),
        store: store.map(PathBuf::from),
        np,
        nodes,
        platform,
        network,
        collectives,
        remap,
        drop_ranks,
        max_wall_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_replay_requests() {
        let r = parse_request(r#"{"op":"replay","trace_dir":"/tmp/t","np":4}"#).unwrap();
        let Request::Replay(r) = r else { panic!("not a replay") };
        assert_eq!(r.np, 4);
        assert_eq!(r.nodes, 4);
        assert_eq!(r.platform, PlatformKind::Bordereau);
        assert_eq!(r.network, NetworkKind::Mpi);
        assert!(r.remap.is_none() && r.drop_ranks.is_empty() && r.max_wall_s.is_none());
        assert!(r.budget().is_unlimited());

        let r = parse_request(
            r#"{"op":"replay","id":"x1","trace_dir":"/tmp/t","np":2,"nodes":8,
                "platform":"gdx","network":"constant","collectives":"flat",
                "remap":[7,0],"drop_ranks":[1],"max_wall_s":2.5}"#,
        )
        .unwrap();
        let Request::Replay(r) = r else { panic!("not a replay") };
        assert_eq!(r.id, "x1");
        assert_eq!(r.nodes, 8);
        assert_eq!(r.platform, PlatformKind::Gdx);
        assert_eq!(r.network, NetworkKind::Constant);
        assert_eq!(r.remap, Some(vec![7, 0]));
        assert_eq!(r.drop_ranks, vec![1]);
        assert!(!r.budget().is_unlimited());
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"drain"}"#).unwrap(), Request::Drain);
        assert_eq!(parse_request(r#"{"op":"metrics"}"#).unwrap(), Request::Metrics);
    }

    #[test]
    fn rejects_malformed_requests_with_details() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[]", "must be a JSON object"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"replay","np":4}"#, "trace_dir"),
            (r#"{"op":"replay","trace_dir":"/t"}"#, "\"np\""),
            (r#"{"op":"replay","trace_dir":"/t","np":0}"#, "must be in 1"),
            (r#"{"op":"replay","trace_dir":"/t","np":1000000}"#, "must be in 1"),
            (r#"{"op":"replay","trace_dir":"/t","np":4,"platform":"moon"}"#, "platform"),
            (r#"{"op":"replay","trace_dir":"/t","np":4,"remap":[0]}"#, "per rank"),
            (r#"{"op":"replay","trace_dir":"/t","np":4,"remap":[9,9,9,9]}"#, "out of range"),
            (
                r#"{"op":"replay","trace_dir":"/t","np":2,"drop_ranks":[0,1]}"#,
                "every rank",
            ),
            (r#"{"op":"replay","trace_dir":"/t","np":2,"max_wall_s":-1}"#, "non-negative"),
            (r#"{"op":"replay","trace_dir":"/t","np":2,"np":3}"#, ""),
        ] {
            match parse_request(line) {
                Ok(Request::Replay(r)) => {
                    // The duplicate-key line parses (first key wins).
                    assert_eq!(r.np, 2, "{line}");
                }
                Ok(other) => panic!("{line} parsed as {other:?}"),
                Err(e) => assert!(e.contains(needle), "{line}: {e} lacks {needle:?}"),
            }
        }
    }

    #[test]
    fn trace_key_separates_dir_and_np() {
        let base = parse_request(r#"{"op":"replay","trace_dir":"/tmp/t","np":4}"#).unwrap();
        let other_np = parse_request(r#"{"op":"replay","trace_dir":"/tmp/t","np":8}"#).unwrap();
        let other_dir = parse_request(r#"{"op":"replay","trace_dir":"/tmp/u","np":4}"#).unwrap();
        let key = |r: &Request| match r {
            Request::Replay(r) => r.trace_key(),
            _ => unreachable!(),
        };
        assert_ne!(key(&base), key(&other_np));
        assert_ne!(key(&base), key(&other_dir));
        assert_eq!(key(&base), key(&base));
    }
}
