//! Per-request execution: isolation, deadlines, preemption, typed
//! responses.
//!
//! A worker takes a [`Job`] off the admission queue and drives it to a
//! response. Every failure mode is contained to the request that
//! caused it:
//!
//! * a bad trace reference → `error/trace_load` (after bounded retry
//!   of transient I/O);
//! * an expired deadline → `partial/deadline` with a completeness
//!   ratio — queue wait counts against the budget (the deadline is
//!   anchored at admission), so a request cannot spend its budget
//!   waiting and then hog a worker;
//! * a dropped-rank deadlock → `partial/damaged`;
//! * a panic anywhere in the replay → `error/internal` (the worker
//!   thread survives — the pool never shrinks);
//! * queue pressure → the engine state is exported at a safe point and
//!   the job re-queued, up to [`crate::ServerConfig::max_preemptions`]
//!   hops, after which it runs to completion.
//!
//! Responses are deterministic: no wall-clock fields, insertion-order
//! JSON — the same admitted request set produces byte-identical
//! response lines whether it ran serially or across a contended pool
//! (latency lives in the metrics, not the payload).

use crate::accesslog::{AccessLog, Spans};
use crate::json::{obj, Json};
use crate::proto::{PlatformKind, ReplayRequest};
use crate::queue::Admission;
use crate::{
    cache::{StoreCache, TraceCache},
    ServerConfig,
};
use simkern::resource::HostId;
use simkern::Platform;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use tit_core::Deadline;
use tit_platform::deployment::Deployment;
use tit_platform::desc::PlatformDesc;
use tit_platform::presets;
use tit_replay::process::{ActionSource, CompactSource, VecSource};
use tit_replay::{
    run_request, PausedReplay, ReplayError, RequestOutcome, RequestPolicy, RequestStatus,
};
use titobs::Metrics;

/// Where a job's response line goes (the connection's shared writer).
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One admitted replay request in flight.
pub struct Job {
    /// The validated request.
    pub req: ReplayRequest,
    /// Running deadline, anchored at admission.
    pub deadline: Deadline,
    /// Preemption hops so far.
    pub preemptions: u32,
    /// Exported engine state from the last preemption, if any.
    pub resume: Option<PausedReplay>,
    /// Where the response line goes.
    pub out: SharedWriter,
    /// Access-log sequence number assigned at admission.
    pub seq: u64,
    /// When the request was admitted (span attribution anchor).
    pub admitted: std::time::Instant,
    /// Trace-load wall seconds accumulated across hops.
    pub load_s: f64,
    /// Engine wall seconds accumulated across hops.
    pub replay_s: f64,
}

/// Everything a worker needs, shared across the pool.
pub struct Shared {
    /// Server configuration (immutable after start).
    pub cfg: ServerConfig,
    /// The interned-trace cache.
    pub cache: TraceCache,
    /// The open `TIB2` store-handle cache (content-revalidated hits).
    pub stores: StoreCache,
    /// The admission queue.
    pub queue: Admission<Job>,
    /// serve.* counters and gauges.
    pub metrics: Metrics,
    /// Queue-pressure flag: workers preempt long jobs while it reads
    /// true.
    pub pressure: AtomicBool,
    /// Structured per-request access log, when configured.
    pub access: Option<AccessLog>,
}

/// Writes one response line; a dead client is the client's problem,
/// not the worker's.
pub fn respond(out: &SharedWriter, v: &Json) {
    // panics: mutex poisoned only if another thread already panicked
    let mut w = out.lock().unwrap();
    let _ = writeln!(w, "{v}");
    let _ = w.flush();
}

/// An `error` response.
#[must_use]
pub fn error_response(id: &str, code: &str, detail: &str) -> Json {
    obj(vec![
        ("status", Json::Str("error".into())),
        ("code", Json::Str(code.into())),
        ("id", Json::Str(id.into())),
        ("detail", Json::Str(detail.into())),
    ])
}

/// Builds the platform variant and per-rank host placement a request
/// selects. Rebuilt identically on every hop of a preempted job, so
/// the resume fingerprint check holds.
#[must_use]
pub fn build_platform(req: &ReplayRequest) -> (Platform, Vec<HostId>) {
    let spec = match req.platform {
        PlatformKind::Bordereau => presets::bordereau_one_core(req.nodes),
        PlatformKind::Gdx => presets::gdx_one_core(req.nodes),
    };
    let desc = PlatformDesc::single(spec);
    let platform = desc.build();
    let hosts = match &req.remap {
        Some(map) => map.iter().map(|&i| HostId(i as u32)).collect(),
        None => Deployment::round_robin(&desc.host_names(), req.np).host_ids(&platform),
    };
    (platform, hosts)
}

/// The request's trace, whichever reference form named it.
enum Loaded {
    /// A fully-interned compact trace (the `trace_dir` reference).
    Compact(Arc<tit_core::CompactTrace>),
    /// An open segmented store (the `store` reference).
    Store(Arc<tit_core::Tib2Store>),
}

/// Per-rank sources over a segmented store: a fresh per-job
/// [`tit_replay::SegmentCache`] (unbounded — admission control, not a
/// byte cap, is the daemon's memory governor) shared by the kept
/// ranks, an empty stream per dropped rank.
fn build_store_sources(
    store: &Arc<tit_core::Tib2Store>,
    req: &ReplayRequest,
) -> Vec<Box<dyn ActionSource>> {
    let cache = Arc::new(tit_replay::SegmentCache::new(
        Arc::clone(store),
        Arc::new(tit_core::MemBudget::unlimited()),
    ));
    (0..req.np)
        .map(|rank| {
            if req.drop_ranks.contains(&rank) {
                Box::new(VecSource::new(Vec::new())) as Box<dyn ActionSource>
            } else {
                Box::new(tit_replay::SegmentedSource::new(Arc::clone(&cache), rank))
            }
        })
        .collect()
}

/// Per-rank sources: a shared-trace cursor per kept rank, an empty
/// stream per dropped rank (the degraded subset).
fn build_sources(
    trace: &Arc<tit_core::CompactTrace>,
    req: &ReplayRequest,
) -> Vec<Box<dyn ActionSource>> {
    (0..req.np)
        .map(|rank| {
            if req.drop_ranks.contains(&rank) {
                Box::new(VecSource::new(Vec::new())) as Box<dyn ActionSource>
            } else {
                Box::new(CompactSource::new(Arc::clone(trace), rank))
            }
        })
        .collect()
}

fn outcome_response(req: &ReplayRequest, out: &RequestOutcome) -> Json {
    let (status, code) = match out.status {
        RequestStatus::Finished { .. } => ("ok", None),
        RequestStatus::DeadlinePartial { .. } => ("partial", Some("deadline")),
        RequestStatus::DamagedPartial { .. } => ("partial", Some("damaged")),
        // panics: preempted outcomes are requeued, never rendered
        RequestStatus::Preempted { .. } => unreachable!("preempted jobs are requeued"),
    };
    let simulated_time = match out.status {
        RequestStatus::Finished { simulated_time }
        | RequestStatus::DeadlinePartial { simulated_time }
        | RequestStatus::DamagedPartial { simulated_time }
        | RequestStatus::Preempted { simulated_time } => simulated_time,
    };
    let mut pairs = vec![("status", Json::Str(status.into()))];
    if let Some(c) = code {
        pairs.push(("code", Json::Str(c.into())));
    }
    pairs.push(("id", Json::Str(req.id.clone())));
    pairs.push(("simulated_time", Json::Num(simulated_time)));
    pairs.push(("actions_replayed", Json::Num(out.actions_replayed as f64)));
    pairs.push(("actions_expected", Json::Num(out.actions_expected as f64)));
    pairs.push(("completeness", Json::Num(out.completeness())));
    if let Some(f) = &out.failure {
        pairs.push(("detail", Json::Str(f.clone())));
    }
    obj(pairs)
}

fn classify_replay_error(e: &ReplayError) -> &'static str {
    match e {
        ReplayError::Deployment { .. } => "bad_request",
        _ => "replay_failed",
    }
}

/// Drives one job to a response or a requeue. Never panics outward.
pub fn process_job(shared: &Arc<Shared>, mut job: Job) {
    if !shared.cfg.job_delay.is_zero() {
        std::thread::sleep(shared.cfg.job_delay);
    }
    let id = job.req.id.clone();
    let result = catch_unwind(AssertUnwindSafe(|| run_job(shared, &mut job)));
    match result {
        Ok(JobEnd::Responded(v)) => {
            let t = std::time::Instant::now();
            respond(&job.out, &v);
            let status = match v.get("status") {
                Some(Json::Str(s)) => s.clone(),
                _ => "error".into(),
            };
            log_done(shared, &job, &status, t.elapsed().as_secs_f64());
        }
        Ok(JobEnd::Requeued) => {
            shared.metrics.incr("serve.preemptions", 1);
            if let Some(log) = &shared.access {
                log.preempt(job.seq, &job.req.id, job.preemptions);
            }
            shared.queue.requeue(job);
            shared.metrics.gauge_set("serve.queue_depth", shared.queue.depth() as f64);
        }
        Err(panic) => {
            let detail: &str = panic
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("panic in request handler");
            shared.metrics.incr("serve.errors", 1);
            let t = std::time::Instant::now();
            respond(&job.out, &error_response(&id, "internal", detail));
            log_done(shared, &job, "error", t.elapsed().as_secs_f64());
        }
    }
}

/// Writes the terminal access-log record for a responded job: total
/// wall since admission, split into queue/load/replay/respond spans
/// (queue is the remainder — time not spent working).
fn log_done(shared: &Arc<Shared>, job: &Job, status: &str, respond_s: f64) {
    let Some(log) = &shared.access else { return };
    let total = job.admitted.elapsed().as_secs_f64();
    let spans = Spans {
        queue_s: (total - job.load_s - job.replay_s - respond_s).max(0.0),
        load_s: job.load_s,
        replay_s: job.replay_s,
        respond_s,
    };
    log.done(job.seq, &job.req.id, status, spans, job.preemptions);
}

enum JobEnd {
    Responded(Json),
    Requeued,
}

fn run_job(shared: &Arc<Shared>, job: &mut Job) -> JobEnd {
    let req = &job.req;
    let t0 = std::time::Instant::now();

    // Deadline check up front: a request that spent its whole budget
    // queued returns a zero-work partial without starting the engine.
    let t_load = std::time::Instant::now();
    let loaded = if let Some(store_path) = &req.store {
        match shared.stores.get_or_open(req.trace_key(), store_path) {
            Ok((store, hit)) => {
                shared
                    .metrics
                    .incr(if hit { "serve.cache_hits" } else { "serve.cache_misses" }, 1);
                if store.num_ranks() != req.np {
                    shared.metrics.incr("serve.errors", 1);
                    return JobEnd::Responded(error_response(
                        &req.id,
                        "trace_load",
                        &format!(
                            "store has {} rank(s), request says np={}",
                            store.num_ranks(),
                            req.np
                        ),
                    ));
                }
                Loaded::Store(store)
            }
            Err(e) => {
                shared.metrics.incr("serve.errors", 1);
                return JobEnd::Responded(error_response(&req.id, "trace_load", &e.to_string()));
            }
        }
    } else {
        match shared.cache.get_or_load(req.trace_key(), &req.trace_dir, req.np) {
            Ok((trace, hit)) => {
                shared
                    .metrics
                    .incr(if hit { "serve.cache_hits" } else { "serve.cache_misses" }, 1);
                Loaded::Compact(trace)
            }
            Err(e) => {
                shared.metrics.incr("serve.errors", 1);
                return JobEnd::Responded(error_response(&req.id, "trace_load", &e.to_string()));
            }
        }
    };
    job.load_s += t_load.elapsed().as_secs_f64();

    let (platform, hosts) = build_platform(req);
    let policy = RequestPolicy {
        slice_actions: shared.cfg.slice_actions,
        deadline: job.deadline,
        tolerate_damage: !req.drop_ranks.is_empty(),
    };
    let preempt_eligible = job.preemptions < shared.cfg.max_preemptions;
    let preempt = preempt_eligible.then_some(&shared.pressure);
    let (sources, actions_expected) = match &loaded {
        Loaded::Compact(trace) => (build_sources(trace, req), trace.num_actions() as u64),
        Loaded::Store(store) => (build_store_sources(store, req), store.num_actions()),
    };
    let t_replay = std::time::Instant::now();
    let outcome = run_request(
        sources,
        actions_expected,
        platform,
        &hosts,
        &req.replay_config(),
        None,
        &policy,
        preempt,
        job.resume.take(),
    );
    job.replay_s += t_replay.elapsed().as_secs_f64();
    shared.metrics.observe_wall("serve.request_wall", t0.elapsed().as_secs_f64());
    match outcome {
        Ok(out) if matches!(out.status, RequestStatus::Preempted { .. }) => {
            job.resume = out.paused;
            job.preemptions += 1;
            JobEnd::Requeued
        }
        Ok(out) => {
            let key = match out.status {
                RequestStatus::Finished { .. } => "serve.ok",
                RequestStatus::DeadlinePartial { .. } => "serve.partial_deadline",
                RequestStatus::DamagedPartial { .. } => "serve.partial_damaged",
                // panics: the arm above consumed every preempted outcome
                RequestStatus::Preempted { .. } => unreachable!(),
            };
            shared.metrics.incr(key, 1);
            JobEnd::Responded(outcome_response(req, &out))
        }
        Err(e) => {
            shared.metrics.incr("serve.errors", 1);
            JobEnd::Responded(error_response(
                &req.id,
                classify_replay_error(&e),
                &e.to_string(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;
    use crate::proto::Request;
    use tit_core::{Action, ProcessTraceWriter};
    use tit_extract::RetryPolicy;

    // A deadlock-free ring pipeline: rank 0 injects, the others relay
    // via a posted irecv (plain send/send/recv rings deadlock on
    // blocking sends).
    fn write_ring(dir: &std::path::Path, n: usize, iters: usize) {
        for r in 0..n {
            let mut w = ProcessTraceWriter::create(dir, r).unwrap();
            for _ in 0..iters {
                if r == 0 {
                    w.write(&Action::Compute { flops: 1e6 }).unwrap();
                    w.write(&Action::Send { dst: 1, bytes: 1e6 }).unwrap();
                    w.write(&Action::Recv { src: n - 1, bytes: None }).unwrap();
                } else {
                    w.write(&Action::Irecv { src: r - 1, bytes: None }).unwrap();
                    w.write(&Action::Compute { flops: 5e5 }).unwrap();
                    w.write(&Action::Wait).unwrap();
                    w.write(&Action::Send { dst: (r + 1) % n, bytes: 1e6 }).unwrap();
                }
            }
            w.finish().unwrap();
        }
    }

    fn shared() -> Arc<Shared> {
        let cfg = ServerConfig::default();
        Arc::new(Shared {
            cache: TraceCache::new(cfg.cache_cap, RetryPolicy::default()),
            stores: StoreCache::new(cfg.cache_cap, RetryPolicy::default()),
            queue: Admission::new(cfg.queue_cap),
            metrics: Metrics::new(),
            pressure: AtomicBool::new(false),
            access: None,
            cfg,
        })
    }

    fn sink() -> (SharedWriter, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        struct S(Arc<Mutex<Vec<u8>>>);
        impl Write for S {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        (Arc::new(Mutex::new(Box::new(S(Arc::clone(&buf))))), buf)
    }

    fn replay_req(line: &str) -> ReplayRequest {
        match parse_request(line).unwrap() {
            Request::Replay(r) => r,
            other => panic!("{other:?}"),
        }
    }

    fn job_for(req: ReplayRequest, out: SharedWriter) -> Job {
        Job {
            deadline: req.budget().start(),
            req,
            preemptions: 0,
            resume: None,
            out,
            seq: 0,
            admitted: std::time::Instant::now(),
            load_s: 0.0,
            replay_s: 0.0,
        }
    }

    #[test]
    fn ok_response_and_cache_hit_on_second_request() {
        let d = std::env::temp_dir().join(format!("tit-serve-exec-ok-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        write_ring(&d, 3, 2);
        let sh = shared();
        let line = format!(
            "{{\"op\":\"replay\",\"id\":\"a\",\"trace_dir\":{:?},\"np\":3}}",
            d.display().to_string()
        );
        let (out, buf) = sink();
        process_job(&sh, job_for(replay_req(&line), Arc::clone(&out)));
        process_job(&sh, job_for(replay_req(&line), out));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], lines[1], "identical request, identical response");
        assert!(lines[0].starts_with("{\"status\":\"ok\",\"id\":\"a\""), "{}", lines[0]);
        assert!(lines[0].contains("\"completeness\":1"), "{}", lines[0]);
        assert_eq!(sh.metrics.counter("serve.cache_hits"), 1);
        assert_eq!(sh.metrics.counter("serve.cache_misses"), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_trace_is_a_typed_error_not_a_crash() {
        let sh = shared();
        let (out, buf) = sink();
        let req = replay_req(
            "{\"op\":\"replay\",\"id\":\"b\",\"trace_dir\":\"/nonexistent/xyz\",\"np\":2}",
        );
        process_job(&sh, job_for(req, out));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(
            text.starts_with("{\"status\":\"error\",\"code\":\"trace_load\",\"id\":\"b\""),
            "{text}"
        );
        assert_eq!(sh.metrics.counter("serve.errors"), 1);
    }

    #[test]
    fn dropped_rank_yields_partial_damaged() {
        let d = std::env::temp_dir().join(format!("tit-serve-exec-deg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        write_ring(&d, 3, 2);
        let sh = shared();
        let (out, buf) = sink();
        let line = format!(
            "{{\"op\":\"replay\",\"id\":\"c\",\"trace_dir\":{:?},\"np\":3,\"drop_ranks\":[1]}}",
            d.display().to_string()
        );
        process_job(&sh, job_for(replay_req(&line), out));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(
            text.starts_with("{\"status\":\"partial\",\"code\":\"damaged\",\"id\":\"c\""),
            "{text}"
        );
        assert!(text.contains("\"detail\":"), "{text}");
        assert_eq!(sh.metrics.counter("serve.partial_damaged"), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn zero_budget_yields_partial_deadline() {
        let d = std::env::temp_dir().join(format!("tit-serve-exec-dl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        write_ring(&d, 3, 60);
        let sh = shared();
        let (out, buf) = sink();
        let line = format!(
            "{{\"op\":\"replay\",\"id\":\"d\",\"trace_dir\":{:?},\"np\":3,\"max_wall_s\":0}}",
            d.display().to_string()
        );
        process_job(&sh, job_for(replay_req(&line), out));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(
            text.starts_with("{\"status\":\"partial\",\"code\":\"deadline\",\"id\":\"d\""),
            "{text}"
        );
        assert_eq!(sh.metrics.counter("serve.partial_deadline"), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn forced_preemption_requeues_then_finishes_identically() {
        let d = std::env::temp_dir().join(format!("tit-serve-exec-pre-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        write_ring(&d, 3, 5);
        let line = format!(
            "{{\"op\":\"replay\",\"id\":\"e\",\"trace_dir\":{:?},\"np\":3}}",
            d.display().to_string()
        );

        // Reference: no preemption.
        let sh0 = shared();
        let (out0, buf0) = sink();
        process_job(&sh0, job_for(replay_req(&line), out0));
        let reference = String::from_utf8(buf0.lock().unwrap().clone()).unwrap();

        // Pressure always on, tiny slices: the job must hop through
        // the queue max_preemptions times and still answer the same.
        let cfg = ServerConfig { slice_actions: 3, ..ServerConfig::default() };
        let sh = Arc::new(Shared {
            cache: TraceCache::new(cfg.cache_cap, RetryPolicy::default()),
            stores: StoreCache::new(cfg.cache_cap, RetryPolicy::default()),
            queue: Admission::new(cfg.queue_cap),
            metrics: Metrics::new(),
            pressure: AtomicBool::new(true),
            access: None,
            cfg,
        });
        let (out, buf) = sink();
        process_job(&sh, job_for(replay_req(&line), out));
        let mut hops = 0;
        while let Some(job) = sh.queue.pop() {
            hops += 1;
            assert!(hops <= sh.cfg.max_preemptions, "preemption must cap");
            process_job(&sh, job);
            if !buf.lock().unwrap().is_empty() {
                break;
            }
        }
        assert_eq!(hops, sh.cfg.max_preemptions);
        let preempted = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(preempted, reference, "preempt/resume must not change the answer");
        assert_eq!(sh.metrics.counter("serve.preemptions"), u64::from(hops));
        let _ = std::fs::remove_dir_all(&d);
    }
}
