//! Crash-safe structured access log: one NDJSON record per request
//! event, appended atomically.
//!
//! The log answers "what happened to request X?" after the fact —
//! including after a SIGKILL. The contract the chaos suite asserts:
//!
//! * every admitted request appears **exactly once** with a terminal
//!   status (`ok`, `partial`, `error`, `shed`, or `lost`);
//! * the file never contains torn interior lines: each record is one
//!   `write(2)` to an `O_APPEND` descriptor under a lock, so records
//!   from concurrent workers interleave only at line boundaries. A
//!   process killed mid-write can leave at most one torn **final**
//!   line, which the restart scan detects and skips;
//! * on restart, any request that was admitted but has no terminal
//!   record (the daemon died while it was queued or running) gets a
//!   synthesized `done` record with status `lost` and `"restart":true`
//!   — the admission is accounted for, never silently dropped.
//!
//! Record grammar (all single-line JSON objects):
//!
//! ```text
//! {"event":"admit","seq":N,"id":"..."}
//! {"event":"preempt","seq":N,"id":"...","hop":H}
//! {"event":"done","seq":N,"id":"...","status":"ok|partial|error|shed|lost",
//!  "queue_s":..,"load_s":..,"replay_s":..,"respond_s":..,"preemptions":P}
//! ```
//!
//! `seq` is a server-assigned admission sequence number (unique per
//! log file, monotone across restarts); `id` is the client's tag and
//! may repeat. Span fields attribute the request's wall clock:
//! `queue_s` waiting for a worker (including requeue hops), `load_s`
//! loading/interning the trace, `replay_s` inside the engine,
//! `respond_s` writing the response line.

use crate::json::{obj, Json};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Wall-clock span attribution for one request, seconds.
#[derive(Debug, Default, Clone, Copy)]
pub struct Spans {
    /// Waiting in the admission queue (all hops).
    pub queue_s: f64,
    /// Loading/interning the trace (all hops).
    pub load_s: f64,
    /// Inside the simulation engine (all hops).
    pub replay_s: f64,
    /// Writing the response line.
    pub respond_s: f64,
}

/// An open access log (see the module docs for the contract).
pub struct AccessLog {
    file: Mutex<File>,
    seq: AtomicU64,
    recovered: u64,
}

impl AccessLog {
    /// Opens (creating if absent) the log at `path`, first scanning any
    /// existing records and appending a `lost` terminal record for
    /// every admission the previous process never terminated.
    pub fn open(path: &Path) -> std::io::Result<AccessLog> {
        let existing = match std::fs::read(path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut open_admits: BTreeMap<u64, String> = BTreeMap::new();
        let mut max_seq = 0u64;
        for line in existing.lines() {
            // A torn final line (daemon killed mid-write) fails to
            // parse; skip it — its request is still in open_admits.
            let Ok(v) = crate::json::parse(line) else { continue };
            let seq = v.get("seq").and_then(Json::as_u64).unwrap_or(0);
            max_seq = max_seq.max(seq);
            match v.get("event") {
                Some(Json::Str(ev)) if ev == "admit" => {
                    let id = match v.get("id") {
                        Some(Json::Str(s)) => s.clone(),
                        _ => String::new(),
                    };
                    open_admits.insert(seq, id);
                }
                Some(Json::Str(ev)) if ev == "done" => {
                    open_admits.remove(&seq);
                }
                _ => {}
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if !existing.is_empty() && !existing.ends_with('\n') {
            // Terminate the torn final line so new records do not
            // concatenate onto the unparseable fragment.
            file.write_all(b"\n")?;
        }
        let log = AccessLog {
            file: Mutex::new(file),
            seq: AtomicU64::new(max_seq + 1),
            recovered: open_admits.len() as u64,
        };
        for (seq, id) in open_admits {
            let mut pairs = vec![
                ("event", Json::Str("done".into())),
                ("seq", Json::Num(seq as f64)),
                ("id", Json::Str(id)),
                ("status", Json::Str("lost".into())),
                ("restart", Json::Bool(true)),
            ];
            pairs.push(("preemptions", Json::Num(0.0)));
            log.append(&obj(pairs))?;
        }
        Ok(log)
    }

    /// Admissions the restart scan found without a terminal record
    /// (each got a synthesized `lost` record).
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Assigns the next admission sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn append(&self, v: &Json) -> std::io::Result<()> {
        let line = format!("{v}\n");
        // panics: mutex poisoned only if another thread already panicked
        let mut f = self.file.lock().unwrap();
        // One write to an O_APPEND fd: concurrent appenders cannot
        // interleave bytes, and a crash tears at most the last line.
        f.write_all(line.as_bytes())
    }

    /// Records an admission. Errors are swallowed: the log never takes
    /// a request down with it.
    pub fn admit(&self, seq: u64, id: &str) {
        let _ = self.append(&obj(vec![
            ("event", Json::Str("admit".into())),
            ("seq", Json::Num(seq as f64)),
            ("id", Json::Str(id.into())),
        ]));
    }

    /// Records a preemption hop (informational, non-terminal).
    pub fn preempt(&self, seq: u64, id: &str, hop: u32) {
        let _ = self.append(&obj(vec![
            ("event", Json::Str("preempt".into())),
            ("seq", Json::Num(seq as f64)),
            ("id", Json::Str(id.into())),
            ("hop", Json::Num(f64::from(hop))),
        ]));
    }

    /// Records the terminal outcome of an admitted request.
    pub fn done(&self, seq: u64, id: &str, status: &str, spans: Spans, preemptions: u32) {
        let _ = self.append(&obj(vec![
            ("event", Json::Str("done".into())),
            ("seq", Json::Num(seq as f64)),
            ("id", Json::Str(id.into())),
            ("status", Json::Str(status.into())),
            ("queue_s", Json::Num(spans.queue_s)),
            ("load_s", Json::Num(spans.load_s)),
            ("replay_s", Json::Num(spans.replay_s)),
            ("respond_s", Json::Num(spans.respond_s)),
            ("preemptions", Json::Num(f64::from(preemptions))),
        ]));
    }

    /// Records a shed request: never admitted, one terminal record.
    pub fn shed(&self, id: &str) {
        let seq = self.next_seq();
        self.done(seq, id, "shed", Spans::default(), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tit-accesslog-{name}-{}", std::process::id()))
    }

    #[test]
    fn admit_done_round_trip_and_seq_monotone() {
        let p = tmp("rt");
        let _ = std::fs::remove_file(&p);
        let log = AccessLog::open(&p).unwrap();
        let s1 = log.next_seq();
        let s2 = log.next_seq();
        assert!(s2 > s1);
        log.admit(s1, "a");
        log.done(s1, "a", "ok", Spans { replay_s: 0.5, ..Spans::default() }, 0);
        drop(log);
        let text = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"admit\""), "{}", lines[0]);
        assert!(lines[1].contains("\"status\":\"ok\""), "{}", lines[1]);
        assert!(lines[1].contains("\"replay_s\":0.5"), "{}", lines[1]);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn restart_synthesizes_lost_records_and_skips_torn_line() {
        let p = tmp("lost");
        let _ = std::fs::remove_file(&p);
        {
            let log = AccessLog::open(&p).unwrap();
            let s1 = log.next_seq();
            let s2 = log.next_seq();
            log.admit(s1, "finished");
            log.done(s1, "finished", "ok", Spans::default(), 0);
            log.admit(s2, "in-flight");
            // Simulate a SIGKILL mid-write: a torn final line.
        }
        {
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(b"{\"event\":\"done\",\"seq\":9").unwrap();
        }
        let log = AccessLog::open(&p).unwrap();
        assert_eq!(log.recovered(), 1, "one admission had no terminal record");
        // New sequence numbers continue past everything seen.
        assert!(log.next_seq() > 2);
        drop(log);
        let text = std::fs::read_to_string(&p).unwrap();
        let lost: Vec<&str> =
            text.lines().filter(|l| l.contains("\"status\":\"lost\"")).collect();
        assert_eq!(lost.len(), 1);
        assert!(lost[0].contains("\"id\":\"in-flight\""), "{}", lost[0]);
        assert!(lost[0].contains("\"restart\":true"), "{}", lost[0]);
        // Exactly-once: every admit has exactly one done.
        let admits = text.lines().filter(|l| l.contains("\"event\":\"admit\"")).count();
        let dones = text
            .lines()
            .filter(|l| l.contains("\"event\":\"done\"") && crate::json::parse(l).is_ok())
            .count();
        assert_eq!(admits, dones);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn shed_requests_get_one_terminal_record() {
        let p = tmp("shed");
        let _ = std::fs::remove_file(&p);
        let log = AccessLog::open(&p).unwrap();
        log.shed("busy");
        drop(log);
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"status\":\"shed\""), "{text}");
        // A shed is terminal on its own: a restart scan recovers nothing.
        let log = AccessLog::open(&p).unwrap();
        assert_eq!(log.recovered(), 0);
        let _ = std::fs::remove_file(&p);
    }
}
