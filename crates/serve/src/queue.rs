//! Bounded admission queue with explicit load-shedding.
//!
//! The daemon's memory is bounded by construction: a request is either
//! admitted into this fixed-capacity queue or refused on the spot with
//! an `overloaded` response — there is no unbounded buffer anywhere on
//! the request path. Preempted jobs *re-enter* past the capacity check
//! (they were already admitted once; refusing them would leak the work
//! and violate the at-most-`cap + workers` in-flight bound by at most
//! the preemption cap).
//!
//! Closing the queue ([`Admission::close`]) is the drain half: no new
//! admissions, blocked workers wake, and [`Admission::pop`] returns
//! `None` once the backlog is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The queue is at capacity: shed with an `overloaded` response.
    Full,
    /// The daemon is draining: shed with a `draining` response.
    Draining,
}

struct State<T> {
    jobs: VecDeque<T>,
    open: bool,
}

/// A bounded MPMC queue with a hard admission capacity.
pub struct Admission<T> {
    cap: usize,
    state: Mutex<State<T>>,
    cv: Condvar,
}

// panics: the queue mutex is poisoned only if another thread already
// panicked while holding it; propagating the panic is the correct
// response in every method below.
impl<T> Admission<T> {
    /// An open queue admitting at most `cap` waiting jobs.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Admission {
            cap,
            state: Mutex::new(State { jobs: VecDeque::new(), open: true }),
            cv: Condvar::new(),
        }
    }

    /// The admission capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Jobs currently waiting.
    #[must_use]
    pub fn depth(&self) -> usize {
        // panics: mutex poisoned only if another thread already panicked
        self.state.lock().unwrap().jobs.len()
    }

    /// Admits `job`, or refuses it (returning it to the caller so the
    /// shed response can reuse it). Returns the queue depth after
    /// admission.
    pub fn submit(&self, job: T) -> Result<usize, (T, Refusal)> {
        // panics: mutex poisoned only if another thread already panicked
        let mut st = self.state.lock().unwrap();
        if !st.open {
            return Err((job, Refusal::Draining));
        }
        if st.jobs.len() >= self.cap {
            return Err((job, Refusal::Full));
        }
        st.jobs.push_back(job);
        let depth = st.jobs.len();
        drop(st);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Re-enters a preempted job at the back of the queue, bypassing
    /// the capacity check (see the module docs for why this cannot
    /// unbound memory). Works on a draining queue: admitted work is
    /// finished, not dropped.
    pub fn requeue(&self, job: T) {
        // panics: mutex poisoned only if another thread already panicked
        let mut st = self.state.lock().unwrap();
        st.jobs.push_back(job);
        drop(st);
        self.cv.notify_one();
    }

    /// Takes the next job, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* empty — the
    /// worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        // panics: mutex poisoned only if another thread already panicked
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if !st.open {
                return None;
            }
            // panics: mutex poisoned only if another thread already panicked
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Stops admission (drain). Idempotent; wakes every blocked
    /// worker.
    pub fn close(&self) {
        // panics: mutex poisoned only if another thread already panicked
        self.state.lock().unwrap().open = false;
        self.cv.notify_all();
    }

    /// True once [`close`](Admission::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        // panics: mutex poisoned only if another thread already panicked
        !self.state.lock().unwrap().open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_above_capacity_and_recovers() {
        let q: Admission<u32> = Admission::new(2);
        assert_eq!(q.submit(1), Ok(1));
        assert_eq!(q.submit(2), Ok(2));
        assert_eq!(q.submit(3), Err((3, Refusal::Full)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.submit(3), Ok(2), "capacity frees as jobs drain");
    }

    #[test]
    fn requeue_bypasses_capacity() {
        let q: Admission<u32> = Admission::new(1);
        assert_eq!(q.submit(1), Ok(1));
        q.requeue(2);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_refuses_new_work_but_drains_old() {
        let q: Admission<u32> = Admission::new(4);
        q.submit(1).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.submit(2), Err((2, Refusal::Draining)));
        q.requeue(3); // preempted work still lands
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "closed and empty");
    }

    #[test]
    fn pop_blocks_until_submit_or_close() {
        let q: Arc<Admission<u32>> = Arc::new(Admission::new(4));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(7).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(7));

        let q3 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q3.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
